//! Offline shim for the `rayon` crate.
//!
//! This workspace builds in containers with no network access and no cargo
//! registry cache, so external crates are replaced by minimal local
//! implementations of exactly the API surface the workspace uses. This shim
//! provides data-parallel slice/range iterators (`par_iter`, `par_iter_mut`,
//! `par_chunks_mut`, `into_par_iter` with `map`/`enumerate`/`zip` adapters
//! and `for_each`/`sum`/`reduce`/`fold`/`collect` terminals) executed on a
//! persistent global thread pool (see [`pool`]).
//!
//! Splits are deterministic: a source of length `L` is cut into at most
//! `num_threads` contiguous parts whose sizes differ by at most one, so
//! parallel results are bitwise identical to serial execution for the
//! orderings the workspace relies on (`for_each` over disjoint chunks,
//! ordered `collect`).

mod pool;

use std::ops::Range;
use std::sync::Arc;

/// Number of threads the global pool can run concurrently (including the
/// caller). Mirrors `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    pool::default_pieces()
}

/// Everything needed to call the parallel-iterator methods.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Evenly distributes `len` items over at most `pieces` non-empty parts.
fn part_sizes(len: usize, pieces: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let pieces = pieces.clamp(1, len);
    let base = len / pieces;
    let rem = len % pieces;
    (0..pieces).map(|i| base + usize::from(i < rem)).collect()
}

/// A parallel iterator: splittable into ordered, independently consumable
/// sequential parts. `parts` returns `(start_item_index, iterator)` pairs
/// covering the items in order; the index feeds `enumerate`.
pub trait ParallelIterator: Sized {
    /// Item produced by the iterator.
    type Item: Send;
    /// One contiguous sequential part of the iteration.
    type Part: Iterator<Item = Self::Item> + Send;

    /// Splits into at most `pieces` ordered parts with their start indices.
    fn parts(self, pieces: usize) -> Vec<(usize, Self::Part)>;

    /// Maps each item through `f`.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        Map { inner: self, f }
    }

    /// Pairs each item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Iterates two equal-length parallel iterators in lockstep.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Runs `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let parts = self.parts(pool::default_pieces());
        let f = &f;
        pool::run_scoped(
            parts
                .into_iter()
                .map(|(_, p)| {
                    move || {
                        for x in p {
                            f(x);
                        }
                    }
                })
                .collect(),
        );
    }

    /// Sums all items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let parts = self.parts(pool::default_pieces());
        let partials: Vec<S> = pool::run_scoped(
            parts
                .into_iter()
                .map(|(_, p)| move || p.sum::<S>())
                .collect(),
        );
        partials.into_iter().sum()
    }

    /// Reduces all items with `op`, seeding each part with `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let parts = self.parts(pool::default_pieces());
        let id = &identity;
        let op_ref = &op;
        let partials: Vec<Self::Item> = pool::run_scoped(
            parts
                .into_iter()
                .map(|(_, p)| move || p.fold(id(), op_ref))
                .collect(),
        );
        partials.into_iter().fold(identity(), op)
    }

    /// Folds each part into an accumulator; combine the per-part
    /// accumulators with [`Fold::reduce`].
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync,
        F: Fn(T, Self::Item) -> T + Send + Sync,
    {
        Fold {
            inner: self,
            identity,
            fold_op,
        }
    }

    /// Collects all items, in order, into `C`.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        let parts = self.parts(pool::default_pieces());
        let chunks: Vec<Vec<Self::Item>> = pool::run_scoped(
            parts
                .into_iter()
                .map(|(_, p)| move || p.collect::<Vec<_>>())
                .collect(),
        );
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        C::from_par_vec(out)
    }

    /// Counts the items.
    fn count(self) -> usize {
        self.map(|_| 1usize).sum()
    }
}

/// Conversion from an ordered `Vec` of parallel-iterator items.
pub trait FromParallelIterator<T>: Sized {
    /// Builds `Self` from the ordered items.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_vec(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Types convertible into a [`ParallelIterator`] by value.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = IntoParRange;
    fn into_par_iter(self) -> IntoParRange {
        IntoParRange { range: self }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Iter = IntoParRangeU64;
    fn into_par_iter(self) -> IntoParRangeU64 {
        IntoParRangeU64 { range: self }
    }
}

/// Shared-reference parallel access to slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<'_, T>;
    /// Parallel iterator over non-overlapping shared chunks of `size`.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }

    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunks { slice: self, size }
    }
}

/// Mutable parallel access to slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// Parallel iterator over non-overlapping mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut { slice: self, size }
    }
}

/// Parallel iterator over `&T` of a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    type Part = std::slice::Iter<'a, T>;

    fn parts(self, pieces: usize) -> Vec<(usize, Self::Part)> {
        let mut rest = self.slice;
        let mut off = 0;
        let mut out = Vec::new();
        for size in part_sizes(rest.len(), pieces) {
            let (head, tail) = rest.split_at(size);
            out.push((off, head.iter()));
            off += size;
            rest = tail;
        }
        out
    }
}

/// Parallel iterator over `&mut T` of a slice.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type Part = std::slice::IterMut<'a, T>;

    fn parts(self, pieces: usize) -> Vec<(usize, Self::Part)> {
        let mut rest = self.slice;
        let mut off = 0;
        let mut out = Vec::new();
        for size in part_sizes(rest.len(), pieces) {
            let (head, tail) = rest.split_at_mut(size);
            out.push((off, head.iter_mut()));
            off += size;
            rest = tail;
        }
        out
    }
}

/// Parallel iterator over non-overlapping shared chunks of a slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    type Part = std::slice::Chunks<'a, T>;

    fn parts(self, pieces: usize) -> Vec<(usize, Self::Part)> {
        let nchunks = self.slice.len().div_ceil(self.size);
        let mut rest = self.slice;
        let mut chunk_off = 0;
        let mut out = Vec::new();
        for chunks in part_sizes(nchunks, pieces) {
            let elems = (chunks * self.size).min(rest.len());
            let (head, tail) = rest.split_at(elems);
            out.push((chunk_off, head.chunks(self.size)));
            chunk_off += chunks;
            rest = tail;
        }
        out
    }
}

/// Parallel iterator over non-overlapping mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Part = std::slice::ChunksMut<'a, T>;

    fn parts(self, pieces: usize) -> Vec<(usize, Self::Part)> {
        let nchunks = self.slice.len().div_ceil(self.size);
        let mut rest = self.slice;
        let mut chunk_off = 0;
        let mut out = Vec::new();
        for chunks in part_sizes(nchunks, pieces) {
            let elems = (chunks * self.size).min(rest.len());
            let (head, tail) = rest.split_at_mut(elems);
            out.push((chunk_off, head.chunks_mut(self.size)));
            chunk_off += chunks;
            rest = tail;
        }
        out
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct IntoParRange {
    range: Range<usize>,
}

impl ParallelIterator for IntoParRange {
    type Item = usize;
    type Part = Range<usize>;

    fn parts(self, pieces: usize) -> Vec<(usize, Self::Part)> {
        let len = self.range.end.saturating_sub(self.range.start);
        let mut start = self.range.start;
        let mut out = Vec::new();
        for size in part_sizes(len, pieces) {
            out.push((start - self.range.start, start..start + size));
            start += size;
        }
        out
    }
}

/// Parallel iterator over a `Range<u64>`.
pub struct IntoParRangeU64 {
    range: Range<u64>,
}

impl ParallelIterator for IntoParRangeU64 {
    type Item = u64;
    type Part = Range<u64>;

    fn parts(self, pieces: usize) -> Vec<(usize, Self::Part)> {
        let len = usize::try_from(self.range.end.saturating_sub(self.range.start))
            .expect("range too large to split");
        let mut start = self.range.start;
        let mut out = Vec::new();
        for size in part_sizes(len, pieces) {
            out.push((
                (start - self.range.start) as usize,
                start..start + size as u64,
            ));
            start += size as u64;
        }
        out
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    inner: I,
    f: F,
}

/// Sequential part of a [`Map`].
pub struct MapPart<P, F> {
    inner: P,
    f: Arc<F>,
}

impl<P, U, F> Iterator for MapPart<P, F>
where
    P: Iterator,
    F: Fn(P::Item) -> U,
{
    type Item = U;
    fn next(&mut self) -> Option<U> {
        self.inner.next().map(|x| (self.f)(x))
    }
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Send + Sync,
{
    type Item = U;
    type Part = MapPart<I::Part, F>;

    fn parts(self, pieces: usize) -> Vec<(usize, Self::Part)> {
        let f = Arc::new(self.f);
        self.inner
            .parts(pieces)
            .into_iter()
            .map(|(off, p)| {
                (
                    off,
                    MapPart {
                        inner: p,
                        f: Arc::clone(&f),
                    },
                )
            })
            .collect()
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

/// Sequential part of an [`Enumerate`].
pub struct EnumeratePart<P> {
    next: usize,
    inner: P,
}

impl<P: Iterator> Iterator for EnumeratePart<P> {
    type Item = (usize, P::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let x = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, x))
    }
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type Part = EnumeratePart<I::Part>;

    fn parts(self, pieces: usize) -> Vec<(usize, Self::Part)> {
        self.inner
            .parts(pieces)
            .into_iter()
            .map(|(off, p)| {
                (
                    off,
                    EnumeratePart {
                        next: off,
                        inner: p,
                    },
                )
            })
            .collect()
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type Part = std::iter::Zip<A::Part, B::Part>;

    fn parts(self, pieces: usize) -> Vec<(usize, Self::Part)> {
        let pa = self.a.parts(pieces);
        let pb = self.b.parts(pieces);
        // Sources of equal length split identically (part_sizes is a pure
        // function of length and pieces), keeping lockstep pairing exact.
        debug_assert_eq!(pa.len(), pb.len(), "zip of unequal-length sources");
        pa.into_iter()
            .zip(pb)
            .map(|((off, a), (_, b))| (off, a.zip(b)))
            .collect()
    }
}

/// See [`ParallelIterator::fold`]; consumed by [`Fold::reduce`].
pub struct Fold<I, ID, F> {
    inner: I,
    identity: ID,
    fold_op: F,
}

impl<T, I, ID, F> Fold<I, ID, F>
where
    T: Send,
    I: ParallelIterator,
    ID: Fn() -> T + Send + Sync,
    F: Fn(T, I::Item) -> T + Send + Sync,
{
    /// Combines the per-part fold accumulators with `op`.
    pub fn reduce<ID2, OP>(self, identity2: ID2, op: OP) -> T
    where
        ID2: Fn() -> T + Send + Sync,
        OP: Fn(T, T) -> T + Send + Sync,
    {
        let parts = self.inner.parts(pool::default_pieces());
        let id = &self.identity;
        let f = &self.fold_op;
        let partials: Vec<T> = pool::run_scoped(
            parts
                .into_iter()
                .map(|(_, p)| move || p.fold(id(), f))
                .collect(),
        );
        partials.into_iter().fold(identity2(), op)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn for_each_mut_touches_every_element() {
        let mut v: Vec<u64> = vec![0; 10_000];
        v.par_iter_mut().for_each(|x| *x += 3);
        assert!(v.iter().all(|&x| x == 3));
    }

    #[test]
    fn chunks_mut_disjoint_and_complete() {
        let mut v: Vec<usize> = (0..1023).collect();
        v.par_chunks_mut(64).for_each(|chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn chunks_shared_enumerate_is_global_and_complete() {
        let v: Vec<usize> = (0..1023).collect();
        let sums: Vec<(usize, usize)> = v
            .par_chunks(64)
            .enumerate()
            .map(|(i, c)| (i, c.iter().sum()))
            .collect();
        assert_eq!(sums.len(), v.len().div_ceil(64));
        for (i, s) in &sums {
            let expect: usize = v[i * 64..(i * 64 + 64).min(v.len())].iter().sum();
            assert_eq!(*s, expect);
        }
    }

    #[test]
    fn enumerate_offsets_are_global() {
        let v: Vec<u32> = (0..4097).collect();
        let got: Vec<(usize, u32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(got.len(), v.len());
        assert!(got.iter().all(|&(i, x)| i as u32 == x));
    }

    #[test]
    fn chunk_enumerate_counts_chunks() {
        let mut v = vec![0u8; 300];
        let idx: Vec<usize> = v.par_chunks_mut(64).enumerate().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sum_matches_serial() {
        let v: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.5).collect();
        let par: f64 = v.par_iter().map(|&x| x).sum();
        let ser: f64 = v.iter().sum();
        // Different association order; equal for this data, close in general.
        assert!((par - ser).abs() < 1e-6 * ser.abs());
    }

    #[test]
    fn reduce_and_fold() {
        let r: usize = (0..1000usize).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 499_500);
        let folded: Vec<f64> = (0..1024usize)
            .into_par_iter()
            .map(|i| (i % 4, 1.0f64))
            .fold(
                || vec![0.0; 4],
                |mut acc, (k, w)| {
                    acc[k] += w;
                    acc
                },
            )
            .reduce(
                || vec![0.0; 4],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        assert_eq!(folded, vec![256.0; 4]);
    }

    #[test]
    fn collect_result_ok_and_err() {
        let ok: Result<Vec<usize>, String> = (0..100usize).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), (0..100).collect::<Vec<_>>());
        let err: Result<Vec<usize>, String> = (0..100usize)
            .into_par_iter()
            .map(|i| {
                if i == 57 {
                    Err(format!("bad {i}"))
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "bad 57");
    }

    #[test]
    fn zip_lockstep() {
        let mut lo = vec![1.0f64; 5000];
        let hi = vec![2.0f64; 5000];
        lo.par_iter_mut()
            .zip(hi.par_iter())
            .for_each(|(a, &b)| *a += b);
        assert!(lo.iter().all(|&x| x == 3.0));
    }
}
