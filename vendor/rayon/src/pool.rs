//! A minimal persistent thread pool with scoped job execution.
//!
//! Replaces rayon's work-stealing runtime with the simplest structure that
//! keeps the workspace's usage patterns fast and deadlock-free:
//!
//! - a global FIFO of type-erased jobs served by `N − 1` long-lived workers;
//! - [`run_scoped`] submits a batch of borrowing closures, runs the first
//!   one inline, and **helps drain the global queue while waiting** for the
//!   rest — so nested parallel calls (a parallel batch whose entries use
//!   parallel kernels) can never deadlock: a blocked waiter always makes
//!   progress on whatever job is queued.
//!
//! Scoped lifetimes are erased with a `transmute` to `'static`, exactly the
//! pre-`std::thread::scope` crossbeam pattern; soundness rests on
//! [`run_scoped`] never returning (or unwinding) before every submitted job
//! has completed, which the latch enforces on all paths.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Mutex<VecDeque<Task>>,
    work_available: Condvar,
    workers: usize,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let workers = threads.saturating_sub(1);
            let pool = Pool {
                queue: Mutex::new(VecDeque::new()),
                work_available: Condvar::new(),
                workers,
            };
            for i in 0..workers {
                std::thread::Builder::new()
                    .name(format!("nwq-par-{i}"))
                    .spawn(worker_loop)
                    .expect("spawn pool worker");
            }
            pool
        })
    }

    fn submit(&self, task: Task) {
        self.queue.lock().unwrap().push_back(task);
        self.work_available.notify_one();
    }

    fn try_pop(&self) -> Option<Task> {
        self.queue.lock().unwrap().pop_front()
    }
}

fn worker_loop() {
    let pool = Pool::global();
    loop {
        let task = {
            let mut q = pool.queue.lock().unwrap();
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = pool.work_available.wait(q).unwrap();
            }
        };
        // Tasks are wrapped in catch_unwind by run_scoped; the extra guard
        // keeps a worker alive even if an unwrapped task slips through.
        let _ = catch_unwind(AssertUnwindSafe(task));
    }
}

/// Number of useful parallel parts for a split (callers may produce fewer).
pub(crate) fn default_pieces() -> usize {
    Pool::global().workers + 1
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

impl Latch {
    fn new(remaining: usize) -> Latch {
        Latch {
            state: Mutex::new(LatchState {
                remaining,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut s = self.state.lock().unwrap();
        s.remaining -= 1;
        if let Some(p) = panic {
            s.panic.get_or_insert(p);
        }
        if s.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until all jobs complete, running queued tasks while waiting.
    fn wait_helping(&self, pool: &Pool) {
        loop {
            if self.state.lock().unwrap().remaining == 0 {
                return;
            }
            if let Some(task) = pool.try_pop() {
                let _ = catch_unwind(AssertUnwindSafe(task));
                continue;
            }
            let s = self.state.lock().unwrap();
            if s.remaining == 0 {
                return;
            }
            // Short timeout bounds the race between try_pop and this wait.
            let _ = self
                .done
                .wait_timeout(s, Duration::from_micros(200))
                .unwrap();
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.state.lock().unwrap().panic.take()
    }
}

/// Erases a scoped job's borrow lifetime so it can sit in the global queue.
///
/// # Safety
/// The caller must not return or unwind before the job has completed.
unsafe fn erase<'env>(f: Box<dyn FnOnce() + Send + 'env>) -> Task {
    std::mem::transmute(f)
}

/// Runs `jobs` to completion, possibly in parallel, returning their results
/// in input order. Job 0 runs inline on the calling thread; panics from any
/// job are propagated after all jobs have finished.
pub(crate) fn run_scoped<R, F>(jobs: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let pool = Pool::global();
    if n == 1 || pool.workers == 0 {
        return jobs.into_iter().map(|j| j()).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let latch = Latch::new(n - 1);
    let first_outcome;
    {
        let mut slots = results.iter_mut();
        let mut jobs = jobs.into_iter();
        let first_job = jobs.next().expect("n >= 1");
        let first_slot = slots.next().expect("n >= 1");
        for (job, slot) in jobs.zip(slots) {
            let latch = &latch;
            let f: Box<dyn FnOnce() + Send + '_> =
                Box::new(move || match catch_unwind(AssertUnwindSafe(job)) {
                    Ok(v) => {
                        *slot = Some(v);
                        latch.complete(None);
                    }
                    Err(p) => latch.complete(Some(p)),
                });
            // SAFETY: wait_helping below blocks (on every path, including
            // the inline job panicking) until all submitted jobs are done,
            // so the borrows inside `f` outlive its execution.
            pool.submit(unsafe { erase(f) });
        }
        first_outcome = catch_unwind(AssertUnwindSafe(first_job));
        latch.wait_helping(pool);
        match first_outcome {
            Ok(v) => *first_slot = Some(v),
            Err(p) => resume_unwind(p),
        }
    }
    if let Some(p) = latch.take_panic() {
        resume_unwind(p);
    }
    results
        .into_iter()
        .map(|o| o.expect("latch guaranteed completion"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_order() {
        let jobs: Vec<_> = (0..64).map(|i| move || i * 2).collect();
        assert_eq!(run_scoped(jobs), (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_disjoint_slots() {
        let mut data = vec![0u64; 32];
        let jobs: Vec<_> = data
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| move || *slot = i as u64 + 1)
            .collect();
        run_scoped(jobs);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let total = AtomicUsize::new(0);
        let outer: Vec<_> = (0..16)
            .map(|_| {
                let total = &total;
                move || {
                    let inner: Vec<_> = (0..8).map(|j| move || j as usize).collect();
                    let got: usize = run_scoped(inner).into_iter().sum();
                    total.fetch_add(got, Ordering::Relaxed);
                }
            })
            .collect();
        run_scoped(outer);
        assert_eq!(total.load(Ordering::Relaxed), 16 * 28);
    }

    #[test]
    fn worker_panic_propagates() {
        let jobs: Vec<_> = (0..8)
            .map(|i| {
                move || {
                    if i == 5 {
                        panic!("boom");
                    }
                    i
                }
            })
            .collect();
        let r = catch_unwind(AssertUnwindSafe(|| run_scoped(jobs)));
        assert!(r.is_err());
    }
}
