//! Offline shim for the `rand` crate (0.8-era API surface).
//!
//! Implements exactly what the workspace uses: the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits and a deterministic [`rngs::StdRng`] built on
//! xoshiro256** seeded through splitmix64. Statistical quality is more than
//! adequate for the simulator's sampling paths and for property tests; this
//! is NOT a cryptographic generator.

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the spans used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = self.into_inner();
                assert!(s <= e, "empty range in gen_range");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (e - s) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                s + hi as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods (blanket over every [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample of `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from small seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(4);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((trues as i64 - 5000).abs() < 300, "{trues}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
