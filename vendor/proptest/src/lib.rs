//! Offline shim for the `proptest` crate.
//!
//! This workspace builds in containers with no network access and no cargo
//! registry cache, so external crates are replaced by minimal local
//! implementations of exactly the API surface the workspace uses:
//! the [`proptest!`] / [`prop_compose!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], and [`bool::ANY`].
//!
//! Differences from real proptest, deliberately accepted:
//! - cases are generated from a deterministic per-test RNG (FNV-1a hash of
//!   the test name XOR the case index), so failures are reproducible by
//!   rerunning the same test, but there is no persistence file;
//! - **no shrinking** — a failing case reports the generated inputs as-is.

/// Test-case failure carrier plus the run configuration.
pub mod test_runner {
    /// Error returned (via `prop_assert!`) from a property body.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failed property with an explanatory message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }

        /// The failure message.
        pub fn message(&self) -> &str {
            &self.message
        }
    }

    /// Run configuration for a [`crate::proptest!`] block.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic splitmix64 generator driving value generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name and case index (reproducible).
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64) << 32) ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform u64 in [0, bound).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// `generate` returns `None` when a `prop_filter` rejects the draw; the
    /// test runner retries (bounded) on rejection.
    pub trait Strategy {
        /// The generated value type.
        type Value: std::fmt::Debug;

        /// Draws one value, or `None` on filter rejection.
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: std::fmt::Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred`.
        fn prop_filter<F>(self, _reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, pred }
        }

        /// Builds a dependent strategy from each generated value (e.g. draw
        /// a size first, then a structure of that size).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Draws from a strategy, retrying bounded times on filter rejection.
    pub fn generate_retrying<S: Strategy>(s: &S, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            if let Some(v) = s.generate(rng) {
                return v;
            }
        }
        panic!("proptest shim: strategy rejected 1000 consecutive draws (filter too strict)");
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: std::fmt::Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
            let first = self.inner.generate(rng)?;
            (self.f)(first).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.generate(rng).filter(|v| (self.pred)(v))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// Strategy built from a generation closure (used by `prop_compose!`).
    pub struct FnStrategy<F> {
        f: F,
    }

    impl<F> FnStrategy<F> {
        /// Wraps `f` as a strategy.
        pub fn new(f: F) -> Self {
            FnStrategy { f }
        }
    }

    impl<T, F> Strategy for FnStrategy<F>
    where
        T: std::fmt::Debug,
        F: Fn(&mut TestRng) -> Option<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            (self.f)(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    Some(self.start + rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e - s) as u64 + 1;
                    Some(s + rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> Option<f64> {
            assert!(self.start < self.end, "empty range strategy");
            Some(self.start + rng.unit_f64() * (self.end - self.start))
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> Option<f32> {
            assert!(self.start < self.end, "empty range strategy");
            Some(self.start + (rng.unit_f64() as f32) * (self.end - self.start))
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($s,)+) = self;
                    Some(($($s.generate(rng)?,)+))
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Lengths accepted by [`vec`]: a fixed size or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                return self.start;
            }
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = self.size.pick_len(rng);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                // One element rejection rejects the whole draw; the runner
                // retries, matching filter semantics closely enough.
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `bool` strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, proptest};
}

/// Fails the surrounding property when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the surrounding property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let mut case_desc = ::std::string::String::new();
                    $(
                        let value =
                            $crate::strategy::generate_retrying(&($strat), &mut rng);
                        case_desc.push_str(&format!(
                            "  {} = {:?}\n",
                            stringify!($arg),
                            &value
                        ));
                        let $arg = value;
                    )*
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}\ninputs:\n{}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e.message(),
                            case_desc
                        );
                    }
                }
            }
        )*
    };
}

/// Composes strategies into a named strategy-returning function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($outer:ident : $oty:ty),* $(,)? )
        ( $($arg:pat in $strat:expr),* $(,)? ) -> $ret:ty
        $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name(
            $($outer: $oty),*
        ) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(
                move |rng: &mut $crate::test_runner::TestRng| {
                    $( let $arg = ($strat).generate(rng)?; )*
                    ::std::option::Option::Some($body)
                },
            )
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair(limit: u64)(a in 0u64..limit, b in 0u64..limit) -> (u64, u64) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps(p in (0u8..4, 0usize..10).prop_map(|(a, b)| a as usize + b)) {
            prop_assert!(p < 13);
        }

        #[test]
        fn filters_apply(v in (0u64..100).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn flat_maps_build_dependent_strategies(
            v in (1usize..6).prop_flat_map(|n| crate::collection::vec(0usize..n, n..n + 1))
        ) {
            let n = v.len();
            prop_assert!((1..6).contains(&n));
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u32..5, 2usize..6), b in crate::bool::ANY) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            let _ = b;
        }

        #[test]
        fn composed(pair in arb_pair(9)) {
            prop_assert!(pair.0 < 9 && pair.1 < 9);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{generate_retrying, Strategy};
        let s = (0u64..1000).prop_map(|x| x * 2);
        let mut r1 = crate::test_runner::TestRng::for_case("det", 7);
        let mut r2 = crate::test_runner::TestRng::for_case("det", 7);
        assert_eq!(
            generate_retrying(&s, &mut r1),
            generate_retrying(&s, &mut r2)
        );
    }
}
