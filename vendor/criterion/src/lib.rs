//! Offline shim for the `criterion` crate.
//!
//! This workspace builds in containers with no network access and no cargo
//! registry cache, so external crates are replaced by minimal local
//! implementations of exactly the API surface the workspace uses. This one
//! is a plain wall-clock harness: each benchmark is warmed up, then timed
//! for the configured number of samples (batching fast bodies so a sample
//! spans at least ~200µs), and a one-line summary with mean/min times and
//! optional throughput is printed. No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level harness configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput used in reports for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, &mut |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id.clone(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&self.name, id, &b.samples, self.throughput);
    }
}

/// Timer handed to benchmark bodies.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `body`, batching fast bodies so each sample is measurable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warmup + batch sizing: aim for samples of at least ~200µs.
        let probe = Instant::now();
        black_box(body());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_micros(200).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;
        for _ in 0..2 {
            black_box(body());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            let dt = t0.elapsed();
            self.samples.push(dt / batch as u32);
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let rate = throughput
        .map(|t| {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let per_sec = count as f64 / mean.as_secs_f64();
            format!("  {per_sec:.3e} {unit}/s")
        })
        .unwrap_or_default();
    println!(
        "{group}/{id}: mean {mean:?}, min {min:?} ({} samples){rate}",
        samples.len()
    );
}

/// Defines a benchmark-group runner function from named targets.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $cfg:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        group.throughput(Throughput::Elements(128));
        group.bench_function("sum", |b| b.iter(|| (0..128u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| (0..128u64).map(|x| x * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = bench_demo
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
