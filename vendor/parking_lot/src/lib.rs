//! Offline shim for the `parking_lot` crate.
//!
//! This workspace builds in containers with no network access and no cargo
//! registry cache, so external crates are replaced by minimal local
//! implementations of exactly the API surface the workspace uses. This one
//! wraps `std::sync` primitives with `parking_lot`'s panic-free signatures:
//! `lock()` returns the guard directly (poisoned locks are recovered rather
//! than propagated, matching parking_lot's "no poisoning" semantics).

use std::sync::{self, TryLockError};

/// A mutex whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
