//! Small fixed-size complex matrices used as gate representations.
//!
//! NWQ-Sim restricts gate fusion to at most two qubits (paper §4.3), so the
//! simulator only ever needs 2×2 and 4×4 unitaries. Fixed-size arrays keep
//! these on the stack and let kernels unroll the amplitude updates fully.

use crate::complex::{C64, C_ONE, C_ZERO};
use std::f64::consts::FRAC_1_SQRT_2;
use std::ops::{Index, IndexMut, Mul};

/// A 2×2 complex matrix in row-major order — the representation of every
/// single-qubit gate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat2(pub [[C64; 2]; 2]);

/// A 4×4 complex matrix in row-major order — the representation of every
/// two-qubit gate. Basis ordering is `|q_hi q_lo⟩` with the *first* qubit
/// argument of a gate as the most significant bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat4(pub [[C64; 4]; 4]);

impl Mat2 {
    /// The 2×2 identity.
    pub const fn identity() -> Self {
        Mat2([[C_ONE, C_ZERO], [C_ZERO, C_ONE]])
    }

    /// Builds a matrix from rows of `(re, im)` pairs — convenient for tables.
    pub fn from_rows(rows: [[C64; 2]; 2]) -> Self {
        Mat2(rows)
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Self {
        let m = &self.0;
        Mat2([
            [m[0][0].conj(), m[1][0].conj()],
            [m[0][1].conj(), m[1][1].conj()],
        ])
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, k: C64) -> Self {
        let mut out = *self;
        for r in 0..2 {
            for c in 0..2 {
                out.0[r][c] = self.0[r][c] * k;
            }
        }
        out
    }

    /// `true` when `self · self† ≈ I` within `tol` per entry.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let p = *self * self.dagger();
        p.approx_eq(&Mat2::identity(), tol)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        for r in 0..2 {
            for c in 0..2 {
                if !self.0[r][c].approx_eq(other.0[r][c], tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Equality up to a global phase: finds the first entry of significant
    /// magnitude and compares after phase alignment.
    pub fn approx_eq_up_to_phase(&self, other: &Self, tol: f64) -> bool {
        align_phase_eq(
            self.0.iter().flatten().copied(),
            other.0.iter().flatten().copied(),
            tol,
        )
    }

    /// Kronecker product `self ⊗ rhs` producing a two-qubit matrix with
    /// `self` acting on the more significant qubit.
    pub fn kron(&self, rhs: &Mat2) -> Mat4 {
        let mut out = Mat4::zero();
        for r1 in 0..2 {
            for c1 in 0..2 {
                for r2 in 0..2 {
                    for c2 in 0..2 {
                        out.0[r1 * 2 + r2][c1 * 2 + c2] = self.0[r1][c1] * rhs.0[r2][c2];
                    }
                }
            }
        }
        out
    }

    /// Trace.
    pub fn trace(&self) -> C64 {
        self.0[0][0] + self.0[1][1]
    }

    /// Determinant.
    pub fn det(&self) -> C64 {
        self.0[0][0] * self.0[1][1] - self.0[0][1] * self.0[1][0]
    }
}

impl Mul for Mat2 {
    type Output = Mat2;
    fn mul(self, rhs: Mat2) -> Mat2 {
        let mut out = Mat2([[C_ZERO; 2]; 2]);
        for r in 0..2 {
            for c in 0..2 {
                let mut acc = C_ZERO;
                for k in 0..2 {
                    acc += self.0[r][k] * rhs.0[k][c];
                }
                out.0[r][c] = acc;
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Mat2 {
    type Output = C64;
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        &self.0[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat2 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        &mut self.0[r][c]
    }
}

impl Mat4 {
    /// The 4×4 zero matrix.
    pub const fn zero() -> Self {
        Mat4([[C_ZERO; 4]; 4])
    }

    /// The 4×4 identity.
    pub fn identity() -> Self {
        let mut m = Mat4::zero();
        for i in 0..4 {
            m.0[i][i] = C_ONE;
        }
        m
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Self {
        let mut out = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                out.0[r][c] = self.0[c][r].conj();
            }
        }
        out
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        for r in 0..4 {
            for c in 0..4 {
                if !self.0[r][c].approx_eq(other.0[r][c], tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Equality up to a global phase.
    pub fn approx_eq_up_to_phase(&self, other: &Self, tol: f64) -> bool {
        align_phase_eq(
            self.0.iter().flatten().copied(),
            other.0.iter().flatten().copied(),
            tol,
        )
    }

    /// `true` when `self · self† ≈ I` within `tol` per entry.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let p = *self * self.dagger();
        p.approx_eq(&Mat4::identity(), tol)
    }

    /// Exchanges the roles of the two qubits: `M'[σ(r)][σ(c)] = M[r][c]`
    /// where σ swaps the two bits of the index. Needed when a fused gate's
    /// stored qubit order differs from the order the kernel expects.
    pub fn swap_qubits(&self) -> Self {
        let sw = |i: usize| ((i & 1) << 1) | (i >> 1);
        let mut out = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                out.0[sw(r)][sw(c)] = self.0[r][c];
            }
        }
        out
    }

    /// Trace.
    pub fn trace(&self) -> C64 {
        (0..4).map(|i| self.0[i][i]).sum()
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                let mut acc = C_ZERO;
                for k in 0..4 {
                    acc += self.0[r][k] * rhs.0[k][c];
                }
                out.0[r][c] = acc;
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Mat4 {
    type Output = C64;
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        &self.0[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat4 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        &mut self.0[r][c]
    }
}

fn align_phase_eq(
    a: impl Iterator<Item = C64> + Clone,
    b: impl Iterator<Item = C64> + Clone,
    tol: f64,
) -> bool {
    // Find the entry of largest magnitude in `a` to anchor the phase.
    let mut best = (C_ZERO, C_ZERO);
    let mut best_mag = 0.0;
    for (x, y) in a.clone().zip(b.clone()) {
        if x.norm_sqr() > best_mag {
            best_mag = x.norm_sqr();
            best = (x, y);
        }
    }
    if best_mag < tol * tol {
        // `a` is (numerically) zero; require `b` to be zero too.
        return b.into_iter().all(|y| y.norm() <= tol);
    }
    if best.1.norm() <= tol {
        return false;
    }
    let phase = best.1 / best.0;
    let phase = phase * (1.0 / phase.norm());
    a.zip(b).all(|(x, y)| (x * phase).approx_eq(y, tol))
}

// ---------------------------------------------------------------------------
// Standard single-qubit gate matrices.
// ---------------------------------------------------------------------------

/// Pauli-X matrix.
pub fn mat_x() -> Mat2 {
    Mat2([[C_ZERO, C_ONE], [C_ONE, C_ZERO]])
}

/// Pauli-Y matrix.
pub fn mat_y() -> Mat2 {
    Mat2([[C_ZERO, C64::imag(-1.0)], [C64::imag(1.0), C_ZERO]])
}

/// Pauli-Z matrix.
pub fn mat_z() -> Mat2 {
    Mat2([[C_ONE, C_ZERO], [C_ZERO, -C_ONE]])
}

/// Hadamard matrix.
pub fn mat_h() -> Mat2 {
    let h = C64::real(FRAC_1_SQRT_2);
    Mat2([[h, h], [h, -h]])
}

/// Phase gate S = diag(1, i).
pub fn mat_s() -> Mat2 {
    Mat2([[C_ONE, C_ZERO], [C_ZERO, C64::imag(1.0)]])
}

/// Inverse phase gate S† = diag(1, −i).
pub fn mat_sdg() -> Mat2 {
    Mat2([[C_ONE, C_ZERO], [C_ZERO, C64::imag(-1.0)]])
}

/// T gate = diag(1, e^{iπ/4}).
pub fn mat_t() -> Mat2 {
    Mat2([
        [C_ONE, C_ZERO],
        [C_ZERO, C64::cis(std::f64::consts::FRAC_PI_4)],
    ])
}

/// T† gate.
pub fn mat_tdg() -> Mat2 {
    Mat2([
        [C_ONE, C_ZERO],
        [C_ZERO, C64::cis(-std::f64::consts::FRAC_PI_4)],
    ])
}

/// Rotation about X: `RX(θ) = exp(−iθX/2)`.
pub fn mat_rx(theta: f64) -> Mat2 {
    let (s, c) = (theta * 0.5).sin_cos();
    Mat2([[C64::real(c), C64::imag(-s)], [C64::imag(-s), C64::real(c)]])
}

/// Rotation about Y: `RY(θ) = exp(−iθY/2)`.
pub fn mat_ry(theta: f64) -> Mat2 {
    let (s, c) = (theta * 0.5).sin_cos();
    Mat2([[C64::real(c), C64::real(-s)], [C64::real(s), C64::real(c)]])
}

/// Rotation about Z: `RZ(θ) = exp(−iθZ/2) = diag(e^{−iθ/2}, e^{iθ/2})`.
pub fn mat_rz(theta: f64) -> Mat2 {
    Mat2([
        [C64::cis(-theta * 0.5), C_ZERO],
        [C_ZERO, C64::cis(theta * 0.5)],
    ])
}

/// Phase rotation `P(λ) = diag(1, e^{iλ})`.
pub fn mat_p(lambda: f64) -> Mat2 {
    Mat2([[C_ONE, C_ZERO], [C_ZERO, C64::cis(lambda)]])
}

/// General single-qubit unitary `U3(θ, φ, λ)` in the OpenQASM convention.
pub fn mat_u3(theta: f64, phi: f64, lambda: f64) -> Mat2 {
    let (s, c) = (theta * 0.5).sin_cos();
    Mat2([
        [C64::real(c), -C64::cis(lambda) * s],
        [C64::cis(phi) * s, C64::cis(phi + lambda) * c],
    ])
}

/// √X gate.
pub fn mat_sx() -> Mat2 {
    let p = C64::new(0.5, 0.5);
    let m = C64::new(0.5, -0.5);
    Mat2([[p, m], [m, p]])
}

// ---------------------------------------------------------------------------
// Standard two-qubit gate matrices. Convention: for a gate `G(a, b)` the
// matrix index is `(bit_a << 1) | bit_b`, i.e. the first argument is the
// high bit.
// ---------------------------------------------------------------------------

/// CNOT with the first qubit (high bit) as control.
pub fn mat_cx() -> Mat4 {
    let mut m = Mat4::zero();
    m.0[0][0] = C_ONE;
    m.0[1][1] = C_ONE;
    m.0[2][3] = C_ONE;
    m.0[3][2] = C_ONE;
    m
}

/// Controlled-Z (symmetric in its qubits).
pub fn mat_cz() -> Mat4 {
    let mut m = Mat4::identity();
    m.0[3][3] = -C_ONE;
    m
}

/// Controlled-phase `CP(λ)` (symmetric in its qubits).
pub fn mat_cp(lambda: f64) -> Mat4 {
    let mut m = Mat4::identity();
    m.0[3][3] = C64::cis(lambda);
    m
}

/// SWAP gate.
pub fn mat_swap() -> Mat4 {
    let mut m = Mat4::zero();
    m.0[0][0] = C_ONE;
    m.0[1][2] = C_ONE;
    m.0[2][1] = C_ONE;
    m.0[3][3] = C_ONE;
    m
}

/// Two-qubit ZZ rotation `RZZ(θ) = exp(−iθ Z⊗Z / 2)`.
pub fn mat_rzz(theta: f64) -> Mat4 {
    let e_m = C64::cis(-theta * 0.5);
    let e_p = C64::cis(theta * 0.5);
    let mut m = Mat4::zero();
    m.0[0][0] = e_m;
    m.0[1][1] = e_p;
    m.0[2][2] = e_p;
    m.0[3][3] = e_m;
    m
}

// ---------------------------------------------------------------------------
// Angle derivatives of the parameterized gate matrices, `dG/dθ` evaluated
// at the same angle. These are NOT unitary — they feed the adjoint
// differentiation sweep, which contracts ⟨φ|dG/dθ|ψ⟩ without ever applying
// a derivative matrix to a state.
// ---------------------------------------------------------------------------

/// `dRX/dθ = −(i/2)·X·RX(θ)`.
pub fn mat_drx(theta: f64) -> Mat2 {
    let (s, c) = (theta * 0.5).sin_cos();
    Mat2([
        [C64::real(-0.5 * s), C64::imag(-0.5 * c)],
        [C64::imag(-0.5 * c), C64::real(-0.5 * s)],
    ])
}

/// `dRY/dθ = −(i/2)·Y·RY(θ)`.
pub fn mat_dry(theta: f64) -> Mat2 {
    let (s, c) = (theta * 0.5).sin_cos();
    Mat2([
        [C64::real(-0.5 * s), C64::real(-0.5 * c)],
        [C64::real(0.5 * c), C64::real(-0.5 * s)],
    ])
}

/// `dRZ/dθ = diag(−(i/2)e^{−iθ/2}, (i/2)e^{iθ/2})`.
pub fn mat_drz(theta: f64) -> Mat2 {
    Mat2([
        [C64::imag(-0.5) * C64::cis(-theta * 0.5), C_ZERO],
        [C_ZERO, C64::imag(0.5) * C64::cis(theta * 0.5)],
    ])
}

/// `dP/dλ = diag(0, i·e^{iλ})`.
pub fn mat_dp(lambda: f64) -> Mat2 {
    Mat2([
        [C_ZERO, C_ZERO],
        [C_ZERO, C64::imag(1.0) * C64::cis(lambda)],
    ])
}

/// `∂U3/∂θ` (OpenQASM convention, matching [`mat_u3`]).
pub fn mat_du3_dtheta(theta: f64, phi: f64, lambda: f64) -> Mat2 {
    let (s, c) = (theta * 0.5).sin_cos();
    Mat2([
        [C64::real(-0.5 * s), -C64::cis(lambda) * (0.5 * c)],
        [
            C64::cis(phi) * (0.5 * c),
            -C64::cis(phi + lambda) * (0.5 * s),
        ],
    ])
}

/// `∂U3/∂φ`: only the second row carries the `e^{iφ}` factor.
pub fn mat_du3_dphi(theta: f64, phi: f64, lambda: f64) -> Mat2 {
    let (s, c) = (theta * 0.5).sin_cos();
    let i = C64::imag(1.0);
    Mat2([
        [C_ZERO, C_ZERO],
        [i * C64::cis(phi) * s, i * C64::cis(phi + lambda) * c],
    ])
}

/// `∂U3/∂λ`: only the second column carries the `e^{iλ}` factor.
pub fn mat_du3_dlambda(theta: f64, phi: f64, lambda: f64) -> Mat2 {
    let (s, c) = (theta * 0.5).sin_cos();
    let i = C64::imag(1.0);
    Mat2([
        [C_ZERO, -i * C64::cis(lambda) * s],
        [C_ZERO, i * C64::cis(phi + lambda) * c],
    ])
}

/// `dCP/dλ = diag(0, 0, 0, i·e^{iλ})`.
pub fn mat_dcp(lambda: f64) -> Mat4 {
    let mut m = Mat4::zero();
    m.0[3][3] = C64::imag(1.0) * C64::cis(lambda);
    m
}

/// `dRZZ/dθ`, diagonal like [`mat_rzz`] with `∓i/2` prefactors.
pub fn mat_drzz(theta: f64) -> Mat4 {
    let d_m = C64::imag(-0.5) * C64::cis(-theta * 0.5);
    let d_p = C64::imag(0.5) * C64::cis(theta * 0.5);
    let mut m = Mat4::zero();
    m.0[0][0] = d_m;
    m.0[1][1] = d_p;
    m.0[2][2] = d_p;
    m.0[3][3] = d_m;
    m
}

/// Embeds a single-qubit matrix acting on the high bit: `m ⊗ I`.
pub fn embed_high(m: &Mat2) -> Mat4 {
    m.kron(&Mat2::identity())
}

/// Embeds a single-qubit matrix acting on the low bit: `I ⊗ m`.
pub fn embed_low(m: &Mat2) -> Mat4 {
    Mat2::identity().kron(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-12;

    #[test]
    fn derivative_matrices_match_central_differences() {
        let eps = 1e-6;
        // Central differences carry O(eps²) truncation error; 1e-9 leaves
        // two orders of headroom over it for these bounded-entry matrices.
        let tol = 1e-9;
        let diff2 = |f: &dyn Fn(f64) -> Mat2, t: f64| {
            let (p, m) = (f(t + eps), f(t - eps));
            let mut out = Mat2([[C_ZERO; 2]; 2]);
            for r in 0..2 {
                for c in 0..2 {
                    out.0[r][c] = (p.0[r][c] - m.0[r][c]) * (0.5 / eps);
                }
            }
            out
        };
        let diff4 = |f: &dyn Fn(f64) -> Mat4, t: f64| {
            let (p, m) = (f(t + eps), f(t - eps));
            let mut out = Mat4::zero();
            for r in 0..4 {
                for c in 0..4 {
                    out.0[r][c] = (p.0[r][c] - m.0[r][c]) * (0.5 / eps);
                }
            }
            out
        };
        for t in [-1.3, 0.0, 0.41, 2.9] {
            assert!(mat_drx(t).approx_eq(&diff2(&mat_rx, t), tol), "drx({t})");
            assert!(mat_dry(t).approx_eq(&diff2(&mat_ry, t), tol), "dry({t})");
            assert!(mat_drz(t).approx_eq(&diff2(&mat_rz, t), tol), "drz({t})");
            assert!(mat_dp(t).approx_eq(&diff2(&mat_p, t), tol), "dp({t})");
            assert!(mat_dcp(t).approx_eq(&diff4(&mat_cp, t), tol), "dcp({t})");
            assert!(mat_drzz(t).approx_eq(&diff4(&mat_rzz, t), tol), "drzz({t})");
            let (phi, lambda) = (0.7, -0.9);
            assert!(
                mat_du3_dtheta(t, phi, lambda)
                    .approx_eq(&diff2(&|x| mat_u3(x, phi, lambda), t), tol),
                "du3/dθ({t})"
            );
            assert!(
                mat_du3_dphi(t, phi, lambda).approx_eq(&diff2(&|x| mat_u3(t, x, lambda), phi), tol),
                "du3/dφ({t})"
            );
            assert!(
                mat_du3_dlambda(t, phi, lambda)
                    .approx_eq(&diff2(&|x| mat_u3(t, phi, x), lambda), tol),
                "du3/dλ({t})"
            );
        }
    }

    #[test]
    fn standard_gates_are_unitary() {
        for m in [
            mat_x(),
            mat_y(),
            mat_z(),
            mat_h(),
            mat_s(),
            mat_sdg(),
            mat_t(),
            mat_tdg(),
            mat_sx(),
            mat_rx(0.3),
            mat_ry(-1.1),
            mat_rz(2.7),
            mat_p(0.4),
            mat_u3(0.5, 1.0, -0.7),
        ] {
            assert!(m.is_unitary(TOL), "{m:?} not unitary");
        }
        for m in [mat_cx(), mat_cz(), mat_swap(), mat_cp(0.9), mat_rzz(1.3)] {
            assert!(m.is_unitary(TOL), "{m:?} not unitary");
        }
    }

    #[test]
    fn pauli_algebra() {
        // XY = iZ, YZ = iX, ZX = iY
        assert!((mat_x() * mat_y()).approx_eq(&mat_z().scale(C64::imag(1.0)), TOL));
        assert!((mat_y() * mat_z()).approx_eq(&mat_x().scale(C64::imag(1.0)), TOL));
        assert!((mat_z() * mat_x()).approx_eq(&mat_y().scale(C64::imag(1.0)), TOL));
        // X² = Y² = Z² = H² = I
        for m in [mat_x(), mat_y(), mat_z(), mat_h()] {
            assert!((m * m).approx_eq(&Mat2::identity(), TOL));
        }
    }

    #[test]
    fn s_is_sqrt_z_and_t_is_sqrt_s() {
        assert!((mat_s() * mat_s()).approx_eq(&mat_z(), TOL));
        assert!((mat_t() * mat_t()).approx_eq(&mat_s(), TOL));
        assert!((mat_sdg() * mat_s()).approx_eq(&Mat2::identity(), TOL));
        assert!((mat_sx() * mat_sx()).approx_eq(&mat_x(), TOL));
    }

    #[test]
    fn hadamard_conjugation() {
        // H X H = Z and H Z H = X
        assert!((mat_h() * mat_x() * mat_h()).approx_eq(&mat_z(), TOL));
        assert!((mat_h() * mat_z() * mat_h()).approx_eq(&mat_x(), TOL));
    }

    #[test]
    fn y_basis_change() {
        // (S† then H) maps Y-eigenbasis to computational: H S† Y S H† = Z.
        let v = mat_h() * mat_sdg();
        let back = v * mat_y() * v.dagger();
        assert!(back.approx_eq(&mat_z(), TOL));
    }

    #[test]
    fn rotations_at_pi_match_paulis_up_to_phase() {
        assert!(mat_rx(PI).approx_eq_up_to_phase(&mat_x(), TOL));
        assert!(mat_ry(PI).approx_eq_up_to_phase(&mat_y(), TOL));
        assert!(mat_rz(PI).approx_eq_up_to_phase(&mat_z(), TOL));
    }

    #[test]
    fn rz_composition_adds_angles() {
        let a = mat_rz(0.4) * mat_rz(1.1);
        assert!(a.approx_eq(&mat_rz(1.5), TOL));
    }

    #[test]
    fn u3_specializations() {
        assert!(mat_u3(0.0, 0.0, 0.7).approx_eq(&mat_p(0.7), TOL));
        assert!(mat_u3(0.9, 0.0, 0.0).approx_eq(&mat_ry(0.9), TOL));
        assert!(mat_u3(PI, 0.0, PI).approx_eq_up_to_phase(&mat_x(), 1e-10));
    }

    #[test]
    fn kron_embedding() {
        let hx = mat_h().kron(&mat_x());
        assert!(hx.is_unitary(TOL));
        // (H⊗X)(H⊗X) = H²⊗X² = I.
        assert!((hx * hx).approx_eq(&Mat4::identity(), TOL));
        assert!(embed_high(&mat_z()).approx_eq(&mat_z().kron(&Mat2::identity()), TOL));
        assert!(embed_low(&mat_z()).approx_eq(&Mat2::identity().kron(&mat_z()), TOL));
    }

    #[test]
    fn cnot_action() {
        let m = mat_cx();
        // |10⟩ -> |11⟩ (control = high bit set).
        assert!(m.0[3][2].approx_eq(C_ONE, TOL));
        assert!(m.0[2][3].approx_eq(C_ONE, TOL));
        // |01⟩ untouched.
        assert!(m.0[1][1].approx_eq(C_ONE, TOL));
    }

    #[test]
    fn swap_qubits_on_cx_flips_control() {
        // Swapping the qubit roles of CX(a,b) gives CX(b,a).
        let swapped = mat_cx().swap_qubits();
        let expected = mat_swap() * mat_cx() * mat_swap();
        assert!(swapped.approx_eq(&expected, TOL));
    }

    #[test]
    fn cz_symmetric_under_qubit_swap() {
        assert!(mat_cz().swap_qubits().approx_eq(&mat_cz(), TOL));
        assert!(mat_cp(0.3).swap_qubits().approx_eq(&mat_cp(0.3), TOL));
        assert!(mat_rzz(0.8).swap_qubits().approx_eq(&mat_rzz(0.8), TOL));
    }

    #[test]
    fn rzz_diagonal_phases() {
        let m = mat_rzz(1.0);
        assert!(m.0[0][0].approx_eq(C64::cis(-0.5), TOL));
        assert!(m.0[1][1].approx_eq(C64::cis(0.5), TOL));
    }

    #[test]
    fn trace_and_det() {
        assert!(mat_z().trace().approx_eq(C_ZERO, TOL));
        assert!(mat_z().det().approx_eq(-C_ONE, TOL));
        assert!(Mat4::identity().trace().approx_eq(C64::real(4.0), TOL));
    }

    #[test]
    fn phase_insensitive_compare_rejects_different_gates() {
        assert!(!mat_x().approx_eq_up_to_phase(&mat_z(), TOL));
        assert!(!mat_cx().approx_eq_up_to_phase(&mat_cz(), TOL));
    }
}
