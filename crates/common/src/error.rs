//! Shared error type for the workspace.
//!
//! The simulator surface is small enough that a single enum covers all
//! crates; downstream crates add context through the `msg` payloads rather
//! than defining parallel hierarchies.

use std::fmt;

/// Errors surfaced by the NWQ-Sim-rs crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A qubit index was out of range for the register it was applied to.
    QubitOutOfRange {
        /// The offending index.
        qubit: usize,
        /// The register size.
        n_qubits: usize,
    },
    /// Two-qubit operation addressed the same qubit twice.
    DuplicateQubit(usize),
    /// A parameterized object was executed with the wrong number of
    /// parameter values bound.
    ParameterMismatch {
        /// Number of parameters expected.
        expected: usize,
        /// Number provided.
        got: usize,
    },
    /// An operator/state dimension mismatch.
    DimensionMismatch {
        /// Expected dimension or qubit count.
        expected: usize,
        /// Provided dimension or qubit count.
        got: usize,
    },
    /// Numerical failure (non-finite values, non-convergence, …).
    Numerical(String),
    /// Invalid user input not covered by a more specific variant.
    Invalid(String),
    /// Transient backend/infrastructure failure (lost rank, corrupted
    /// exchange, injected fault). Unlike the variants above this one is
    /// *retryable*: the same evaluation may succeed on a fresh attempt.
    Backend(String),
    /// A long-running driver was interrupted by a non-recoverable failure
    /// after exhausting its retry budget. Carries the path of the
    /// checkpoint written on the way down (when checkpointing was
    /// configured) so the run can be resumed, plus the underlying cause.
    Interrupted {
        /// Checkpoint file written at interruption, if any.
        checkpoint: Option<String>,
        /// The error that forced the interruption.
        cause: Box<Error>,
    },
}

impl Error {
    /// Whether a retry of the same operation could plausibly succeed.
    /// Structural errors (bad qubit indices, dimension mismatches, invalid
    /// input) are deterministic and never transient; backend faults and
    /// numerical corruption can clear on re-execution.
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Backend(_) | Error::Numerical(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::QubitOutOfRange { qubit, n_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {n_qubits}-qubit register"
                )
            }
            Error::DuplicateQubit(q) => {
                write!(f, "two-qubit operation addresses qubit {q} twice")
            }
            Error::ParameterMismatch { expected, got } => {
                write!(f, "expected {expected} parameter values, got {got}")
            }
            Error::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            Error::Numerical(msg) => write!(f, "numerical error: {msg}"),
            Error::Invalid(msg) => write!(f, "invalid input: {msg}"),
            Error::Backend(msg) => write!(f, "backend failure: {msg}"),
            Error::Interrupted { checkpoint, cause } => match checkpoint {
                Some(path) => write!(f, "run interrupted ({cause}); checkpoint written to {path}"),
                None => write!(f, "run interrupted ({cause}); no checkpoint configured"),
            },
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::QubitOutOfRange {
            qubit: 5,
            n_qubits: 4,
        };
        assert_eq!(e.to_string(), "qubit 5 out of range for 4-qubit register");
        assert!(Error::DuplicateQubit(2).to_string().contains("qubit 2"));
        assert!(Error::ParameterMismatch {
            expected: 3,
            got: 1
        }
        .to_string()
        .contains("expected 3"));
        assert!(Error::Numerical("nan".into()).to_string().contains("nan"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Invalid("x".into()));
    }

    #[test]
    fn transient_classification() {
        assert!(Error::Backend("rank 3 lost".into()).is_transient());
        assert!(Error::Numerical("nan energy".into()).is_transient());
        assert!(!Error::Invalid("bad".into()).is_transient());
        assert!(!Error::DuplicateQubit(1).is_transient());
        assert!(!Error::Interrupted {
            checkpoint: None,
            cause: Box::new(Error::Backend("x".into())),
        }
        .is_transient());
    }

    #[test]
    fn interrupted_display_mentions_checkpoint() {
        let e = Error::Interrupted {
            checkpoint: Some("ck.json".into()),
            cause: Box::new(Error::Backend("rank lost".into())),
        };
        let s = e.to_string();
        assert!(s.contains("ck.json") && s.contains("rank lost"), "{s}");
        let none = Error::Interrupted {
            checkpoint: None,
            cause: Box::new(Error::Numerical("nan".into())),
        };
        assert!(none.to_string().contains("no checkpoint"));
    }
}
