//! Minimal, dependency-free double-precision complex arithmetic.
//!
//! The statevector simulator stores amplitudes as [`C64`] and performs the
//! vast majority of its floating-point work through this type, so the
//! implementation favours `#[inline]` plain-old-data operations that the
//! compiler can vectorize across amplitude blocks.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number (`re + i·im`).
///
/// Layout-compatible with `[f64; 2]`, which lets gate kernels treat amplitude
/// buffers as flat slices of interleaved doubles when convenient.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity `0 + 0i`.
pub const C_ZERO: C64 = C64 { re: 0.0, im: 0.0 };
/// The multiplicative identity `1 + 0i`.
pub const C_ONE: C64 = C64 { re: 1.0, im: 0.0 };
/// The imaginary unit `i`.
pub const C_I: C64 = C64 { re: 0.0, im: 1.0 };

impl C64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`. This is the measurement probability weight
    /// of an amplitude, so it is the hottest reduction in the simulator.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns non-finite components when `self` is
    /// zero, mirroring `f64` division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Fused multiply-add `self * b + c`, written so LLVM can keep the
    /// intermediate products in registers.
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Self {
            re: self.re * b.re - self.im * b.im + c.re,
            im: self.re * b.im + self.im * b.re + c.im,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within an absolute tolerance on each component.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.norm();
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((r - self.re) * 0.5).max(0.0).sqrt();
        Self {
            re,
            im: if self.im < 0.0 { -im_mag } else { im_mag },
        }
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        let m = self.re.exp();
        let (s, c) = self.im.sin_cos();
        Self {
            re: m * c,
            im: m * s,
        }
    }

    /// Raises to an integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return C_ONE;
        }
        let mut base = if n < 0 { self.recip() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = C_ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            n >>= 1;
        }
        acc
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for C64 {
    type Output = C64;
    // Complex division *is* multiplication by the reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C_ZERO, |a, b| a + b)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const TOL: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(C64::new(1.5, -2.0).re, 1.5);
        assert_eq!(C64::new(1.5, -2.0).im, -2.0);
        assert_eq!(C_ZERO, C64::default());
        assert_eq!(C_ONE, C64::real(1.0));
        assert_eq!(C_I, C64::imag(1.0));
        assert_eq!(C64::from(3.0), C64::real(3.0));
    }

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(2.0, -3.0);
        assert!((z + C_ZERO).approx_eq(z, TOL));
        assert!((z * C_ONE).approx_eq(z, TOL));
        assert!((z - z).approx_eq(C_ZERO, TOL));
        assert!((z * z.recip()).approx_eq(C_ONE, TOL));
        assert!((z / z).approx_eq(C_ONE, TOL));
        assert!((-z + z).approx_eq(C_ZERO, TOL));
    }

    #[test]
    fn multiplication_matches_formula() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -4.0);
        // (1+2i)(3-4i) = 3 - 4i + 6i + 8 = 11 + 2i
        assert!((a * b).approx_eq(C64::new(11.0, 2.0), TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((C_I * C_I).approx_eq(-C_ONE, TOL));
    }

    #[test]
    fn cis_and_arg() {
        let z = C64::cis(FRAC_PI_2);
        assert!(z.approx_eq(C_I, TOL));
        assert!((z.arg() - FRAC_PI_2).abs() < TOL);
        assert!((C64::cis(PI).re + 1.0).abs() < TOL);
    }

    #[test]
    fn norms() {
        let z = C64::new(3.0, 4.0);
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        assert!((z.norm() - 5.0).abs() < TOL);
    }

    #[test]
    fn conjugate_properties() {
        let z = C64::new(1.25, -0.5);
        assert!((z * z.conj()).approx_eq(C64::real(z.norm_sqr()), TOL));
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-0.5, 0.25);
        let c = C64::new(3.0, -1.0);
        assert!(a.mul_add(b, c).approx_eq(a * b + c, TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[
            C64::new(4.0, 0.0),
            C64::new(-4.0, 0.0),
            C64::new(0.0, 2.0),
            C64::new(3.0, -4.0),
            C64::new(-1.0, -1.0),
        ] {
            let r = z.sqrt();
            assert!((r * r).approx_eq(z, 1e-10), "sqrt({z}) = {r}");
        }
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let t = 0.7;
        assert!(C64::imag(t).exp().approx_eq(C64::cis(t), TOL));
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = C64::new(0.8, 0.3);
        let mut acc = C_ONE;
        for n in 0..8 {
            assert!(z.powi(n).approx_eq(acc, 1e-10));
            acc *= z;
        }
        assert!(z.powi(-2).approx_eq((z * z).recip(), 1e-10));
    }

    #[test]
    fn sum_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert!(total.approx_eq(C64::new(6.0, 4.0), TOL));
    }

    #[test]
    fn assign_ops() {
        let mut z = C64::new(1.0, 1.0);
        z += C64::new(2.0, -1.0);
        assert!(z.approx_eq(C64::new(3.0, 0.0), TOL));
        z -= C64::new(1.0, 1.0);
        assert!(z.approx_eq(C64::new(2.0, -1.0), TOL));
        z *= C_I;
        assert!(z.approx_eq(C64::new(1.0, 2.0), TOL));
    }

    #[test]
    fn display_formatting() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn finite_checks() {
        assert!(C64::new(1.0, 2.0).is_finite());
        assert!(!C64::new(f64::NAN, 0.0).is_finite());
        assert!(!C64::new(0.0, f64::INFINITY).is_finite());
    }
}
