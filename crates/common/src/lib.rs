//! # nwq-common
//!
//! Foundation types shared by every crate in the NWQ-Sim-rs workspace:
//!
//! - [`complex::C64`] — dependency-free double-precision complex numbers,
//!   the amplitude type of the statevector simulator;
//! - [`mat::Mat2`] / [`mat::Mat4`] — stack-allocated 1- and 2-qubit gate
//!   matrices plus the standard gate set (the simulator fuses gates only up
//!   to two qubits, per §4.3 of the paper, so no larger matrices exist);
//! - [`bits`] — the canonical basis-index enumeration helpers used by all
//!   gate kernels (qubit 0 = least-significant bit);
//! - [`error::Error`] — the workspace-wide error enum.

#![warn(missing_docs)]

pub mod bits;
pub mod complex;
pub mod error;
pub mod mat;

pub use complex::{C64, C_I, C_ONE, C_ZERO};
pub use error::{Error, Result};
pub use mat::{Mat2, Mat4};

#[cfg(test)]
mod proptests {
    use crate::complex::{C64, C_ONE};
    use crate::mat::{mat_rx, mat_ry, mat_rz, mat_u3, Mat2};
    use proptest::prelude::*;

    fn arb_c64() -> impl Strategy<Value = C64> {
        (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(re, im)| C64::new(re, im))
    }

    proptest! {
        #[test]
        fn complex_mul_commutative(a in arb_c64(), b in arb_c64()) {
            prop_assert!((a * b).approx_eq(b * a, 1e-9));
        }

        #[test]
        fn complex_mul_associative(a in arb_c64(), b in arb_c64(), c in arb_c64()) {
            prop_assert!(((a * b) * c).approx_eq(a * (b * c), 1e-7));
        }

        #[test]
        fn complex_distributive(a in arb_c64(), b in arb_c64(), c in arb_c64()) {
            prop_assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-7));
        }

        #[test]
        fn conj_is_mul_antihomomorphism(a in arb_c64(), b in arb_c64()) {
            prop_assert!((a * b).conj().approx_eq(a.conj() * b.conj(), 1e-8));
        }

        #[test]
        fn norm_is_multiplicative(a in arb_c64(), b in arb_c64()) {
            prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-7);
        }

        #[test]
        fn recip_roundtrip(a in arb_c64().prop_filter("nonzero", |z| z.norm() > 1e-3)) {
            prop_assert!((a * a.recip()).approx_eq(C_ONE, 1e-9));
        }

        #[test]
        fn rotations_always_unitary(t in -10.0..10.0f64) {
            prop_assert!(mat_rx(t).is_unitary(1e-10));
            prop_assert!(mat_ry(t).is_unitary(1e-10));
            prop_assert!(mat_rz(t).is_unitary(1e-10));
        }

        #[test]
        fn u3_always_unitary(t in -7.0..7.0f64, p in -7.0..7.0f64, l in -7.0..7.0f64) {
            prop_assert!(mat_u3(t, p, l).is_unitary(1e-10));
        }

        #[test]
        fn mat2_product_of_unitaries_is_unitary(a in -5.0..5.0f64, b in -5.0..5.0f64) {
            let m = mat_rx(a) * mat_ry(b);
            prop_assert!(m.is_unitary(1e-10));
            prop_assert!((m.dagger() * m).approx_eq(&Mat2::identity(), 1e-10));
        }

        #[test]
        fn kron_of_unitaries_is_unitary(a in -5.0..5.0f64, b in -5.0..5.0f64) {
            prop_assert!(mat_rx(a).kron(&mat_rz(b)).is_unitary(1e-10));
        }
    }
}
