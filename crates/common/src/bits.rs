//! Bit-manipulation helpers for statevector indexing.
//!
//! A statevector over `n` qubits is indexed by basis states `0..2^n` with
//! qubit `q` stored at bit position `q` (qubit 0 is the least significant
//! bit). Gate kernels enumerate index pairs/quads by inserting fixed bits at
//! the target positions; these helpers centralize that logic so every kernel
//! uses the identical, well-tested convention.

/// Returns `2^n` as `usize`, panicking if it would overflow the platform.
#[inline]
pub fn dim(n_qubits: usize) -> usize {
    assert!(
        n_qubits < usize::BITS as usize,
        "2^{n_qubits} overflows usize"
    );
    1usize << n_qubits
}

/// Inserts a zero bit at position `pos`, shifting higher bits left.
///
/// Mapping `i ∈ [0, 2^{n-1})` through this yields every basis index whose
/// bit `pos` is 0, in increasing order — the canonical enumeration for
/// single-qubit gate kernels.
#[inline]
pub fn insert_zero_bit(i: usize, pos: usize) -> usize {
    let low_mask = (1usize << pos) - 1;
    ((i & !low_mask) << 1) | (i & low_mask)
}

/// Inserts two zero bits at positions `p_lo < p_hi` (positions refer to the
/// *output* index), yielding every basis index with both bits clear.
#[inline]
pub fn insert_two_zero_bits(i: usize, p_lo: usize, p_hi: usize) -> usize {
    debug_assert!(p_lo < p_hi);
    // Insert at the lower position first, then the higher one; after the
    // first insertion the higher position is already in output coordinates.
    insert_zero_bit(insert_zero_bit(i, p_lo), p_hi)
}

/// Tests bit `pos` of `i`.
#[inline]
pub fn bit(i: usize, pos: usize) -> bool {
    (i >> pos) & 1 == 1
}

/// Sets bit `pos` of `i` to `value`.
#[inline]
pub fn with_bit(i: usize, pos: usize, value: bool) -> usize {
    if value {
        i | (1usize << pos)
    } else {
        i & !(1usize << pos)
    }
}

/// Parity (sum mod 2) of the bits of `i` selected by `mask`.
#[inline]
pub fn masked_parity(i: u64, mask: u64) -> bool {
    (i & mask).count_ones() & 1 == 1
}

/// Number of bytes needed to store a statevector of `n` qubits with
/// 16-byte complex amplitudes (Fig 1c of the paper).
#[inline]
pub fn statevector_bytes(n_qubits: usize) -> u128 {
    16u128 << n_qubits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_powers() {
        assert_eq!(dim(0), 1);
        assert_eq!(dim(3), 8);
        assert_eq!(dim(20), 1 << 20);
    }

    #[test]
    #[should_panic]
    fn dim_overflow_panics() {
        let _ = dim(usize::BITS as usize);
    }

    #[test]
    fn insert_zero_bit_enumerates_cleared_indices() {
        // For pos = 1 over 3 bits: indices with bit1 clear are 0,1,4,5.
        let got: Vec<usize> = (0..4).map(|i| insert_zero_bit(i, 1)).collect();
        assert_eq!(got, vec![0, 1, 4, 5]);
        for (i, &g) in got.iter().enumerate() {
            assert!(!bit(g, 1));
            // Re-setting the bit gives the partner index.
            assert_eq!(with_bit(g, 1, true), g | 2);
            let _ = i;
        }
    }

    #[test]
    fn insert_zero_bit_at_zero_doubles() {
        for i in 0..16 {
            assert_eq!(insert_zero_bit(i, 0), i << 1);
        }
    }

    #[test]
    fn insert_two_zero_bits_covers_all_quads() {
        // 4-qubit space, targets at bits 1 and 3: base indices must have
        // both clear; there are 4 of them: 0b0000, 0b0001, 0b0100, 0b0101.
        let got: Vec<usize> = (0..4).map(|i| insert_two_zero_bits(i, 1, 3)).collect();
        assert_eq!(got, vec![0b0000, 0b0001, 0b0100, 0b0101]);
        for &g in &got {
            assert!(!bit(g, 1) && !bit(g, 3));
        }
    }

    #[test]
    fn insert_two_zero_bits_all_pairs_disjoint_exhaustive() {
        // Exhaustively verify for a 5-qubit space that the quads partition
        // the full index set for every (lo, hi) pair.
        for lo in 0..5 {
            for hi in (lo + 1)..5 {
                let mut seen = [false; 32];
                for i in 0..8 {
                    let base = insert_two_zero_bits(i, lo, hi);
                    for (b_lo, b_hi) in [(false, false), (true, false), (false, true), (true, true)]
                    {
                        let idx = with_bit(with_bit(base, lo, b_lo), hi, b_hi);
                        assert!(!seen[idx], "duplicate index {idx} for ({lo},{hi})");
                        seen[idx] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "missing indices for ({lo},{hi})");
            }
        }
    }

    #[test]
    fn bit_ops() {
        assert!(bit(0b101, 0));
        assert!(!bit(0b101, 1));
        assert_eq!(with_bit(0b101, 1, true), 0b111);
        assert_eq!(with_bit(0b101, 0, false), 0b100);
    }

    #[test]
    fn parity() {
        assert!(!masked_parity(0b1011, 0b0100));
        assert!(masked_parity(0b1011, 0b0010));
        assert!(!masked_parity(0b1011, 0b1010));
        assert!(masked_parity(0b1011, 0b1011));
    }

    #[test]
    fn memory_scaling_matches_fig1c() {
        // 30 qubits -> 16 GiB of amplitudes.
        assert_eq!(statevector_bytes(30), 16 * (1u128 << 30));
        assert_eq!(statevector_bytes(0), 16);
    }
}
