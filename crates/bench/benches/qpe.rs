//! QPE cost: circuit synthesis and end-to-end phase estimation at
//! increasing register/precision settings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwq_core::qpe::{qpe_circuit, run_qpe, QpeConfig};
use nwq_pauli::PauliOp;

fn bench_qpe(c: &mut Criterion) {
    let h = PauliOp::parse("1.0 ZZ + 0.5 ZI + 0.25 IZ").unwrap();
    let mut prep = nwq_circuit::Circuit::new(2);
    prep.x(0).x(1);

    let mut group = c.benchmark_group("qpe_commuting_2q");
    group.sample_size(10);
    for ancillas in [4usize, 6, 8] {
        let cfg = QpeConfig {
            n_ancilla: ancillas,
            t: 1.0,
            trotter_steps: 1,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("synthesize", ancillas), &cfg, |b, cfg| {
            b.iter(|| qpe_circuit(&h, &prep, cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("run", ancillas), &cfg, |b, cfg| {
            b.iter(|| run_qpe(&h, &prep, cfg).unwrap())
        });
    }
    group.finish();

    // Molecular QPE: Trotterized H2 (non-commuting terms).
    let mol = nwq_chem::molecules::h2_sto3g();
    let h2 = mol.to_qubit_hamiltonian().unwrap();
    let mut hf = nwq_circuit::Circuit::new(4);
    nwq_chem::uccsd::append_hf_state(&mut hf, 2).unwrap();
    let mut group = c.benchmark_group("qpe_h2");
    group.sample_size(10);
    for steps in [4usize, 8] {
        let cfg = QpeConfig {
            n_ancilla: 4,
            t: 1.5,
            trotter_steps: steps,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("trotter_steps", steps), &cfg, |b, cfg| {
            b.iter(|| run_qpe(&h2, &hf, cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_qpe
}
criterion_main!(benches);
