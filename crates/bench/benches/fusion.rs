//! Fig 4 in wall-clock form: the fusion pass itself, and circuit
//! execution before vs after fusion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_circuit::fusion::fuse;
use nwq_circuit::passes::cancel_and_merge;
use nwq_circuit::Circuit;
use nwq_statevec::simulate;

fn bound_uccsd(n_qubits: usize, n_elec: usize) -> Circuit {
    let ansatz = uccsd_ansatz(n_qubits, n_elec).expect("UCCSD");
    let params: Vec<f64> = (0..ansatz.n_params())
        .map(|k| 0.1 + 0.01 * k as f64)
        .collect();
    ansatz.bind(&params).expect("bind")
}

fn bench_fusion_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion_pass");
    for (n_qubits, n_elec) in [(4usize, 2usize), (6, 2), (8, 4)] {
        let circuit = bound_uccsd(n_qubits, n_elec);
        group.bench_with_input(
            BenchmarkId::new("fuse", format!("{n_qubits}q_{}g", circuit.len())),
            &circuit,
            |b, circuit| b.iter(|| fuse(circuit).unwrap()),
        );
    }
    let circuit = bound_uccsd(8, 4);
    group.bench_function("cancel_and_merge_8q", |b| {
        b.iter(|| cancel_and_merge(&circuit).unwrap())
    });
    group.finish();
}

fn bench_execution_fused_vs_unfused(c: &mut Criterion) {
    // Widen the register so gate application dominates over per-gate
    // overhead: embed the 8-qubit UCCSD in a 16-qubit register.
    let base = bound_uccsd(8, 4);
    let mut wide = Circuit::new(16);
    for g in base.gates() {
        wide.push(g.clone()).unwrap();
    }
    let (fused, stats) = fuse(&wide).unwrap();
    assert!(stats.reduction() > 0.5);

    let mut group = c.benchmark_group("uccsd8_in_16q_execution");
    group.sample_size(10);
    group.bench_function("unfused", |b| b.iter(|| simulate(&wide, &[]).unwrap()));
    group.bench_function("fused", |b| b.iter(|| simulate(&fused, &[]).unwrap()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fusion_pass, bench_execution_fused_vs_unfused
}
criterion_main!(benches);
