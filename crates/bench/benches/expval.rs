//! §4.2 in wall-clock form: direct expectation values vs traditional
//! shot sampling, across observable sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwq_chem::molecules::{h2_sto3g, water_model};
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_pauli::grouping::group_qubit_wise;
use nwq_statevec::measure::{sample_counts, sampled_group_energy};
use nwq_statevec::simulate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_direct_vs_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("direct_vs_sampling");
    group.sample_size(10);
    for (label, h, state) in [
        ("h2_4q", h2_sto3g().to_qubit_hamiltonian().unwrap(), {
            let a = uccsd_ansatz(4, 2)
                .unwrap()
                .bind(&[0.05, -0.02, -0.22])
                .unwrap();
            simulate(&a, &[]).unwrap()
        }),
        (
            "water_8q",
            water_model(4, 4).to_qubit_hamiltonian().unwrap(),
            {
                let ansatz = uccsd_ansatz(8, 4).unwrap();
                let theta = vec![0.03; ansatz.n_params()];
                simulate(&ansatz.bind(&theta).unwrap(), &[]).unwrap()
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("direct", label), &(), |b, _| {
            b.iter(|| state.energy(&h).unwrap())
        });
        let groups = group_qubit_wise(&h);
        group.bench_with_input(
            BenchmarkId::new("sampling_1k_shots_per_group", label),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    // Sample each group's post-rotation state; here the
                    // diagonal part is approximated by direct sampling of
                    // the raw state for throughput comparison.
                    groups
                        .iter()
                        .map(|g| sampled_group_energy(&state, g, 1000, &mut rng).unwrap())
                        .sum::<f64>()
                })
            },
        );
    }
    group.finish();
}

fn bench_sampling_shot_scaling(c: &mut Criterion) {
    let ansatz = uccsd_ansatz(8, 4).unwrap();
    let theta = vec![0.03; ansatz.n_params()];
    let state = simulate(&ansatz.bind(&theta).unwrap(), &[]).unwrap();
    let mut group = c.benchmark_group("shot_scaling_8q");
    group.sample_size(10);
    for shots in [100usize, 1000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(shots), &shots, |b, &shots| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                sample_counts(&state, shots, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_direct_vs_sampling, bench_sampling_shot_scaling
}
criterion_main!(benches);
