//! Fig 1a/1b in wall-clock form: ansatz synthesis and Hamiltonian
//! construction throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwq_chem::molecules::water_scaling;
use nwq_chem::uccsd::{uccsd_ansatz, uccsd_stats};

fn bench_ansatz_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("uccsd_synthesis");
    for (n_qubits, n_elec) in [(8usize, 4usize), (12, 6), (16, 8)] {
        group.bench_with_input(
            BenchmarkId::new("build_circuit", n_qubits),
            &(n_qubits, n_elec),
            |b, &(n, e)| b.iter(|| uccsd_ansatz(n, e).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("count_only", n_qubits),
            &(n_qubits, n_elec),
            |b, &(n, e)| b.iter(|| uccsd_stats(n, e).unwrap()),
        );
    }
    group.finish();
}

fn bench_hamiltonian_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamiltonian_build");
    group.sample_size(10);
    for n_spatial in [5usize, 7, 9] {
        let m = water_scaling(n_spatial);
        group.bench_with_input(
            BenchmarkId::new("jw_qubit_hamiltonian", 2 * n_spatial),
            &m,
            |b, m| b.iter(|| m.to_qubit_hamiltonian().unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_ansatz_synthesis, bench_hamiltonian_construction
}
criterion_main!(benches);
