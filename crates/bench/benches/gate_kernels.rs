//! Gate-kernel throughput: the raw amplitude-update rates behind every
//! other number in the evaluation (the CPU analog of NWQ-Sim's GPU
//! kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nwq_common::mat::{mat_cx, mat_h, mat_rz, mat_rzz};
use nwq_common::{C64, C_ONE, C_ZERO};
use nwq_statevec::kernels::{apply_mat2, apply_mat4};

fn state(n: usize) -> Vec<C64> {
    let mut v = vec![C_ZERO; 1 << n];
    v[0] = C_ONE;
    v
}

fn bench_single_qubit(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_1q");
    for n in [14usize, 18] {
        group.throughput(Throughput::Elements(1 << n));
        group.bench_with_input(BenchmarkId::new("h_low_qubit", n), &n, |b, &n| {
            let mut amps = state(n);
            b.iter(|| apply_mat2(&mut amps, 0, &mat_h()));
        });
        group.bench_with_input(BenchmarkId::new("h_high_qubit", n), &n, |b, &n| {
            let mut amps = state(n);
            b.iter(|| apply_mat2(&mut amps, n - 1, &mat_h()));
        });
        group.bench_with_input(BenchmarkId::new("rz_diagonal_fast_path", n), &n, |b, &n| {
            let mut amps = state(n);
            b.iter(|| apply_mat2(&mut amps, n / 2, &mat_rz(0.3)));
        });
    }
    group.finish();
}

fn bench_two_qubit(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_2q");
    for n in [14usize, 18] {
        group.throughput(Throughput::Elements(1 << n));
        group.bench_with_input(BenchmarkId::new("cx_adjacent", n), &n, |b, &n| {
            let mut amps = state(n);
            b.iter(|| apply_mat4(&mut amps, 0, 1, &mat_cx()));
        });
        group.bench_with_input(BenchmarkId::new("cx_spanning", n), &n, |b, &n| {
            let mut amps = state(n);
            b.iter(|| apply_mat4(&mut amps, 0, n - 1, &mat_cx()));
        });
        group.bench_with_input(
            BenchmarkId::new("rzz_diagonal_fast_path", n),
            &n,
            |b, &n| {
                let mut amps = state(n);
                b.iter(|| apply_mat4(&mut amps, 1, n - 2, &mat_rzz(0.4)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_single_qubit, bench_two_qubit
}
criterion_main!(benches);
