//! Distributed-engine overhead: the same circuit executed at increasing
//! simulated rank counts (the strong-scaling communication tax), plus the
//! static planner's cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwq_circuit::Circuit;
use nwq_dist::{plan_communication, run_and_gather};
use nwq_statevec::simulate;

fn ghz_plus_rotations(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    for q in 0..n {
        c.rz(q, 0.1 * q as f64);
        c.ry(q, -0.05 * q as f64);
    }
    c.swap(0, n - 1);
    c
}

fn bench_rank_scaling(c: &mut Criterion) {
    let circuit = ghz_plus_rotations(14);
    let mut group = c.benchmark_group("dist_execution_14q");
    group.sample_size(10);
    group.bench_function("single_node", |b| {
        b.iter(|| simulate(&circuit, &[]).unwrap())
    });
    for n_ranks in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("ranks", n_ranks),
            &n_ranks,
            |b, &n_ranks| b.iter(|| run_and_gather(&circuit, &[], n_ranks).unwrap()),
        );
    }
    group.finish();
}

fn bench_comm_planner(c: &mut Criterion) {
    let circuit = ghz_plus_rotations(24);
    let mut group = c.benchmark_group("comm_planner_24q");
    for n_ranks in [16usize, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(n_ranks),
            &n_ranks,
            |b, &n_ranks| b.iter(|| plan_communication(&circuit, n_ranks)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_rank_scaling, bench_comm_planner
}
criterion_main!(benches);
