//! Fig 3's claim in wall-clock form: one VQE energy evaluation with and
//! without post-ansatz state caching, plus the fully direct path.

use criterion::{criterion_group, criterion_main, Criterion};
use nwq_chem::molecules::{h2_sto3g, water_model};
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_pauli::grouping::{group_qubit_wise, group_singletons};
use nwq_statevec::expval::{energy_cached, energy_non_caching};
use nwq_statevec::simulate;

fn bench_h2_energy_evaluation(c: &mut Criterion) {
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let ansatz = uccsd_ansatz(4, 2).expect("UCCSD");
    let theta = vec![0.05, -0.02, -0.22];
    let singles = group_singletons(&h);
    let grouped = group_qubit_wise(&h);

    let mut group = c.benchmark_group("h2_energy_eval");
    group.bench_function("non_caching_per_term", |b| {
        b.iter(|| energy_non_caching(&ansatz, &theta, &singles, 0.0).unwrap())
    });
    group.bench_function("cached_per_term", |b| {
        b.iter(|| energy_cached(&ansatz, &theta, &singles, 0.0).unwrap())
    });
    group.bench_function("cached_grouped", |b| {
        b.iter(|| energy_cached(&ansatz, &theta, &grouped, 0.0).unwrap())
    });
    group.bench_function("direct_expectation", |b| {
        let bound = ansatz.bind(&theta).unwrap();
        let state = simulate(&bound, &[]).unwrap();
        b.iter(|| state.energy(&h).unwrap())
    });
    group.finish();
}

fn bench_water_energy_evaluation(c: &mut Criterion) {
    // 8-qubit water-like model: larger term count shows the scaling gap.
    let mol = water_model(4, 4);
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let ansatz = uccsd_ansatz(8, 4).expect("UCCSD");
    let theta = vec![0.03; ansatz.n_params()];
    let singles = group_singletons(&h);
    let grouped = group_qubit_wise(&h);

    let mut group = c.benchmark_group("water8_energy_eval");
    group.sample_size(10);
    group.bench_function("non_caching_per_term", |b| {
        b.iter(|| energy_non_caching(&ansatz, &theta, &singles, 0.0).unwrap())
    });
    group.bench_function("cached_per_term", |b| {
        b.iter(|| energy_cached(&ansatz, &theta, &singles, 0.0).unwrap())
    });
    group.bench_function("cached_grouped", |b| {
        b.iter(|| energy_cached(&ansatz, &theta, &grouped, 0.0).unwrap())
    });
    group.bench_function("direct_expectation", |b| {
        let bound = ansatz.bind(&theta).unwrap();
        let state = simulate(&bound, &[]).unwrap();
        b.iter(|| state.energy(&h).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_h2_energy_evaluation, bench_water_energy_evaluation
}
criterion_main!(benches);
