//! Benchmark support crate; all content lives in benches/ and src/bin/.
