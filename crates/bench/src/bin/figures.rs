//! Regenerates every table/figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p nwq-bench --bin figures -- [fig1a|fig1b|fig1c|fig3|fig4|fig5|dist|qpe|bench|all]
//! ```
//!
//! Each subcommand prints the series behind the corresponding figure of
//! *Enabling Scalable VQE Simulation on Leading HPC Systems* (SC-W 2023).
//! EXPERIMENTS.md records the paper-vs-measured comparison. The `bench`
//! subcommand instead writes machine-readable baselines (`BENCH_vqe.json`,
//! `BENCH_kernels.json`) at the repository root via the telemetry layer.

use nwq_chem::molecules::{water_fig5, water_scaling};
use nwq_chem::pool::OperatorPool;
use nwq_chem::uccsd::{uccsd_ansatz, uccsd_stats};
use nwq_circuit::fusion::fuse;
use nwq_core::accounting::per_term_cost;
use nwq_core::adapt::{run_adapt_vqe, AdaptConfig};
use nwq_core::backend::DirectBackend;
use nwq_core::exact::{ground_energy_sector_default, Sector};
use nwq_core::qpe::{run_qpe, QpeConfig};
use nwq_dist::{plan_communication, CostModel};
use nwq_opt::{NelderMead, Optimizer};

fn water_qubits_to_electrons(n_qubits: usize) -> (usize, usize) {
    // Water scaling series: n_qubits = 2 × spatial orbitals, 10 electrons.
    (n_qubits / 2, 10)
}

/// Fig 1a: UCCSD ansatz gate count vs qubit count (12–30).
fn fig1a() {
    println!("# Fig 1a: gates in the UCCSD ansatz vs number of qubits");
    println!("{:>8} {:>10} {:>14}", "qubits", "params", "gates");
    for n_qubits in (12..=30).step_by(2) {
        let (_, n_elec) = water_qubits_to_electrons(n_qubits);
        let stats = uccsd_stats(n_qubits, n_elec).expect("valid register");
        println!(
            "{:>8} {:>10} {:>14}",
            n_qubits, stats.n_params, stats.gate_count
        );
    }
}

/// Fig 1b: Pauli terms in the downfolded water observable vs qubits.
fn fig1b() {
    println!("# Fig 1b: Pauli terms in the downfolded H2O-like observable");
    println!("{:>8} {:>12}", "qubits", "terms");
    for n_spatial in 6..=15 {
        let m = water_scaling(n_spatial);
        let h = m.to_qubit_hamiltonian().expect("hamiltonian builds");
        println!("{:>8} {:>12}", 2 * n_spatial, h.num_terms());
    }
}

/// Fig 1c: statevector memory vs qubits.
fn fig1c() {
    println!("# Fig 1c: statevector memory (GB, 16 B/amplitude)");
    println!("{:>8} {:>14}", "qubits", "memory_gb");
    for n_qubits in (12..=30).step_by(2) {
        let bytes = nwq_common::bits::statevector_bytes(n_qubits);
        println!("{:>8} {:>14.6}", n_qubits, bytes as f64 / 1e9);
    }
}

/// Fig 3: gates per VQE energy evaluation, caching vs non-caching.
fn fig3() {
    println!("# Fig 3: gates per energy evaluation (per-term measurement)");
    println!(
        "{:>8} {:>10} {:>14} {:>16} {:>14} {:>10}",
        "qubits", "terms", "ansatz_gates", "non_caching", "caching", "savings"
    );
    for n_spatial in 6..=15 {
        let n_qubits = 2 * n_spatial;
        let m = water_scaling(n_spatial);
        let h = m.to_qubit_hamiltonian().expect("hamiltonian builds");
        let ansatz = uccsd_stats(n_qubits, 10).expect("valid register");
        let cost = per_term_cost(ansatz.gate_count as u128, &h);
        println!(
            "{:>8} {:>10} {:>14} {:>16} {:>14} {:>9.0}x",
            n_qubits,
            h.num_terms(),
            ansatz.gate_count,
            cost.non_caching_gates,
            cost.caching_gates,
            cost.savings_factor()
        );
    }
}

/// Fig 4: gate fusion on 4/6/8-qubit UCCSD circuits.
fn fig4() {
    println!("# Fig 4: UCCSD gate counts before/after fusion");
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "qubits", "original", "fused", "reduction"
    );
    for (n_qubits, n_elec) in [(4usize, 2usize), (6, 2), (8, 4)] {
        let ansatz = uccsd_ansatz(n_qubits, n_elec).expect("ansatz builds");
        // Bind representative (non-trivial) angles before fusing.
        let params: Vec<f64> = (0..ansatz.n_params())
            .map(|k| 0.1 + 0.05 * k as f64)
            .collect();
        let bound = ansatz.bind(&params).expect("binding succeeds");
        let (_, stats) = fuse(&bound).expect("fusion succeeds");
        println!(
            "{:>8} {:>10} {:>10} {:>9.1}%",
            n_qubits,
            stats.gates_before,
            stats.gates_after,
            stats.reduction() * 100.0
        );
    }
}

/// Fig 5: ADAPT-VQE convergence on the 12-qubit downfolded water model.
fn fig5() {
    println!("# Fig 5: ADAPT-VQE on the 6-orbital (12-qubit) H2O-like model");
    let m = water_fig5();
    let h = m.to_qubit_hamiltonian().expect("hamiltonian builds");
    println!("  qubits: {}, Pauli terms: {}", h.n_qubits(), h.num_terms());
    let e_exact = ground_energy_sector_default(&h, Sector::closed_shell(m.n_electrons()))
        .expect("Lanczos converges");
    let e_hf = m.hf_total_energy();
    println!("  E_HF    = {e_hf:.6} Ha");
    println!(
        "  E_exact = {e_exact:.6} Ha (correlation {:.6})",
        e_exact - e_hf
    );
    let pool = OperatorPool::singles_doubles(h.n_qubits(), m.n_electrons()).expect("pool builds");
    println!("  pool size: {}", pool.len());
    let mut backend = DirectBackend::new();
    let mut opt = NelderMead::for_vqe();
    let config = AdaptConfig {
        max_iterations: 20,
        grad_tol: 1e-5,
        inner_max_evals: 2500,
        target_energy: Some(e_exact),
        accuracy: 1e-3,
    };
    let r = run_adapt_vqe(&h, &pool, m.n_electrons(), &mut backend, &mut opt, &config)
        .expect("ADAPT runs");
    println!(
        "{:>5} {:>22} {:>14} {:>12} {:>12}",
        "iter", "operator", "energy", "dE_ha", "gates"
    );
    for (i, it) in r.iterations.iter().enumerate() {
        println!(
            "{:>5} {:>22} {:>14.8} {:>12.6} {:>12}",
            i + 1,
            it.operator,
            it.energy,
            it.energy - e_exact,
            it.ansatz_gates
        );
    }
    println!(
        "  stop: {:?}; final dE = {:.6} Ha (chemical accuracy = 0.001 Ha)",
        r.stop_reason,
        r.energy - e_exact
    );
}

/// Extra: distributed scaling shape (our ablation; the abstract's HPC claim).
fn dist() {
    println!("# Distributed execution: modeled strong scaling (22-qubit UCCSD)");
    let n_qubits = 22;
    let ansatz = uccsd_stats(n_qubits, 10).expect("stats");
    let circuit = uccsd_ansatz(n_qubits, 10).expect("ansatz builds");
    let model = CostModel::perlmutter_like();
    println!(
        "{:>8} {:>12} {:>16} {:>12} {:>12} {:>12}",
        "ranks", "messages", "bytes", "comm_s", "compute_s", "total_s"
    );
    for n_ranks in [1usize, 2, 4, 8, 16, 32, 64] {
        let plan = plan_communication(&circuit, n_ranks).expect("power-of-two ranks");
        let comm = model.comm_time_s(&plan, n_ranks);
        let compute = model.compute_time_s(ansatz.gate_count as u64, n_qubits, n_ranks);
        println!(
            "{:>8} {:>12} {:>16} {:>12.4} {:>12.4} {:>12.4}",
            n_ranks,
            plan.messages,
            plan.bytes,
            comm,
            compute,
            comm + compute
        );
    }
}

/// Extra: QPE on H2 through the workflow (the abstract's QPE claim).
fn qpe() {
    println!("# QPE: H2/STO-3G ground-state energy via phase estimation");
    let m = nwq_chem::molecules::h2_sto3g();
    let h = m.to_qubit_hamiltonian().expect("hamiltonian builds");
    let mut prep = nwq_circuit::Circuit::new(4);
    nwq_chem::uccsd::append_hf_state(&mut prep, 2).expect("HF prep");
    for (ancilla, steps) in [(4usize, 8usize), (6, 16), (8, 32)] {
        let cfg = QpeConfig {
            n_ancilla: ancilla,
            t: 1.5,
            trotter_steps: steps,
            ..Default::default()
        };
        let out = run_qpe(&h, &prep, &cfg).expect("QPE runs");
        let e = out.energy_near(m.hf_total_energy());
        println!(
            "  ancillas={ancilla:>2} steps={steps:>3}: E = {:>10.5} Ha (resolution {:.5}, peak p={:.3})",
            e,
            out.resolution(),
            out.peak_probability
        );
    }
    println!("  reference FCI: -1.13728 Ha");
}

/// Ablations of the design choices DESIGN.md calls out: ADAPT pool
/// flavour, VQE optimizer, and qubit tapering.
fn ablation() {
    use nwq_core::backend::Backend;
    println!("# Ablation 1: ADAPT pool flavour (8-qubit water-like model)");
    let m = nwq_chem::molecules::water_model(4, 4);
    let h = m.to_qubit_hamiltonian().expect("hamiltonian builds");
    let e_exact =
        ground_energy_sector_default(&h, Sector::closed_shell(4)).expect("Lanczos converges");
    for (label, pool) in [
        (
            "fermionic singles+doubles",
            OperatorPool::singles_doubles(8, 4).unwrap(),
        ),
        ("qubit pool", OperatorPool::qubit_pool(8, 4).unwrap()),
    ] {
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::for_vqe();
        let config = AdaptConfig {
            max_iterations: 12,
            grad_tol: 1e-6,
            inner_max_evals: 1200,
            target_energy: Some(e_exact),
            accuracy: 1e-3,
        };
        let r = run_adapt_vqe(&h, &pool, 4, &mut backend, &mut opt, &config).unwrap();
        println!(
            "  {label:<28} pool={:>3} iters={:>2} dE={:+.2e} gates={} stop={:?}",
            pool.len(),
            r.iterations.len(),
            r.energy - e_exact,
            r.ansatz.len(),
            r.stop_reason
        );
    }

    println!("\n# Ablation 2: optimizer on H2 UCCSD-VQE (evals to chemical accuracy)");
    let mol = nwq_chem::molecules::h2_sto3g();
    let h2 = mol.to_qubit_hamiltonian().unwrap();
    let fci = nwq_core::exact::ground_energy_default(&h2).unwrap();
    let ansatz = uccsd_ansatz(4, 2).unwrap();
    let opts: Vec<(&str, Box<dyn nwq_opt::Optimizer>)> = vec![
        ("nelder-mead", Box::new(NelderMead::for_vqe())),
        ("l-bfgs", Box::new(nwq_opt::Lbfgs::default())),
        // The π/2 parameter-shift rule is *wrong* for UCCSD excitation
        // parameters (zero gradient at HF) — kept in the table because it
        // demonstrates the silent failure the π/4 rule fixes.
        (
            "adam (pi/2 shift: stalls)",
            Box::new(nwq_opt::Adam {
                lr: 0.1,
                ..Default::default()
            }),
        ),
        (
            "adam (finite-diff)",
            Box::new(nwq_opt::Adam {
                lr: 0.1,
                mode: nwq_opt::GradientMode::FiniteDifference(1e-6),
                ..Default::default()
            }),
        ),
        (
            "spsa",
            Box::new(nwq_opt::Spsa {
                a: 0.3,
                ..Default::default()
            }),
        ),
    ];
    for (label, mut opt) in opts {
        let mut backend = DirectBackend::new();
        let mut objective = |x: &[f64]| backend.energy(&ansatz, x, &h2).unwrap_or(f64::INFINITY);
        let r = opt.minimize(&mut objective, &vec![0.0; ansatz.n_params()], 6000);
        println!(
            "  {label:<20} E={:+.6} dE={:+.2e} evals={}",
            r.value,
            r.value - fci,
            r.evals
        );
    }
    // Adjoint-differentiated rows: the full gradient costs ~4 evaluation
    // equivalents regardless of the parameter count, so both optimizers
    // land inside chemical accuracy within a 17-equivalent budget.
    let grad_problem = nwq_core::vqe::VqeProblem {
        hamiltonian: h2.clone(),
        ansatz: ansatz.clone(),
    };
    let grad_opts: Vec<(&str, Box<dyn nwq_opt::GradOptimizer>)> = vec![
        ("l-bfgs (adjoint)", Box::new(nwq_opt::Lbfgs::default())),
        ("adam (adjoint)", Box::new(nwq_opt::Adam::default())),
    ];
    for (label, mut opt) in grad_opts {
        let mut backend = DirectBackend::new();
        let r = nwq_core::vqe::run_vqe_grad(
            &grad_problem,
            &mut backend,
            &mut *opt,
            nwq_core::vqe::GradSource::Adjoint,
            &vec![0.0; grad_problem.ansatz.n_params()],
            17,
        )
        .unwrap();
        println!(
            "  {label:<20} E={:+.6} dE={:+.2e} evals={} (equivalents)",
            r.energy,
            r.energy - fci,
            r.evaluations
        );
    }

    println!("\n# Ablation 3: qubit tapering on H2 (register width vs terms)");
    let gens = nwq_pauli::taper::find_z2_symmetries(&h2);
    let tapered = nwq_pauli::taper::taper(&h2, mol.hf_determinant()).unwrap();
    let e_tapered = nwq_core::exact::ground_energy_default(&tapered.tapered).unwrap();
    println!(
        "  full: {} qubits / {} terms; tapered: {} qubits / {} terms ({} Z2 symmetries)",
        h2.n_qubits(),
        h2.num_terms(),
        tapered.tapered.n_qubits(),
        tapered.tapered.num_terms(),
        gens.len()
    );
    println!(
        "  E_full = {fci:+.6} Ha, E_tapered = {e_tapered:+.6} Ha (dE = {:+.1e})",
        e_tapered - fci
    );

    println!("\n# Ablation 4: depolarizing noise on the H2 VQE energy (DM-Sim path)");
    let bound = ansatz
        .bind(&{
            // Use the known optimum parameters via a quick optimization.
            let mut backend = DirectBackend::new();
            let mut opt = NelderMead::for_vqe();
            let mut objective =
                |x: &[f64]| backend.energy(&ansatz, x, &h2).unwrap_or(f64::INFINITY);
            opt.minimize(&mut objective, &vec![0.0; ansatz.n_params()], 4000)
                .params
        })
        .unwrap();
    for p in [0.0, 1e-4, 1e-3, 1e-2] {
        let noise = nwq_statevec::density::NoiseModel::depolarizing(p, 10.0 * p);
        let rho = nwq_statevec::density::run_noisy(&bound, &[], &noise).unwrap();
        println!(
            "  p1={p:<8.0e} E = {:+.6} Ha (purity {:.4})",
            rho.energy(&h2).unwrap(),
            rho.purity()
        );
    }
}

/// `bench`: machine-readable benchmark baselines at the repository root.
///
/// `BENCH_vqe.json` is the telemetry snapshot of an H2/UCCSD VQE run
/// (schema: run/spans/counters/iterations), including the compiled-plan
/// counters (`plan.*`, `executor.fused_blocks`) and the fused-vs-unfused
/// energy delta; `BENCH_kernels.json` reports amplitude-update throughput
/// of the mat2/mat4 kernels (parallel and serial dispatch) and of the
/// per-term vs flip-mask-batched expectation sweeps.
fn bench() {
    use nwq_common::mat::mat_h;
    use nwq_telemetry::JsonValue;
    use std::time::Instant;

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");

    // --- VQE baseline: H2/UCCSD through the telemetry layer. ---
    // Start from a cold template cache so `plan.compiled` counts exactly
    // the structure builds of THIS run: one per distinct circuit shape.
    nwq_statevec::plan_cache::clear();
    nwq_telemetry::reset();
    nwq_telemetry::set_enabled(true);
    nwq_telemetry::set_run_info("benchmark", "vqe_h2_uccsd");
    let mol = nwq_chem::molecules::h2_sto3g();
    let h = mol.to_qubit_hamiltonian().expect("hamiltonian builds");
    let ansatz = uccsd_ansatz(4, 2).expect("ansatz builds");
    let problem = nwq_core::vqe::VqeProblem {
        hamiltonian: h,
        ansatz,
    };
    let mut backend = DirectBackend::new();
    let mut opt = NelderMead::for_vqe();
    let x0 = vec![0.0; problem.ansatz.n_params()];
    let t0 = Instant::now();
    let r = nwq_core::vqe::run_vqe(&problem, &mut backend, &mut opt, &x0, 4000).expect("VQE runs");
    let wall_s = t0.elapsed().as_secs_f64();
    // Re-evaluate at the final θ: same key, so the post-ansatz cache must
    // hit — the baseline records a non-trivial hit rate.
    use nwq_core::backend::Backend;
    let e_replay = backend
        .energy(&problem.ansatz, &r.params, &problem.hamiltonian)
        .expect("replay evaluation");
    nwq_telemetry::gauge_set("cache.hit_rate", backend.cache_stats().hit_rate());
    // Unfused reference: gate-by-gate execution + per-term expectation.
    // The compiled-plan path must agree to well under 1e-9 Ha.
    let unfused_state = nwq_statevec::simulate(&problem.ansatz, &r.params).expect("unfused run");
    let e_unfused = nwq_pauli::apply::energy(&problem.hamiltonian, unfused_state.amplitudes())
        .expect("unfused energy");
    let fused_delta = (e_replay - e_unfused).abs();
    let ex = backend.executor_stats();
    nwq_telemetry::set_run_info("energy_ha", format!("{:.8}", r.energy));
    nwq_telemetry::set_run_info("evaluations", r.evaluations.to_string());
    nwq_telemetry::set_run_info("wall_s", format!("{:.3}", wall_s));
    nwq_telemetry::set_run_info("unfused_energy_ha", format!("{e_unfused:.8}"));
    nwq_telemetry::set_run_info("fused_unfused_delta_ha", format!("{fused_delta:.3e}"));
    nwq_telemetry::set_run_info(
        "amplitude_updates_per_eval",
        format!(
            "{:.1}",
            ex.amplitude_updates as f64 / r.evaluations.max(1) as f64
        ),
    );

    // --- Gradient phase: adjoint-differentiation runs on the same
    // problem. L-BFGS and Adam each get 17 energy-evaluation equivalents
    // (the Nelder–Mead baseline above needs ~85 plain evaluations to
    // converge) and must still land inside chemical accuracy of FCI. The
    // in-binary asserts pin the headline claims at regeneration time:
    // one dagger-template derivation total, ≤ 4 statevector-evolution
    // equivalents per full gradient regardless of parameter count.
    let fci =
        nwq_core::exact::ground_energy_default(&problem.hamiltonian).expect("Lanczos converges");
    let grad_budget = 17usize;
    for label in ["lbfgs", "adam"] {
        let mut opt: Box<dyn nwq_opt::GradOptimizer> = match label {
            "lbfgs" => Box::new(nwq_opt::Lbfgs::default()),
            _ => Box::new(nwq_opt::Adam::default()),
        };
        let sweeps0 = nwq_telemetry::counter_value("grad.adjoint_sweeps");
        let red0 = nwq_telemetry::counter_value("grad.adjoint_reductions");
        let blocks0 = nwq_telemetry::counter_value("grad.adjoint_blocks");
        let mut grad_backend = DirectBackend::new();
        let g = nwq_core::vqe::run_vqe_grad(
            &problem,
            &mut grad_backend,
            &mut *opt,
            nwq_core::vqe::GradSource::Adjoint,
            &x0,
            grad_budget,
        )
        .expect("gradient VQE runs");
        assert!(
            (g.energy - fci).abs() < 1.6e-3,
            "{label} + adjoint missed chemical accuracy in {grad_budget} \
             equivalents: E = {} vs FCI {fci}",
            g.energy
        );
        let blocks = nwq_telemetry::counter_value("grad.adjoint_blocks") - blocks0;
        let equivalents = (nwq_telemetry::counter_value("grad.adjoint_sweeps") - sweeps0
            + nwq_telemetry::counter_value("grad.adjoint_reductions")
            - red0) as f64
            / blocks.max(1) as f64;
        assert!(
            equivalents <= 4.0,
            "adjoint gradient cost {equivalents:.2} evolution equivalents (bound: 4)"
        );
        nwq_telemetry::set_run_info(
            format!("grad_{label}_energy_ha"),
            format!("{:.8}", g.energy),
        );
        nwq_telemetry::set_run_info(
            format!("grad_{label}_evaluations"),
            g.evaluations.to_string(),
        );
        nwq_telemetry::set_run_info(
            format!("grad_{label}_equivalents_per_gradient"),
            format!("{equivalents:.3}"),
        );
        println!(
            "  grad {label:<6} E = {:+.6} Ha in {} equivalents \
             ({equivalents:.2} evolution-equivalents per gradient)",
            g.energy, g.evaluations
        );
    }
    assert_eq!(
        nwq_telemetry::counter_value("plan.dagger_compiled"),
        1,
        "the dagger tape must be derived exactly once per circuit shape"
    );

    let vqe_path = format!("{root}/BENCH_vqe.json");
    nwq_telemetry::snapshot()
        .write_json(std::path::Path::new(&vqe_path))
        .expect("write BENCH_vqe.json");
    nwq_telemetry::set_enabled(false);
    println!(
        "wrote BENCH_vqe.json     (E = {:+.6} Ha, {} evals, fused blocks {}, |dE| fused-vs-unfused = {:.1e})",
        r.energy, r.evaluations, ex.fused_blocks, fused_delta
    );

    // --- Kernel baseline: amplitude updates/s for mat2/mat4 kernels,
    // parallel vs forced-serial dispatch, and expectation sweeps. ---
    let n_qubits = 18usize;
    let dim = 1usize << n_qubits;
    let reps = 40u32;
    let mut cases: Vec<(String, JsonValue)> = Vec::new();
    fn time_case(
        dim: usize,
        reps: u32,
        name: &str,
        cases: &mut Vec<(String, JsonValue)>,
        body: &mut dyn FnMut(),
    ) -> f64 {
        body(); // warm-up
                // Best-of-groups: the mean of each group of reps amortizes timer
                // overhead, and the min across groups rejects downward clock
                // excursions (shared hosts drift enough to corrupt the paired
                // ratios asserted below if a single mean is used).
        let group = (reps / 8).max(1);
        let mut s = f64::INFINITY;
        let mut done = 0u32;
        while done < reps {
            let k = group.min(reps - done);
            let t = Instant::now();
            for _ in 0..k {
                body();
            }
            s = s.min(t.elapsed().as_secs_f64() / k as f64);
            done += k;
        }
        let updates_per_s = dim as f64 / s;
        cases.push((
            name.to_string(),
            JsonValue::Object(vec![
                ("seconds_per_gate".into(), JsonValue::Float(s)),
                ("updates_per_s".into(), JsonValue::Float(updates_per_s)),
            ]),
        ));
        println!(
            "  {name:<18} {:.3e} s/gate ({:.3e} updates/s)",
            s, updates_per_s
        );
        s
    }
    let mut state = nwq_statevec::StateVector::zero(n_qubits);
    let h_mat = mat_h();
    // Dense 4×4 (H⊗H, entries ±1/2): the CX matrix is block-structured
    // and now takes the scalar block fast path in BOTH the SIMD and
    // forced-scalar kernels, which would collapse the simd-vs-scalar
    // ratio these cases pin. A fully dense matrix keeps the generic
    // mat4 bodies under measurement; case names are unchanged.
    let hh_mat = {
        let mut m = nwq_common::mat::Mat4::zero();
        for r in 0..4usize {
            for c in 0..4usize {
                let sign = if (r & c).count_ones() % 2 == 0 {
                    0.5
                } else {
                    -0.5
                };
                m.0[r][c] = nwq_common::C64::real(sign);
            }
        }
        m
    };
    let hi = n_qubits - 1;
    let (mat2_dispatch_s, mat4_dispatch_s, mat2_serial_s, mat4_serial_s);
    let (mat2_simd_s, mat4_simd_s, mat2_scalar_s, mat4_scalar_s);
    {
        let amps = state.amplitudes_mut();
        mat2_dispatch_s = time_case(dim, reps, "mat2_low_qubit", &mut cases, &mut || {
            nwq_statevec::kernels::apply_mat2(amps, 0, &h_mat)
        });
        time_case(dim, reps, "mat2_high_qubit", &mut cases, &mut || {
            nwq_statevec::kernels::apply_mat2(amps, hi, &h_mat)
        });
        mat4_dispatch_s = time_case(dim, reps, "mat4_mixed", &mut cases, &mut || {
            nwq_statevec::kernels::apply_mat4(amps, hi, 0, &hh_mat)
        });
        // Forced-serial counterparts: the parallel/serial ratio is the
        // worker-pool scaling factor on this host.
        mat2_serial_s = time_case(dim, reps, "mat2_low_serial", &mut cases, &mut || {
            nwq_statevec::kernels::apply_mat2_serial(amps, 0, &h_mat)
        });
        mat4_serial_s = time_case(dim, reps, "mat4_mixed_serial", &mut cases, &mut || {
            nwq_statevec::kernels::apply_mat4_serial(amps, hi, 0, &hh_mat)
        });
        // SIMD vs forced-scalar serial sweeps: same qubit configurations,
        // bitwise-identical arithmetic, different instruction shape. The
        // `*_simd` cases measure what the serial paths actually run on an
        // AVX2 host; the `*_scalar` cases force the reference bodies.
        mat2_simd_s = time_case(dim, reps, "mat2_simd", &mut cases, &mut || {
            nwq_statevec::kernels::apply_mat2_serial(amps, 0, &h_mat)
        });
        mat4_simd_s = time_case(dim, reps, "mat4_simd", &mut cases, &mut || {
            nwq_statevec::kernels::apply_mat4_serial(amps, hi, 0, &hh_mat)
        });
        nwq_statevec::simd::set_force_scalar(true);
        mat2_scalar_s = time_case(dim, reps, "mat2_scalar", &mut cases, &mut || {
            nwq_statevec::kernels::apply_mat2_serial(amps, 0, &h_mat)
        });
        mat4_scalar_s = time_case(dim, reps, "mat4_scalar", &mut cases, &mut || {
            nwq_statevec::kernels::apply_mat4_serial(amps, hi, 0, &hh_mat)
        });
        nwq_statevec::simd::set_force_scalar(false);
    }
    // Expectation sweeps: 12 off-diagonal terms sharing one X flip-mask
    // plus 6 diagonal terms — the batched path covers them in 2 passes
    // where the per-term path walks the register once per term.
    let expval_op = {
        let mut terms = Vec::new();
        for j in 0..12usize {
            let mut s: Vec<u8> = vec![b'I'; n_qubits];
            s[0] = b'X';
            s[2 + j % (n_qubits - 2)] = b'Z';
            terms.push((
                nwq_common::C64::real(0.125),
                nwq_pauli::PauliString::parse(std::str::from_utf8(&s).unwrap()).unwrap(),
            ));
        }
        for j in 0..6usize {
            let mut s: Vec<u8> = vec![b'I'; n_qubits];
            s[1 + j] = b'Z';
            terms.push((
                nwq_common::C64::real(0.25),
                nwq_pauli::PauliString::parse(std::str::from_utf8(&s).unwrap()).unwrap(),
            ));
        }
        nwq_pauli::PauliOp::from_terms(n_qubits, terms)
    };
    let per_term_s = time_case(dim, reps, "expval_per_term", &mut cases, &mut || {
        nwq_pauli::apply::energy(&expval_op, state.amplitudes()).unwrap();
    });
    let batched_s = time_case(dim, reps, "expval_batched", &mut cases, &mut || {
        nwq_statevec::expval::energy_direct_batched(&state, &expval_op).unwrap();
    });

    // Walker-batched multi-θ evolution: 8 walkers through a layered RY/CZ
    // ansatz with a many-term observable, against 8 independent
    // compile+run+readout evaluations — the primitive behind SPSA pair
    // batching and the serve cross-θ merge. Amplitude count is
    // walkers × dim, identical for both paths.
    let walker_qubits = 12usize;
    let n_walkers = 8usize;
    let walker_circuit = {
        let mut c = nwq_circuit::Circuit::new(walker_qubits);
        for layer in 0..3 {
            for q in 0..walker_qubits {
                c.ry(q, nwq_circuit::ParamExpr::var(layer * walker_qubits + q));
            }
            for q in 0..walker_qubits - 1 {
                c.cz(q, q + 1);
            }
        }
        c
    };
    let walker_op = {
        let mut terms = Vec::new();
        let mut push = |s: Vec<u8>, w: f64| {
            terms.push((
                nwq_common::C64::real(w),
                nwq_pauli::PauliString::parse(std::str::from_utf8(&s).unwrap()).unwrap(),
            ));
        };
        // Molecular-shaped term structure: a handful of flip masks, each
        // dressed with many Z-strings (like the Z-dressed excitation terms
        // of a fermionic Hamiltonian after Jordan–Wigner). The per-term
        // phase sweep is the part the walker path computes once and the
        // independent path repeats per state, so terms-per-group is the
        // lever that makes this benchmark look like a real Hamiltonian.
        for j in 0..walker_qubits {
            let mut s = vec![b'I'; walker_qubits];
            s[j] = b'Z';
            push(s, 0.5);
        }
        for j in 0..walker_qubits {
            for k in j + 1..walker_qubits {
                let mut zz = vec![b'I'; walker_qubits];
                zz[j] = b'Z';
                zz[k] = b'Z';
                push(zz, 0.25 / (1.0 + (k - j) as f64));
            }
        }
        for j in 0..walker_qubits - 1 {
            let mut xx = vec![b'I'; walker_qubits];
            xx[j] = b'X';
            xx[j + 1] = b'X';
            push(xx.clone(), 0.125);
            // Y_j Y_{j+1} shares X_j X_{j+1}'s flip mask (Y = iXZ), as do
            // all the Z-dressed variants below.
            let mut yy = vec![b'I'; walker_qubits];
            yy[j] = b'Y';
            yy[j + 1] = b'Y';
            push(yy, 0.0625);
            for k in 0..walker_qubits {
                if k == j || k == j + 1 {
                    continue;
                }
                let mut dressed = xx.clone();
                dressed[k] = b'Z';
                push(dressed, 0.03125 / (1 + k) as f64);
            }
        }
        nwq_pauli::PauliOp::from_terms(walker_qubits, terms)
    };
    let thetas: Vec<Vec<f64>> = (0..n_walkers)
        .map(|w| {
            (0..walker_circuit.n_params())
                .map(|p| 0.3 + 0.07 * w as f64 + 0.013 * p as f64)
                .collect()
        })
        .collect();
    let independent_eval = || -> Vec<f64> {
        thetas
            .iter()
            .map(|t| {
                let plan = nwq_statevec::ExecPlan::compile(&walker_circuit, t).unwrap();
                let st = nwq_statevec::executor::Executor::new()
                    .run_plan(&plan)
                    .unwrap();
                nwq_statevec::expval::energy_direct_batched(&st, &walker_op).unwrap()
            })
            .collect()
    };
    let walker_eval = || -> Vec<f64> {
        nwq_statevec::batch::walker_batched_energies(&walker_circuit, &thetas, &walker_op).unwrap()
    };
    // Per-walker bitwise parity between the two paths is a precondition
    // for publishing either number.
    let (e_ind, e_walk) = (independent_eval(), walker_eval());
    for (w, (a, b)) in e_ind.iter().zip(&e_walk).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "walker {w}: batched energy {b} != independent {a}"
        );
    }
    let walker_dim = (1usize << walker_qubits) * n_walkers;
    let independent_s = time_case(
        walker_dim,
        reps,
        "walker_independent",
        &mut cases,
        &mut || {
            independent_eval();
        },
    );
    let walker_s = time_case(walker_dim, reps, "walker_sweep", &mut cases, &mut || {
        walker_eval();
    });

    // Calibration record + regime assertions: the dynamic MIN_PAR gating
    // must pick the winning dispatch path on this host. With one worker
    // thread the kernels must run the serial bodies (the parallel path is
    // pure overhead there); with a real pool, parallel dispatch may only
    // beat-or-tie serial. 1.35 is a generous noise bound on a 20-rep mean.
    let parallel_dispatch = nwq_statevec::kernels::parallel_dispatch_enabled();
    let simd_selected = nwq_statevec::simd::simd_selected();
    let mat2_ratio = mat2_dispatch_s / mat2_serial_s;
    let mat4_ratio = mat4_dispatch_s / mat4_serial_s;
    let expval_speedup = per_term_s / batched_s;
    let mat2_simd_speedup = mat2_scalar_s / mat2_simd_s;
    let mat4_simd_speedup = mat4_scalar_s / mat4_simd_s;
    let walker_speedup = independent_s / walker_s;
    for (label, ratio) in [("mat2", mat2_ratio), ("mat4", mat4_ratio)] {
        // Dispatch-once sweeps: the dispatch entry points are one relaxed
        // atomic load away from the forced-serial bodies, so the ratio is
        // noise around 1.0 (it was 1.25/1.20 when the check ran per block).
        assert!(
            ratio < 1.15,
            "{label} dispatch path is {ratio:.2}x its forced-serial time with \
             parallel_dispatch={parallel_dispatch} ({} threads): the MIN_PAR \
             thresholds are routing to the losing regime",
            rayon::current_num_threads()
        );
    }
    assert!(
        batched_s < per_term_s * 1.35,
        "flip-mask-batched expectation ({batched_s:.3e} s) regressed vs the \
         per-term path ({per_term_s:.3e} s)"
    );
    if simd_selected {
        // Acceptance gate: on a host where the AVX2 path is selected it
        // must at least match the scalar bodies (it targets ≥2×).
        for (label, speedup) in [("mat2", mat2_simd_speedup), ("mat4", mat4_simd_speedup)] {
            assert!(
                speedup >= 1.0,
                "{label} SIMD path is slower than forced-scalar ({speedup:.2}x)"
            );
        }
    }
    assert!(
        walker_speedup >= 3.0,
        "walker-batched sweep ({n_walkers} walkers) must beat independent \
         evaluation by ≥3x, measured {walker_speedup:.2}x"
    );
    println!(
        "  calibration: dispatch/serial mat2 {mat2_ratio:.3}, mat4 {mat4_ratio:.3}; \
         expval batched speedup {expval_speedup:.3}x"
    );
    println!(
        "  simd_selected={simd_selected}; simd/scalar mat2 {mat2_simd_speedup:.2}x, \
         mat4 {mat4_simd_speedup:.2}x; walker sweep vs independent {walker_speedup:.2}x"
    );
    let calibration = JsonValue::Object(vec![
        (
            "parallel_dispatch".into(),
            JsonValue::Int(parallel_dispatch as u64),
        ),
        ("simd_selected".into(), JsonValue::Int(simd_selected as u64)),
        (
            "min_par_blocks".into(),
            JsonValue::Int(nwq_statevec::kernels::MIN_PAR_BLOCKS as u64),
        ),
        (
            "min_par_elems".into(),
            JsonValue::Int(nwq_statevec::kernels::MIN_PAR_ELEMS as u64),
        ),
        (
            "mat2_dispatch_vs_serial".into(),
            JsonValue::Float(mat2_ratio),
        ),
        (
            "mat4_dispatch_vs_serial".into(),
            JsonValue::Float(mat4_ratio),
        ),
        (
            "expval_batched_speedup".into(),
            JsonValue::Float(expval_speedup),
        ),
        (
            "mat2_simd_vs_scalar".into(),
            JsonValue::Float(mat2_simd_speedup),
        ),
        (
            "mat4_simd_vs_scalar".into(),
            JsonValue::Float(mat4_simd_speedup),
        ),
        (
            "walker_sweep_vs_independent".into(),
            JsonValue::Float(walker_speedup),
        ),
    ]);
    let kernels = JsonValue::Object(vec![
        ("benchmark".into(), JsonValue::Str("gate_kernels".into())),
        ("n_qubits".into(), JsonValue::Int(n_qubits as u64)),
        ("reps".into(), JsonValue::Int(reps as u64)),
        (
            "threads".into(),
            JsonValue::Int(rayon::current_num_threads() as u64),
        ),
        ("calibration".into(), calibration),
        ("cases".into(), JsonValue::Object(cases)),
    ]);
    let kernels_path = format!("{root}/BENCH_kernels.json");
    std::fs::write(&kernels_path, kernels.render()).expect("write BENCH_kernels.json");
    println!(
        "wrote BENCH_kernels.json (n = {n_qubits}, {reps} reps/case, {} worker threads)",
        rayon::current_num_threads()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    match which {
        "fig1a" => fig1a(),
        "fig1b" => fig1b(),
        "fig1c" => fig1c(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "dist" => dist(),
        "qpe" => qpe(),
        "ablation" => ablation(),
        "bench" => bench(),
        "all" => {
            fig1a();
            println!();
            fig1b();
            println!();
            fig1c();
            println!();
            fig3();
            println!();
            fig4();
            println!();
            fig5();
            println!();
            dist();
            println!();
            qpe();
        }
        other => {
            eprintln!(
                "unknown figure {other:?}; expected fig1a|fig1b|fig1c|fig3|fig4|fig5|dist|qpe|ablation|bench|all"
            );
            std::process::exit(2);
        }
    }
}
