//! Deterministic closed-loop load generator for the `nwq-serve` job
//! server, emitting the committed `BENCH_serve.json` baseline.
//!
//! The workload models homogeneous tenants — many clients evaluating the
//! same registry molecule over a small shared grid of parameter points —
//! because that is the regime cross-job batching and the shared energy
//! cache are built for:
//!
//! 1. **Batching phase**: both workers are pinned by VQE jobs while a
//!    burst of compatible energy evaluations queues behind them, so the
//!    first free worker must claim a multi-job group (mean batch size > 1
//!    by construction, not by racing).
//! 2. **Steady-state phase**: every client runs a closed loop — submit a
//!    burst, wait for all results, repeat — over a θ-grid smaller than a
//!    round, so later rounds hit energies cached by earlier ones and the
//!    small queue forces explicit `queue_full` rejections under the burst
//!    peaks (counted and retried).
//!
//! Every returned energy is verified bitwise against a fresh
//! `DirectBackend` evaluation of the same θ; the report records the check.
//! Parameter points are a fixed grid — no RNG anywhere — so the workload
//! (though not the timing) is identical run to run.

use nwq_core::backend::{Backend, DirectBackend};
use nwq_serve::{
    build_problem, Client, EngineConfig, JobSpec, Priority, QueueConfig, Server, ServerConfig,
    SubmitOutcome,
};
use nwq_telemetry::{JsonValue, Object};
use std::time::{Duration, Instant};

const CLIENTS: usize = 6;
const ROUNDS: usize = 6;
const BURST: usize = 8;
/// θ-grid size; smaller than one round's burst total so repeats (and thus
/// shared-cache hits) are guaranteed once the first round completes.
const GRID: usize = 16;

fn grid_theta(k: usize) -> Vec<f64> {
    let i = k % GRID;
    vec![-1.5 + 0.2 * i as f64, 0.7 - 0.13 * i as f64]
}

fn priority_of(k: usize) -> Priority {
    match k % 3 {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    }
}

/// Submits with bounded retry on explicit `queue_full` backpressure.
/// Returns `(job id, rejections seen)`.
fn submit_with_retry(client: &mut Client, spec: &JobSpec) -> (u64, u64) {
    let mut rejections = 0;
    loop {
        match client.submit(spec).expect("transport to server") {
            SubmitOutcome::Accepted(id) => return (id, rejections),
            SubmitOutcome::Rejected { reason } => {
                assert_eq!(reason, "queue_full", "only backpressure expected");
                rejections += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn main() {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    nwq_telemetry::set_enabled(true);

    let cfg = ServerConfig {
        engine: EngineConfig {
            workers: 2,
            // Small queue relative to the burst peak (6 clients × 8 jobs)
            // so admission rejection is actually exercised.
            queue: QueueConfig {
                capacity: 24,
                ..Default::default()
            },
            max_batch: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let serving = std::thread::spawn(move || server.run());
    println!("serving on {addr} (2 workers, queue 24, max batch 8)");

    let started = Instant::now();

    // --- Phase 1: guaranteed batching and guaranteed backpressure. Pin
    // both workers with VQE jobs, then push more compatible evaluations
    // than the 24-slot queue holds: the overflow must come back as
    // explicit `queue_full` (retried here), and the first worker to free
    // must claim a multi-job group. ---
    let mut pinned = Client::connect(&addr).expect("connect");
    let mut phase1_rejections = 0u64;
    let mut phase1_ids = Vec::new();
    for _ in 0..2 {
        // Water UCCSD has enough parameters that Nelder–Mead consumes the
        // whole budget — each blocker reliably pins its worker far longer
        // than the 30 loopback submissions below take. (Budget sized for
        // the SIMD kernels; 800 sufficed when evaluations were ~2.5× slower.)
        let (id, _) = submit_with_retry(&mut pinned, &JobSpec::vqe("water", vec![], 2400));
        phase1_ids.push(id);
    }
    for k in 0..30 {
        // Off-grid θ so phase 1 never touches the phase 2 cache.
        let theta = vec![3.0 + 0.01 * k as f64, -2.0];
        let (id, rej) = submit_with_retry(&mut pinned, &JobSpec::energy("toy", theta));
        phase1_rejections += rej;
        phase1_ids.push(id);
    }
    for id in &phase1_ids {
        let reply = pinned.wait_result(*id).expect("result");
        assert_eq!(
            reply.get("status").and_then(JsonValue::as_str),
            Some("done"),
            "phase 1 job {id}"
        );
    }

    // --- Phase 2: closed-loop homogeneous tenants. ---
    type ClientReport = (u64, Vec<(usize, f64)>);
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let mut rejections = 0u64;
                    let mut energies: Vec<(usize, f64)> = Vec::new();
                    for round in 0..ROUNDS {
                        let mut ids = Vec::with_capacity(BURST);
                        for j in 0..BURST {
                            let k = c * 31 + round * 7 + j;
                            let spec =
                                JobSpec::energy("toy", grid_theta(k)).with_priority(priority_of(k));
                            let (id, rej) = submit_with_retry(&mut client, &spec);
                            rejections += rej;
                            ids.push((k, id));
                        }
                        for (k, id) in ids {
                            let reply = client.wait_result(id).expect("result");
                            assert_eq!(
                                reply.get("status").and_then(JsonValue::as_str),
                                Some("done"),
                                "job {id}: {reply:?}"
                            );
                            let e = reply
                                .get("energy")
                                .and_then(JsonValue::as_f64)
                                .expect("done reply has energy");
                            energies.push((k, e));
                        }
                    }
                    (rejections, energies)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    // --- Verify every served energy bitwise against a fresh backend. ---
    let problem = build_problem("toy").expect("registry problem");
    let mut reference = DirectBackend::new();
    let mut eval = |theta: &[f64]| {
        reference
            .energy(&problem.problem.ansatz, theta, &problem.problem.hamiltonian)
            .expect("reference evaluation")
    };
    let mut checked = 0u64;
    for (_, energies) in &reports {
        for &(k, served) in energies {
            let expect = eval(&grid_theta(k));
            assert_eq!(
                served.to_bits(),
                expect.to_bits(),
                "θ-grid point {k}: served {served} != reference {expect}"
            );
            checked += 1;
        }
    }
    let client_rejections: u64 = phase1_rejections + reports.iter().map(|(r, _)| r).sum::<u64>();
    let jobs_done = checked + phase1_ids.len() as u64;
    println!(
        "verified {checked} served energies bitwise against DirectBackend ({jobs_done} jobs total)"
    );

    // --- Server-side accounting, then drain. ---
    let stats = pinned.stats().expect("stats");
    let engine = stats.get("engine").expect("engine section").clone();
    let cache = stats.get("cache").expect("cache section").clone();
    let mean_batch = engine
        .get("mean_batch_size")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    let hit_rate = cache
        .get("hit_rate")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    assert!(
        mean_batch > 1.0,
        "homogeneous workload must batch (mean {mean_batch})"
    );
    assert!(
        hit_rate > 0.0,
        "repeated θ-grid must hit the shared cache (rate {hit_rate})"
    );
    assert!(
        client_rejections > 0,
        "30 submissions into a 24-slot queue behind pinned workers must see queue_full"
    );
    pinned.drain().expect("drain");
    serving.join().expect("server thread").expect("server run");

    // --- Report. ---
    let latency = nwq_telemetry::histogram_snapshot("serve.latency_ms")
        .map(|h| h.summary_json())
        .unwrap_or(JsonValue::Null);
    let queue_wait = nwq_telemetry::histogram_snapshot("serve.queue_wait_ms")
        .map(|h| h.summary_json())
        .unwrap_or(JsonValue::Null);
    // Distinct-θ width of each merged energy group — the walker count of
    // the batched sweep. Width > 1 means fingerprint-compatible jobs with
    // *different* θ were merged into one walker-batched evaluation.
    let walker_hist = nwq_telemetry::histogram_snapshot("serve.walker_batch_width")
        .expect("energy groups ran, so walker widths were recorded");
    let walker_max = walker_hist.max().unwrap_or(0.0);
    assert!(
        walker_max >= 2.0,
        "phase 1 queues 30 distinct-θ energy jobs behind pinned workers, so at \
         least one merged group must have walker width ≥ 2 (max {walker_max})"
    );
    let walker_width = walker_hist.summary_json();
    let mut workload = Object::new();
    workload.push("clients", JsonValue::Int(CLIENTS as u64));
    workload.push("rounds", JsonValue::Int(ROUNDS as u64));
    workload.push("burst", JsonValue::Int(BURST as u64));
    workload.push("theta_grid", JsonValue::Int(GRID as u64));
    workload.push("molecule", JsonValue::Str("toy".into()));
    workload.push("jobs_done", JsonValue::Int(jobs_done));
    workload.push("wall_s", JsonValue::Float(wall_s));
    workload.push("jobs_per_s", JsonValue::Float(jobs_done as f64 / wall_s));
    let mut admission = Object::new();
    admission.push(
        "client_observed_rejections",
        JsonValue::Int(client_rejections),
    );
    admission.push("queue_capacity", JsonValue::Int(24));
    let mut verifiedo = Object::new();
    verifiedo.push("energies_checked", JsonValue::Int(checked));
    verifiedo.push("bitwise_identical", JsonValue::Int(1));
    let mut report = Object::new();
    report.push("benchmark", JsonValue::Str("serve_load".into()));
    report.push("workload", workload.into_value());
    report.push("engine", engine);
    report.push("cache", cache);
    report.push("admission", admission.into_value());
    report.push("latency_ms", latency);
    report.push("queue_wait_ms", queue_wait);
    report.push("walker_batch_width", walker_width);
    report.push("verified", verifiedo.into_value());
    let path = format!("{root}/BENCH_serve.json");
    std::fs::write(&path, report.into_value().render()).expect("write BENCH_serve.json");
    println!(
        "wrote BENCH_serve.json   ({jobs_done} jobs, {:.0} jobs/s, mean batch {mean_batch:.2}, cache hit rate {hit_rate:.2})",
        jobs_done as f64 / wall_s
    );
}
