//! Distributed sharded-execution scaling sweep, emitting the committed
//! `BENCH_dist.json` baseline.
//!
//! For each (qubits, ranks) grid point the binary runs a layered
//! hardware-efficient circuit through the REAL sharded executor — one OS
//! worker thread per rank, true pair-exchange messages on global-qubit
//! gates — and records:
//!
//! - measured wall time and the derived amplitude-update rate
//!   (`gates × 2^n / wall_s`), the ranks × qubits × updates/s curve;
//! - measured exchange traffic ([`nwq_dist::CommStats`]) checked exactly
//!   against the non-executing [`nwq_dist::plan_communication`] predictor;
//! - the α–β [`nwq_dist::CostModel`] prediction (Perlmutter-like
//!   defaults), kept alongside the measurement it models;
//! - a gather-free energy readout via [`nwq_dist::distributed_energy`], so
//!   the largest configuration is exercised end to end without ever
//!   materializing the register in one allocation.
//!
//! The full grid pushes a ≥24-qubit register (2^24 amplitudes, 256 MiB of
//! complex doubles) past the point where per-shard ownership matters;
//! `--quick` runs a small grid suitable for CI smoke.
//!
//! Usage: `dist_scaling [--quick] [--out PATH]` (default `./BENCH_dist.json`).

use nwq_circuit::Circuit;
use nwq_dist::{
    distributed_energy, plan_communication, plan_communication_naive, run_distributed,
    run_sharded_resilient, CostModel, FaultSchedule, RecoveryOptions, ShardOptions,
};
use nwq_pauli::PauliOp;
use nwq_telemetry::{JsonValue, Object};
use std::time::Instant;

/// Layered hardware-efficient circuit: per layer a single-qubit rotation
/// sweep, a CX ring (whose wrap-around link always crosses the
/// global/local boundary), and an RZZ ladder. Deterministic angles.
fn layered_circuit(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for l in 0..layers {
        for q in 0..n {
            c.ry(q, 0.3 + 0.1 * (l * n + q) as f64 / n as f64);
        }
        for q in 0..n {
            c.cx(q, (q + 1) % n);
        }
        for q in (0..n - 1).step_by(2) {
            c.rzz(q, q + 1, 0.2 + 0.05 * l as f64);
        }
    }
    c
}

/// Transverse-field-Ising-style observable: ZZ on the ring plus X fields.
/// Built directly (no 24-char parse strings) and gather-free evaluable.
fn observable(n: usize) -> PauliOp {
    let mut terms = Vec::new();
    for q in 0..n {
        let mut zz = vec!['I'; n];
        zz[q] = 'Z';
        zz[(q + 1) % n] = 'Z';
        terms.push(format!("0.5 {}", zz.iter().collect::<String>()));
        let mut x = vec!['I'; n];
        x[q] = 'X';
        terms.push(format!("0.25 {}", x.iter().collect::<String>()));
    }
    PauliOp::parse(&terms.join(" + ")).expect("well-formed observable")
}

struct Point {
    qubits: usize,
    ranks: usize,
    gates: u64,
    local_gates: u64,
    global_gates: u64,
    messages: u64,
    bytes: u64,
    naive_messages: u64,
    naive_bytes: u64,
    exchanges_elided: u64,
    exchanges_fused: u64,
    bytes_saved: u64,
    modeled_comm_s: f64,
    modeled_total_s: f64,
    wall_s: f64,
    updates_per_s: f64,
    energy: f64,
}

impl Point {
    /// Lean payload bytes as a fraction of the naive full-exchange plan.
    fn bytes_vs_naive(&self) -> f64 {
        if self.naive_bytes == 0 {
            1.0
        } else {
            self.bytes as f64 / self.naive_bytes as f64
        }
    }
}

fn run_point(n_qubits: usize, n_ranks: usize, layers: usize, op: &PauliOp) -> Point {
    let c = layered_circuit(n_qubits, layers);
    let plan = plan_communication(&c, n_ranks).expect("plan");
    let naive = plan_communication_naive(&c, n_ranks).expect("naive plan");
    let started = Instant::now();
    let state = run_distributed(&c, &[], n_ranks).expect("sharded run");
    let wall_s = started.elapsed().as_secs_f64();
    let stats = state.comm_stats();
    assert_eq!(
        stats, plan,
        "measured exchange traffic must equal the θ-aware plan ({n_qubits}q × {n_ranks}r)"
    );
    assert_eq!(
        stats.bytes + stats.bytes_saved,
        naive.bytes,
        "every byte not moved must be accounted as saved ({n_qubits}q × {n_ranks}r)"
    );
    // Gather-free readout: the energy is reduced shard-by-shard; the full
    // register is never assembled into one allocation.
    let energy = distributed_energy(&state, op).expect("distributed energy");
    assert!(energy.is_finite());
    let gates = c.gates().len() as u64;
    let model = CostModel::perlmutter_like();
    let updates = gates as f64 * (1u64 << n_qubits) as f64;
    Point {
        qubits: n_qubits,
        ranks: n_ranks,
        gates,
        local_gates: stats.local_gates,
        global_gates: stats.global_gates,
        messages: stats.messages,
        bytes: stats.bytes,
        naive_messages: naive.messages,
        naive_bytes: naive.bytes,
        exchanges_elided: stats.exchanges_elided,
        exchanges_fused: stats.exchanges_fused,
        bytes_saved: stats.bytes_saved,
        modeled_comm_s: model.comm_time_s(&stats, n_ranks),
        modeled_total_s: model.total_time_s(&stats, gates, n_qubits, n_ranks),
        wall_s,
        updates_per_s: updates / wall_s,
        energy,
    }
}

/// θ-aware communication probe feeding the report's `comm` block:
///
/// 1. a circuit whose every global gate is diagonal (RZ/CZ/RZZ on the top
///    qubits) must move ZERO payload bytes at every rank count — the
///    elision path, checked bitwise against the single-node simulator;
/// 2. a bound 12-qubit UCCSD ansatz must move at most half the naive
///    full-exchange payload (half-shard payloads + diagonal elision +
///    fused windows), again bitwise at every rank count.
fn comm_probe(n_qubits: usize, rank_grid: &[usize]) -> JsonValue {
    // --- diagonal-global workload: local entangling prelude, then only
    // diagonal gates touching the global qubits.
    let mut diag = Circuit::new(n_qubits);
    diag.h(0).h(1).h(2);
    diag.cx(0, 1).cx(1, 2).cx(2, 3);
    for g in (n_qubits - 3)..n_qubits {
        diag.rz(g, 0.3 + 0.1 * g as f64);
        diag.cz(g, (g + n_qubits - 4) % n_qubits);
    }
    diag.rzz(n_qubits - 2, n_qubits - 1, 0.7);
    let diag_single = nwq_statevec::simulate(&diag, &[]).expect("single-node diag");
    let mut diag_naive_bytes = 0u64;
    for &r in rank_grid.iter().filter(|&&r| r > 1) {
        let state = run_distributed(&diag, &[], r).expect("diag run");
        let stats = state.comm_stats();
        assert_eq!(
            (stats.messages, stats.bytes),
            (0, 0),
            "diagonal global gates must exchange nothing ({r} ranks)"
        );
        assert!(stats.exchanges_elided > 0, "elision must be exercised");
        for (a, b) in state
            .gather()
            .amplitudes()
            .iter()
            .zip(diag_single.amplitudes())
        {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "diag bitwise ({r} ranks)");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "diag bitwise ({r} ranks)");
        }
        diag_naive_bytes = plan_communication_naive(&diag, r).expect("naive").bytes;
    }

    // --- UCCSD workload: the paper's chemistry ansatz, bound angles.
    let uccsd = nwq_chem::uccsd::uccsd_ansatz(12, 4).expect("uccsd ansatz");
    let params: Vec<f64> = (0..uccsd.n_params())
        .map(|k| 0.05 + 0.02 * k as f64)
        .collect();
    let uccsd_single = nwq_statevec::simulate(&uccsd, &params).expect("single-node uccsd");
    let mut uccsd_bytes = 0u64;
    let mut uccsd_naive_bytes = 0u64;
    for &r in rank_grid {
        let state = run_distributed(&uccsd, &params, r).expect("uccsd run");
        let stats = state.comm_stats();
        for (a, b) in state
            .gather()
            .amplitudes()
            .iter()
            .zip(uccsd_single.amplitudes())
        {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "uccsd bitwise ({r} ranks)");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "uccsd bitwise ({r} ranks)");
        }
        if r > 1 {
            let naive = plan_communication_naive(&uccsd, r).expect("naive").bytes;
            assert!(
                naive >= 2 * stats.bytes,
                "UCCSD payload must shrink ≥2× vs naive: {naive} < 2×{} ({r} ranks)",
                stats.bytes
            );
            uccsd_bytes = stats.bytes;
            uccsd_naive_bytes = naive;
        }
    }
    let top_ranks = *rank_grid.last().expect("ranks") as u64;
    println!(
        "comm probe: diagonal workload 0 B moved (naive {diag_naive_bytes} B), \
         uccsd@{top_ranks}r {uccsd_bytes} B vs naive {uccsd_naive_bytes} B \
         ({:.3}× reduction)",
        uccsd_naive_bytes as f64 / uccsd_bytes.max(1) as f64
    );

    let mut o = Object::new();
    o.push("diag_qubits", JsonValue::Int(n_qubits as u64));
    o.push("diag_global_bytes", JsonValue::Int(0));
    o.push("diag_naive_bytes", JsonValue::Int(diag_naive_bytes));
    o.push("uccsd_qubits", JsonValue::Int(12));
    o.push("uccsd_ranks", JsonValue::Int(top_ranks));
    o.push("uccsd_bytes", JsonValue::Int(uccsd_bytes));
    o.push("uccsd_naive_bytes", JsonValue::Int(uccsd_naive_bytes));
    o.push(
        "uccsd_reduction",
        JsonValue::Float(uccsd_naive_bytes as f64 / uccsd_bytes.max(1) as f64),
    );
    o.into_value()
}

/// Survivability probe on one grid point, feeding the report's `recovery`
/// block: snapshot overhead (clean resilient run with consistent-cut
/// snapshots vs the plain sharded run, summed over `reps` repetitions to
/// damp timer noise) and recovery latency over a sweep of single-rank
/// deaths spread across the gate tape — every recovered run checked
/// bitwise against the fault-free amplitudes.
fn recovery_probe(
    n_qubits: usize,
    n_ranks: usize,
    layers: usize,
    snapshot_every: usize,
    death_runs: usize,
    reps: usize,
) -> JsonValue {
    let c = layered_circuit(n_qubits, layers);
    let opts = ShardOptions {
        fuse_local: false,
        exchange_timeout_ms: 500,
        exchange_retries: 2,
        ..ShardOptions::default()
    };
    let recovery = RecoveryOptions {
        snapshot_every,
        max_recoveries: 4,
        keep_versions: 2,
        snapshot_dir: None,
    };
    let clean = run_distributed(&c, &[], n_ranks).expect("clean run");
    let clean_amps: Vec<u64> = clean
        .gather()
        .amplitudes()
        .iter()
        .flat_map(|a| [a.re.to_bits(), a.im.to_bits()])
        .collect();

    // Best-of-reps damps scheduler noise on both sides; the systematic
    // snapshot cost is what survives the min.
    let mut plain_s = f64::INFINITY;
    let mut resilient_s = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        run_distributed(&c, &[], n_ranks).expect("plain rep");
        plain_s = plain_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let (state, report) =
            run_sharded_resilient(&c, &[], n_ranks, &opts, &recovery, &FaultSchedule::none())
                .expect("clean resilient rep");
        resilient_s = resilient_s.min(t.elapsed().as_secs_f64());
        assert_eq!(report.recoveries, 0, "clean runs must not recover");
        assert!(report.snapshots_planned > 0);
        drop(state);
    }
    let overhead_pct = ((resilient_s - plain_s) / plain_s * 100.0).max(0.0);
    assert!(
        overhead_pct < 10.0,
        "snapshot overhead must stay under 10% of sweep time, got {overhead_pct:.2}% \
         (plain {plain_s:.4}s vs resilient {resilient_s:.4}s over {reps} reps)"
    );

    let n_gates = c.gates().len();
    let mut recovery_ms: Vec<f64> = Vec::new();
    let mut bitwise = true;
    for k in 0..death_runs {
        let gate_step = (k * n_gates) / death_runs;
        let rank = k % n_ranks;
        let schedule = FaultSchedule::kill(gate_step, rank);
        let (state, report) = run_sharded_resilient(&c, &[], n_ranks, &opts, &recovery, &schedule)
            .expect("recovered run");
        assert_eq!(report.recoveries, 1, "one death, one recovery");
        recovery_ms.extend(&report.recovery_ms);
        let amps: Vec<u64> = state
            .gather()
            .amplitudes()
            .iter()
            .flat_map(|a| [a.re.to_bits(), a.im.to_bits()])
            .collect();
        bitwise &= amps == clean_amps;
    }
    assert!(bitwise, "recovered amplitudes must be bitwise identical");
    recovery_ms.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        let idx = ((recovery_ms.len() as f64 - 1.0) * p).round() as usize;
        recovery_ms[idx]
    };
    println!(
        "recovery probe {n_qubits}q × {n_ranks}r: snapshot overhead {overhead_pct:.2}%, \
         {death_runs} deaths recovered bitwise, restore p50 {:.3} ms / p99 {:.3} ms",
        pct(0.5),
        pct(0.99)
    );

    let mut o = Object::new();
    o.push("probe_qubits", JsonValue::Int(n_qubits as u64));
    o.push("probe_ranks", JsonValue::Int(n_ranks as u64));
    o.push("snapshot_every", JsonValue::Int(snapshot_every as u64));
    o.push("plain_wall_s", JsonValue::Float(plain_s));
    o.push("resilient_wall_s", JsonValue::Float(resilient_s));
    o.push("snapshot_overhead_pct", JsonValue::Float(overhead_pct));
    o.push("death_runs", JsonValue::Int(death_runs as u64));
    o.push("recovery_p50_ms", JsonValue::Float(pct(0.5)));
    o.push("recovery_p99_ms", JsonValue::Float(pct(0.99)));
    o.push("bitwise_identical", JsonValue::Int(u64::from(bitwise)));
    o.into_value()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_dist.json".into());

    let (qubit_grid, rank_grid, layers): (&[usize], &[usize], usize) = if quick {
        (&[10, 12], &[1, 2, 4, 8], 1)
    } else {
        (&[16, 20, 24], &[1, 2, 4, 8], 2)
    };

    let mut points = Vec::new();
    for &n in qubit_grid {
        let op = observable(n);
        for &r in rank_grid {
            let p = run_point(n, r, layers, &op);
            println!(
                "{:>2} qubits × {r} ranks: {:>7.3} s wall, {:.3e} updates/s, \
                 {} msgs ({} B, {:.3}× naive), modeled {:.3e} s comm, energy {:+.6}",
                n,
                p.wall_s,
                p.updates_per_s,
                p.messages,
                p.bytes,
                p.bytes_vs_naive(),
                p.modeled_comm_s,
                p.energy
            );
            points.push(p);
        }
    }

    let max_qubits = *qubit_grid.last().expect("non-empty grid") as u64;
    let exchanged: u64 = points
        .iter()
        .filter(|p| p.ranks > 1)
        .map(|p| p.messages)
        .sum();
    assert!(
        exchanged > 0,
        "multi-rank points must exercise real exchange messages"
    );
    // The θ-aware plan must beat the naive full-exchange plan decisively
    // at the largest grid point: the layered workload mixes dense global
    // rotations (full payload), boundary-crossing CXs (half payload or
    // block-local) and diagonal RZZs (elided), landing well under 0.55×.
    let top = points
        .iter()
        .rfind(|p| p.ranks > 1)
        .expect("multi-rank point");
    assert!(
        top.bytes_vs_naive() <= 0.55,
        "lean payload must stay ≤0.55× naive at {}q × {}r, got {:.3}×",
        top.qubits,
        top.ranks,
        top.bytes_vs_naive()
    );

    let mut report = Object::new();
    report.push("benchmark", JsonValue::Str("dist_scaling".into()));
    report.push(
        "mode",
        JsonValue::Str(if quick { "quick" } else { "full" }.into()),
    );
    report.push("max_qubits", JsonValue::Int(max_qubits));
    report.push("layers", JsonValue::Int(layers as u64));
    report.push("gather_free_readout", JsonValue::Int(1));
    report.push("plan_matches_measured", JsonValue::Int(1));
    // Survivability probe: a mid-grid point through the resilient
    // executor, in BOTH modes so quick and full artifacts share a schema.
    // snapshot_every is the amortization knob: a snapshot memcpys the
    // whole shard (≈ the cost of one dense gate), so a cadence of 24
    // keeps the overhead comfortably inside the <10% budget while still
    // bounding replay to 24 gates.
    // Lean exchange shrank the plain-run denominator, so the probe runs
    // at 18 qubits in both modes: a smaller register would let the fixed
    // per-snapshot memcpy dominate the percentage.
    let recovery = if quick {
        recovery_probe(18, 4, layers, 24, 8, 5)
    } else {
        recovery_probe(18, 4, layers, 24, 12, 5)
    };
    report.push("recovery", recovery);
    // θ-aware communication probe: diagonal elision and the UCCSD
    // payload reduction, both bitwise-checked against single node.
    let comm = comm_probe(*qubit_grid.last().expect("grid"), rank_grid);
    report.push("comm", comm);
    let mut arr = Vec::new();
    for p in &points {
        let mut o = Object::new();
        o.push("qubits", JsonValue::Int(p.qubits as u64));
        o.push("ranks", JsonValue::Int(p.ranks as u64));
        o.push("gates", JsonValue::Int(p.gates));
        o.push("local_gates", JsonValue::Int(p.local_gates));
        o.push("global_gates", JsonValue::Int(p.global_gates));
        o.push("messages", JsonValue::Int(p.messages));
        o.push("bytes", JsonValue::Int(p.bytes));
        let mut cm = Object::new();
        cm.push("naive_messages", JsonValue::Int(p.naive_messages));
        cm.push("naive_bytes", JsonValue::Int(p.naive_bytes));
        cm.push("exchanges_elided", JsonValue::Int(p.exchanges_elided));
        cm.push("exchanges_fused", JsonValue::Int(p.exchanges_fused));
        cm.push("bytes_saved", JsonValue::Int(p.bytes_saved));
        cm.push("bytes_vs_naive", JsonValue::Float(p.bytes_vs_naive()));
        o.push("comm", cm.into_value());
        o.push("modeled_comm_s", JsonValue::Float(p.modeled_comm_s));
        o.push("modeled_total_s", JsonValue::Float(p.modeled_total_s));
        o.push("wall_s", JsonValue::Float(p.wall_s));
        o.push("updates_per_s", JsonValue::Float(p.updates_per_s));
        o.push("energy", JsonValue::Float(p.energy));
        arr.push(o.into_value());
    }
    report.push("points", JsonValue::Array(arr));
    std::fs::write(&out, report.into_value().render()).expect("write BENCH_dist.json");
    println!(
        "wrote {out}   ({} grid points, ≤{max_qubits} qubits)",
        points.len()
    );
}
