//! Sparse sums of Pauli strings — the observable type of the whole stack.
//!
//! A molecular Hamiltonian after Jordan–Wigner transformation is a sum of
//! thousands to tens of thousands of weighted Pauli strings (paper Fig 1b).
//! `PauliOp` keeps terms in a canonically sorted, combined form so that term
//! counts are meaningful and algebra (sums, products, commutators) stays
//! bounded.

use crate::string::PauliString;
use nwq_common::{Error, Result, C64, C_ZERO};
use std::collections::HashMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Default magnitude below which terms are dropped during simplification.
pub const DEFAULT_TRUNCATION: f64 = 1e-12;

/// A weighted sum of Pauli strings over a fixed register width.
#[derive(Clone, PartialEq)]
pub struct PauliOp {
    n_qubits: usize,
    /// Terms sorted by string, with unique strings and no negligible
    /// coefficients (invariant maintained by `simplify`).
    terms: Vec<(C64, PauliString)>,
}

impl PauliOp {
    /// The zero operator.
    pub fn zero(n_qubits: usize) -> Self {
        PauliOp {
            n_qubits,
            terms: Vec::new(),
        }
    }

    /// The identity operator scaled by `c`.
    pub fn scalar(n_qubits: usize, c: C64) -> Self {
        PauliOp::from_terms(n_qubits, vec![(c, PauliString::identity(n_qubits))])
    }

    /// A single weighted string.
    pub fn single(coeff: C64, string: PauliString) -> Self {
        PauliOp::from_terms(string.n_qubits(), vec![(coeff, string)])
    }

    /// Builds an operator from raw terms, combining duplicates and dropping
    /// negligible coefficients.
    pub fn from_terms(n_qubits: usize, terms: Vec<(C64, PauliString)>) -> Self {
        let mut op = PauliOp { n_qubits, terms };
        op.simplify(DEFAULT_TRUNCATION);
        op
    }

    /// Parses a sum like `"0.5 ZZ + 0.25 XX - 1.0 IZ"`. Whitespace-separated
    /// `±`, coefficient, label triples; coefficients are real.
    pub fn parse(text: &str) -> Result<Self> {
        let cleaned = text.replace('+', " + ").replace('-', " - ");
        let tokens: Vec<&str> = cleaned.split_whitespace().collect();
        let mut terms: Vec<(f64, &str)> = Vec::new();
        let mut sign = 1.0;
        let mut pending_coeff: Option<f64> = None;
        for tok in tokens {
            match tok {
                "+" => sign = 1.0,
                "-" => sign = -1.0,
                _ => {
                    if let Ok(v) = tok.parse::<f64>() {
                        if pending_coeff.is_some() {
                            return Err(Error::Invalid(format!(
                                "two consecutive coefficients near {tok:?}"
                            )));
                        }
                        pending_coeff = Some(sign * v);
                        sign = 1.0;
                    } else {
                        let c = pending_coeff.take().unwrap_or(sign);
                        terms.push((c, tok));
                        sign = 1.0;
                    }
                }
            }
        }
        if pending_coeff.is_some() {
            return Err(Error::Invalid("trailing coefficient with no label".into()));
        }
        if terms.is_empty() {
            return Err(Error::Invalid("no terms".into()));
        }
        let n = terms[0].1.chars().count();
        let mut parsed = Vec::with_capacity(terms.len());
        for (c, lbl) in terms {
            if lbl.chars().count() != n {
                return Err(Error::DimensionMismatch {
                    expected: n,
                    got: lbl.chars().count(),
                });
            }
            parsed.push((C64::real(c), PauliString::parse(lbl)?));
        }
        Ok(PauliOp::from_terms(n, parsed))
    }

    /// Register width.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of (combined, non-negligible) terms. This is the quantity
    /// plotted in paper Fig 1b.
    #[inline]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Immutable view of the terms.
    #[inline]
    pub fn terms(&self) -> &[(C64, PauliString)] {
        &self.terms
    }

    /// `true` when there are no terms.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Coefficient of the identity string (0 if absent).
    pub fn identity_coeff(&self) -> C64 {
        self.terms
            .iter()
            .find(|(_, s)| s.is_identity())
            .map(|(c, _)| *c)
            .unwrap_or(C_ZERO)
    }

    /// Combines duplicate strings, drops terms with |coeff| ≤ `tol`, and
    /// restores sorted order.
    pub fn simplify(&mut self, tol: f64) {
        if self.terms.is_empty() {
            return;
        }
        self.terms.sort_unstable_by_key(|a| a.1);
        let mut out: Vec<(C64, PauliString)> = Vec::with_capacity(self.terms.len());
        for &(c, s) in &self.terms {
            match out.last_mut() {
                Some((acc, last)) if *last == s => *acc += c,
                _ => out.push((c, s)),
            }
        }
        out.retain(|(c, _)| c.norm() > tol);
        self.terms = out;
    }

    /// Removes terms with |coeff| ≤ `tol`, returning the number removed.
    pub fn truncate(&mut self, tol: f64) -> usize {
        let before = self.terms.len();
        self.terms.retain(|(c, _)| c.norm() > tol);
        before - self.terms.len()
    }

    /// Scales all coefficients by `k`.
    pub fn scaled(&self, k: C64) -> Self {
        let terms = self.terms.iter().map(|&(c, s)| (c * k, s)).collect();
        PauliOp::from_terms(self.n_qubits, terms)
    }

    /// Hermitian conjugate (conjugates coefficients; strings are Hermitian).
    pub fn dagger(&self) -> Self {
        let terms = self.terms.iter().map(|&(c, s)| (c.conj(), s)).collect();
        PauliOp::from_terms(self.n_qubits, terms)
    }

    /// `true` when the operator is Hermitian within `tol` (all coefficients
    /// real up to `tol`).
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.terms.iter().all(|(c, _)| c.im.abs() <= tol)
    }

    /// `true` when the operator is anti-Hermitian within `tol`.
    pub fn is_anti_hermitian(&self, tol: f64) -> bool {
        self.terms.iter().all(|(c, _)| c.re.abs() <= tol)
    }

    /// Sum of coefficient magnitudes (the induced 1-norm bound).
    pub fn one_norm(&self) -> f64 {
        self.terms.iter().map(|(c, _)| c.norm()).sum()
    }

    /// Largest coefficient magnitude.
    pub fn max_coeff(&self) -> f64 {
        self.terms.iter().map(|(c, _)| c.norm()).fold(0.0, f64::max)
    }

    /// Operator product via the symplectic string product. Cost is
    /// O(|A|·|B|) string multiplications; the result is simplified.
    pub fn mul_op(&self, rhs: &PauliOp) -> Result<PauliOp> {
        if self.n_qubits != rhs.n_qubits {
            return Err(Error::DimensionMismatch {
                expected: self.n_qubits,
                got: rhs.n_qubits,
            });
        }
        let mut acc: HashMap<PauliString, C64> =
            HashMap::with_capacity(self.terms.len().max(rhs.terms.len()));
        for &(ca, sa) in &self.terms {
            for &(cb, sb) in &rhs.terms {
                let (ph, s) = sa.mul(&sb);
                let c = ca * cb * ph.to_c64();
                *acc.entry(s).or_insert(C_ZERO) += c;
            }
        }
        let terms: Vec<_> = acc.into_iter().map(|(s, c)| (c, s)).collect();
        Ok(PauliOp::from_terms(self.n_qubits, terms))
    }

    /// Commutator `[self, rhs] = self·rhs − rhs·self`, computed term-wise:
    /// commuting string pairs are skipped entirely, which matters for the
    /// downfolding expansions (paper Eq. 2).
    pub fn commutator(&self, rhs: &PauliOp) -> Result<PauliOp> {
        if self.n_qubits != rhs.n_qubits {
            return Err(Error::DimensionMismatch {
                expected: self.n_qubits,
                got: rhs.n_qubits,
            });
        }
        let mut acc: HashMap<PauliString, C64> = HashMap::new();
        for &(ca, sa) in &self.terms {
            for &(cb, sb) in &rhs.terms {
                if sa.commutes_with(&sb) {
                    continue;
                }
                // For anticommuting strings [A,B] = 2AB.
                let (ph, s) = sa.mul(&sb);
                let c = ca * cb * ph.to_c64() * 2.0;
                *acc.entry(s).or_insert(C_ZERO) += c;
            }
        }
        let terms: Vec<_> = acc.into_iter().map(|(s, c)| (c, s)).collect();
        Ok(PauliOp::from_terms(self.n_qubits, terms))
    }

    /// Extends the operator to a wider register (identity on new qubits).
    pub fn resized(&self, n: usize) -> Result<PauliOp> {
        let mut terms = Vec::with_capacity(self.terms.len());
        for &(c, s) in &self.terms {
            terms.push((c, s.resized(n)?));
        }
        Ok(PauliOp::from_terms(n, terms))
    }
}

impl Add for &PauliOp {
    type Output = PauliOp;
    fn add(self, rhs: &PauliOp) -> PauliOp {
        assert_eq!(self.n_qubits, rhs.n_qubits, "register width mismatch");
        let mut terms = self.terms.clone();
        terms.extend_from_slice(&rhs.terms);
        PauliOp::from_terms(self.n_qubits, terms)
    }
}

impl Sub for &PauliOp {
    type Output = PauliOp;
    fn sub(self, rhs: &PauliOp) -> PauliOp {
        assert_eq!(self.n_qubits, rhs.n_qubits, "register width mismatch");
        let mut terms = self.terms.clone();
        terms.extend(rhs.terms.iter().map(|&(c, s)| (-c, s)));
        PauliOp::from_terms(self.n_qubits, terms)
    }
}

impl Neg for &PauliOp {
    type Output = PauliOp;
    fn neg(self) -> PauliOp {
        self.scaled(-nwq_common::C_ONE)
    }
}

impl Mul<f64> for &PauliOp {
    type Output = PauliOp;
    fn mul(self, k: f64) -> PauliOp {
        self.scaled(C64::real(k))
    }
}

impl fmt::Debug for PauliOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PauliOp[{} qubits, {} terms]",
            self.n_qubits,
            self.terms.len()
        )
    }
}

impl fmt::Display for PauliOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (c, s)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "({c}) {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_common::{C_I, C_ONE};

    fn op(text: &str) -> PauliOp {
        PauliOp::parse(text).unwrap()
    }

    #[test]
    fn parse_toy_hamiltonian() {
        // The paper's Eq. 4 toy Hamiltonian H = Z⊗Z + X⊗X.
        let h = op("1.0 ZZ + 1.0 XX");
        assert_eq!(h.n_qubits(), 2);
        assert_eq!(h.num_terms(), 2);
        assert!(h.is_hermitian(1e-12));
    }

    #[test]
    fn parse_signs_and_bare_labels() {
        let h = op("ZZ - 0.5 XI");
        assert_eq!(h.num_terms(), 2);
        let zz = PauliString::parse("ZZ").unwrap();
        let xi = PauliString::parse("XI").unwrap();
        let coeff = |s| h.terms().iter().find(|(_, t)| *t == s).unwrap().0;
        assert!(coeff(zz).approx_eq(C_ONE, 1e-12));
        assert!(coeff(xi).approx_eq(C64::real(-0.5), 1e-12));
    }

    #[test]
    fn parse_rejects_mixed_widths() {
        assert!(PauliOp::parse("1.0 ZZ + 1.0 X").is_err());
        assert!(PauliOp::parse("").is_err());
        assert!(PauliOp::parse("2.0").is_err());
    }

    #[test]
    fn duplicates_combine_and_cancel() {
        let h = op("0.5 ZZ + 0.5 ZZ");
        assert_eq!(h.num_terms(), 1);
        assert!(h.terms()[0].0.approx_eq(C_ONE, 1e-12));
        let zero = op("1.0 XY - 1.0 XY");
        assert!(zero.is_zero());
        assert_eq!(zero.num_terms(), 0);
    }

    #[test]
    fn addition_and_subtraction() {
        let a = op("1.0 ZZ");
        let b = op("1.0 XX");
        let h = &a + &b;
        assert_eq!(h.num_terms(), 2);
        let d = &h - &a;
        assert_eq!(d, b);
        let n = -&a;
        assert!((&a + &n).is_zero());
    }

    #[test]
    fn scalar_and_identity_coeff() {
        let s = PauliOp::scalar(3, C64::real(2.5));
        assert_eq!(s.num_terms(), 1);
        assert!(s.identity_coeff().approx_eq(C64::real(2.5), 1e-12));
        assert!(op("1.0 XX").identity_coeff().approx_eq(C_ZERO, 1e-12));
    }

    #[test]
    fn product_single_strings() {
        // (X)(Y) = iZ as operators.
        let x = op("1.0 X");
        let y = op("1.0 Y");
        let p = x.mul_op(&y).unwrap();
        assert_eq!(p.num_terms(), 1);
        let (c, s) = p.terms()[0];
        assert_eq!(s.label(), "Z");
        assert!(c.approx_eq(C_I, 1e-12));
    }

    #[test]
    fn product_distributes() {
        let a = op("1.0 XI + 1.0 IZ");
        let b = op("0.5 ZI");
        let p = a.mul_op(&b).unwrap();
        // XI·ZI = -i YI ; IZ·ZI = ZZ.
        assert_eq!(p.num_terms(), 2);
        let yi = p.terms().iter().find(|(_, s)| s.label() == "YI").unwrap();
        assert!(yi.0.approx_eq(C64::imag(-0.5), 1e-12));
        let zz = p.terms().iter().find(|(_, s)| s.label() == "ZZ").unwrap();
        assert!(zz.0.approx_eq(C64::real(0.5), 1e-12));
    }

    #[test]
    fn operator_square_of_toy_hamiltonian() {
        // H = ZZ + XX, H² = 2·I + 2·(ZZ·XX) = 2 I − 2 YY.
        let h = op("1.0 ZZ + 1.0 XX");
        let h2 = h.mul_op(&h).unwrap();
        assert_eq!(h2.num_terms(), 2);
        assert!(h2.identity_coeff().approx_eq(C64::real(2.0), 1e-12));
        let yy = h2.terms().iter().find(|(_, s)| s.label() == "YY").unwrap();
        assert!(yy.0.approx_eq(C64::real(-2.0), 1e-12));
    }

    #[test]
    fn commutator_basics() {
        // [X, Y] = 2iZ.
        let c = op("1.0 X").commutator(&op("1.0 Y")).unwrap();
        assert_eq!(c.num_terms(), 1);
        assert!(c.terms()[0].0.approx_eq(C64::imag(2.0), 1e-12));
        assert_eq!(c.terms()[0].1.label(), "Z");
        // Commuting operators give zero.
        assert!(op("1.0 ZZ").commutator(&op("1.0 XX")).unwrap().is_zero());
        // [A, A] = 0.
        let h = op("1.0 ZZ + 0.3 XI");
        assert!(h.commutator(&h).unwrap().is_zero());
    }

    #[test]
    fn commutator_matches_products() {
        let a = op("1.0 XY + 0.5 ZI");
        let b = op("0.7 YI - 0.2 XZ");
        let direct = &a.mul_op(&b).unwrap() - &b.mul_op(&a).unwrap();
        let comm = a.commutator(&b).unwrap();
        assert_eq!(direct, comm);
    }

    #[test]
    fn hermiticity_checks() {
        assert!(op("1.0 ZZ + 2.0 XX").is_hermitian(1e-12));
        let anti = PauliOp::single(C_I, PauliString::parse("XY").unwrap());
        assert!(anti.is_anti_hermitian(1e-12));
        assert!(!anti.is_hermitian(1e-12));
        // dagger of anti-Hermitian is its negation.
        assert_eq!(anti.dagger(), -&anti);
    }

    #[test]
    fn norms_and_truncation() {
        let mut h = op("0.5 ZZ + 0.25 XX");
        assert!((h.one_norm() - 0.75).abs() < 1e-12);
        assert!((h.max_coeff() - 0.5).abs() < 1e-12);
        assert_eq!(h.truncate(0.3), 1);
        assert_eq!(h.num_terms(), 1);
    }

    #[test]
    fn resize_extends_register() {
        let h = op("1.0 ZZ").resized(4).unwrap();
        assert_eq!(h.n_qubits(), 4);
        assert_eq!(h.terms()[0].1.label(), "IIZZ");
    }

    #[test]
    fn display_roundtrip_structure() {
        let h = op("1.0 ZZ + 0.5 XX");
        let shown = h.to_string();
        assert!(shown.contains("ZZ") && shown.contains("XX"));
        assert_eq!(PauliOp::zero(2).to_string(), "0");
    }
}
