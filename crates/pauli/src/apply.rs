//! Action of Pauli strings and sums on raw amplitude slices.
//!
//! These routines implement the paper's *direct expectation value* method
//! (§4.2): with full access to the amplitudes, `⟨ψ|P|ψ⟩` is an exact
//! reduction rather than a sampled estimate. Because a Pauli string maps
//! each basis state to exactly one other basis state, the "double sum" of
//! Eq. 8 collapses to a single embarrassingly parallel sum that Rayon
//! spreads across cores — the CPU analog of NWQ-Sim's GPU batching.

use crate::op::PauliOp;
use crate::string::PauliString;
use nwq_common::{bits::masked_parity, Error, Result, C64, C_ZERO};
use rayon::prelude::*;

/// Number of amplitudes below which the serial path is used; parallel
/// dispatch overhead dominates under this size.
const PAR_THRESHOLD: usize = 1 << 12;

fn check_dim(n_qubits: usize, len: usize) -> Result<()> {
    if len != 1usize << n_qubits {
        return Err(Error::DimensionMismatch {
            expected: 1usize << n_qubits,
            got: len,
        });
    }
    Ok(())
}

/// Computes `out[y] = c · f(y⊕m) · in[y⊕m]` for the string `c·P`, i.e.
/// `|out⟩ = c·P|in⟩` (gather form, no write conflicts).
pub fn apply_string(string: &PauliString, coeff: C64, input: &[C64]) -> Result<Vec<C64>> {
    check_dim(string.n_qubits(), input.len())?;
    let m = string.x_mask();
    let z = string.z_mask();
    let y_phase = crate::pauli::Phase::from_power(string.y_count()).to_c64() * coeff;
    let body = |y: usize| {
        let src = y ^ m as usize;
        let sign = if masked_parity(src as u64, z) {
            -1.0
        } else {
            1.0
        };
        y_phase * sign * input[src]
    };
    let out = if input.len() >= PAR_THRESHOLD {
        (0..input.len()).into_par_iter().map(body).collect()
    } else {
        (0..input.len()).map(body).collect()
    };
    Ok(out)
}

/// Accumulates `out += c·P|in⟩` in place.
pub fn accumulate_string(
    string: &PauliString,
    coeff: C64,
    input: &[C64],
    out: &mut [C64],
) -> Result<()> {
    check_dim(string.n_qubits(), input.len())?;
    check_dim(string.n_qubits(), out.len())?;
    let m = string.x_mask() as usize;
    let z = string.z_mask();
    let y_phase = crate::pauli::Phase::from_power(string.y_count()).to_c64() * coeff;
    let body = |(y, o): (usize, &mut C64)| {
        let src = y ^ m;
        let sign = if masked_parity(src as u64, z) {
            -1.0
        } else {
            1.0
        };
        *o += y_phase * sign * input[src];
    };
    if out.len() >= PAR_THRESHOLD {
        out.par_iter_mut()
            .enumerate()
            .for_each(|(y, o)| body((y, o)));
    } else {
        out.iter_mut().enumerate().for_each(|(y, o)| body((y, o)));
    }
    Ok(())
}

/// Computes `|out⟩ = H|in⟩` for a full Pauli sum. Used by Lanczos / exact
/// diagonalization and by QPE's Trotter steps.
pub fn apply_op(op: &PauliOp, input: &[C64]) -> Result<Vec<C64>> {
    check_dim(op.n_qubits(), input.len())?;
    let mut out = vec![C_ZERO; input.len()];
    for &(c, s) in op.terms() {
        accumulate_string(&s, c, input, &mut out)?;
    }
    Ok(out)
}

/// Exact expectation `⟨ψ|P|ψ⟩` of a single string (paper §4.2, Eq. 8
/// collapsed to a single parallel reduction).
pub fn expectation_string(string: &PauliString, psi: &[C64]) -> Result<C64> {
    check_dim(string.n_qubits(), psi.len())?;
    let m = string.x_mask() as usize;
    let z = string.z_mask();
    let y_phase = crate::pauli::Phase::from_power(string.y_count()).to_c64();
    let body = |x: usize| {
        let sign = if masked_parity(x as u64, z) {
            -1.0
        } else {
            1.0
        };
        psi[x ^ m].conj() * psi[x] * sign
    };
    let raw: C64 = if psi.len() >= PAR_THRESHOLD {
        (0..psi.len())
            .into_par_iter()
            .map(body)
            .reduce(|| C_ZERO, |a, b| a + b)
    } else {
        (0..psi.len()).map(body).sum()
    };
    Ok(raw * y_phase)
}

/// Exact expectation `⟨ψ|H|ψ⟩` of a Pauli sum. Terms are independent, so
/// the outer loop parallelizes over terms for many-term observables while
/// each inner reduction stays serial (better cache behaviour than nesting).
pub fn expectation_op(op: &PauliOp, psi: &[C64]) -> Result<C64> {
    check_dim(op.n_qubits(), psi.len())?;
    let many_terms = op.num_terms() >= 8 && psi.len() < (1 << 20);
    let term_exp = |(c, s): &(C64, PauliString)| -> C64 {
        let m = s.x_mask() as usize;
        let z = s.z_mask();
        let y_phase = crate::pauli::Phase::from_power(s.y_count()).to_c64();
        let raw: C64 = if !many_terms && psi.len() >= PAR_THRESHOLD {
            (0..psi.len())
                .into_par_iter()
                .map(|x| {
                    let sign = if masked_parity(x as u64, z) {
                        -1.0
                    } else {
                        1.0
                    };
                    psi[x ^ m].conj() * psi[x] * sign
                })
                .reduce(|| C_ZERO, |a, b| a + b)
        } else {
            (0..psi.len())
                .map(|x| {
                    let sign = if masked_parity(x as u64, z) {
                        -1.0
                    } else {
                        1.0
                    };
                    psi[x ^ m].conj() * psi[x] * sign
                })
                .sum()
        };
        raw * y_phase * *c
    };
    let total = if many_terms {
        op.terms()
            .par_iter()
            .map(term_exp)
            .reduce(|| C_ZERO, |a, b| a + b)
    } else {
        op.terms().iter().map(term_exp).sum()
    };
    Ok(total)
}

/// Real part of `⟨ψ|H|ψ⟩` — the energy for Hermitian observables.
pub fn energy(op: &PauliOp, psi: &[C64]) -> Result<f64> {
    Ok(expectation_op(op, psi)?.re)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::op_to_dense;
    use nwq_common::{C_I, C_ONE};

    fn basis(n: usize, idx: usize) -> Vec<C64> {
        let mut v = vec![C_ZERO; 1 << n];
        v[idx] = C_ONE;
        v
    }

    fn plus_state(n: usize) -> Vec<C64> {
        let dim = 1usize << n;
        let a = C64::real(1.0 / (dim as f64).sqrt());
        vec![a; dim]
    }

    #[test]
    fn x_flips_basis_state() {
        let s = PauliString::parse("IX").unwrap();
        let out = apply_string(&s, C_ONE, &basis(2, 0)).unwrap();
        assert!(out[1].approx_eq(C_ONE, 1e-12));
        assert!(out[0].approx_eq(C_ZERO, 1e-12));
    }

    #[test]
    fn y_on_basis_states() {
        let s = PauliString::parse("Y").unwrap();
        let out = apply_string(&s, C_ONE, &basis(1, 0)).unwrap();
        assert!(out[1].approx_eq(C_I, 1e-12));
        let out = apply_string(&s, C_ONE, &basis(1, 1)).unwrap();
        assert!(out[0].approx_eq(-C_I, 1e-12));
    }

    #[test]
    fn z_phases_basis_state() {
        let s = PauliString::parse("ZI").unwrap();
        let out = apply_string(&s, C_ONE, &basis(2, 2)).unwrap();
        assert!(out[2].approx_eq(-C_ONE, 1e-12));
    }

    #[test]
    fn apply_matches_dense_matrix() {
        // Random-ish state, compare string action against dense matvec.
        let n = 3;
        let dim = 1 << n;
        let psi: Vec<C64> = (0..dim)
            .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()))
            .collect();
        for lbl in ["XYZ", "ZIX", "YYI", "III", "ZZZ"] {
            let s = PauliString::parse(lbl).unwrap();
            let fast = apply_string(&s, C_ONE, &psi).unwrap();
            let op = PauliOp::single(C_ONE, s);
            let mat = op_to_dense(&op);
            for r in 0..dim {
                let mut acc = C_ZERO;
                for c in 0..dim {
                    acc += mat[r * dim + c] * psi[c];
                }
                assert!(acc.approx_eq(fast[r], 1e-10), "{lbl} row {r}");
            }
        }
    }

    #[test]
    fn accumulate_adds() {
        let s = PauliString::parse("X").unwrap();
        let input = basis(1, 0);
        let mut out = basis(1, 1);
        accumulate_string(&s, C64::real(2.0), &input, &mut out).unwrap();
        assert!(out[1].approx_eq(C64::real(3.0), 1e-12));
    }

    #[test]
    fn apply_op_linear_combination() {
        // (ZZ + XX)|00⟩ = |00⟩ + |11⟩.
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
        let out = apply_op(&h, &basis(2, 0)).unwrap();
        assert!(out[0].approx_eq(C_ONE, 1e-12));
        assert!(out[3].approx_eq(C_ONE, 1e-12));
        assert!(out[1].approx_eq(C_ZERO, 1e-12));
    }

    #[test]
    fn expectation_zz_on_basis_states() {
        let s = PauliString::parse("ZZ").unwrap();
        assert!((expectation_string(&s, &basis(2, 0)).unwrap().re - 1.0).abs() < 1e-12);
        assert!((expectation_string(&s, &basis(2, 1)).unwrap().re + 1.0).abs() < 1e-12);
        assert!((expectation_string(&s, &basis(2, 3)).unwrap().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_xx_on_plus_state() {
        let s = PauliString::parse("XX").unwrap();
        let e = expectation_string(&s, &plus_state(2)).unwrap();
        assert!((e.re - 1.0).abs() < 1e-12);
        assert!(e.im.abs() < 1e-12);
    }

    #[test]
    fn toy_hamiltonian_energy_on_bell_state() {
        // |Φ+⟩ = (|00⟩+|11⟩)/√2 has ⟨ZZ⟩ = 1, ⟨XX⟩ = 1 → E = 2 for Eq. 4.
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
        let r = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        let bell = vec![r, C_ZERO, C_ZERO, r];
        assert!((energy(&h, &bell).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_hermitian_is_real() {
        let h = PauliOp::parse("0.5 XY + 0.5 YX + 1.0 ZI").unwrap();
        let psi: Vec<C64> = (0..4)
            .map(|i| C64::new((i as f64).sin() + 0.3, (i as f64 * 2.0).cos()))
            .collect();
        let norm: f64 = psi.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        let psi: Vec<C64> = psi.into_iter().map(|a| a * (1.0 / norm)).collect();
        let e = expectation_op(&h, &psi).unwrap();
        assert!(
            e.im.abs() < 1e-10,
            "Hermitian expectation must be real, got {e}"
        );
    }

    #[test]
    fn expectation_linear_in_op() {
        let a = PauliOp::parse("1.0 ZI").unwrap();
        let b = PauliOp::parse("1.0 IX").unwrap();
        let sum = &a + &b;
        let psi = plus_state(2);
        let ea = expectation_op(&a, &psi).unwrap();
        let eb = expectation_op(&b, &psi).unwrap();
        let es = expectation_op(&sum, &psi).unwrap();
        assert!((ea + eb).approx_eq(es, 1e-12));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let s = PauliString::parse("XX").unwrap();
        assert!(apply_string(&s, C_ONE, &basis(1, 0)).is_err());
        let h = PauliOp::parse("1.0 ZZ").unwrap();
        assert!(expectation_op(&h, &basis(3, 0)).is_err());
    }

    #[test]
    fn large_state_parallel_path() {
        // Exercise the Rayon path (dim >= threshold) and check ⟨Z...Z⟩ on |0...0⟩.
        let n = 13;
        let s = PauliString::parse(&"Z".repeat(n)).unwrap();
        let psi = basis(n, 0);
        let e = expectation_string(&s, &psi).unwrap();
        assert!((e.re - 1.0).abs() < 1e-12);
        let out = apply_string(&s, C_ONE, &psi).unwrap();
        assert!(out[0].approx_eq(C_ONE, 1e-12));
    }
}
