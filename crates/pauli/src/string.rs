//! Pauli strings in the symplectic (bitmask) representation.
//!
//! A string over `n ≤ 64` qubits is stored as two `u64` masks: `x_mask` has
//! a bit set wherever the string contains X or Y, `z_mask` wherever it
//! contains Z or Y. This makes products, commutation checks, and basis-state
//! action O(1) word operations — the core reason the direct-expectation path
//! (paper §4.2) scales to tens of thousands of Hamiltonian terms.

use crate::pauli::{Pauli, Phase};
use nwq_common::{bits::masked_parity, Error, Result, C64};
use std::fmt;

/// Maximum register width supported by the bitmask representation.
pub const MAX_QUBITS: usize = 64;

/// A phaseless tensor product of single-qubit Paulis (`Y` counts as the
/// operator `Y`, not `iXZ`; phases appear only in products).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PauliString {
    n_qubits: u32,
    x_mask: u64,
    z_mask: u64,
}

impl PauliString {
    /// The identity string on `n_qubits`.
    pub fn identity(n_qubits: usize) -> Self {
        assert!(
            n_qubits <= MAX_QUBITS,
            "at most {MAX_QUBITS} qubits supported"
        );
        PauliString {
            n_qubits: n_qubits as u32,
            x_mask: 0,
            z_mask: 0,
        }
    }

    /// Builds a string from raw symplectic masks.
    pub fn from_masks(n_qubits: usize, x_mask: u64, z_mask: u64) -> Result<Self> {
        if n_qubits > MAX_QUBITS {
            return Err(Error::Invalid(format!(
                "{n_qubits} qubits exceeds the {MAX_QUBITS}-qubit limit"
            )));
        }
        let valid = if n_qubits == 64 {
            u64::MAX
        } else {
            (1u64 << n_qubits) - 1
        };
        if x_mask & !valid != 0 || z_mask & !valid != 0 {
            return Err(Error::Invalid("mask bits outside register".into()));
        }
        Ok(PauliString {
            n_qubits: n_qubits as u32,
            x_mask,
            z_mask,
        })
    }

    /// Builds a string placing `pauli` on each listed qubit (identity
    /// elsewhere). Duplicate qubits are rejected.
    pub fn from_ops(n_qubits: usize, ops: &[(usize, Pauli)]) -> Result<Self> {
        let mut s = PauliString::identity(n_qubits);
        for &(q, p) in ops {
            if q >= n_qubits {
                return Err(Error::QubitOutOfRange { qubit: q, n_qubits });
            }
            if !s.op(q).is_identity() && !p.is_identity() {
                return Err(Error::DuplicateQubit(q));
            }
            s.set_op(q, p);
        }
        Ok(s)
    }

    /// Parses a label like `"XIZY"`. **Leftmost character is the highest
    /// qubit** (qubit `n−1`), matching the usual bra-ket printing order.
    pub fn parse(label: &str) -> Result<Self> {
        let n = label.chars().count();
        if n > MAX_QUBITS {
            return Err(Error::Invalid(format!("label longer than {MAX_QUBITS}")));
        }
        let mut s = PauliString::identity(n);
        for (i, c) in label.chars().enumerate() {
            let p = Pauli::from_char(c)
                .ok_or_else(|| Error::Invalid(format!("bad Pauli character {c:?}")))?;
            s.set_op(n - 1 - i, p);
        }
        Ok(s)
    }

    /// Register width.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits as usize
    }

    /// X-component mask (bits where the operator is X or Y).
    #[inline]
    pub fn x_mask(&self) -> u64 {
        self.x_mask
    }

    /// Z-component mask (bits where the operator is Z or Y).
    #[inline]
    pub fn z_mask(&self) -> u64 {
        self.z_mask
    }

    /// The Pauli acting on qubit `q`.
    #[inline]
    pub fn op(&self, q: usize) -> Pauli {
        Pauli::from_xz((self.x_mask >> q) & 1 == 1, (self.z_mask >> q) & 1 == 1)
    }

    /// Overwrites the Pauli on qubit `q`.
    pub fn set_op(&mut self, q: usize, p: Pauli) {
        assert!(q < self.n_qubits as usize);
        let (x, z) = p.xz();
        let bit = 1u64 << q;
        if x {
            self.x_mask |= bit
        } else {
            self.x_mask &= !bit
        }
        if z {
            self.z_mask |= bit
        } else {
            self.z_mask &= !bit
        }
    }

    /// Number of non-identity tensor factors.
    #[inline]
    pub fn weight(&self) -> usize {
        (self.x_mask | self.z_mask).count_ones() as usize
    }

    /// `true` when every factor is the identity.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.x_mask == 0 && self.z_mask == 0
    }

    /// `true` when the string contains only I and Z factors, i.e. it is
    /// diagonal in the computational basis and measurable without basis
    /// changes.
    #[inline]
    pub fn is_diagonal(&self) -> bool {
        self.x_mask == 0
    }

    /// Mask of qubits on which the string acts non-trivially.
    #[inline]
    pub fn support(&self) -> u64 {
        self.x_mask | self.z_mask
    }

    /// Number of Y factors.
    #[inline]
    pub fn y_count(&self) -> u32 {
        (self.x_mask & self.z_mask).count_ones()
    }

    /// Whether two strings commute as operators (symplectic inner product
    /// is even).
    #[inline]
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        debug_assert_eq!(self.n_qubits, other.n_qubits);
        let anti =
            (self.x_mask & other.z_mask).count_ones() + (self.z_mask & other.x_mask).count_ones();
        anti.is_multiple_of(2)
    }

    /// Whether the strings commute *qubit-wise*: on every qubit the factors
    /// are equal or one is identity. This is the grouping criterion for
    /// shared measurement bases (stronger than plain commutation).
    pub fn qubit_wise_commutes(&self, other: &PauliString) -> bool {
        debug_assert_eq!(self.n_qubits, other.n_qubits);
        let both = self.support() & other.support();
        // On shared support the (x, z) encodings must agree exactly.
        (self.x_mask ^ other.x_mask) & both == 0 && (self.z_mask ^ other.z_mask) & both == 0
    }

    /// Operator product `self · other = phase · string`.
    ///
    /// The phase accounts for both the per-qubit Pauli products and the
    /// `Y = iXZ` bookkeeping of the symplectic encoding.
    pub fn mul(&self, other: &PauliString) -> (Phase, PauliString) {
        debug_assert_eq!(self.n_qubits, other.n_qubits);
        let x = self.x_mask ^ other.x_mask;
        let z = self.z_mask ^ other.z_mask;
        // Phase in the i^{x·z} X^x Z^z normal form: moving other's X past
        // self's Z contributes (−1) per overlap; converting Y's costs
        // i^{y_a + y_b − y_out}.
        let mut k: u32 = 2 * (self.z_mask & other.x_mask).count_ones();
        k += self.y_count() + other.y_count();
        let out = PauliString {
            n_qubits: self.n_qubits,
            x_mask: x,
            z_mask: z,
        };
        k += 4 - (out.y_count() % 4);
        (Phase::from_power(k), out)
    }

    /// Action on a computational basis state: `P|b⟩ = f(b) |b ⊕ x_mask⟩`
    /// with `f(b) = i^{y_count} · (−1)^{|b ∧ z_mask|}`. Returns `(f(b),
    /// flipped index)`.
    #[inline]
    pub fn apply_to_basis(&self, b: u64) -> (C64, u64) {
        let sign = if masked_parity(b, self.z_mask) {
            -1.0
        } else {
            1.0
        };
        let phase = Phase::from_power(self.y_count()).to_c64() * sign;
        (phase, b ^ self.x_mask)
    }

    /// The ±1 eigenvalue contribution of a *diagonal* string on basis state
    /// `b`. Panics in debug builds if the string is not diagonal.
    #[inline]
    pub fn diagonal_eigenvalue(&self, b: u64) -> f64 {
        debug_assert!(self.is_diagonal());
        if masked_parity(b, self.z_mask) {
            -1.0
        } else {
            1.0
        }
    }

    /// Returns the string extended or truncated to `n` qubits; truncation
    /// requires the dropped qubits to be identity.
    pub fn resized(&self, n: usize) -> Result<Self> {
        if n >= self.n_qubits as usize {
            let mut s = *self;
            s.n_qubits = n as u32;
            if n > MAX_QUBITS {
                return Err(Error::Invalid(format!("{n} qubits exceeds limit")));
            }
            return Ok(s);
        }
        let keep = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        if self.support() & !keep != 0 {
            return Err(Error::Invalid(
                "cannot truncate non-identity factors".into(),
            ));
        }
        Ok(PauliString {
            n_qubits: n as u32,
            x_mask: self.x_mask,
            z_mask: self.z_mask,
        })
    }

    /// Iterator over `(qubit, Pauli)` for non-identity factors, ascending.
    pub fn iter_ops(&self) -> impl Iterator<Item = (usize, Pauli)> + '_ {
        let support = self.support();
        (0..self.n_qubits as usize)
            .filter(move |q| (support >> q) & 1 == 1)
            .map(move |q| (q, self.op(q)))
    }

    /// Printable label, highest qubit first (inverse of [`parse`]).
    ///
    /// [`parse`]: PauliString::parse
    pub fn label(&self) -> String {
        (0..self.n_qubits as usize)
            .rev()
            .map(|q| self.op(q).to_char())
            .collect()
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

impl fmt::Debug for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PauliString({})", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_common::C_ONE;

    #[test]
    fn parse_and_label_roundtrip() {
        for lbl in ["XIZY", "IIII", "ZZ", "Y", "XYZI"] {
            let s = PauliString::parse(lbl).unwrap();
            assert_eq!(s.label(), lbl);
            assert_eq!(s.n_qubits(), lbl.len());
        }
        assert!(PauliString::parse("XQ").is_err());
    }

    #[test]
    fn parse_orientation_leftmost_is_high_qubit() {
        let s = PauliString::parse("XIZ").unwrap();
        assert_eq!(s.op(2), Pauli::X);
        assert_eq!(s.op(1), Pauli::I);
        assert_eq!(s.op(0), Pauli::Z);
    }

    #[test]
    fn from_ops_rejects_bad_input() {
        assert!(PauliString::from_ops(2, &[(2, Pauli::X)]).is_err());
        assert!(PauliString::from_ops(2, &[(0, Pauli::X), (0, Pauli::Z)]).is_err());
        let s = PauliString::from_ops(3, &[(0, Pauli::X), (2, Pauli::Y)]).unwrap();
        assert_eq!(s.label(), "YIX");
    }

    #[test]
    fn weight_support_diagonal() {
        let s = PauliString::parse("XIZY").unwrap();
        assert_eq!(s.weight(), 3);
        assert_eq!(s.support(), 0b1011);
        assert!(!s.is_diagonal());
        assert!(PauliString::parse("ZIZZ").unwrap().is_diagonal());
        assert!(PauliString::identity(5).is_identity());
        assert_eq!(s.y_count(), 1);
    }

    #[test]
    fn commutation_symplectic() {
        let xx = PauliString::parse("XX").unwrap();
        let zz = PauliString::parse("ZZ").unwrap();
        let zi = PauliString::parse("ZI").unwrap();
        let yy = PauliString::parse("YY").unwrap();
        assert!(xx.commutes_with(&zz)); // two anticommuting sites -> commute
        assert!(!xx.commutes_with(&zi));
        assert!(xx.commutes_with(&yy));
        assert!(xx.commutes_with(&xx));
    }

    #[test]
    fn qubit_wise_commutation_is_stricter() {
        let xx = PauliString::parse("XX").unwrap();
        let zz = PauliString::parse("ZZ").unwrap();
        let xi = PauliString::parse("XI").unwrap();
        let ix = PauliString::parse("IX").unwrap();
        assert!(xx.commutes_with(&zz));
        assert!(!xx.qubit_wise_commutes(&zz));
        assert!(xx.qubit_wise_commutes(&xi));
        assert!(xx.qubit_wise_commutes(&ix));
        assert!(xi.qubit_wise_commutes(&ix));
    }

    #[test]
    fn product_phases_single_qubit() {
        let x = PauliString::parse("X").unwrap();
        let y = PauliString::parse("Y").unwrap();
        let z = PauliString::parse("Z").unwrap();
        let (ph, p) = x.mul(&y);
        assert_eq!(p, z);
        assert_eq!(ph, Phase::PLUS_I);
        let (ph, p) = y.mul(&x);
        assert_eq!(p, z);
        assert_eq!(ph, Phase::MINUS_I);
        let (ph, p) = z.mul(&x);
        assert_eq!(p, y);
        assert_eq!(ph, Phase::PLUS_I);
        let (ph, p) = y.mul(&y);
        assert!(p.is_identity());
        assert_eq!(ph, Phase::PLUS_ONE);
    }

    #[test]
    fn product_is_involution_free_square() {
        // Every Pauli string squares to +identity.
        for lbl in ["XYZ", "YYII", "ZXZX", "IYIY"] {
            let s = PauliString::parse(lbl).unwrap();
            let (ph, p) = s.mul(&s);
            assert!(p.is_identity(), "{lbl}");
            assert_eq!(ph, Phase::PLUS_ONE, "{lbl}");
        }
    }

    #[test]
    fn product_multi_qubit_matches_factorwise() {
        let a = PauliString::parse("XYZI").unwrap();
        let b = PauliString::parse("YYXZ").unwrap();
        let (ph, p) = a.mul(&b);
        // Compute expected factor-wise.
        let mut expect_phase = Phase::PLUS_ONE;
        let mut expect = PauliString::identity(4);
        for q in 0..4 {
            let (f, r) = a.op(q).mul(b.op(q));
            expect_phase = expect_phase.mul(f);
            expect.set_op(q, r);
        }
        assert_eq!(p, expect);
        assert_eq!(ph, expect_phase);
    }

    #[test]
    fn basis_action_x_flips() {
        let s = PauliString::parse("IX").unwrap();
        let (f, b) = s.apply_to_basis(0b00);
        assert_eq!(b, 0b01);
        assert!(f.approx_eq(C_ONE, 1e-12));
    }

    #[test]
    fn basis_action_z_signs() {
        let s = PauliString::parse("ZI").unwrap();
        assert!(s.apply_to_basis(0b00).0.approx_eq(C_ONE, 1e-12));
        assert!(s.apply_to_basis(0b10).0.approx_eq(-C_ONE, 1e-12));
        assert_eq!(s.diagonal_eigenvalue(0b10), -1.0);
        assert_eq!(s.diagonal_eigenvalue(0b01), 1.0);
    }

    #[test]
    fn basis_action_y() {
        // Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩.
        let s = PauliString::parse("Y").unwrap();
        let (f, b) = s.apply_to_basis(0);
        assert_eq!(b, 1);
        assert!(f.approx_eq(C64::imag(1.0), 1e-12));
        let (f, b) = s.apply_to_basis(1);
        assert_eq!(b, 0);
        assert!(f.approx_eq(C64::imag(-1.0), 1e-12));
    }

    #[test]
    fn resize_behaviour() {
        let s = PauliString::parse("IX").unwrap();
        let bigger = s.resized(5).unwrap();
        assert_eq!(bigger.label(), "IIIIX");
        let smaller = bigger.resized(1).unwrap();
        assert_eq!(smaller.label(), "X");
        assert!(PauliString::parse("XI").unwrap().resized(1).is_err());
    }

    #[test]
    fn iter_ops_lists_nontrivial() {
        let s = PauliString::parse("XIZY").unwrap();
        let ops: Vec<_> = s.iter_ops().collect();
        assert_eq!(ops, vec![(0, Pauli::Y), (1, Pauli::Z), (3, Pauli::X)]);
    }

    #[test]
    fn from_masks_validation() {
        assert!(PauliString::from_masks(2, 0b100, 0).is_err());
        assert!(PauliString::from_masks(65, 0, 0).is_err());
        let s = PauliString::from_masks(3, 0b011, 0b110).unwrap();
        assert_eq!(s.label(), "ZYX");
    }
}
