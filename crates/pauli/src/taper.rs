//! Qubit tapering via Z2 symmetries (Bravyi–Gambetta–Kitaev–Temme).
//!
//! Molecular Hamiltonians conserve discrete parities (α-electron parity,
//! β-electron parity, …) that appear after Jordan–Wigner as Z-type Pauli
//! strings commuting with every Hamiltonian term. Each such symmetry lets
//! one qubit be replaced by its classical eigenvalue:
//!
//! 1. find a basis of Z-only strings `τ` with `[H, τ] = 0` — a GF(2)
//!    nullspace of the Hamiltonian's X-masks;
//! 2. pick a distinct pivot qubit `q_k` in each `τ_k`'s support;
//! 3. conjugate `H → U H U` with the Hermitian unitaries
//!    `U_k = (X_{q_k} + τ_k)/√2`, after which qubit `q_k` appears only as
//!    `I` or `X` in every term;
//! 4. substitute `X_{q_k} → ±1` (the symmetry sector of the reference
//!    determinant) and drop the qubit.
//!
//! The tapered operator acts on `n − k` qubits with the *same* eigenvalues
//! in the chosen sector — H2 goes from 4 qubits to 1.

use crate::op::PauliOp;
use crate::pauli::Pauli;
use crate::string::PauliString;
use nwq_common::{Error, Result, C64};

/// Finds a basis of Z-only Pauli strings commuting with every term of
/// `h`, excluding the identity. These are the Z2 symmetry generators
/// reachable without Clifford pre-rotations (sufficient for JW molecular
/// Hamiltonians).
pub fn find_z2_symmetries(h: &PauliOp) -> Vec<PauliString> {
    let n = h.n_qubits();
    // A Z-string with mask v commutes with a term (x, z) iff |x ∧ v| is
    // even, so v must lie in the GF(2) nullspace of the x-mask rows.
    let mut rows: Vec<u64> = h.terms().iter().map(|(_, s)| s.x_mask()).collect();
    rows.sort_unstable();
    rows.dedup();
    rows.retain(|&r| r != 0);

    // Row echelon over GF(2); record pivot columns.
    let mut pivots: Vec<usize> = Vec::new();
    let mut echelon: Vec<u64> = Vec::new();
    for mut row in rows {
        for (&p, &e) in pivots.iter().zip(&echelon) {
            if (row >> p) & 1 == 1 {
                row ^= e;
            }
        }
        if row != 0 {
            let p = row.trailing_zeros() as usize;
            // Reduce existing rows by the new pivot for full reduction.
            for e in echelon.iter_mut() {
                if (*e >> p) & 1 == 1 {
                    *e ^= row;
                }
            }
            pivots.push(p);
            echelon.push(row);
        }
    }
    // Nullspace basis: one vector per free column.
    let mut generators = Vec::new();
    for free in 0..n {
        if pivots.contains(&free) {
            continue;
        }
        let mut v = 1u64 << free;
        for (&p, &e) in pivots.iter().zip(&echelon) {
            // Fully reduced echelon: pivot row e has 1 in column `free`?
            if (e >> free) & 1 == 1 {
                v |= 1u64 << p;
            }
        }
        let s = PauliString::from_masks(n, 0, v).expect("mask within register");
        generators.push(s);
    }
    generators
}

/// Result of a tapering transformation.
#[derive(Clone, Debug)]
pub struct TaperingResult {
    /// The tapered operator on `n − k` qubits.
    pub tapered: PauliOp,
    /// The symmetry generators used.
    pub generators: Vec<PauliString>,
    /// The pivot qubit removed for each generator.
    pub pivots: Vec<usize>,
    /// The ±1 eigenvalue sector substituted for each generator.
    pub sector: Vec<i8>,
}

/// Tapers all Z-type Z2 symmetries off `h`, selecting the symmetry sector
/// of the computational reference determinant `reference` (e.g. the
/// Hartree–Fock bitstring).
pub fn taper(h: &PauliOp, reference: u64) -> Result<TaperingResult> {
    let n = h.n_qubits();
    let mut generators = find_z2_symmetries(h);
    if generators.is_empty() {
        return Ok(TaperingResult {
            tapered: h.clone(),
            generators,
            pivots: Vec::new(),
            sector: Vec::new(),
        });
    }
    // Choose distinct pivots by Gaussian elimination on the z-masks so
    // that generator k is the only one acting on pivot k.
    let mut masks: Vec<u64> = generators.iter().map(|g| g.z_mask()).collect();
    let mut pivots: Vec<usize> = Vec::new();
    for i in 0..masks.len() {
        let mut m = masks[i];
        for (&p, j) in pivots.iter().zip(0..i) {
            let _ = j;
            m &= !(1u64 << p); // prefer fresh columns
        }
        if m == 0 {
            return Err(Error::Numerical(
                "dependent symmetry generators; cannot choose pivots".into(),
            ));
        }
        let p = m.trailing_zeros() as usize;
        pivots.push(p);
        // Eliminate pivot p from the other generators.
        for j in 0..masks.len() {
            if j != i && (masks[j] >> p) & 1 == 1 {
                masks[j] ^= masks[i];
            }
        }
    }
    for (g, &m) in generators.iter_mut().zip(&masks) {
        *g = PauliString::from_masks(n, 0, m)?;
    }

    // Sector from the reference determinant (before conjugation, the
    // symmetry eigenvalue of |ref⟩).
    let sector: Vec<i8> = generators
        .iter()
        .map(|g| {
            if (reference & g.z_mask()).count_ones() % 2 == 1 {
                -1
            } else {
                1
            }
        })
        .collect();

    // Conjugate by U_k = (X_{q_k} + τ_k)/√2, all k.
    let inv_sqrt2 = C64::real(std::f64::consts::FRAC_1_SQRT_2);
    let mut transformed = h.clone();
    for (g, &p) in generators.iter().zip(&pivots) {
        let u = PauliOp::from_terms(
            n,
            vec![
                (inv_sqrt2, PauliString::from_ops(n, &[(p, Pauli::X)])?),
                (inv_sqrt2, *g),
            ],
        );
        transformed = u.mul_op(&transformed)?.mul_op(&u)?;
    }

    // Every pivot qubit must now carry only I or X; substitute ±1.
    let keep: Vec<usize> = (0..n).filter(|q| !pivots.contains(q)).collect();
    let mut new_terms: Vec<(C64, PauliString)> = Vec::with_capacity(transformed.num_terms());
    for &(c, s) in transformed.terms() {
        let mut coeff = c;
        let mut ops: Vec<(usize, Pauli)> = Vec::new();
        for (q, p) in s.iter_ops() {
            if let Some(pos) = keep.iter().position(|&k| k == q) {
                ops.push((pos, p));
            } else {
                match p {
                    Pauli::X => {
                        let k = pivots.iter().position(|&pv| pv == q).expect("pivot");
                        coeff = coeff * (sector[k] as f64);
                    }
                    Pauli::I => {}
                    other => {
                        return Err(Error::Numerical(format!(
                            "tapering left {other} on pivot qubit {q}"
                        )));
                    }
                }
            }
        }
        new_terms.push((coeff, PauliString::from_ops(keep.len(), &ops)?));
    }
    Ok(TaperingResult {
        tapered: PauliOp::from_terms(keep.len(), new_terms),
        generators,
        pivots,
        sector,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dense_ground_state;

    #[test]
    fn finds_symmetries_of_ising_like_model() {
        // H = ZZ + ZI: purely diagonal, every Z-string commutes — the
        // nullspace is the whole space (2 generators on 2 qubits).
        let h = PauliOp::parse("1.0 ZZ + 0.5 ZI").unwrap();
        let gens = find_z2_symmetries(&h);
        assert_eq!(gens.len(), 2);
        for g in &gens {
            assert!(g.is_diagonal());
            for (_, s) in h.terms() {
                assert!(g.commutes_with(s));
            }
        }
    }

    #[test]
    fn exchange_terms_leave_only_global_parity() {
        // H = ZZ + XX + YY (Heisenberg pair): single-qubit Z symmetries
        // are broken by the exchange terms; only the pair parity ZZ
        // survives. (A transverse-field model's surviving symmetry is
        // X-type — outside the Z-only search by design.)
        let h = PauliOp::parse("1.0 ZZ + 0.5 XX + 0.5 YY").unwrap();
        let gens = find_z2_symmetries(&h);
        assert_eq!(gens.len(), 1);
        assert_eq!(gens[0].label(), "ZZ");
    }

    #[test]
    fn no_symmetries_when_x_masks_span() {
        // Single-qubit X and Y break everything on a 1-qubit register.
        let h = PauliOp::parse("1.0 X + 0.5 Z").unwrap();
        assert!(find_z2_symmetries(&h).is_empty());
        let r = taper(&h, 0).unwrap();
        assert_eq!(r.tapered, h);
    }

    #[test]
    fn tapering_preserves_ground_energy_tfim() {
        // Transverse-field Ising on 3 qubits has the global flip parity
        // X⊗X⊗X?? No — its symmetry is Z-type only after rotation; use a
        // model with an explicit Z-type symmetry instead: H commutes with
        // Z0Z1 (terms act on the pair only via XX/YY/ZZ).
        let h = PauliOp::parse("1.0 XXI + 1.0 YYI + 0.5 ZZI + 0.4 IIX + 0.2 ZII").unwrap();
        // Hmm: ZII does not commute with XXI? |x∧v|: XXI has x-mask on
        // qubits 1,2… rely on the library: verify the generators it finds
        // and the spectrum it preserves.
        let gens = find_z2_symmetries(&h);
        assert!(!gens.is_empty());
        let (e_full, _) = dense_ground_state(&h, 3000);
        // Try both sectors of every generator via reference determinants
        // 0..2^3 and take the best tapered energy: must match e_full.
        let mut best = f64::INFINITY;
        for reference in 0u64..8 {
            let r = taper(&h, reference).unwrap();
            if r.tapered.n_qubits() == 0 {
                continue;
            }
            let (e, _) = dense_ground_state(&r.tapered, 3000);
            best = best.min(e);
        }
        assert!((best - e_full).abs() < 1e-6, "{best} vs {e_full}");
    }

    #[test]
    fn tapered_operator_width_shrinks_by_generator_count() {
        let h = PauliOp::parse("1.0 ZZ + 0.5 XX").unwrap();
        let gens = find_z2_symmetries(&h);
        assert_eq!(gens.len(), 1); // ZZ parity
                                   // The ground state of ZZ + 0.5·XX lives in the odd-parity sector
                                   // (spectrum: {1.5, 0.5} even, {−0.5, −1.5} odd); pick it via an
                                   // odd reference determinant.
        let r = taper(&h, 0b01).unwrap();
        assert_eq!(r.tapered.n_qubits(), 1);
        assert_eq!(r.pivots.len(), 1);
        let (e_full, _) = dense_ground_state(&h, 2000);
        let (e_tapered, _) = dense_ground_state(&r.tapered, 2000);
        assert!((e_full - e_tapered).abs() < 1e-8, "{e_full} vs {e_tapered}");
        // Even sector: ground is 0.5.
        let even = taper(&h, 0b00).unwrap();
        let (e_even, _) = dense_ground_state(&even.tapered, 2000);
        assert!((e_even - 0.5).abs() < 1e-8, "{e_even}");
    }

    #[test]
    fn sector_signs_follow_reference() {
        let h = PauliOp::parse("1.0 ZZ + 0.5 XX").unwrap();
        let even = taper(&h, 0b00).unwrap();
        let odd = taper(&h, 0b01).unwrap();
        assert_eq!(even.sector, vec![1]);
        assert_eq!(odd.sector, vec![-1]);
        // Different sectors generally have different spectra.
        let (e_even, _) = dense_ground_state(&even.tapered, 2000);
        let (e_odd, _) = dense_ground_state(&odd.tapered, 2000);
        // For ZZ+0.5XX: even sector ground −√(1+0.25)… just require both
        // are ≥ the full ground energy and one matches it.
        let (e_full, _) = dense_ground_state(&h, 2000);
        assert!(e_even >= e_full - 1e-9);
        assert!(e_odd >= e_full - 1e-9);
        assert!((e_even - e_full).abs() < 1e-8 || (e_odd - e_full).abs() < 1e-8);
    }

    #[test]
    fn tapered_terms_never_exceed_original_support() {
        let h = PauliOp::parse("1.0 ZZ + 0.5 XX + 0.25 YY").unwrap();
        let r = taper(&h, 0).unwrap();
        assert!(r.tapered.n_qubits() < h.n_qubits());
        assert!(r.tapered.is_hermitian(1e-10));
    }
}
