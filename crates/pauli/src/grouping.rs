//! Measurement grouping of Hamiltonian terms.
//!
//! VQE evaluates `⟨H⟩ = Σ c_k ⟨P_k⟩`, and every group of *qubit-wise
//! commuting* strings shares one measurement basis: a per-qubit assignment
//! of X/Y/Z rotations applied after the cached ansatz state (paper §4.1).
//! Grouping therefore directly multiplies the caching savings of Fig 3 —
//! one basis change per group instead of one per term.

use crate::op::PauliOp;
use crate::pauli::Pauli;
use crate::string::PauliString;
use nwq_common::C64;

/// A set of mutually qubit-wise-commuting terms plus the shared basis they
/// are measured in.
#[derive(Clone, Debug)]
pub struct MeasurementGroup {
    /// The terms `(coefficient, string)` measured together.
    pub terms: Vec<(C64, PauliString)>,
    /// For each qubit, the Pauli basis the group is measured in (`I` when
    /// no term touches the qubit, so no rotation is needed).
    pub basis: Vec<Pauli>,
}

impl MeasurementGroup {
    fn new(n_qubits: usize) -> Self {
        MeasurementGroup {
            terms: Vec::new(),
            basis: vec![Pauli::I; n_qubits],
        }
    }

    fn accepts(&self, s: &PauliString) -> bool {
        s.iter_ops()
            .all(|(q, p)| self.basis[q] == Pauli::I || self.basis[q] == p)
    }

    fn insert(&mut self, c: C64, s: PauliString) {
        for (q, p) in s.iter_ops() {
            self.basis[q] = p;
        }
        self.terms.push((c, s));
    }

    /// Number of single-qubit basis-change rotations needed to measure this
    /// group: one gate per X-basis qubit (H) and two per Y-basis qubit
    /// (S† then H), per paper §4.1.2.
    pub fn basis_change_gates(&self) -> usize {
        self.basis
            .iter()
            .map(|p| match p {
                Pauli::X => 1,
                Pauli::Y => 2,
                _ => 0,
            })
            .sum()
    }
}

/// Greedy first-fit grouping of an observable into qubit-wise commuting
/// measurement groups. Terms are taken in descending coefficient magnitude
/// so heavy terms anchor groups.
pub fn group_qubit_wise(op: &PauliOp) -> Vec<MeasurementGroup> {
    let mut terms: Vec<(C64, PauliString)> = op.terms().to_vec();
    terms.sort_by(|a, b| b.0.norm().partial_cmp(&a.0.norm()).unwrap());
    let mut groups: Vec<MeasurementGroup> = Vec::new();
    for (c, s) in terms {
        match groups.iter_mut().find(|g| g.accepts(&s)) {
            Some(g) => g.insert(c, s),
            None => {
                let mut g = MeasurementGroup::new(op.n_qubits());
                g.insert(c, s);
                groups.push(g);
            }
        }
    }
    groups
}

/// One group per term — the ungrouped baseline the paper's non-caching
/// execution implicitly uses.
pub fn group_singletons(op: &PauliOp) -> Vec<MeasurementGroup> {
    op.terms()
        .iter()
        .map(|&(c, s)| {
            let mut g = MeasurementGroup::new(op.n_qubits());
            g.insert(c, s);
            g
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_common::C_ONE;

    #[test]
    fn toy_hamiltonian_needs_two_groups() {
        // ZZ and XX do not qubit-wise commute, so Eq. 4 needs 2 bases.
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
        let groups = group_qubit_wise(&h);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn compatible_terms_share_group() {
        let h = PauliOp::parse("1.0 ZZ + 0.5 ZI + 0.25 IZ").unwrap();
        let groups = group_qubit_wise(&h);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].terms.len(), 3);
        assert_eq!(groups[0].basis, vec![Pauli::Z, Pauli::Z]);
        assert_eq!(groups[0].basis_change_gates(), 0);
    }

    #[test]
    fn mixed_basis_group() {
        let h = PauliOp::parse("1.0 XZ + 0.5 XI").unwrap();
        let groups = group_qubit_wise(&h);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].basis, vec![Pauli::Z, Pauli::X]);
        // One H for the X-basis qubit.
        assert_eq!(groups[0].basis_change_gates(), 1);
    }

    #[test]
    fn y_basis_costs_two_gates() {
        let h = PauliOp::parse("1.0 YY").unwrap();
        let groups = group_qubit_wise(&h);
        assert_eq!(groups[0].basis_change_gates(), 4);
    }

    #[test]
    fn grouping_preserves_all_terms() {
        let h = PauliOp::parse("1.0 XX + 1.0 YY + 1.0 ZZ + 0.5 XI + 0.5 IY").unwrap();
        let groups = group_qubit_wise(&h);
        let total: usize = groups.iter().map(|g| g.terms.len()).sum();
        assert_eq!(total, h.num_terms());
        // Every term's string must be compatible with its group basis.
        for g in &groups {
            for (_, s) in &g.terms {
                for (q, p) in s.iter_ops() {
                    assert_eq!(g.basis[q], p);
                }
            }
        }
    }

    #[test]
    fn grouping_never_exceeds_singletons() {
        let h = PauliOp::parse("1.0 XX + 1.0 YY + 1.0 ZZ + 0.5 ZI").unwrap();
        assert!(group_qubit_wise(&h).len() <= group_singletons(&h).len());
        assert_eq!(group_singletons(&h).len(), h.num_terms());
    }

    #[test]
    fn identity_term_joins_any_group() {
        let h = PauliOp::parse("1.0 II + 1.0 ZZ").unwrap();
        let groups = group_qubit_wise(&h);
        assert_eq!(groups.len(), 1);
        let _ = C_ONE;
    }
}
