//! Dense matrix realizations of Pauli operators, for small-register tests
//! and exact reference calculations (≤ ~14 qubits).

use crate::op::PauliOp;
use crate::string::PauliString;
use nwq_common::{C64, C_ZERO};

/// Dense row-major matrix of a single Pauli string (`dim × dim` with
/// `dim = 2^n`). Each column has exactly one non-zero entry.
pub fn string_to_dense(s: &PauliString) -> Vec<C64> {
    let dim = 1usize << s.n_qubits();
    let mut m = vec![C_ZERO; dim * dim];
    for col in 0..dim {
        let (f, row) = s.apply_to_basis(col as u64);
        m[row as usize * dim + col] = f;
    }
    m
}

/// Dense row-major matrix of a Pauli sum.
pub fn op_to_dense(op: &PauliOp) -> Vec<C64> {
    let dim = 1usize << op.n_qubits();
    let mut m = vec![C_ZERO; dim * dim];
    for &(c, s) in op.terms() {
        for col in 0..dim {
            let (f, row) = s.apply_to_basis(col as u64);
            m[row as usize * dim + col] += c * f;
        }
    }
    m
}

/// Dense matrix–vector product (row-major), for test references.
pub fn dense_matvec(m: &[C64], v: &[C64]) -> Vec<C64> {
    let dim = v.len();
    assert_eq!(m.len(), dim * dim);
    (0..dim)
        .map(|r| (0..dim).map(|c| m[r * dim + c] * v[c]).sum())
        .collect()
}

/// Ground-state energy of a Hermitian operator by dense Jacobi-free power
/// iteration on `(λ_max I − H)` — adequate for test-sized registers.
/// Returns `(E0, ground_state)`.
pub fn dense_ground_state(op: &PauliOp, iters: usize) -> (f64, Vec<C64>) {
    let dim = 1usize << op.n_qubits();
    let m = op_to_dense(op);
    // Shift: λ_max(H) ≤ one_norm, so (shift·I − H) is PSD with the ground
    // state of H as its dominant eigenvector.
    let shift = op.one_norm() + 1.0;
    let mut v: Vec<C64> = (0..dim)
        .map(|i| {
            C64::new(
                1.0 + (i as f64 * 0.7).sin() * 0.1,
                (i as f64 * 1.3).cos() * 0.05,
            )
        })
        .collect();
    normalize(&mut v);
    for _ in 0..iters {
        let hv = dense_matvec(&m, &v);
        for i in 0..dim {
            v[i] = v[i] * shift - hv[i];
        }
        normalize(&mut v);
    }
    let hv = dense_matvec(&m, &v);
    let e: C64 = v.iter().zip(&hv).map(|(a, b)| a.conj() * *b).sum();
    (e.re, v)
}

fn normalize(v: &mut [C64]) {
    let n: f64 = v.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    if n > 0.0 {
        let inv = 1.0 / n;
        for a in v.iter_mut() {
            *a = *a * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_common::C_ONE;

    #[test]
    fn dense_pauli_x() {
        let m = string_to_dense(&PauliString::parse("X").unwrap());
        assert!(m[1].approx_eq(C_ONE, 1e-12));
        assert!(m[2].approx_eq(C_ONE, 1e-12));
        assert!(m[0].approx_eq(C_ZERO, 1e-12));
    }

    #[test]
    fn dense_zz_matches_paper_eq6() {
        // Paper Eq. 6: diag(1, −1, −1, 1).
        let m = string_to_dense(&PauliString::parse("ZZ").unwrap());
        let diag: Vec<f64> = (0..4).map(|i| m[i * 4 + i].re).collect();
        assert_eq!(diag, vec![1.0, -1.0, -1.0, 1.0]);
        for r in 0..4 {
            for c in 0..4 {
                if r != c {
                    assert!(m[r * 4 + c].approx_eq(C_ZERO, 1e-12));
                }
            }
        }
    }

    #[test]
    fn op_matrix_is_sum_of_strings() {
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
        let m = op_to_dense(&h);
        let mz = string_to_dense(&PauliString::parse("ZZ").unwrap());
        let mx = string_to_dense(&PauliString::parse("XX").unwrap());
        for i in 0..16 {
            assert!(m[i].approx_eq(mz[i] + mx[i], 1e-12));
        }
    }

    #[test]
    fn ground_state_of_toy_hamiltonian() {
        // H = ZZ + XX has eigenvalues {2, 0, 0, −2}; ground energy −2 with
        // eigenvector (|01⟩ − |10⟩)/√2.
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
        let (e0, v) = dense_ground_state(&h, 500);
        assert!((e0 + 2.0).abs() < 1e-8, "got {e0}");
        assert!(v[1].norm() > 0.7 - 1e-6 && v[2].norm() > 0.7 - 1e-6);
    }

    #[test]
    fn ground_state_of_single_qubit_field() {
        // H = X has ground energy −1 with state |−⟩.
        let h = PauliOp::parse("1.0 X").unwrap();
        let (e0, _) = dense_ground_state(&h, 300);
        assert!((e0 + 1.0).abs() < 1e-8);
    }
}
