//! # nwq-pauli
//!
//! Pauli-operator algebra for the NWQ-Sim-rs workspace:
//!
//! - [`pauli::Pauli`] / [`pauli::Phase`] — single-qubit Paulis and the
//!   quarter-phase group;
//! - [`string::PauliString`] — symplectic (bitmask) Pauli strings with O(1)
//!   products and commutation checks (≤ 64 qubits);
//! - [`op::PauliOp`] — sparse weighted sums: the observable/Hamiltonian
//!   type, with sums, products, and commutators (used by coupled-cluster
//!   downfolding's commutator expansion, paper Eq. 2);
//! - [`apply`] — Rayon-parallel action of strings/sums on amplitude slices
//!   and the *direct expectation value* method of paper §4.2;
//! - [`grouping`] — qubit-wise-commuting measurement grouping, which turns
//!   the post-ansatz state cache of §4.1 into per-group basis changes;
//! - [`matrix`] — dense realizations for small-register reference tests.

#![warn(missing_docs)]

pub mod apply;
pub mod grouping;
pub mod matrix;
pub mod op;
pub mod pauli;
pub mod string;
pub mod taper;

pub use op::PauliOp;
pub use pauli::{Pauli, Phase};
pub use string::PauliString;

#[cfg(test)]
mod proptests {
    use crate::apply::{apply_string, expectation_string};
    use crate::matrix::{dense_matvec, string_to_dense};
    use crate::string::PauliString;
    use nwq_common::{C64, C_ONE};
    use proptest::prelude::*;

    prop_compose! {
        fn arb_string(n: usize)(x in 0u64..(1 << n), z in 0u64..(1 << n)) -> PauliString {
            PauliString::from_masks(n, x, z).unwrap()
        }
    }

    fn arb_state(n: usize) -> impl Strategy<Value = Vec<C64>> {
        proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), 1 << n).prop_map(|v| {
            let mut psi: Vec<C64> = v.into_iter().map(|(r, i)| C64::new(r, i)).collect();
            let norm: f64 = psi.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
            if norm > 1e-9 {
                for a in psi.iter_mut() {
                    *a = *a * (1.0 / norm);
                }
            } else {
                psi[0] = C_ONE;
            }
            psi
        })
    }

    proptest! {
        #[test]
        fn string_product_consistent_with_commutation(
            a in arb_string(5), b in arb_string(5)
        ) {
            let (ph_ab, s_ab) = a.mul(&b);
            let (ph_ba, s_ba) = b.mul(&a);
            prop_assert_eq!(s_ab, s_ba);
            if a.commutes_with(&b) {
                prop_assert_eq!(ph_ab, ph_ba);
            } else {
                // Anticommuting: phases differ by −1.
                prop_assert_eq!(ph_ab.mul(ph_ba.inverse()).power(), 2);
            }
        }

        #[test]
        fn string_square_is_identity(a in arb_string(6)) {
            let (ph, s) = a.mul(&a);
            prop_assert!(s.is_identity());
            prop_assert_eq!(ph.power(), 0);
        }

        #[test]
        fn product_weight_bounded_by_support_union(a in arb_string(6), b in arb_string(6)) {
            let (_, s) = a.mul(&b);
            prop_assert_eq!(s.support() & !(a.support() | b.support()), 0);
        }

        #[test]
        fn apply_preserves_norm(s in arb_string(4), psi in arb_state(4)) {
            // Pauli strings are unitary, so norms are preserved.
            let out = apply_string(&s, C_ONE, &psi).unwrap();
            let n_in: f64 = psi.iter().map(|a| a.norm_sqr()).sum();
            let n_out: f64 = out.iter().map(|a| a.norm_sqr()).sum();
            prop_assert!((n_in - n_out).abs() < 1e-9);
        }

        #[test]
        fn apply_matches_dense(s in arb_string(4), psi in arb_state(4)) {
            let fast = apply_string(&s, C_ONE, &psi).unwrap();
            let slow = dense_matvec(&string_to_dense(&s), &psi);
            for (f, g) in fast.iter().zip(&slow) {
                prop_assert!(f.approx_eq(*g, 1e-9));
            }
        }

        #[test]
        fn expectation_is_real_and_bounded(s in arb_string(4), psi in arb_state(4)) {
            // Pauli strings are Hermitian with eigenvalues ±1.
            let e = expectation_string(&s, &psi).unwrap();
            prop_assert!(e.im.abs() < 1e-9);
            prop_assert!(e.re.abs() <= 1.0 + 1e-9);
        }

        #[test]
        fn expectation_equals_overlap_with_applied(s in arb_string(4), psi in arb_state(4)) {
            let e = expectation_string(&s, &psi).unwrap();
            let p_psi = apply_string(&s, C_ONE, &psi).unwrap();
            let overlap: C64 = psi.iter().zip(&p_psi).map(|(a, b)| a.conj() * *b).sum();
            prop_assert!(e.approx_eq(overlap, 1e-9));
        }

        #[test]
        fn qubit_wise_commuting_implies_commuting(a in arb_string(6), b in arb_string(6)) {
            if a.qubit_wise_commutes(&b) {
                prop_assert!(a.commutes_with(&b));
            }
        }

        #[test]
        fn taper_generators_commute_and_sectors_cover_spectrum(
            coeffs in proptest::collection::vec(-1.0..1.0f64, 4)
        ) {
            // Random 3-qubit operator with a guaranteed ZZ-pair symmetry:
            // terms act on qubits (0,1) only through {XX, YY, ZZ} plus a
            // free field on qubit 2.
            let h = crate::op::PauliOp::from_terms(3, vec![
                (nwq_common::C64::real(coeffs[0]), PauliString::parse("IXX").unwrap()),
                (nwq_common::C64::real(coeffs[1]), PauliString::parse("IYY").unwrap()),
                (nwq_common::C64::real(coeffs[2]), PauliString::parse("IZZ").unwrap()),
                (nwq_common::C64::real(coeffs[3]), PauliString::parse("XII").unwrap()),
            ]);
            if h.is_zero() {
                return Ok(());
            }
            let gens = crate::taper::find_z2_symmetries(&h);
            for g in &gens {
                for (_, s) in h.terms() {
                    prop_assert!(g.commutes_with(s));
                }
            }
            // Ground energy over both sectors equals the full ground energy.
            let (e_full, _) = crate::matrix::dense_ground_state(&h, 6000);
            let mut best = f64::INFINITY;
            for reference in 0u64..8 {
                if let Ok(r) = crate::taper::taper(&h, reference) {
                    if r.tapered.n_qubits() > 0 && !r.tapered.is_zero() {
                        let (e, _) = crate::matrix::dense_ground_state(&r.tapered, 6000);
                        best = best.min(e);
                    } else if r.tapered.n_qubits() == 0 || r.tapered.is_zero() {
                        best = best.min(r.tapered.identity_coeff().re);
                    }
                }
            }
            // Power iteration converges slowly for small spectral gaps;
            // 1e-4 absolute is ample to catch a broken taper.
            prop_assert!((best - e_full).abs() < 1e-4, "best {} vs full {}", best, e_full);
        }
    }
}
