//! Single-qubit Pauli operators and the quarter-phase group.

use nwq_common::{C64, C_ONE};
use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X (bit flip).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z (phase flip).
    Z,
}

impl Pauli {
    /// All four Paulis in canonical order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// Whether this operator acts non-trivially.
    #[inline]
    pub fn is_identity(self) -> bool {
        matches!(self, Pauli::I)
    }

    /// The `(x, z)` symplectic encoding: `P = i^{x·z} X^x Z^z`.
    #[inline]
    pub fn xz(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Inverse of [`Pauli::xz`].
    #[inline]
    pub fn from_xz(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Parses one of `I`, `X`, `Y`, `Z` (case-insensitive).
    pub fn from_char(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'I' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }

    /// Single-character name.
    pub fn to_char(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }

    /// Product `self · rhs = phase · P`, returning the resulting Pauli and
    /// the quarter phase (`XY = iZ`, `YX = −iZ`, …).
    // Not `std::ops::Mul`: the product carries a phase alongside the Pauli.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Pauli) -> (Phase, Pauli) {
        use Pauli::*;
        match (self, rhs) {
            (I, p) | (p, I) => (Phase::PLUS_ONE, p),
            (a, b) if a == b => (Phase::PLUS_ONE, I),
            (X, Y) => (Phase::PLUS_I, Z),
            (Y, X) => (Phase::MINUS_I, Z),
            (Y, Z) => (Phase::PLUS_I, X),
            (Z, Y) => (Phase::MINUS_I, X),
            (Z, X) => (Phase::PLUS_I, Y),
            (X, Z) => (Phase::MINUS_I, Y),
            _ => unreachable!(),
        }
    }

    /// Whether `self` and `rhs` commute (all pairs commute unless both are
    /// distinct non-identity Paulis).
    #[inline]
    pub fn commutes_with(self, rhs: Pauli) -> bool {
        self == rhs || self.is_identity() || rhs.is_identity()
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// An element of the quarter-phase group `{1, i, −1, −i}`, stored as the
/// exponent `k` in `i^k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Phase(u8);

impl Phase {
    /// `+1`.
    pub const PLUS_ONE: Phase = Phase(0);
    /// `+i`.
    pub const PLUS_I: Phase = Phase(1);
    /// `−1`.
    pub const MINUS_ONE: Phase = Phase(2);
    /// `−i`.
    pub const MINUS_I: Phase = Phase(3);

    /// Builds `i^k`.
    #[inline]
    pub fn from_power(k: u32) -> Self {
        Phase((k % 4) as u8)
    }

    /// The exponent `k` in `i^k`, in `0..4`.
    #[inline]
    pub fn power(self) -> u8 {
        self.0
    }

    /// Group product.
    // Kept as an inherent method for symmetry with `Pauli::mul`.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn mul(self, rhs: Phase) -> Phase {
        Phase((self.0 + rhs.0) % 4)
    }

    /// Group inverse.
    #[inline]
    pub fn inverse(self) -> Phase {
        Phase((4 - self.0) % 4)
    }

    /// The complex value of this phase.
    #[inline]
    pub fn to_c64(self) -> C64 {
        match self.0 {
            0 => C_ONE,
            1 => C64::imag(1.0),
            2 => -C_ONE,
            _ => C64::imag(-1.0),
        }
    }

    /// `true` for `±1` (real phases).
    #[inline]
    pub fn is_real(self) -> bool {
        self.0.is_multiple_of(2)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self.0 {
            0 => "+1",
            1 => "+i",
            2 => "-1",
            _ => "-i",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_common::mat::{mat_x, mat_y, mat_z, Mat2};

    fn pauli_mat(p: Pauli) -> Mat2 {
        match p {
            Pauli::I => Mat2::identity(),
            Pauli::X => mat_x(),
            Pauli::Y => mat_y(),
            Pauli::Z => mat_z(),
        }
    }

    #[test]
    fn multiplication_table_matches_matrices() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let (ph, p) = a.mul(b);
                let expect = pauli_mat(a) * pauli_mat(b);
                let got = pauli_mat(p).scale(ph.to_c64());
                assert!(
                    expect.approx_eq(&got, 1e-12),
                    "{a}·{b} = {ph}·{p} disagrees with matrices"
                );
            }
        }
    }

    #[test]
    fn commutation_matches_matrices() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let ab = pauli_mat(a) * pauli_mat(b);
                let ba = pauli_mat(b) * pauli_mat(a);
                assert_eq!(a.commutes_with(b), ab.approx_eq(&ba, 1e-12));
            }
        }
    }

    #[test]
    fn xz_roundtrip() {
        for p in Pauli::ALL {
            let (x, z) = p.xz();
            assert_eq!(Pauli::from_xz(x, z), p);
        }
    }

    #[test]
    fn char_roundtrip() {
        for p in Pauli::ALL {
            assert_eq!(Pauli::from_char(p.to_char()), Some(p));
            assert_eq!(Pauli::from_char(p.to_char().to_ascii_lowercase()), Some(p));
        }
        assert_eq!(Pauli::from_char('Q'), None);
    }

    #[test]
    fn phase_group() {
        assert_eq!(Phase::PLUS_I.mul(Phase::PLUS_I), Phase::MINUS_ONE);
        assert_eq!(Phase::MINUS_I.mul(Phase::PLUS_I), Phase::PLUS_ONE);
        assert_eq!(Phase::MINUS_ONE.mul(Phase::MINUS_ONE), Phase::PLUS_ONE);
        for k in 0..4 {
            let p = Phase::from_power(k);
            assert_eq!(p.mul(p.inverse()), Phase::PLUS_ONE);
            assert!(p.to_c64().approx_eq(C64::imag(1.0).powi(k as i32), 1e-12));
        }
    }

    #[test]
    fn phase_reality() {
        assert!(Phase::PLUS_ONE.is_real());
        assert!(Phase::MINUS_ONE.is_real());
        assert!(!Phase::PLUS_I.is_real());
        assert!(!Phase::MINUS_I.is_real());
    }
}
