//! Circuit container and builder.

use crate::gate::Gate;
use crate::param::ParamExpr;
use nwq_common::{Error, Result};
use std::fmt;

/// An ordered list of gates on a fixed-width register, with a declared
/// variational parameter count.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    n_params: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit on `n_qubits` with no parameters.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            n_params: 0,
            gates: Vec::new(),
        }
    }

    /// An empty circuit declaring `n_params` variational parameters.
    pub fn with_params(n_qubits: usize, n_params: usize) -> Self {
        Circuit {
            n_qubits,
            n_params,
            gates: Vec::new(),
        }
    }

    /// Register width.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Declared variational parameter count.
    #[inline]
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Total gate count (the quantity of paper Figs 1a, 3, 4).
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` when the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate list.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate after validating its operands; widens the declared
    /// parameter count if the gate references a new parameter.
    pub fn push(&mut self, gate: Gate) -> Result<&mut Self> {
        gate.validate(self.n_qubits)?;
        for e in gate.param_exprs() {
            if let Some(i) = e.param_index() {
                self.n_params = self.n_params.max(i + 1);
            }
        }
        self.gates.push(gate);
        Ok(self)
    }

    /// Appends a gate, panicking on invalid operands. The builder methods
    /// below use this; they are the normal construction path and operand
    /// errors there are programming bugs.
    fn push_unchecked(&mut self, gate: Gate) -> &mut Self {
        self.push(gate).expect("invalid gate operand");
        self
    }

    // --- builder methods -------------------------------------------------

    /// Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push_unchecked(Gate::X(q))
    }
    /// Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push_unchecked(Gate::Y(q))
    }
    /// Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push_unchecked(Gate::Z(q))
    }
    /// Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push_unchecked(Gate::H(q))
    }
    /// S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push_unchecked(Gate::S(q))
    }
    /// S† gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push_unchecked(Gate::Sdg(q))
    }
    /// T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push_unchecked(Gate::T(q))
    }
    /// T† gate.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push_unchecked(Gate::Tdg(q))
    }
    /// √X gate.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.push_unchecked(Gate::SX(q))
    }
    /// X rotation.
    pub fn rx(&mut self, q: usize, theta: impl Into<ParamExpr>) -> &mut Self {
        self.push_unchecked(Gate::RX(q, theta.into()))
    }
    /// Y rotation.
    pub fn ry(&mut self, q: usize, theta: impl Into<ParamExpr>) -> &mut Self {
        self.push_unchecked(Gate::RY(q, theta.into()))
    }
    /// Z rotation.
    pub fn rz(&mut self, q: usize, theta: impl Into<ParamExpr>) -> &mut Self {
        self.push_unchecked(Gate::RZ(q, theta.into()))
    }
    /// Phase rotation.
    pub fn p(&mut self, q: usize, lambda: impl Into<ParamExpr>) -> &mut Self {
        self.push_unchecked(Gate::P(q, lambda.into()))
    }
    /// General single-qubit unitary.
    pub fn u3(
        &mut self,
        q: usize,
        theta: impl Into<ParamExpr>,
        phi: impl Into<ParamExpr>,
        lambda: impl Into<ParamExpr>,
    ) -> &mut Self {
        self.push_unchecked(Gate::U3(q, theta.into(), phi.into(), lambda.into()))
    }
    /// CNOT.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push_unchecked(Gate::CX(control, target))
    }
    /// Controlled-Z.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push_unchecked(Gate::CZ(a, b))
    }
    /// Controlled-phase.
    pub fn cp(&mut self, a: usize, b: usize, lambda: impl Into<ParamExpr>) -> &mut Self {
        self.push_unchecked(Gate::CP(a, b, lambda.into()))
    }
    /// SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push_unchecked(Gate::SWAP(a, b))
    }
    /// ZZ rotation.
    pub fn rzz(&mut self, a: usize, b: usize, theta: impl Into<ParamExpr>) -> &mut Self {
        self.push_unchecked(Gate::RZZ(a, b, theta.into()))
    }

    // --- combinators ------------------------------------------------------

    /// Appends all gates of `other` (same register width required). The
    /// parameter spaces are shared: θ[i] in `other` remains θ[i].
    pub fn append(&mut self, other: &Circuit) -> Result<&mut Self> {
        if other.n_qubits != self.n_qubits {
            return Err(Error::DimensionMismatch {
                expected: self.n_qubits,
                got: other.n_qubits,
            });
        }
        for g in &other.gates {
            self.push(g.clone())?;
        }
        Ok(self)
    }

    /// Appends `other` with its parameter indices shifted past this
    /// circuit's, keeping the parameter spaces disjoint. Returns the shift
    /// applied.
    pub fn append_shifted(&mut self, other: &Circuit) -> Result<usize> {
        if other.n_qubits != self.n_qubits {
            return Err(Error::DimensionMismatch {
                expected: self.n_qubits,
                got: other.n_qubits,
            });
        }
        let delta = self.n_params;
        for g in &other.gates {
            let shifted = match g.clone() {
                Gate::RX(q, e) => Gate::RX(q, e.shifted(delta)),
                Gate::RY(q, e) => Gate::RY(q, e.shifted(delta)),
                Gate::RZ(q, e) => Gate::RZ(q, e.shifted(delta)),
                Gate::P(q, e) => Gate::P(q, e.shifted(delta)),
                Gate::CP(a, b, e) => Gate::CP(a, b, e.shifted(delta)),
                Gate::RZZ(a, b, e) => Gate::RZZ(a, b, e.shifted(delta)),
                Gate::U3(q, a, b, c) => {
                    Gate::U3(q, a.shifted(delta), b.shifted(delta), c.shifted(delta))
                }
                g => g,
            };
            self.push(shifted)?;
        }
        self.n_params = self.n_params.max(delta + other.n_params);
        Ok(delta)
    }

    /// The inverse circuit (gates reversed and individually inverted).
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::with_params(self.n_qubits, self.n_params);
        for g in self.gates.iter().rev() {
            inv.gates.push(g.inverse());
        }
        inv
    }

    /// Binds parameters, producing a fully concrete circuit.
    pub fn bind(&self, params: &[f64]) -> Result<Circuit> {
        if params.len() < self.n_params {
            return Err(Error::ParameterMismatch {
                expected: self.n_params,
                got: params.len(),
            });
        }
        let mut out = Circuit::new(self.n_qubits);
        for g in &self.gates {
            let bound = match g.clone() {
                Gate::RX(q, e) => Gate::RX(q, e.bound(params)?),
                Gate::RY(q, e) => Gate::RY(q, e.bound(params)?),
                Gate::RZ(q, e) => Gate::RZ(q, e.bound(params)?),
                Gate::P(q, e) => Gate::P(q, e.bound(params)?),
                Gate::CP(a, b, e) => Gate::CP(a, b, e.bound(params)?),
                Gate::RZZ(a, b, e) => Gate::RZZ(a, b, e.bound(params)?),
                Gate::U3(q, a, b, c) => {
                    Gate::U3(q, a.bound(params)?, b.bound(params)?, c.bound(params)?)
                }
                g => g,
            };
            out.gates.push(bound);
        }
        Ok(out)
    }

    /// `true` when no gate reads a variational parameter.
    pub fn is_concrete(&self) -> bool {
        self.gates.iter().all(|g| !g.is_symbolic())
    }

    /// Number of single-qubit gates.
    pub fn one_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.is_two_qubit()).count()
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Circuit depth: the longest chain of gates sharing qubits, computed
    /// with per-qubit frontier layers.
    pub fn depth(&self) -> usize {
        let mut layer = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let qs = g.qubits();
            let next = qs.iter().map(|&q| layer[q]).max().unwrap_or(0) + 1;
            for &q in &qs {
                layer[q] = next;
            }
            depth = depth.max(next);
        }
        depth
    }

    /// Histogram of gate mnemonics.
    pub fn gate_histogram(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut h = std::collections::BTreeMap::new();
        for g in &self.gates {
            *h.entry(g.name()).or_insert(0) += 1;
        }
        h
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Circuit: {} qubits, {} params, {} gates (depth {})",
            self.n_qubits,
            self.n_params,
            self.gates.len(),
            self.depth()
        )?;
        for (name, count) in self.gate_histogram() {
            writeln!(f, "  {name}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamExpr;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn builder_chains() {
        let c = bell();
        assert_eq!(c.len(), 2);
        assert_eq!(c.n_qubits(), 2);
        assert_eq!(c.one_qubit_count(), 1);
        assert_eq!(c.two_qubit_count(), 1);
    }

    #[test]
    fn push_validates() {
        let mut c = Circuit::new(2);
        assert!(c.push(Gate::H(5)).is_err());
        assert!(c.push(Gate::CX(0, 0)).is_err());
        assert!(c.push(Gate::CX(0, 1)).is_ok());
    }

    #[test]
    fn param_count_tracks_max_index() {
        let mut c = Circuit::new(1);
        c.rz(0, ParamExpr::var(4));
        assert_eq!(c.n_params(), 5);
        c.rx(0, ParamExpr::var(1));
        assert_eq!(c.n_params(), 5);
    }

    #[test]
    fn append_shares_params() {
        let mut a = Circuit::new(1);
        a.rz(0, ParamExpr::var(0));
        let mut b = Circuit::new(1);
        b.rx(0, ParamExpr::var(0));
        a.append(&b).unwrap();
        assert_eq!(a.n_params(), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn append_shifted_disjoint_params() {
        let mut a = Circuit::new(1);
        a.rz(0, ParamExpr::var(0));
        let mut b = Circuit::new(1);
        b.rx(0, ParamExpr::var(0));
        let delta = a.append_shifted(&b).unwrap();
        assert_eq!(delta, 1);
        assert_eq!(a.n_params(), 2);
        match a.gates()[1] {
            Gate::RX(_, ParamExpr::Var { index, .. }) => assert_eq!(index, 1),
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn append_rejects_width_mismatch() {
        let mut a = Circuit::new(2);
        assert!(a.append(&Circuit::new(3)).is_err());
    }

    #[test]
    fn bind_freezes_parameters() {
        let mut c = Circuit::new(1);
        c.rz(0, ParamExpr::scaled_var(0, 2.0));
        assert!(!c.is_concrete());
        let b = c.bind(&[0.5]).unwrap();
        assert!(b.is_concrete());
        match b.gates()[0] {
            Gate::RZ(_, ParamExpr::Const(v)) => assert!((v - 1.0).abs() < 1e-12),
            ref g => panic!("unexpected {g:?}"),
        }
        assert!(c.bind(&[]).is_err());
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).s(1);
        let inv = c.inverse();
        assert_eq!(inv.gates()[0], Gate::Sdg(1));
        assert_eq!(inv.gates()[1], Gate::CX(0, 1));
        assert_eq!(inv.gates()[2], Gate::H(0));
    }

    #[test]
    fn depth_computation() {
        // H(0), H(1) are parallel -> depth 1; CX then joins -> depth 2.
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        assert_eq!(c.depth(), 2);
        // A serial chain on one qubit.
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        assert_eq!(c.depth(), 3);
        assert_eq!(Circuit::new(3).depth(), 0);
    }

    #[test]
    fn histogram_counts() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        let h = c.gate_histogram();
        assert_eq!(h["h"], 2);
        assert_eq!(h["cx"], 1);
    }

    #[test]
    fn display_contains_summary() {
        let s = bell().to_string();
        assert!(s.contains("2 qubits"));
        assert!(s.contains("2 gates"));
    }
}
