//! OpenQASM 2.0 export/import (the interchange format XACC and most
//! toolchains speak).
//!
//! Exports any *concrete* circuit (fused blocks are first decomposed is
//! not supported — export before fusion) and imports the subset of QASM
//! this workspace emits: a single quantum register and the standard gate
//! names used by [`crate::gate::Gate`]. Round-tripping is exact for
//! every supported gate.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::param::ParamExpr;
use nwq_common::{Error, Result};
use std::fmt::Write as _;

fn angle_of(e: &ParamExpr) -> Result<f64> {
    match e {
        ParamExpr::Const(v) => Ok(*v),
        ParamExpr::Var { .. } => Err(Error::Invalid(
            "QASM export requires a concrete circuit; bind parameters first".into(),
        )),
    }
}

/// Serializes a concrete circuit as OpenQASM 2.0.
pub fn to_qasm(circuit: &Circuit) -> Result<String> {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    for g in circuit.gates() {
        match g {
            Gate::X(q) => {
                let _ = writeln!(out, "x q[{q}];");
            }
            Gate::Y(q) => {
                let _ = writeln!(out, "y q[{q}];");
            }
            Gate::Z(q) => {
                let _ = writeln!(out, "z q[{q}];");
            }
            Gate::H(q) => {
                let _ = writeln!(out, "h q[{q}];");
            }
            Gate::S(q) => {
                let _ = writeln!(out, "s q[{q}];");
            }
            Gate::Sdg(q) => {
                let _ = writeln!(out, "sdg q[{q}];");
            }
            Gate::T(q) => {
                let _ = writeln!(out, "t q[{q}];");
            }
            Gate::Tdg(q) => {
                let _ = writeln!(out, "tdg q[{q}];");
            }
            Gate::SX(q) => {
                let _ = writeln!(out, "sx q[{q}];");
            }
            Gate::RX(q, e) => {
                let _ = writeln!(out, "rx({:.17}) q[{q}];", angle_of(e)?);
            }
            Gate::RY(q, e) => {
                let _ = writeln!(out, "ry({:.17}) q[{q}];", angle_of(e)?);
            }
            Gate::RZ(q, e) => {
                let _ = writeln!(out, "rz({:.17}) q[{q}];", angle_of(e)?);
            }
            Gate::P(q, e) => {
                let _ = writeln!(out, "p({:.17}) q[{q}];", angle_of(e)?);
            }
            Gate::U3(q, t, p, l) => {
                let _ = writeln!(
                    out,
                    "u3({:.17},{:.17},{:.17}) q[{q}];",
                    angle_of(t)?,
                    angle_of(p)?,
                    angle_of(l)?
                );
            }
            Gate::CX(a, b) => {
                let _ = writeln!(out, "cx q[{a}],q[{b}];");
            }
            Gate::CZ(a, b) => {
                let _ = writeln!(out, "cz q[{a}],q[{b}];");
            }
            Gate::CP(a, b, e) => {
                let _ = writeln!(out, "cp({:.17}) q[{a}],q[{b}];", angle_of(e)?);
            }
            Gate::SWAP(a, b) => {
                let _ = writeln!(out, "swap q[{a}],q[{b}];");
            }
            Gate::RZZ(a, b, e) => {
                let _ = writeln!(out, "rzz({:.17}) q[{a}],q[{b}];", angle_of(e)?);
            }
            Gate::Fused1(..) | Gate::Fused2(..) => {
                return Err(Error::Invalid(
                    "fused blocks have no QASM form; export before fusion".into(),
                ));
            }
        }
    }
    Ok(out)
}

fn parse_qubit(token: &str) -> Result<usize> {
    let inner = token
        .trim()
        .strip_prefix("q[")
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| Error::Invalid(format!("bad qubit operand {token:?}")))?;
    inner
        .parse()
        .map_err(|_| Error::Invalid(format!("bad qubit index {inner:?}")))
}

fn parse_angles(spec: &str) -> Result<(String, Vec<f64>)> {
    if let Some(open) = spec.find('(') {
        let close = spec
            .rfind(')')
            .ok_or_else(|| Error::Invalid(format!("unbalanced parens in {spec:?}")))?;
        let name = spec[..open].to_string();
        let args = spec[open + 1..close]
            .split(',')
            .map(|a| {
                a.trim()
                    .parse::<f64>()
                    .map_err(|_| Error::Invalid(format!("bad angle {a:?}")))
            })
            .collect::<Result<Vec<f64>>>()?;
        Ok((name, args))
    } else {
        Ok((spec.to_string(), Vec::new()))
    }
}

/// Parses the OpenQASM 2.0 subset emitted by [`to_qasm`].
pub fn from_qasm(text: &str) -> Result<Circuit> {
    let mut circuit: Option<Circuit> = None;
    for raw in text.lines() {
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty()
            || line.starts_with("OPENQASM")
            || line.starts_with("include")
            || line.starts_with("creg")
        {
            continue;
        }
        let stmt = line
            .strip_suffix(';')
            .ok_or_else(|| Error::Invalid(format!("missing semicolon: {line:?}")))?;
        if let Some(decl) = stmt.strip_prefix("qreg ") {
            let n = parse_qubit(decl.trim())?;
            circuit = Some(Circuit::new(n));
            continue;
        }
        let c = circuit
            .as_mut()
            .ok_or_else(|| Error::Invalid("gate before qreg declaration".into()))?;
        let (head, operands) = stmt
            .split_once(' ')
            .ok_or_else(|| Error::Invalid(format!("bad statement {stmt:?}")))?;
        let (name, angles) = parse_angles(head)?;
        let qs: Vec<usize> = operands
            .split(',')
            .map(parse_qubit)
            .collect::<Result<Vec<usize>>>()?;
        let need = |k: usize| -> Result<()> {
            if qs.len() != k || angles.len() != expected_angles(&name) {
                return Err(Error::Invalid(format!("bad operands for {name}")));
            }
            Ok(())
        };
        let gate = match name.as_str() {
            "x" => {
                need(1)?;
                Gate::X(qs[0])
            }
            "y" => {
                need(1)?;
                Gate::Y(qs[0])
            }
            "z" => {
                need(1)?;
                Gate::Z(qs[0])
            }
            "h" => {
                need(1)?;
                Gate::H(qs[0])
            }
            "s" => {
                need(1)?;
                Gate::S(qs[0])
            }
            "sdg" => {
                need(1)?;
                Gate::Sdg(qs[0])
            }
            "t" => {
                need(1)?;
                Gate::T(qs[0])
            }
            "tdg" => {
                need(1)?;
                Gate::Tdg(qs[0])
            }
            "sx" => {
                need(1)?;
                Gate::SX(qs[0])
            }
            "rx" => {
                need(1)?;
                Gate::RX(qs[0], angles[0].into())
            }
            "ry" => {
                need(1)?;
                Gate::RY(qs[0], angles[0].into())
            }
            "rz" => {
                need(1)?;
                Gate::RZ(qs[0], angles[0].into())
            }
            "p" | "u1" => {
                need(1)?;
                Gate::P(qs[0], angles[0].into())
            }
            "u3" => {
                need(1)?;
                Gate::U3(qs[0], angles[0].into(), angles[1].into(), angles[2].into())
            }
            "cx" => {
                need(2)?;
                Gate::CX(qs[0], qs[1])
            }
            "cz" => {
                need(2)?;
                Gate::CZ(qs[0], qs[1])
            }
            "cp" => {
                need(2)?;
                Gate::CP(qs[0], qs[1], angles[0].into())
            }
            "swap" => {
                need(2)?;
                Gate::SWAP(qs[0], qs[1])
            }
            "rzz" => {
                need(2)?;
                Gate::RZZ(qs[0], qs[1], angles[0].into())
            }
            other => return Err(Error::Invalid(format!("unsupported gate {other:?}"))),
        };
        c.push(gate)?;
    }
    circuit.ok_or_else(|| Error::Invalid("no qreg declaration found".into()))
}

fn expected_angles(name: &str) -> usize {
    match name {
        "rx" | "ry" | "rz" | "p" | "u1" | "cp" | "rzz" => 1,
        "u3" => 3,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .rz(1, 0.7)
            .ry(2, -0.3)
            .swap(0, 2)
            .t(1)
            .sdg(2)
            .cp(1, 2, 0.25)
            .rzz(0, 1, -1.1)
            .sx(0)
            .u3(2, 0.1, 0.2, 0.3)
            .p(0, 0.9);
        c
    }

    #[test]
    fn roundtrip_preserves_gates_exactly() {
        let c = sample();
        let text = to_qasm(&c).unwrap();
        let back = from_qasm(&text).unwrap();
        assert_eq!(back.n_qubits(), c.n_qubits());
        assert_eq!(back.len(), c.len());
        let a = reference::run(&c, &[]).unwrap();
        let b = reference::run(&back, &[]).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }

    #[test]
    fn header_and_register_emitted() {
        let text = to_qasm(&sample()).unwrap();
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("cx q[0],q[1];"));
    }

    #[test]
    fn symbolic_circuit_export_rejected() {
        let mut c = Circuit::new(1);
        c.rz(0, ParamExpr::var(0));
        assert!(to_qasm(&c).is_err());
        let bound = c.bind(&[0.4]).unwrap();
        assert!(to_qasm(&bound).is_ok());
    }

    #[test]
    fn fused_blocks_rejected() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let (fused, _) = crate::fusion::fuse(&c).unwrap();
        assert!(to_qasm(&fused).is_err());
    }

    #[test]
    fn parse_handles_comments_and_blank_lines() {
        let text = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n\nqreg q[2];\n// a comment\nh q[0]; // trailing\ncx q[0],q[1];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.gates()[1], Gate::CX(0, 1));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(from_qasm("h q[0];").is_err()); // no qreg
        assert!(from_qasm("qreg q[2];\nfoo q[0];").is_err()); // unknown gate
        assert!(from_qasm("qreg q[2];\nh q[0]").is_err()); // missing semicolon
        assert!(from_qasm("qreg q[2];\nh q[5];").is_err()); // out of range
        assert!(from_qasm("qreg q[2];\nrx() q[0];").is_err()); // missing angle
    }

    #[test]
    fn uccsd_ansatz_roundtrips_through_qasm() {
        // Realistic payload: a bound chemistry ansatz.
        let mut c = Circuit::new(4);
        // A UCCSD-like fragment (basis changes + ladder + rotation).
        c.h(0)
            .h(2)
            .cx(0, 1)
            .cx(1, 2)
            .rz(2, 0.173)
            .cx(1, 2)
            .cx(0, 1)
            .h(2)
            .h(0);
        let back = from_qasm(&to_qasm(&c).unwrap()).unwrap();
        let a = reference::run(&c, &[]).unwrap();
        let b = reference::run(&back, &[]).unwrap();
        assert!(reference::states_equivalent(&a, &b, 1e-12));
    }
}
