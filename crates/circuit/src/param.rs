//! Symbolic gate parameters.
//!
//! Variational circuits are built once with symbolic angles and then bound
//! to concrete values every optimizer iteration. Ansatz constructions (e.g.
//! UCCSD Pauli exponentials) need angles of the form `c·θ_k + b`, which is
//! exactly what [`ParamExpr`] encodes — enough structure for the whole
//! workflow without a general expression tree.

use nwq_common::{Error, Result};
use std::fmt;

/// A gate angle: either a constant or an affine function of one variational
/// parameter, `coeff · θ[index] + offset`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParamExpr {
    /// A fixed angle.
    Const(f64),
    /// `coeff · θ[index] + offset`.
    Var {
        /// Index into the parameter vector.
        index: usize,
        /// Multiplier applied to the parameter.
        coeff: f64,
        /// Additive offset.
        offset: f64,
    },
}

impl ParamExpr {
    /// A bare reference to parameter `index`.
    pub fn var(index: usize) -> Self {
        ParamExpr::Var {
            index,
            coeff: 1.0,
            offset: 0.0,
        }
    }

    /// `coeff · θ[index]`.
    pub fn scaled_var(index: usize, coeff: f64) -> Self {
        ParamExpr::Var {
            index,
            coeff,
            offset: 0.0,
        }
    }

    /// Evaluates against a bound parameter vector.
    pub fn eval(&self, params: &[f64]) -> Result<f64> {
        match *self {
            ParamExpr::Const(v) => Ok(v),
            ParamExpr::Var {
                index,
                coeff,
                offset,
            } => params
                .get(index)
                .map(|&t| coeff * t + offset)
                .ok_or(Error::ParameterMismatch {
                    expected: index + 1,
                    got: params.len(),
                }),
        }
    }

    /// The parameter index this expression reads, if any.
    pub fn param_index(&self) -> Option<usize> {
        match *self {
            ParamExpr::Const(_) => None,
            ParamExpr::Var { index, .. } => Some(index),
        }
    }

    /// `true` for [`ParamExpr::Var`].
    pub fn is_symbolic(&self) -> bool {
        matches!(self, ParamExpr::Var { .. })
    }

    /// `d(angle)/dθ_j`: the chain-rule coefficient this expression
    /// contributes to parameter `j` (zero for constants and other
    /// parameters). The affine form makes this exact: `d(c·θ_j + b)/dθ_j
    /// = c`.
    pub fn grad_coeff(&self, j: usize) -> f64 {
        match *self {
            ParamExpr::Const(_) => 0.0,
            ParamExpr::Var { index, coeff, .. } => {
                if index == j {
                    coeff
                } else {
                    0.0
                }
            }
        }
    }

    /// Negated expression (used when inverting rotation gates).
    pub fn negated(&self) -> Self {
        match *self {
            ParamExpr::Const(v) => ParamExpr::Const(-v),
            ParamExpr::Var {
                index,
                coeff,
                offset,
            } => ParamExpr::Var {
                index,
                coeff: -coeff,
                offset: -offset,
            },
        }
    }

    /// Shifts the parameter index by `delta` (used when composing circuits
    /// with disjoint parameter spaces).
    pub fn shifted(&self, delta: usize) -> Self {
        match *self {
            ParamExpr::Const(v) => ParamExpr::Const(v),
            ParamExpr::Var {
                index,
                coeff,
                offset,
            } => ParamExpr::Var {
                index: index + delta,
                coeff,
                offset,
            },
        }
    }

    /// Resolves to a constant using `params`, producing a bound expression.
    pub fn bound(&self, params: &[f64]) -> Result<Self> {
        Ok(ParamExpr::Const(self.eval(params)?))
    }
}

impl From<f64> for ParamExpr {
    fn from(v: f64) -> Self {
        ParamExpr::Const(v)
    }
}

impl fmt::Display for ParamExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ParamExpr::Const(v) => write!(f, "{v:.6}"),
            ParamExpr::Var {
                index,
                coeff,
                offset,
            } => {
                if offset == 0.0 {
                    write!(f, "{coeff:.3}·θ{index}")
                } else {
                    write!(f, "{coeff:.3}·θ{index}+{offset:.3}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_eval() {
        assert_eq!(ParamExpr::Const(1.5).eval(&[]).unwrap(), 1.5);
        assert!(!ParamExpr::Const(1.5).is_symbolic());
        assert_eq!(ParamExpr::Const(1.5).param_index(), None);
    }

    #[test]
    fn var_eval() {
        let e = ParamExpr::scaled_var(1, 2.0);
        assert_eq!(e.eval(&[0.0, 0.25]).unwrap(), 0.5);
        assert!(e.is_symbolic());
        assert_eq!(e.param_index(), Some(1));
    }

    #[test]
    fn out_of_range_parameter_errors() {
        assert!(ParamExpr::var(3).eval(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn negation_and_shift() {
        let e = ParamExpr::Var {
            index: 0,
            coeff: 2.0,
            offset: 1.0,
        };
        assert_eq!(e.negated().eval(&[3.0]).unwrap(), -7.0);
        let s = e.shifted(4);
        assert_eq!(s.param_index(), Some(4));
        assert_eq!(s.eval(&[0., 0., 0., 0., 3.0]).unwrap(), 7.0);
    }

    #[test]
    fn binding_freezes_value() {
        let e = ParamExpr::var(0);
        let b = e.bound(&[0.7]).unwrap();
        assert_eq!(b, ParamExpr::Const(0.7));
        assert_eq!(b.eval(&[]).unwrap(), 0.7);
    }

    #[test]
    fn from_f64() {
        let e: ParamExpr = 0.3.into();
        assert_eq!(e, ParamExpr::Const(0.3));
    }
}
