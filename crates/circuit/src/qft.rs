//! Quantum Fourier transform builders, used by quantum phase estimation.

use crate::circuit::Circuit;
use nwq_common::Result;
use std::f64::consts::PI;

/// Appends the QFT on qubits `lo..lo+width` (with the standard final
/// qubit-reversal SWAPs included).
pub fn append_qft(circuit: &mut Circuit, lo: usize, width: usize) -> Result<()> {
    for j in (0..width).rev() {
        circuit.push(crate::gate::Gate::H(lo + j))?;
        for k in (0..j).rev() {
            let angle = PI / ((1usize << (j - k)) as f64);
            circuit.push(crate::gate::Gate::CP(lo + k, lo + j, angle.into()))?;
        }
    }
    for i in 0..width / 2 {
        circuit.push(crate::gate::Gate::SWAP(lo + i, lo + width - 1 - i))?;
    }
    Ok(())
}

/// Appends the inverse QFT on qubits `lo..lo+width`.
pub fn append_iqft(circuit: &mut Circuit, lo: usize, width: usize) -> Result<()> {
    let mut fwd = Circuit::new(circuit.n_qubits());
    append_qft(&mut fwd, lo, width)?;
    circuit.append(&fwd.inverse())?;
    Ok(())
}

/// Standalone QFT circuit on `width` qubits.
pub fn qft_circuit(width: usize) -> Result<Circuit> {
    let mut c = Circuit::new(width);
    append_qft(&mut c, 0, width)?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{fidelity, run, run_on, states_equivalent, zero_state};
    use nwq_common::{C64, C_ZERO};

    #[test]
    fn qft_gate_count() {
        // n H gates + n(n−1)/2 controlled phases + ⌊n/2⌋ swaps.
        let c = qft_circuit(4).unwrap();
        assert_eq!(c.len(), 4 + 6 + 2);
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let c = qft_circuit(3).unwrap();
        let psi = run(&c, &[]).unwrap();
        let expect = C64::real(1.0 / (8.0f64).sqrt());
        for a in &psi {
            assert!(a.approx_eq(expect, 1e-12));
        }
    }

    #[test]
    fn qft_matches_dft_matrix_on_basis_states() {
        // QFT|x⟩ = (1/√N) Σ_y ω^{xy} |y⟩ with ω = e^{2πi/N}.
        let n = 3;
        let dimension = 1usize << n;
        let c = qft_circuit(n).unwrap();
        for x in 0..dimension {
            let mut init = zero_state(n);
            init[0] = C_ZERO;
            init[x] = nwq_common::C_ONE;
            let psi = run_on(&c, &[], init).unwrap();
            let scale = 1.0 / (dimension as f64).sqrt();
            for (y, a) in psi.iter().enumerate() {
                let expect = C64::cis(2.0 * PI * (x * y) as f64 / dimension as f64) * scale;
                assert!(a.approx_eq(expect, 1e-10), "x={x} y={y}: {a} vs {expect}");
            }
        }
    }

    #[test]
    fn iqft_inverts_qft() {
        let n = 4;
        let mut c = Circuit::new(n);
        // Arbitrary preparation.
        c.h(0).cx(0, 2).ry(1, 0.7).rz(3, -0.4);
        let prepared = run(&c, &[]).unwrap();
        append_qft(&mut c, 0, n).unwrap();
        append_iqft(&mut c, 0, n).unwrap();
        let roundtrip = run(&c, &[]).unwrap();
        assert!(states_equivalent(&prepared, &roundtrip, 1e-10));
        assert!(fidelity(&prepared, &roundtrip) > 1.0 - 1e-10);
    }

    #[test]
    fn qft_on_register_subrange() {
        // QFT acting on the middle of a wider register leaves outer qubits alone.
        let mut c = Circuit::new(4);
        c.x(0).x(3);
        append_qft(&mut c, 1, 2).unwrap();
        let psi = run(&c, &[]).unwrap();
        // Qubits 0 and 3 remain set: support only on indices with bits 0,3.
        for (i, a) in psi.iter().enumerate() {
            if a.norm() > 1e-12 {
                assert_eq!(i & 0b1001, 0b1001, "index {i} leaked outside");
            }
        }
    }

    use std::f64::consts::PI;
}
