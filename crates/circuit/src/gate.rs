//! The gate set of the simulator.
//!
//! NWQ-Sim natively supports one- and two-qubit gates (paper §4.3); larger
//! unitaries never appear, which bounds fused matrices at 4×4. Fused blocks
//! produced by the transpiler are first-class gates ([`Gate::Fused1`] /
//! [`Gate::Fused2`]) so the executor treats them uniformly.

use crate::param::ParamExpr;
use nwq_common::mat::{
    mat_cp, mat_cx, mat_cz, mat_dcp, mat_dp, mat_drx, mat_dry, mat_drz, mat_drzz, mat_du3_dlambda,
    mat_du3_dphi, mat_du3_dtheta, mat_h, mat_p, mat_rx, mat_ry, mat_rz, mat_rzz, mat_s, mat_sdg,
    mat_swap, mat_sx, mat_t, mat_tdg, mat_u3, mat_x, mat_y, mat_z,
};
use nwq_common::{Error, Mat2, Mat4, Result, C64};

/// A quantum gate instance (operation + qubit operands + parameters).
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Pauli-X on a qubit.
    X(usize),
    /// Pauli-Y on a qubit.
    Y(usize),
    /// Pauli-Z on a qubit.
    Z(usize),
    /// Hadamard.
    H(usize),
    /// Phase gate S.
    S(usize),
    /// Inverse phase gate S†.
    Sdg(usize),
    /// T gate.
    T(usize),
    /// T† gate.
    Tdg(usize),
    /// √X gate.
    SX(usize),
    /// X rotation.
    RX(usize, ParamExpr),
    /// Y rotation.
    RY(usize, ParamExpr),
    /// Z rotation.
    RZ(usize, ParamExpr),
    /// Phase rotation `P(λ) = diag(1, e^{iλ})`.
    P(usize, ParamExpr),
    /// General single-qubit unitary `U3(θ, φ, λ)`.
    U3(usize, ParamExpr, ParamExpr, ParamExpr),
    /// CNOT: control, target.
    CX(usize, usize),
    /// Controlled-Z.
    CZ(usize, usize),
    /// Controlled-phase.
    CP(usize, usize, ParamExpr),
    /// SWAP.
    SWAP(usize, usize),
    /// Two-qubit ZZ rotation `exp(−iθ Z⊗Z/2)`.
    RZZ(usize, usize, ParamExpr),
    /// A fused single-qubit unitary produced by the transpiler.
    Fused1(usize, Mat2),
    /// A fused two-qubit unitary produced by the transpiler; matrix index
    /// convention: first qubit is the high bit.
    Fused2(usize, usize, Mat4),
}

/// A concrete gate matrix, sized by arity.
#[derive(Clone, Debug)]
pub enum GateMatrix {
    /// Single-qubit unitary on the contained qubit.
    One(usize, Mat2),
    /// Two-qubit unitary on `(high, low)` index convention.
    Two(usize, usize, Mat4),
}

impl Gate {
    /// The qubits this gate acts on (1 or 2 entries).
    pub fn qubits(&self) -> Vec<usize> {
        use Gate::*;
        match *self {
            X(q)
            | Y(q)
            | Z(q)
            | H(q)
            | S(q)
            | Sdg(q)
            | T(q)
            | Tdg(q)
            | SX(q)
            | RX(q, _)
            | RY(q, _)
            | RZ(q, _)
            | P(q, _)
            | U3(q, _, _, _)
            | Fused1(q, _) => vec![q],
            CX(a, b) | CZ(a, b) | CP(a, b, _) | SWAP(a, b) | RZZ(a, b, _) | Fused2(a, b, _) => {
                vec![a, b]
            }
        }
    }

    /// `true` for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        self.qubits().len() == 2
    }

    /// `true` when the gate reads a variational parameter.
    pub fn is_symbolic(&self) -> bool {
        self.param_exprs().iter().any(|e| e.is_symbolic())
    }

    /// The parameter expressions of the gate (empty for fixed gates).
    pub fn param_exprs(&self) -> Vec<ParamExpr> {
        use Gate::*;
        match *self {
            RX(_, e) | RY(_, e) | RZ(_, e) | P(_, e) | CP(_, _, e) | RZZ(_, _, e) => vec![e],
            U3(_, a, b, c) => vec![a, b, c],
            _ => Vec::new(),
        }
    }

    /// Short mnemonic used in printing and statistics.
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            X(_) => "x",
            Y(_) => "y",
            Z(_) => "z",
            H(_) => "h",
            S(_) => "s",
            Sdg(_) => "sdg",
            T(_) => "t",
            Tdg(_) => "tdg",
            SX(_) => "sx",
            RX(..) => "rx",
            RY(..) => "ry",
            RZ(..) => "rz",
            P(..) => "p",
            U3(..) => "u3",
            CX(..) => "cx",
            CZ(..) => "cz",
            CP(..) => "cp",
            SWAP(..) => "swap",
            RZZ(..) => "rzz",
            Fused1(..) => "fused1",
            Fused2(..) => "fused2",
        }
    }

    /// Resolves the gate to its concrete matrix under `params`.
    pub fn matrix(&self, params: &[f64]) -> Result<GateMatrix> {
        use Gate::*;
        Ok(match self {
            X(q) => GateMatrix::One(*q, mat_x()),
            Y(q) => GateMatrix::One(*q, mat_y()),
            Z(q) => GateMatrix::One(*q, mat_z()),
            H(q) => GateMatrix::One(*q, mat_h()),
            S(q) => GateMatrix::One(*q, mat_s()),
            Sdg(q) => GateMatrix::One(*q, mat_sdg()),
            T(q) => GateMatrix::One(*q, mat_t()),
            Tdg(q) => GateMatrix::One(*q, mat_tdg()),
            SX(q) => GateMatrix::One(*q, mat_sx()),
            RX(q, e) => GateMatrix::One(*q, mat_rx(e.eval(params)?)),
            RY(q, e) => GateMatrix::One(*q, mat_ry(e.eval(params)?)),
            RZ(q, e) => GateMatrix::One(*q, mat_rz(e.eval(params)?)),
            P(q, e) => GateMatrix::One(*q, mat_p(e.eval(params)?)),
            U3(q, t, p, l) => GateMatrix::One(
                *q,
                mat_u3(t.eval(params)?, p.eval(params)?, l.eval(params)?),
            ),
            CX(a, b) => GateMatrix::Two(*a, *b, mat_cx()),
            CZ(a, b) => GateMatrix::Two(*a, *b, mat_cz()),
            CP(a, b, e) => GateMatrix::Two(*a, *b, mat_cp(e.eval(params)?)),
            SWAP(a, b) => GateMatrix::Two(*a, *b, mat_swap()),
            RZZ(a, b, e) => GateMatrix::Two(*a, *b, mat_rzz(e.eval(params)?)),
            Fused1(q, m) => GateMatrix::One(*q, *m),
            Fused2(a, b, m) => GateMatrix::Two(*a, *b, *m),
        })
    }

    /// The exact inverse gate `G†`. Every variant has a closed form:
    /// self-inverse gates map to themselves, the fixed phase gates swap
    /// with their dagger twins, rotations negate their angle expression
    /// symbolically (so daggering a symbolic circuit stays symbolic), U3
    /// swaps and negates its Euler angles, √X falls back to its exact
    /// fused conjugate-transpose, and fused matrices dagger directly.
    pub fn dagger(&self) -> Gate {
        use Gate::*;
        match self.clone() {
            S(q) => Sdg(q),
            Sdg(q) => S(q),
            T(q) => Tdg(q),
            Tdg(q) => T(q),
            SX(q) => Fused1(q, mat_sx().dagger()),
            RX(q, e) => RX(q, e.negated()),
            RY(q, e) => RY(q, e.negated()),
            RZ(q, e) => RZ(q, e.negated()),
            P(q, e) => P(q, e.negated()),
            U3(q, t, p, l) => U3(q, t.negated(), l.negated(), p.negated()),
            CP(a, b, e) => CP(a, b, e.negated()),
            RZZ(a, b, e) => RZZ(a, b, e.negated()),
            Fused1(q, m) => Fused1(q, m.dagger()),
            Fused2(a, b, m) => Fused2(a, b, m.dagger()),
            g @ (X(_) | Y(_) | Z(_) | H(_) | CX(..) | CZ(..) | SWAP(..)) => g,
        }
    }

    /// The inverse gate — alias for [`Gate::dagger`] (gates are unitary,
    /// so the two coincide). Symbolic parameters invert symbolically.
    pub fn inverse(&self) -> Gate {
        self.dagger()
    }

    /// The matrix derivative `∂G/∂θ_j` under `params`, with the chain rule
    /// through the gate's affine angle expressions applied. Returns
    /// `Ok(None)` when the gate does not depend on parameter `j` — the
    /// adjoint sweep skips such gates without allocating. The returned
    /// matrix is *not* unitary.
    pub fn derivative(&self, params: &[f64], j: usize) -> Result<Option<GateMatrix>> {
        use Gate::*;
        let scaled2 = |m: Mat2, chain: f64| m.scale(C64::real(chain));
        let scaled4 = |m: Mat4, chain: f64| {
            let mut out = m;
            for r in 0..4 {
                for c in 0..4 {
                    out.0[r][c] = m.0[r][c] * chain;
                }
            }
            out
        };
        Ok(match self {
            RX(q, e) => match e.grad_coeff(j) {
                0.0 => None,
                ch => Some(GateMatrix::One(*q, scaled2(mat_drx(e.eval(params)?), ch))),
            },
            RY(q, e) => match e.grad_coeff(j) {
                0.0 => None,
                ch => Some(GateMatrix::One(*q, scaled2(mat_dry(e.eval(params)?), ch))),
            },
            RZ(q, e) => match e.grad_coeff(j) {
                0.0 => None,
                ch => Some(GateMatrix::One(*q, scaled2(mat_drz(e.eval(params)?), ch))),
            },
            P(q, e) => match e.grad_coeff(j) {
                0.0 => None,
                ch => Some(GateMatrix::One(*q, scaled2(mat_dp(e.eval(params)?), ch))),
            },
            U3(q, t, p, l) => {
                let (ct, cp, cl) = (t.grad_coeff(j), p.grad_coeff(j), l.grad_coeff(j));
                if ct == 0.0 && cp == 0.0 && cl == 0.0 {
                    return Ok(None);
                }
                let (tv, pv, lv) = (t.eval(params)?, p.eval(params)?, l.eval(params)?);
                let mut sum = Mat2([[nwq_common::C_ZERO; 2]; 2]);
                for (chain, partial) in [
                    (ct, mat_du3_dtheta(tv, pv, lv)),
                    (cp, mat_du3_dphi(tv, pv, lv)),
                    (cl, mat_du3_dlambda(tv, pv, lv)),
                ] {
                    if chain != 0.0 {
                        for r in 0..2 {
                            for c in 0..2 {
                                sum.0[r][c] += partial.0[r][c] * chain;
                            }
                        }
                    }
                }
                Some(GateMatrix::One(*q, sum))
            }
            CP(a, b, e) => match e.grad_coeff(j) {
                0.0 => None,
                ch => Some(GateMatrix::Two(
                    *a,
                    *b,
                    scaled4(mat_dcp(e.eval(params)?), ch),
                )),
            },
            RZZ(a, b, e) => match e.grad_coeff(j) {
                0.0 => None,
                ch => Some(GateMatrix::Two(
                    *a,
                    *b,
                    scaled4(mat_drzz(e.eval(params)?), ch),
                )),
            },
            _ => None,
        })
    }

    /// Validates qubit operands against a register of `n_qubits`.
    pub fn validate(&self, n_qubits: usize) -> Result<()> {
        let qs = self.qubits();
        for &q in &qs {
            if q >= n_qubits {
                return Err(Error::QubitOutOfRange { qubit: q, n_qubits });
            }
        }
        if qs.len() == 2 && qs[0] == qs[1] {
            return Err(Error::DuplicateQubit(qs[0]));
        }
        Ok(())
    }

    /// Remaps qubit operands through `f` (used by the distributed executor
    /// when relabeling local/global qubits).
    pub fn remapped(&self, f: impl Fn(usize) -> usize) -> Gate {
        use Gate::*;
        match self.clone() {
            X(q) => X(f(q)),
            Y(q) => Y(f(q)),
            Z(q) => Z(f(q)),
            H(q) => H(f(q)),
            S(q) => S(f(q)),
            Sdg(q) => Sdg(f(q)),
            T(q) => T(f(q)),
            Tdg(q) => Tdg(f(q)),
            SX(q) => SX(f(q)),
            RX(q, e) => RX(f(q), e),
            RY(q, e) => RY(f(q), e),
            RZ(q, e) => RZ(f(q), e),
            P(q, e) => P(f(q), e),
            U3(q, a, b, c) => U3(f(q), a, b, c),
            CX(a, b) => CX(f(a), f(b)),
            CZ(a, b) => CZ(f(a), f(b)),
            CP(a, b, e) => CP(f(a), f(b), e),
            SWAP(a, b) => SWAP(f(a), f(b)),
            RZZ(a, b, e) => RZZ(f(a), f(b), e),
            Fused1(q, m) => Fused1(f(q), m),
            Fused2(a, b, m) => Fused2(f(a), f(b), m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_common::mat::Mat2;

    #[test]
    fn qubits_and_arity() {
        assert_eq!(Gate::H(3).qubits(), vec![3]);
        assert_eq!(Gate::CX(1, 4).qubits(), vec![1, 4]);
        assert!(Gate::CX(1, 4).is_two_qubit());
        assert!(!Gate::RZ(0, ParamExpr::var(0)).is_two_qubit());
    }

    #[test]
    fn symbolic_detection() {
        assert!(Gate::RZ(0, ParamExpr::var(0)).is_symbolic());
        assert!(!Gate::RZ(0, ParamExpr::Const(0.4)).is_symbolic());
        assert!(!Gate::H(0).is_symbolic());
        assert!(Gate::U3(0, 0.1.into(), ParamExpr::var(2), 0.3.into()).is_symbolic());
    }

    #[test]
    fn matrix_resolution_with_params() {
        let g = Gate::RZ(0, ParamExpr::scaled_var(0, 2.0));
        match g.matrix(&[0.35]).unwrap() {
            GateMatrix::One(q, m) => {
                assert_eq!(q, 0);
                assert!(m.approx_eq(&mat_rz(0.7), 1e-12));
            }
            _ => panic!("wrong arity"),
        }
    }

    #[test]
    fn matrix_fails_without_params() {
        assert!(Gate::RZ(0, ParamExpr::var(0)).matrix(&[]).is_err());
    }

    #[test]
    fn all_gates_produce_unitary_matrices() {
        let e = ParamExpr::Const(0.73);
        let gates = vec![
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::SX(0),
            Gate::RX(0, e),
            Gate::RY(0, e),
            Gate::RZ(0, e),
            Gate::P(0, e),
            Gate::U3(0, e, e, e),
            Gate::CX(0, 1),
            Gate::CZ(0, 1),
            Gate::CP(0, 1, e),
            Gate::SWAP(0, 1),
            Gate::RZZ(0, 1, e),
        ];
        for g in gates {
            match g.matrix(&[]).unwrap() {
                GateMatrix::One(_, m) => assert!(m.is_unitary(1e-12), "{}", g.name()),
                GateMatrix::Two(_, _, m) => assert!(m.is_unitary(1e-12), "{}", g.name()),
            }
        }
    }

    /// The complete gate set under audit: one instance of every `Gate`
    /// variant, symbolic where the variant supports it (bound against
    /// `DAGGER_PARAMS`), exercising awkward angles and reversed qubit
    /// order.
    const DAGGER_PARAMS: [f64; 2] = [0.918273645, -2.7181];
    fn every_gate_variant() -> Vec<Gate> {
        let sym = ParamExpr::scaled_var(0, 1.75);
        let sym2 = ParamExpr::Var {
            index: 1,
            coeff: -0.5,
            offset: 0.3,
        };
        vec![
            Gate::X(0),
            Gate::Y(1),
            Gate::Z(0),
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(1),
            Gate::T(0),
            Gate::Tdg(1),
            Gate::SX(0),
            Gate::RX(0, sym),
            Gate::RY(1, sym2),
            Gate::RZ(0, ParamExpr::Const(1.234)),
            Gate::P(0, sym),
            Gate::U3(0, sym, sym2, ParamExpr::Const(-0.4)),
            Gate::CX(0, 1),
            Gate::CX(1, 0),
            Gate::CZ(0, 1),
            Gate::CP(0, 1, sym),
            Gate::SWAP(0, 1),
            Gate::RZZ(1, 0, sym2),
            Gate::Fused1(0, mat_sx() * mat_u3(0.7, -1.1, 0.2)),
            Gate::Fused2(1, 0, mat_cx() * mat_rzz(0.9)),
        ]
    }

    #[test]
    fn every_variant_daggers_to_exact_inverse() {
        // Bitwise-safe tolerance: each product entry is a 2- or 4-term dot
        // product of exactly representable conjugate pairs, so G·G† lands
        // within a few ulps of I — far tighter than the 1e-12 the old
        // audit used, and tight enough to catch any sign/transpose slip.
        let tol = 1e-15;
        let gates = every_gate_variant();
        // Audit is exhaustive: every mnemonic in the gate set is present.
        let names: std::collections::BTreeSet<&str> = gates.iter().map(|g| g.name()).collect();
        for expected in [
            "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "rx", "ry", "rz", "p", "u3", "cx",
            "cz", "cp", "swap", "rzz", "fused1", "fused2",
        ] {
            assert!(names.contains(expected), "audit is missing {expected}");
        }
        for g in gates {
            let d = g.dagger();
            // Dagger is an involution at the matrix level (SX† lowers to a
            // Fused1, so name-level round-tripping is not guaranteed).
            match (
                g.matrix(&DAGGER_PARAMS).unwrap(),
                d.dagger().matrix(&DAGGER_PARAMS).unwrap(),
            ) {
                (GateMatrix::One(q, m), GateMatrix::One(qdd, mdd)) => {
                    assert_eq!(q, qdd, "{}", g.name());
                    assert!(mdd.approx_eq(&m, tol), "{}: (G†)† ≠ G", g.name());
                }
                (GateMatrix::Two(a, b, m), GateMatrix::Two(add, bdd, mdd)) => {
                    assert_eq!((a, b), (add, bdd), "{}", g.name());
                    assert!(mdd.approx_eq(&m, tol), "{}: (G†)† ≠ G", g.name());
                }
                _ => panic!("{}: double dagger changed arity", g.name()),
            }
            match (
                g.matrix(&DAGGER_PARAMS).unwrap(),
                d.matrix(&DAGGER_PARAMS).unwrap(),
            ) {
                (GateMatrix::One(q, m), GateMatrix::One(qd, md)) => {
                    assert_eq!(q, qd, "{}", g.name());
                    assert!(
                        (md * m).approx_eq(&Mat2::identity(), tol),
                        "{}: G†·G ≠ I",
                        g.name()
                    );
                    assert!(
                        (m * md).approx_eq(&Mat2::identity(), tol),
                        "{}: G·G† ≠ I",
                        g.name()
                    );
                    // The dagger is the exact conjugate transpose, not
                    // merely an inverse-up-to-phase.
                    assert!(md.approx_eq(&m.dagger(), tol), "{}", g.name());
                }
                (GateMatrix::Two(a, b, m), GateMatrix::Two(ad, bd, md)) => {
                    assert_eq!((a, b), (ad, bd), "{}", g.name());
                    assert!(
                        (md * m).approx_eq(&Mat4::identity(), tol),
                        "{}: G†·G ≠ I",
                        g.name()
                    );
                    assert!(
                        (m * md).approx_eq(&Mat4::identity(), tol),
                        "{}: G·G† ≠ I",
                        g.name()
                    );
                    assert!(md.approx_eq(&m.dagger(), tol), "{}", g.name());
                }
                _ => panic!("{}: dagger changed arity", g.name()),
            }
        }
    }

    #[test]
    fn gate_derivatives_match_central_differences() {
        let params = DAGGER_PARAMS.to_vec();
        let eps = 1e-6;
        for g in every_gate_variant() {
            for j in 0..2 {
                let analytic = g.derivative(&params, j).unwrap();
                let depends = g.param_exprs().iter().any(|e| e.grad_coeff(j) != 0.0);
                assert_eq!(analytic.is_some(), depends, "{} wrt θ{j}", g.name());
                let Some(analytic) = analytic else { continue };
                let mut p = params.clone();
                p[j] += eps;
                let plus = g.matrix(&p).unwrap();
                p[j] -= 2.0 * eps;
                let minus = g.matrix(&p).unwrap();
                match (analytic, plus, minus) {
                    (GateMatrix::One(_, d), GateMatrix::One(_, mp), GateMatrix::One(_, mm)) => {
                        for r in 0..2 {
                            for c in 0..2 {
                                let fd = (mp.0[r][c] - mm.0[r][c]) * (0.5 / eps);
                                assert!(
                                    d.0[r][c].approx_eq(fd, 1e-8),
                                    "{} θ{j} [{r}][{c}]: {:?} vs {fd:?}",
                                    g.name(),
                                    d.0[r][c]
                                );
                            }
                        }
                    }
                    (
                        GateMatrix::Two(_, _, d),
                        GateMatrix::Two(_, _, mp),
                        GateMatrix::Two(_, _, mm),
                    ) => {
                        for r in 0..4 {
                            for c in 0..4 {
                                let fd = (mp.0[r][c] - mm.0[r][c]) * (0.5 / eps);
                                assert!(
                                    d.0[r][c].approx_eq(fd, 1e-8),
                                    "{} θ{j} [{r}][{c}]: {:?} vs {fd:?}",
                                    g.name(),
                                    d.0[r][c]
                                );
                            }
                        }
                    }
                    _ => panic!("derivative arity mismatch for {}", g.name()),
                }
            }
        }
    }

    #[test]
    fn symbolic_inverse_negates_parameter() {
        let g = Gate::RZ(0, ParamExpr::var(3));
        match g.inverse() {
            Gate::RZ(
                0,
                ParamExpr::Var {
                    index: 3,
                    coeff,
                    offset,
                },
            ) => {
                assert_eq!(coeff, -1.0);
                assert_eq!(offset, 0.0);
            }
            other => panic!("unexpected inverse {other:?}"),
        }
    }

    #[test]
    fn validation() {
        assert!(Gate::H(2).validate(2).is_err());
        assert!(Gate::H(1).validate(2).is_ok());
        assert!(Gate::CX(1, 1).validate(3).is_err());
        assert!(Gate::CX(0, 2).validate(3).is_ok());
    }

    #[test]
    fn remapping() {
        let g = Gate::CX(0, 1).remapped(|q| q + 2);
        assert_eq!(g, Gate::CX(2, 3));
        let g = Gate::RZ(1, ParamExpr::var(0)).remapped(|q| 5 - q);
        assert_eq!(g.qubits(), vec![4]);
    }
}
