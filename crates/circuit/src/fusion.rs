//! Gate fusion (paper §4.3).
//!
//! A simulator is free of hardware basis-gate and connectivity constraints,
//! so any run of consecutive gates on the same qubit(s) can be replaced by
//! their matrix product. NWQ-Sim deliberately caps fusion at two qubits:
//! a fused k-qubit gate costs a 2^k × 2^k matrix application, so beyond two
//! qubits the matrix growth cancels the savings (§4.3.1).
//!
//! The pass below is a single linear scan maintaining, per qubit, the index
//! of the *latest* fused block touching that qubit. Merging a gate into an
//! earlier block is sound because every block emitted after it acts on
//! disjoint qubits (otherwise the per-qubit pointer would have been
//! overwritten), and operators on disjoint qubits commute.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateMatrix};
use nwq_common::mat::{embed_high, embed_low};
use nwq_common::{Error, Mat2, Mat4, Result};

/// Statistics of one fusion run (the numbers behind paper Fig 4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Gates in the input circuit.
    pub gates_before: usize,
    /// Fused blocks in the output circuit.
    pub gates_after: usize,
}

impl FusionStats {
    /// Fractional reduction in gate count, e.g. `0.52` for 52 %.
    pub fn reduction(&self) -> f64 {
        if self.gates_before == 0 {
            0.0
        } else {
            1.0 - self.gates_after as f64 / self.gates_before as f64
        }
    }
}

#[derive(Clone)]
enum Block {
    One(usize, Mat2),
    Two(usize, usize, Mat4),
    /// Absorbed into a later block; emits nothing.
    Dead,
}

/// Fuses a *concrete* circuit into maximal ≤2-qubit blocks, returning the
/// fused circuit and statistics. Symbolic circuits must be bound first
/// (or use [`fuse_bound`] to bind and fuse in one scan).
pub fn fuse(circuit: &Circuit) -> Result<(Circuit, FusionStats)> {
    if !circuit.is_concrete() {
        return Err(Error::Invalid(
            "gate fusion requires a concrete (bound) circuit".into(),
        ));
    }
    fuse_bound(circuit, &[])
}

/// Binds every `ParamExpr` against `params` and fuses in the same linear
/// scan, so parameterized ansatz gates fuse without an intermediate bound
/// `Circuit` allocation. This is the bind-time entry point used by the
/// compiled-plan layer in `nwq-statevec`.
pub fn fuse_bound(circuit: &Circuit, params: &[f64]) -> Result<(Circuit, FusionStats)> {
    let n = circuit.n_qubits();
    let mut blocks: Vec<Block> = Vec::with_capacity(circuit.len());
    // For each qubit: index into `blocks` of the latest block touching it.
    let mut active: Vec<Option<usize>> = vec![None; n];

    for gate in circuit.gates() {
        match gate.matrix(params)? {
            GateMatrix::One(q, m) => {
                let merged = if let Some(i) = active[q] {
                    match &mut blocks[i] {
                        Block::One(_, acc) => {
                            *acc = m * *acc;
                            true
                        }
                        Block::Two(a, _b, acc) => {
                            let high = *a == q;
                            let emb = if high { embed_high(&m) } else { embed_low(&m) };
                            *acc = emb * *acc;
                            true
                        }
                        Block::Dead => false,
                    }
                } else {
                    false
                };
                if !merged {
                    blocks.push(Block::One(q, m));
                    active[q] = Some(blocks.len() - 1);
                }
            }
            GateMatrix::Two(a, b, m) => {
                // Same unordered pair as the active block on both qubits?
                let ia = active[a];
                let ib = active[b];
                let same_pair = match (ia, ib) {
                    (Some(i), Some(j)) if i == j => matches!(&blocks[i], Block::Two(..)),
                    _ => false,
                };
                if same_pair {
                    let i = ia.unwrap();
                    if let Block::Two(ba, _bb, acc) = &mut blocks[i] {
                        // Align qubit order with the stored block.
                        let m_aligned = if *ba == a { m } else { m.swap_qubits() };
                        *acc = m_aligned * *acc;
                    }
                    continue;
                }
                // Start a new two-qubit block, absorbing any pending
                // single-qubit blocks on its operands.
                let mut acc = m;
                for (q, is_high) in [(a, true), (b, false)] {
                    if let Some(i) = active[q] {
                        if let Block::One(_, m1) = blocks[i] {
                            let emb = if is_high {
                                embed_high(&m1)
                            } else {
                                embed_low(&m1)
                            };
                            acc = acc * emb;
                            blocks[i] = Block::Dead;
                        }
                    }
                }
                blocks.push(Block::Two(a, b, acc));
                let idx = blocks.len() - 1;
                active[a] = Some(idx);
                active[b] = Some(idx);
            }
        }
    }

    let mut out = Circuit::new(n);
    for b in blocks {
        match b {
            Block::One(q, m) => {
                out.push(Gate::Fused1(q, m))?;
            }
            Block::Two(a, b, m) => {
                out.push(Gate::Fused2(a, b, m))?;
            }
            Block::Dead => {}
        }
    }
    let stats = FusionStats {
        gates_before: circuit.len(),
        gates_after: out.len(),
    };
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamExpr;
    use nwq_common::mat::{mat_h, mat_x};

    #[test]
    fn adjacent_single_qubit_gates_fuse() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0).s(0);
        let (fused, stats) = fuse(&c).unwrap();
        assert_eq!(fused.len(), 1);
        assert_eq!(stats.gates_before, 4);
        assert_eq!(stats.gates_after, 1);
        assert!(stats.reduction() > 0.74);
    }

    #[test]
    fn fused_matrix_is_product_in_program_order() {
        let mut c = Circuit::new(1);
        c.h(0).x(0);
        let (fused, _) = fuse(&c).unwrap();
        match fused.gates()[0] {
            Gate::Fused1(0, m) => {
                // Program order H then X means matrix X·H.
                assert!(m.approx_eq(&(mat_x() * mat_h()), 1e-12));
            }
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn single_qubit_gates_absorb_into_two_qubit_block() {
        // H(0) H(1) CX(0,1) -> one fused 2q gate.
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        let (fused, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 1);
        assert!(matches!(fused.gates()[0], Gate::Fused2(0, 1, _)));
    }

    #[test]
    fn trailing_single_qubit_gate_merges_into_block() {
        // CX(0,1) then H(1): H embeds into the block.
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(1);
        let (_, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 1);
    }

    #[test]
    fn same_pair_two_qubit_gates_fuse_even_reversed() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0).cx(0, 1); // a SWAP
        let (fused, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 1);
        match fused.gates()[0] {
            Gate::Fused2(0, 1, m) => {
                assert!(m.approx_eq(&nwq_common::mat::mat_swap(), 1e-12));
            }
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn disjoint_pairs_do_not_fuse() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let (_, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 2);
    }

    #[test]
    fn overlapping_pairs_do_not_fuse() {
        // CX(0,1), CX(1,2) share a qubit but not the full pair: a fused
        // block would be 3-qubit, which NWQ-Sim rejects by design (§4.3).
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2);
        let (_, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 2);
    }

    #[test]
    fn interleaved_blocks_preserve_commuting_reorder_only() {
        // Gate on qubit 2 lands between two gates on (0,1); the (0,1) gates
        // still fuse because qubit 2 is disjoint.
        let mut c = Circuit::new(3);
        c.cx(0, 1).h(2).cz(0, 1);
        let (_, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 2);
    }

    #[test]
    fn intervening_gate_on_operand_blocks_fusion() {
        // CX(0,1), H(0) retargets qubit 0's active block to ... the same
        // block (merge). But CX(0,1), CX(0,2), CX(0,1): the middle gate
        // steals qubit 0, so the outer pair must not fuse.
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(0, 2).cx(0, 1);
        let (_, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 3);
    }

    #[test]
    fn symbolic_circuit_rejected() {
        let mut c = Circuit::new(1);
        c.rz(0, ParamExpr::var(0));
        assert!(fuse(&c).is_err());
        let bound = c.bind(&[0.3]).unwrap();
        assert!(fuse(&bound).is_ok());
    }

    #[test]
    fn fuse_bound_matches_bind_then_fuse() {
        let mut c = Circuit::new(2);
        c.ry(0, ParamExpr::var(0))
            .cx(0, 1)
            .rz(1, ParamExpr::var(1))
            .ry(1, ParamExpr::var(0));
        let theta = [0.37, -1.2];
        let (direct, ds) = fuse_bound(&c, &theta).unwrap();
        let (via_bind, bs) = fuse(&c.bind(&theta).unwrap()).unwrap();
        assert_eq!(ds, bs);
        assert_eq!(direct.len(), via_bind.len());
        for (a, b) in direct.gates().iter().zip(via_bind.gates()) {
            match (a, b) {
                (Gate::Fused1(qa, ma), Gate::Fused1(qb, mb)) => {
                    assert_eq!(qa, qb);
                    assert!(ma.approx_eq(mb, 1e-14));
                }
                (Gate::Fused2(a0, a1, ma), Gate::Fused2(b0, b1, mb)) => {
                    assert_eq!((a0, a1), (b0, b1));
                    assert!(ma.approx_eq(mb, 1e-14));
                }
                (ga, gb) => panic!("mismatched fused gates {ga:?} vs {gb:?}"),
            }
        }
    }

    #[test]
    fn fuse_bound_missing_params_errors() {
        let mut c = Circuit::new(1);
        c.rz(0, ParamExpr::var(3));
        assert!(fuse_bound(&c, &[0.1]).is_err());
    }

    #[test]
    fn empty_circuit() {
        let (fused, stats) = fuse(&Circuit::new(3)).unwrap();
        assert!(fused.is_empty());
        assert_eq!(stats.reduction(), 0.0);
    }

    #[test]
    fn all_outputs_are_fused_gates() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(1, 0.4).cx(1, 2).h(2).t(0);
        let (fused, _) = fuse(&c).unwrap();
        assert!(fused
            .gates()
            .iter()
            .all(|g| matches!(g, Gate::Fused1(..) | Gate::Fused2(..))));
    }
}
