//! Gate fusion (paper §4.3).
//!
//! A simulator is free of hardware basis-gate and connectivity constraints,
//! so any run of consecutive gates on the same qubit(s) can be replaced by
//! their matrix product. NWQ-Sim deliberately caps fusion at two qubits:
//! a fused k-qubit gate costs a 2^k × 2^k matrix application, so beyond two
//! qubits the matrix growth cancels the savings (§4.3.1).
//!
//! The pass below is a single linear scan maintaining, per qubit, the index
//! of the *latest* fused block touching that qubit. Merging a gate into an
//! earlier block is sound because every block emitted after it acts on
//! disjoint qubits (otherwise the per-qubit pointer would have been
//! overwritten), and operators on disjoint qubits commute.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateMatrix};
use nwq_common::mat::{embed_high, embed_low};
use nwq_common::{Error, Mat2, Mat4, Result};

/// Statistics of one fusion run (the numbers behind paper Fig 4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Gates in the input circuit.
    pub gates_before: usize,
    /// Fused blocks in the output circuit.
    pub gates_after: usize,
}

impl FusionStats {
    /// Fractional reduction in gate count, e.g. `0.52` for 52 %.
    pub fn reduction(&self) -> f64 {
        if self.gates_before == 0 {
            0.0
        } else {
            1.0 - self.gates_after as f64 / self.gates_before as f64
        }
    }
}

#[derive(Clone)]
enum Block {
    One(usize, Mat2),
    Two(usize, usize, Mat4),
    /// Absorbed into a later block; emits nothing.
    Dead,
}

/// Fuses a *concrete* circuit into maximal ≤2-qubit blocks, returning the
/// fused circuit and statistics. Symbolic circuits must be bound first
/// (or use [`fuse_bound`] to bind and fuse in one scan).
pub fn fuse(circuit: &Circuit) -> Result<(Circuit, FusionStats)> {
    if !circuit.is_concrete() {
        return Err(Error::Invalid(
            "gate fusion requires a concrete (bound) circuit".into(),
        ));
    }
    fuse_bound(circuit, &[])
}

/// Binds every `ParamExpr` against `params` and fuses in the same linear
/// scan, so parameterized ansatz gates fuse without an intermediate bound
/// `Circuit` allocation. This is the bind-time entry point used by the
/// compiled-plan layer in `nwq-statevec`.
pub fn fuse_bound(circuit: &Circuit, params: &[f64]) -> Result<(Circuit, FusionStats)> {
    let n = circuit.n_qubits();
    let mut blocks: Vec<Block> = Vec::with_capacity(circuit.len());
    // For each qubit: index into `blocks` of the latest block touching it.
    let mut active: Vec<Option<usize>> = vec![None; n];

    for gate in circuit.gates() {
        match gate.matrix(params)? {
            GateMatrix::One(q, m) => {
                let merged = if let Some(i) = active[q] {
                    match &mut blocks[i] {
                        Block::One(_, acc) => {
                            *acc = m * *acc;
                            true
                        }
                        Block::Two(a, _b, acc) => {
                            let high = *a == q;
                            let emb = if high { embed_high(&m) } else { embed_low(&m) };
                            *acc = emb * *acc;
                            true
                        }
                        Block::Dead => false,
                    }
                } else {
                    false
                };
                if !merged {
                    blocks.push(Block::One(q, m));
                    active[q] = Some(blocks.len() - 1);
                }
            }
            GateMatrix::Two(a, b, m) => {
                // Same unordered pair as the active block on both qubits?
                let ia = active[a];
                let ib = active[b];
                let same_pair = match (ia, ib) {
                    (Some(i), Some(j)) if i == j => matches!(&blocks[i], Block::Two(..)),
                    _ => false,
                };
                if same_pair {
                    let i = ia.unwrap();
                    if let Block::Two(ba, _bb, acc) = &mut blocks[i] {
                        // Align qubit order with the stored block.
                        let m_aligned = if *ba == a { m } else { m.swap_qubits() };
                        *acc = m_aligned * *acc;
                    }
                    continue;
                }
                // Start a new two-qubit block, absorbing any pending
                // single-qubit blocks on its operands.
                let mut acc = m;
                for (q, is_high) in [(a, true), (b, false)] {
                    if let Some(i) = active[q] {
                        if let Block::One(_, m1) = blocks[i] {
                            let emb = if is_high {
                                embed_high(&m1)
                            } else {
                                embed_low(&m1)
                            };
                            acc = acc * emb;
                            blocks[i] = Block::Dead;
                        }
                    }
                }
                blocks.push(Block::Two(a, b, acc));
                let idx = blocks.len() - 1;
                active[a] = Some(idx);
                active[b] = Some(idx);
            }
        }
    }

    let mut out = Circuit::new(n);
    for b in blocks {
        match b {
            Block::One(q, m) => {
                out.push(Gate::Fused1(q, m))?;
            }
            Block::Two(a, b, m) => {
                out.push(Gate::Fused2(a, b, m))?;
            }
            Block::Dead => {}
        }
    }
    let stats = FusionStats {
        gates_before: circuit.len(),
        gates_after: out.len(),
    };
    Ok((out, stats))
}

/// Arity and operands of a structural fused block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockArity {
    /// Single-qubit block on `q`.
    One(usize),
    /// Two-qubit block on `(a, b)` in the orientation of its opening gate
    /// (`a` is the high operand of the accumulated matrix).
    Two(usize, usize),
}

/// One bind-time replay step of a structural block. `gate` indexes the
/// source circuit; the step says exactly which floating-point operation
/// [`fuse_bound`] would perform with that gate's matrix, so replaying the
/// tape with concrete parameters reproduces the fused matrix bitwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeStep {
    /// `acc = M(gate)` — the gate that opened the block.
    Init {
        /// Index of the opening gate in the source circuit.
        gate: usize,
    },
    /// `acc = M(gate) · acc` — a same-target 1q merge, or an aligned
    /// same-pair 2q merge.
    MulLeft {
        /// Index of the merged gate in the source circuit.
        gate: usize,
    },
    /// `acc = M(gate).swap_qubits() · acc` — a reversed same-pair 2q merge.
    MulLeftSwapped {
        /// Index of the merged gate in the source circuit.
        gate: usize,
    },
    /// `acc = embed(M(gate)) · acc` — a later 1q gate folded into a 2q
    /// block (`high` selects `embed_high` vs `embed_low`).
    MulLeftEmbed {
        /// Index of the merged 1q gate in the source circuit.
        gate: usize,
        /// `true` when the gate targets the block's high operand.
        high: bool,
    },
    /// `acc = acc · embed(P(block))` — absorb the pending 1q block
    /// `block`'s accumulated product when this 2q block opens.
    AbsorbBlock {
        /// Index of the absorbed 1q block in the structure's block list.
        block: usize,
        /// `true` when the absorbed block sits on this block's high operand.
        high: bool,
    },
}

/// A fused block described symbolically: its operands and the ordered
/// merge steps that produce its matrix at bind time.
#[derive(Clone, Debug)]
pub struct StructuralBlock {
    /// Operand qubits.
    pub arity: BlockArity,
    /// `true` when the block was absorbed into a later two-qubit block
    /// and therefore emits nothing itself.
    pub absorbed: bool,
    /// Replay tape, in the exact order [`fuse_bound`] applies the merges.
    pub steps: Vec<MergeStep>,
}

/// θ-independent output of the fusion scan: which gates land in which
/// block and the exact merge operation each contributes. Built once per
/// circuit *structure* and replayed per θ by the compiled-plan layer.
#[derive(Clone, Debug)]
pub struct FusionStructure {
    n_qubits: usize,
    gates_in: usize,
    blocks: Vec<StructuralBlock>,
}

impl FusionStructure {
    /// Register width of the source circuit.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Gate count of the source circuit.
    pub fn gates_in(&self) -> usize {
        self.gates_in
    }

    /// All blocks in creation order, including absorbed ones (absorbed
    /// blocks are referenced by `AbsorbBlock` steps of later blocks).
    pub fn blocks(&self) -> &[StructuralBlock] {
        &self.blocks
    }

    /// Number of live (emitted) blocks — equals `FusionStats::gates_after`
    /// of the equivalent [`fuse_bound`] run.
    pub fn live_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| !b.absorbed).count()
    }
}

/// Runs the fusion scan *structurally*: every merge decision in
/// [`fuse_bound`] depends only on gate arity and operand qubits, never on
/// matrix values, so the block topology and merge order can be recorded
/// once per circuit shape without evaluating a single `ParamExpr`. The
/// returned tape, replayed against concrete parameters in the same step
/// order, performs the identical floating-point operations as
/// `fuse_bound` and therefore reproduces its output bitwise.
pub fn fuse_structure(circuit: &Circuit) -> FusionStructure {
    let n = circuit.n_qubits();
    let mut blocks: Vec<StructuralBlock> = Vec::with_capacity(circuit.len());
    // For each qubit: index into `blocks` of the latest block touching it.
    let mut active: Vec<Option<usize>> = vec![None; n];

    for (gi, gate) in circuit.gates().iter().enumerate() {
        let qs = gate.qubits();
        match qs.len() {
            1 => {
                let q = qs[0];
                let merged = if let Some(i) = active[q] {
                    let absorbed = blocks[i].absorbed;
                    match blocks[i].arity {
                        _ if absorbed => false,
                        BlockArity::One(_) => {
                            blocks[i].steps.push(MergeStep::MulLeft { gate: gi });
                            true
                        }
                        BlockArity::Two(a, _b) => {
                            let high = a == q;
                            blocks[i]
                                .steps
                                .push(MergeStep::MulLeftEmbed { gate: gi, high });
                            true
                        }
                    }
                } else {
                    false
                };
                if !merged {
                    blocks.push(StructuralBlock {
                        arity: BlockArity::One(q),
                        absorbed: false,
                        steps: vec![MergeStep::Init { gate: gi }],
                    });
                    active[q] = Some(blocks.len() - 1);
                }
            }
            2 => {
                let (a, b) = (qs[0], qs[1]);
                // Same unordered pair as the active block on both qubits?
                let ia = active[a];
                let ib = active[b];
                let same_pair = match (ia, ib) {
                    (Some(i), Some(j)) if i == j => {
                        !blocks[i].absorbed && matches!(blocks[i].arity, BlockArity::Two(..))
                    }
                    _ => false,
                };
                if same_pair {
                    let i = ia.unwrap();
                    if let BlockArity::Two(ba, _bb) = blocks[i].arity {
                        let step = if ba == a {
                            MergeStep::MulLeft { gate: gi }
                        } else {
                            MergeStep::MulLeftSwapped { gate: gi }
                        };
                        blocks[i].steps.push(step);
                    }
                    continue;
                }
                // Start a new two-qubit block, absorbing any pending
                // single-qubit blocks on its operands.
                let mut steps = vec![MergeStep::Init { gate: gi }];
                for (q, is_high) in [(a, true), (b, false)] {
                    if let Some(i) = active[q] {
                        if !blocks[i].absorbed && matches!(blocks[i].arity, BlockArity::One(_)) {
                            steps.push(MergeStep::AbsorbBlock {
                                block: i,
                                high: is_high,
                            });
                            blocks[i].absorbed = true;
                        }
                    }
                }
                blocks.push(StructuralBlock {
                    arity: BlockArity::Two(a, b),
                    absorbed: false,
                    steps,
                });
                let idx = blocks.len() - 1;
                active[a] = Some(idx);
                active[b] = Some(idx);
            }
            k => unreachable!("gate on {k} qubits cannot exist in a Circuit"),
        }
    }

    FusionStructure {
        n_qubits: n,
        gates_in: circuit.len(),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamExpr;
    use nwq_common::mat::{mat_h, mat_x};

    #[test]
    fn adjacent_single_qubit_gates_fuse() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0).s(0);
        let (fused, stats) = fuse(&c).unwrap();
        assert_eq!(fused.len(), 1);
        assert_eq!(stats.gates_before, 4);
        assert_eq!(stats.gates_after, 1);
        assert!(stats.reduction() > 0.74);
    }

    #[test]
    fn fused_matrix_is_product_in_program_order() {
        let mut c = Circuit::new(1);
        c.h(0).x(0);
        let (fused, _) = fuse(&c).unwrap();
        match fused.gates()[0] {
            Gate::Fused1(0, m) => {
                // Program order H then X means matrix X·H.
                assert!(m.approx_eq(&(mat_x() * mat_h()), 1e-12));
            }
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn single_qubit_gates_absorb_into_two_qubit_block() {
        // H(0) H(1) CX(0,1) -> one fused 2q gate.
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        let (fused, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 1);
        assert!(matches!(fused.gates()[0], Gate::Fused2(0, 1, _)));
    }

    #[test]
    fn trailing_single_qubit_gate_merges_into_block() {
        // CX(0,1) then H(1): H embeds into the block.
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(1);
        let (_, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 1);
    }

    #[test]
    fn same_pair_two_qubit_gates_fuse_even_reversed() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0).cx(0, 1); // a SWAP
        let (fused, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 1);
        match fused.gates()[0] {
            Gate::Fused2(0, 1, m) => {
                assert!(m.approx_eq(&nwq_common::mat::mat_swap(), 1e-12));
            }
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn disjoint_pairs_do_not_fuse() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let (_, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 2);
    }

    #[test]
    fn overlapping_pairs_do_not_fuse() {
        // CX(0,1), CX(1,2) share a qubit but not the full pair: a fused
        // block would be 3-qubit, which NWQ-Sim rejects by design (§4.3).
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2);
        let (_, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 2);
    }

    #[test]
    fn interleaved_blocks_preserve_commuting_reorder_only() {
        // Gate on qubit 2 lands between two gates on (0,1); the (0,1) gates
        // still fuse because qubit 2 is disjoint.
        let mut c = Circuit::new(3);
        c.cx(0, 1).h(2).cz(0, 1);
        let (_, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 2);
    }

    #[test]
    fn intervening_gate_on_operand_blocks_fusion() {
        // CX(0,1), H(0) retargets qubit 0's active block to ... the same
        // block (merge). But CX(0,1), CX(0,2), CX(0,1): the middle gate
        // steals qubit 0, so the outer pair must not fuse.
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(0, 2).cx(0, 1);
        let (_, stats) = fuse(&c).unwrap();
        assert_eq!(stats.gates_after, 3);
    }

    #[test]
    fn symbolic_circuit_rejected() {
        let mut c = Circuit::new(1);
        c.rz(0, ParamExpr::var(0));
        assert!(fuse(&c).is_err());
        let bound = c.bind(&[0.3]).unwrap();
        assert!(fuse(&bound).is_ok());
    }

    #[test]
    fn fuse_bound_matches_bind_then_fuse() {
        let mut c = Circuit::new(2);
        c.ry(0, ParamExpr::var(0))
            .cx(0, 1)
            .rz(1, ParamExpr::var(1))
            .ry(1, ParamExpr::var(0));
        let theta = [0.37, -1.2];
        let (direct, ds) = fuse_bound(&c, &theta).unwrap();
        let (via_bind, bs) = fuse(&c.bind(&theta).unwrap()).unwrap();
        assert_eq!(ds, bs);
        assert_eq!(direct.len(), via_bind.len());
        for (a, b) in direct.gates().iter().zip(via_bind.gates()) {
            match (a, b) {
                (Gate::Fused1(qa, ma), Gate::Fused1(qb, mb)) => {
                    assert_eq!(qa, qb);
                    assert!(ma.approx_eq(mb, 1e-14));
                }
                (Gate::Fused2(a0, a1, ma), Gate::Fused2(b0, b1, mb)) => {
                    assert_eq!((a0, a1), (b0, b1));
                    assert!(ma.approx_eq(mb, 1e-14));
                }
                (ga, gb) => panic!("mismatched fused gates {ga:?} vs {gb:?}"),
            }
        }
    }

    #[test]
    fn fuse_bound_missing_params_errors() {
        let mut c = Circuit::new(1);
        c.rz(0, ParamExpr::var(3));
        assert!(fuse_bound(&c, &[0.1]).is_err());
    }

    #[test]
    fn empty_circuit() {
        let (fused, stats) = fuse(&Circuit::new(3)).unwrap();
        assert!(fused.is_empty());
        assert_eq!(stats.reduction(), 0.0);
    }

    /// Naive interpreter for a [`FusionStructure`]: replays every tape with
    /// concrete parameters. The production replay lives in `nwq-statevec`
    /// (with constant folding); this one exists to pin the contract that a
    /// structural replay is bitwise identical to [`fuse_bound`].
    fn replay(s: &FusionStructure, c: &Circuit, params: &[f64]) -> Vec<Gate> {
        let gates = c.gates();
        let mat2 = |gi: usize| match gates[gi].matrix(params).unwrap() {
            GateMatrix::One(_, m) => m,
            _ => panic!("expected 1q gate"),
        };
        let mat4 = |gi: usize| match gates[gi].matrix(params).unwrap() {
            GateMatrix::Two(_, _, m) => m,
            _ => panic!("expected 2q gate"),
        };
        let emb = |m: &Mat2, high: bool| if high { embed_high(m) } else { embed_low(m) };
        let mut prods1: Vec<Option<Mat2>> = vec![None; s.blocks().len()];
        let mut out = Vec::new();
        for (bi, b) in s.blocks().iter().enumerate() {
            match b.arity {
                BlockArity::One(q) => {
                    let mut acc = None;
                    for step in &b.steps {
                        acc = Some(match *step {
                            MergeStep::Init { gate } => mat2(gate),
                            MergeStep::MulLeft { gate } => mat2(gate) * acc.unwrap(),
                            ref other => panic!("1q block cannot hold {other:?}"),
                        });
                    }
                    let acc = acc.unwrap();
                    prods1[bi] = Some(acc);
                    if !b.absorbed {
                        out.push(Gate::Fused1(q, acc));
                    }
                }
                BlockArity::Two(a, bq) => {
                    let mut acc = None;
                    for step in &b.steps {
                        acc = Some(match *step {
                            MergeStep::Init { gate } => mat4(gate),
                            MergeStep::MulLeft { gate } => mat4(gate) * acc.unwrap(),
                            MergeStep::MulLeftSwapped { gate } => {
                                mat4(gate).swap_qubits() * acc.unwrap()
                            }
                            MergeStep::MulLeftEmbed { gate, high } => {
                                emb(&mat2(gate), high) * acc.unwrap()
                            }
                            MergeStep::AbsorbBlock { block, high } => {
                                acc.unwrap() * emb(&prods1[block].unwrap(), high)
                            }
                        });
                    }
                    assert!(!b.absorbed, "2q blocks are never absorbed");
                    out.push(Gate::Fused2(a, bq, acc.unwrap()));
                }
            }
        }
        out
    }

    fn assert_bitwise_eq(a: &[Gate], b: &[Gate]) {
        assert_eq!(a.len(), b.len());
        for (ga, gb) in a.iter().zip(b) {
            match (ga, gb) {
                (Gate::Fused1(qa, ma), Gate::Fused1(qb, mb)) => {
                    assert_eq!(qa, qb);
                    for r in 0..2 {
                        for c in 0..2 {
                            assert_eq!(ma.0[r][c].re.to_bits(), mb.0[r][c].re.to_bits());
                            assert_eq!(ma.0[r][c].im.to_bits(), mb.0[r][c].im.to_bits());
                        }
                    }
                }
                (Gate::Fused2(a0, a1, ma), Gate::Fused2(b0, b1, mb)) => {
                    assert_eq!((a0, a1), (b0, b1));
                    for r in 0..4 {
                        for c in 0..4 {
                            assert_eq!(ma.0[r][c].re.to_bits(), mb.0[r][c].re.to_bits());
                            assert_eq!(ma.0[r][c].im.to_bits(), mb.0[r][c].im.to_bits());
                        }
                    }
                }
                (ga, gb) => panic!("mismatched fused gates {ga:?} vs {gb:?}"),
            }
        }
    }

    #[test]
    fn structural_replay_is_bitwise_identical_to_fuse_bound() {
        // Exercises every MergeStep kind: 1q merges, embeds into a 2q
        // block, aligned and swapped same-pair merges, and absorption of
        // both constant and symbolic pending 1q blocks.
        let mut c = Circuit::new(3);
        c.h(0)
            .ry(1, ParamExpr::var(0))
            .cx(0, 1)
            .cx(1, 0)
            .rz(1, ParamExpr::var(1))
            .h(2)
            .cz(1, 2)
            .rzz(1, 2, ParamExpr::var(2))
            .t(0);
        let theta = [0.37, -1.2, 2.6];
        let s = fuse_structure(&c);
        let (fused, stats) = fuse_bound(&c, &theta).unwrap();
        assert_eq!(s.gates_in(), stats.gates_before);
        assert_eq!(s.live_blocks(), stats.gates_after);
        assert_bitwise_eq(&replay(&s, &c, &theta), fused.gates());
    }

    #[test]
    fn structural_replay_matches_on_concrete_circuit() {
        let mut c = Circuit::new(4);
        c.h(0)
            .cx(0, 1)
            .rz(1, 0.4)
            .cx(1, 2)
            .h(2)
            .t(0)
            .cx(2, 3)
            .cx(0, 1);
        let s = fuse_structure(&c);
        let (fused, stats) = fuse_bound(&c, &[]).unwrap();
        assert_eq!(s.live_blocks(), stats.gates_after);
        assert_bitwise_eq(&replay(&s, &c, &[]), fused.gates());
    }

    #[test]
    fn structure_of_empty_circuit_is_empty() {
        let s = fuse_structure(&Circuit::new(2));
        assert_eq!(s.live_blocks(), 0);
        assert!(s.blocks().is_empty());
    }

    #[test]
    fn all_outputs_are_fused_gates() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(1, 0.4).cx(1, 2).h(2).t(0);
        let (fused, _) = fuse(&c).unwrap();
        assert!(fused
            .gates()
            .iter()
            .all(|g| matches!(g, Gate::Fused1(..) | Gate::Fused2(..))));
    }
}
