//! Synthesis of Pauli-exponential circuits `exp(−i θ/2 · P)`.
//!
//! This is the workhorse of UCCSD ansatz construction: each Trotterized
//! cluster excitation contributes one exponential per Pauli string. The
//! standard decomposition is
//!
//! 1. rotate every X factor into Z with H, every Y factor with (H·S†);
//! 2. entangle the support with a CNOT ladder onto the last support qubit;
//! 3. apply `RZ(θ)` there;
//! 4. undo the ladder and the basis rotations.
//!
//! Diagonal strings skip step 1, and the identity string is a global phase
//! the simulator drops entirely.

use crate::circuit::Circuit;
use crate::param::ParamExpr;
use nwq_common::Result;
use nwq_pauli::{Pauli, PauliString};

/// Appends `exp(−i θ/2 · P)` to `circuit`, where `theta` may be symbolic.
///
/// For the identity string this is a global phase `e^{−iθ/2}` and nothing
/// is emitted (statevector global phase is unobservable in every use in
/// this workspace: expectation values and probabilities).
pub fn append_exp_pauli(
    circuit: &mut Circuit,
    string: &PauliString,
    theta: ParamExpr,
) -> Result<()> {
    if string.is_identity() {
        return Ok(());
    }
    let support: Vec<usize> = string.iter_ops().map(|(q, _)| q).collect();

    // 1. Basis changes into Z.
    for (q, p) in string.iter_ops() {
        match p {
            Pauli::X => {
                circuit.push(crate::gate::Gate::H(q))?;
            }
            Pauli::Y => {
                // Z = (H S†) Y (S H): rotate Y eigenbasis into computational.
                circuit.push(crate::gate::Gate::Sdg(q))?;
                circuit.push(crate::gate::Gate::H(q))?;
            }
            Pauli::Z => {}
            Pauli::I => unreachable!("iter_ops yields non-identity factors"),
        }
    }

    // 2. Parity ladder onto the last support qubit.
    let last = *support.last().expect("non-identity string has support");
    for w in support.windows(2) {
        circuit.push(crate::gate::Gate::CX(w[0], w[1]))?;
    }

    // 3. The rotation carrying the angle.
    circuit.push(crate::gate::Gate::RZ(last, theta))?;

    // 4. Undo ladder and basis changes.
    for w in support.windows(2).rev() {
        circuit.push(crate::gate::Gate::CX(w[0], w[1]))?;
    }
    for (q, p) in string.iter_ops() {
        match p {
            Pauli::X => {
                circuit.push(crate::gate::Gate::H(q))?;
            }
            Pauli::Y => {
                circuit.push(crate::gate::Gate::H(q))?;
                circuit.push(crate::gate::Gate::S(q))?;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Builds a standalone circuit for `exp(−i θ/2 · P)`.
pub fn exp_pauli_circuit(string: &PauliString, theta: ParamExpr) -> Result<Circuit> {
    let mut c = Circuit::new(string.n_qubits());
    append_exp_pauli(&mut c, string, theta)?;
    Ok(c)
}

/// Gate count of the exponential without building it: `2·(basis gates) +
/// 2·(ladder CNOTs) + 1`, with Y factors costing 2 basis gates per side.
pub fn exp_pauli_gate_count(string: &PauliString) -> usize {
    if string.is_identity() {
        return 0;
    }
    let mut basis = 0usize;
    let mut weight = 0usize;
    for (_, p) in string.iter_ops() {
        weight += 1;
        basis += match p {
            Pauli::X => 1,
            Pauli::Y => 2,
            _ => 0,
        };
    }
    2 * basis + 2 * (weight - 1) + 1
}

/// Appends a first-order Trotter step `∏_k exp(−i θ_k/2 · P_k)` for a list
/// of weighted strings. `angle(k)` supplies the (symbolic) angle of term k.
pub fn append_trotter_step(
    circuit: &mut Circuit,
    terms: &[PauliString],
    mut angle: impl FnMut(usize) -> ParamExpr,
) -> Result<()> {
    for (k, s) in terms.iter().enumerate() {
        append_exp_pauli(circuit, s, angle(k))?;
    }
    Ok(())
}

/// Trotter product-formula order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TrotterOrder {
    /// First-order Lie–Trotter: `∏_j e^{−i c_j δt P_j}` per step.
    #[default]
    First,
    /// Second-order (symmetric Suzuki): half-angle forward sweep followed
    /// by half-angle reverse sweep per step — error `O(δt³)` per step
    /// instead of `O(δt²)`.
    Second,
}

/// Appends the circuit for `exp(−iHt)` with `steps` Trotter steps of the
/// given order. `H` must be Hermitian with real coefficients; identity
/// terms contribute an unobservable global phase and are skipped.
pub fn append_evolution(
    circuit: &mut Circuit,
    hamiltonian: &nwq_pauli::PauliOp,
    time: f64,
    steps: usize,
    order: TrotterOrder,
) -> Result<()> {
    if steps == 0 {
        return Err(nwq_common::Error::Invalid("steps must be positive".into()));
    }
    if !hamiltonian.is_hermitian(1e-10) {
        return Err(nwq_common::Error::Invalid(
            "time evolution requires a Hermitian Hamiltonian".into(),
        ));
    }
    let dt = time / steps as f64;
    let terms: Vec<(f64, PauliString)> = hamiltonian
        .terms()
        .iter()
        .filter(|(_, s)| !s.is_identity())
        .map(|&(c, s)| (c.re, s))
        .collect();
    for _ in 0..steps {
        match order {
            TrotterOrder::First => {
                for &(c, s) in &terms {
                    append_exp_pauli(circuit, &s, ParamExpr::Const(2.0 * c * dt))?;
                }
            }
            TrotterOrder::Second => {
                for &(c, s) in &terms {
                    append_exp_pauli(circuit, &s, ParamExpr::Const(c * dt))?;
                }
                for &(c, s) in terms.iter().rev() {
                    append_exp_pauli(circuit, &s, ParamExpr::Const(c * dt))?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_pauli::PauliString;

    #[test]
    fn identity_emits_nothing() {
        let c = exp_pauli_circuit(&PauliString::identity(3), ParamExpr::Const(0.5)).unwrap();
        assert!(c.is_empty());
        assert_eq!(exp_pauli_gate_count(&PauliString::identity(3)), 0);
    }

    #[test]
    fn single_z_is_one_rz() {
        let s = PauliString::parse("IZ").unwrap();
        let c = exp_pauli_circuit(&s, ParamExpr::Const(0.5)).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.gates()[0].name(), "rz");
        assert_eq!(exp_pauli_gate_count(&s), 1);
    }

    #[test]
    fn zz_uses_cnot_ladder() {
        let s = PauliString::parse("ZZ").unwrap();
        let c = exp_pauli_circuit(&s, ParamExpr::Const(0.5)).unwrap();
        // CX, RZ, CX.
        assert_eq!(c.len(), 3);
        assert_eq!(c.two_qubit_count(), 2);
        assert_eq!(exp_pauli_gate_count(&s), 3);
    }

    #[test]
    fn xx_adds_hadamards() {
        let s = PauliString::parse("XX").unwrap();
        let c = exp_pauli_circuit(&s, ParamExpr::Const(0.5)).unwrap();
        // H H, CX, RZ, CX, H H.
        assert_eq!(c.len(), 7);
        assert_eq!(exp_pauli_gate_count(&s), 7);
    }

    #[test]
    fn y_factors_cost_two_basis_gates() {
        let s = PauliString::parse("YY").unwrap();
        let c = exp_pauli_circuit(&s, ParamExpr::Const(0.5)).unwrap();
        // (Sdg H)×2, CX, RZ, CX, (H S)×2 = 11.
        assert_eq!(c.len(), 11);
        assert_eq!(exp_pauli_gate_count(&s), 11);
    }

    #[test]
    fn gate_count_formula_matches_construction() {
        for lbl in ["XYZI", "ZIIZ", "XXYY", "IYIX", "ZZZZ", "XIIIIZ"] {
            let s = PauliString::parse(lbl).unwrap();
            let c = exp_pauli_circuit(&s, ParamExpr::Const(0.3)).unwrap();
            assert_eq!(c.len(), exp_pauli_gate_count(&s), "{lbl}");
        }
    }

    #[test]
    fn symbolic_angle_propagates() {
        let s = PauliString::parse("ZZ").unwrap();
        let c = exp_pauli_circuit(&s, ParamExpr::scaled_var(2, 2.0)).unwrap();
        assert_eq!(c.n_params(), 3);
        assert!(!c.is_concrete());
    }

    /// Exact `e^{−iHt}|ψ⟩` by Taylor series on the dense matrix (test
    /// oracle; small registers only).
    fn exact_evolution(
        h: &nwq_pauli::PauliOp,
        t: f64,
        psi: &[nwq_common::C64],
    ) -> Vec<nwq_common::C64> {
        let mut acc = psi.to_vec();
        let mut term = psi.to_vec();
        for k in 1..60 {
            // term <- (−iHt/k)·term
            let hv = nwq_pauli::apply::apply_op(h, &term).unwrap();
            let factor = nwq_common::C64::imag(-t / k as f64);
            term = hv.into_iter().map(|x| x * factor).collect();
            for (a, b) in acc.iter_mut().zip(&term) {
                *a += *b;
            }
        }
        acc
    }

    #[test]
    fn evolution_matches_exact_exponential() {
        let h = nwq_pauli::PauliOp::parse("0.7 ZZ + 0.4 XI + 0.2 IY").unwrap();
        let mut prep = Circuit::new(2);
        prep.h(0).cx(0, 1);
        let psi0 = crate::reference::run(&prep, &[]).unwrap();
        let t = 0.8;
        let exact = exact_evolution(&h, t, &psi0);
        for (order, steps, tol) in [
            (TrotterOrder::First, 64, 2e-2),
            (TrotterOrder::Second, 64, 1e-3),
        ] {
            let mut c = prep.clone();
            append_evolution(&mut c, &h, t, steps, order).unwrap();
            let got = crate::reference::run(&c, &[]).unwrap();
            let fid = crate::reference::fidelity(&got, &exact);
            assert!(1.0 - fid < tol, "{order:?}: infidelity {}", 1.0 - fid);
        }
    }

    #[test]
    fn second_order_beats_first_at_equal_steps() {
        let h = nwq_pauli::PauliOp::parse("1.0 ZZ + 0.8 XI + 0.5 IX").unwrap();
        let psi0 = crate::reference::zero_state(2);
        let t = 1.2;
        let exact = exact_evolution(&h, t, &psi0);
        let infidelity = |order: TrotterOrder| {
            let mut c = Circuit::new(2);
            append_evolution(&mut c, &h, t, 8, order).unwrap();
            let got = crate::reference::run(&c, &[]).unwrap();
            1.0 - crate::reference::fidelity(&got, &exact)
        };
        let e1 = infidelity(TrotterOrder::First);
        let e2 = infidelity(TrotterOrder::Second);
        assert!(e2 < e1 / 4.0, "second order {e2} vs first {e1}");
    }

    #[test]
    fn evolution_error_shrinks_with_steps() {
        let h = nwq_pauli::PauliOp::parse("1.0 ZI + 0.6 XX").unwrap();
        let psi0 = crate::reference::zero_state(2);
        let exact = exact_evolution(&h, 1.0, &psi0);
        let mut prev = f64::INFINITY;
        for steps in [2usize, 8, 32] {
            let mut c = Circuit::new(2);
            append_evolution(&mut c, &h, 1.0, steps, TrotterOrder::First).unwrap();
            let got = crate::reference::run(&c, &[]).unwrap();
            let err = 1.0 - crate::reference::fidelity(&got, &exact);
            assert!(err <= prev + 1e-12, "steps={steps}: {err} > {prev}");
            prev = err;
        }
    }

    #[test]
    fn evolution_validation() {
        let h = nwq_pauli::PauliOp::parse("1.0 ZZ").unwrap();
        let mut c = Circuit::new(2);
        assert!(append_evolution(&mut c, &h, 1.0, 0, TrotterOrder::First).is_err());
        let anti = nwq_pauli::PauliOp::single(nwq_common::C_I, PauliString::parse("XY").unwrap());
        assert!(append_evolution(&mut c, &anti, 1.0, 4, TrotterOrder::First).is_err());
    }

    #[test]
    fn commuting_hamiltonian_evolution_exact_in_one_step() {
        let h = nwq_pauli::PauliOp::parse("0.9 ZZ + 0.4 ZI").unwrap();
        let mut prep = Circuit::new(2);
        prep.h(0).h(1);
        let psi0 = crate::reference::run(&prep, &[]).unwrap();
        let exact = exact_evolution(&h, 2.0, &psi0);
        let mut c = prep.clone();
        append_evolution(&mut c, &h, 2.0, 1, TrotterOrder::First).unwrap();
        let got = crate::reference::run(&c, &[]).unwrap();
        assert!(1.0 - crate::reference::fidelity(&got, &exact) < 1e-10);
    }

    #[test]
    fn trotter_step_concatenates() {
        let terms = vec![
            PauliString::parse("ZZ").unwrap(),
            PauliString::parse("XX").unwrap(),
        ];
        let mut c = Circuit::new(2);
        append_trotter_step(&mut c, &terms, |k| ParamExpr::scaled_var(k, 1.0)).unwrap();
        assert_eq!(c.len(), 3 + 7);
        assert_eq!(c.n_params(), 2);
    }
}
