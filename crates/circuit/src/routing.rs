//! Qubit routing for connectivity-restricted targets.
//!
//! The simulator itself has all-to-all connectivity, but circuits headed
//! for hardware must respect a coupling map — the qubit-mapping problem
//! the paper's related work cites (Sabre, Siraichi et al.). This pass is
//! a greedy shortest-path router: before each two-qubit gate whose
//! operands are not adjacent, it inserts SWAPs walking one operand along
//! a BFS shortest path, tracking the evolving logical→physical layout.

use crate::circuit::Circuit;
use crate::gate::Gate;
use nwq_common::{Error, Result};
use std::collections::{BTreeSet, VecDeque};

/// An undirected device connectivity graph.
#[derive(Clone, Debug)]
pub struct CouplingMap {
    n_qubits: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl CouplingMap {
    /// Builds a map from an edge list (validates indices, normalizes
    /// orientation, rejects self-loops).
    pub fn new(n_qubits: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut set = BTreeSet::new();
        for &(a, b) in edges {
            if a >= n_qubits || b >= n_qubits {
                return Err(Error::QubitOutOfRange {
                    qubit: a.max(b),
                    n_qubits,
                });
            }
            if a == b {
                return Err(Error::DuplicateQubit(a));
            }
            set.insert((a.min(b), a.max(b)));
        }
        Ok(CouplingMap {
            n_qubits,
            edges: set,
        })
    }

    /// Linear chain 0—1—…—(n−1).
    pub fn linear(n_qubits: usize) -> Self {
        let edges: Vec<_> = (0..n_qubits.saturating_sub(1))
            .map(|q| (q, q + 1))
            .collect();
        CouplingMap::new(n_qubits, &edges).expect("valid by construction")
    }

    /// Ring topology.
    pub fn ring(n_qubits: usize) -> Self {
        let mut edges: Vec<_> = (0..n_qubits.saturating_sub(1))
            .map(|q| (q, q + 1))
            .collect();
        if n_qubits > 2 {
            edges.push((n_qubits - 1, 0));
        }
        CouplingMap::new(n_qubits, &edges).expect("valid by construction")
    }

    /// All-to-all (no routing needed).
    pub fn full(n_qubits: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n_qubits {
            for b in (a + 1)..n_qubits {
                edges.push((a, b));
            }
        }
        CouplingMap::new(n_qubits, &edges).expect("valid by construction")
    }

    /// Device size.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Whether two physical qubits are directly coupled.
    pub fn adjacent(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// BFS shortest path between two physical qubits (inclusive of both
    /// endpoints). Errors when disconnected.
    pub fn path(&self, from: usize, to: usize) -> Result<Vec<usize>> {
        if from == to {
            return Ok(vec![from]);
        }
        let mut prev = vec![usize::MAX; self.n_qubits];
        let mut queue = VecDeque::from([from]);
        prev[from] = from;
        while let Some(v) = queue.pop_front() {
            for &(a, b) in &self.edges {
                for (x, y) in [(a, b), (b, a)] {
                    if x == v && prev[y] == usize::MAX {
                        prev[y] = v;
                        if y == to {
                            let mut path = vec![to];
                            let mut cur = to;
                            while cur != from {
                                cur = prev[cur];
                                path.push(cur);
                            }
                            path.reverse();
                            return Ok(path);
                        }
                        queue.push_back(y);
                    }
                }
            }
        }
        Err(Error::Invalid(format!(
            "qubits {from} and {to} are disconnected"
        )))
    }
}

/// Output of the router.
#[derive(Clone, Debug)]
pub struct RoutedCircuit {
    /// The physical-indexed circuit (every 2-qubit gate acts on coupled
    /// qubits).
    pub circuit: Circuit,
    /// Final logical→physical layout after all inserted SWAPs.
    pub final_layout: Vec<usize>,
    /// SWAP gates inserted.
    pub swaps_inserted: usize,
}

/// Routes `circuit` onto `map` starting from the identity layout.
pub fn route(circuit: &Circuit, map: &CouplingMap) -> Result<RoutedCircuit> {
    if map.n_qubits() < circuit.n_qubits() {
        return Err(Error::DimensionMismatch {
            expected: circuit.n_qubits(),
            got: map.n_qubits(),
        });
    }
    let n = circuit.n_qubits();
    // layout[logical] = physical; inverse[physical] = logical.
    let mut layout: Vec<usize> = (0..n).collect();
    let mut inverse: Vec<usize> = (0..n).collect();
    let mut out = Circuit::with_params(n, circuit.n_params());
    let mut swaps = 0usize;
    let apply_swap = |out: &mut Circuit,
                      layout: &mut Vec<usize>,
                      inverse: &mut Vec<usize>,
                      a: usize,
                      b: usize|
     -> Result<()> {
        out.push(Gate::SWAP(a, b))?;
        let (la, lb) = (inverse[a], inverse[b]);
        inverse.swap(a, b);
        layout.swap(la, lb);
        Ok(())
    };
    for gate in circuit.gates() {
        let qs = gate.qubits();
        if qs.len() == 2 {
            let (mut pa, pb) = (layout[qs[0]], layout[qs[1]]);
            if !map.adjacent(pa, pb) {
                // Walk operand A along the shortest path until adjacent.
                let path = map.path(pa, pb)?;
                for hop in &path[1..path.len() - 1] {
                    apply_swap(&mut out, &mut layout, &mut inverse, pa, *hop)?;
                    swaps += 1;
                    pa = *hop;
                }
            }
        }
        out.push(gate.remapped(|q| layout[q]))?;
    }
    Ok(RoutedCircuit {
        circuit: out,
        final_layout: layout,
        swaps_inserted: swaps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use nwq_common::C64;

    /// Undoes the router's layout: `out[logical] = amps[physical]`.
    fn unpermute(amps: &[C64], layout: &[usize]) -> Vec<C64> {
        let n = layout.len();
        let mut out = vec![C64::default(); amps.len()];
        for (phys_idx, &a) in amps.iter().enumerate() {
            let mut logical_idx = 0usize;
            for (q, &p) in layout.iter().enumerate().take(n) {
                if (phys_idx >> p) & 1 == 1 {
                    logical_idx |= 1 << q;
                }
            }
            out[logical_idx] = a;
        }
        out
    }

    fn check_routed_equivalence(c: &Circuit, map: &CouplingMap) -> RoutedCircuit {
        let routed = route(c, map).expect("routes");
        for g in routed.circuit.gates() {
            let qs = g.qubits();
            if qs.len() == 2 {
                assert!(map.adjacent(qs[0], qs[1]), "{g:?} not adjacent");
            }
        }
        let original = reference::run(c, &[]).expect("runs");
        let physical = reference::run(&routed.circuit, &[]).expect("runs");
        let logical = unpermute(&physical, &routed.final_layout);
        assert!(
            reference::states_equivalent(&original, &logical, 1e-10),
            "routed circuit diverged"
        );
        routed
    }

    #[test]
    fn coupling_map_construction() {
        let m = CouplingMap::linear(4);
        assert!(m.adjacent(0, 1) && m.adjacent(2, 1));
        assert!(!m.adjacent(0, 2));
        assert!(CouplingMap::new(2, &[(0, 2)]).is_err());
        assert!(CouplingMap::new(2, &[(1, 1)]).is_err());
        let r = CouplingMap::ring(4);
        assert!(r.adjacent(3, 0));
    }

    #[test]
    fn bfs_paths() {
        let m = CouplingMap::linear(5);
        assert_eq!(m.path(0, 4).unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(m.path(2, 2).unwrap(), vec![2]);
        let disconnected = CouplingMap::new(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(disconnected.path(0, 3).is_err());
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(2, 0.4);
        let routed = check_routed_equivalence(&c, &CouplingMap::linear(3));
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.final_layout, vec![0, 1, 2]);
    }

    #[test]
    fn distant_gate_inserts_swaps_on_a_chain() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 3);
        let routed = check_routed_equivalence(&c, &CouplingMap::linear(4));
        assert!(
            routed.swaps_inserted >= 2,
            "swaps {}",
            routed.swaps_inserted
        );
    }

    #[test]
    fn ring_shortcut_beats_chain() {
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        let on_chain = route(&c, &CouplingMap::linear(6)).unwrap();
        let on_ring = route(&c, &CouplingMap::ring(6)).unwrap();
        assert!(on_ring.swaps_inserted < on_chain.swaps_inserted);
        assert_eq!(on_ring.swaps_inserted, 0); // 0 and 5 adjacent on the ring
    }

    #[test]
    fn ghz_routes_on_linear_chain() {
        let mut c = Circuit::new(5);
        c.h(0);
        for q in 1..5 {
            c.cx(0, q);
        }
        check_routed_equivalence(&c, &CouplingMap::linear(5));
    }

    #[test]
    fn uccsd_fragment_routes_correctly() {
        let mut c = Circuit::new(4);
        c.h(0)
            .h(2)
            .cx(0, 2)
            .rz(2, 0.37)
            .cx(0, 2)
            .h(0)
            .h(2)
            .cx(3, 1)
            .ry(1, -0.2);
        let routed = check_routed_equivalence(&c, &CouplingMap::linear(4));
        assert!(routed.swaps_inserted > 0);
    }

    #[test]
    fn full_connectivity_is_a_noop() {
        let mut c = Circuit::new(4);
        c.cx(0, 3).cx(1, 2).swap(0, 2);
        let routed = route(&c, &CouplingMap::full(4)).unwrap();
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.circuit.len(), c.len());
    }

    #[test]
    fn device_smaller_than_circuit_rejected() {
        let c = Circuit::new(5);
        assert!(route(&c, &CouplingMap::linear(3)).is_err());
    }
}
