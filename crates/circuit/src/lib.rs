//! # nwq-circuit
//!
//! Quantum circuit IR and transpiler for the NWQ-Sim-rs workspace:
//!
//! - [`gate::Gate`] — the simulator's native ≤2-qubit gate set, including
//!   transpiler-produced fused blocks;
//! - [`circuit::Circuit`] — gate list with symbolic parameters
//!   ([`param::ParamExpr`]), binding, composition, and inversion;
//! - [`fusion`] — the §4.3 gate-fusion pass (capped at two qubits by
//!   design);
//! - [`passes`] — adjacent-inverse cancellation and rotation merging;
//! - [`exp_pauli`] — synthesis of `exp(−iθ/2·P)` (UCCSD/Trotter building
//!   block);
//! - [`basis`] — measurement basis changes (§4.1.2);
//! - [`qft`] — (inverse) quantum Fourier transform for QPE;
//! - [`reference`] — a naive simulator used as the workspace's test oracle.

#![warn(missing_docs)]

pub mod basis;
pub mod circuit;
pub mod exp_pauli;
pub mod fusion;
pub mod gate;
pub mod hea;
pub mod param;
pub mod passes;
pub mod qasm;
pub mod qft;
pub mod reference;
pub mod routing;

pub use circuit::Circuit;
pub use gate::{Gate, GateMatrix};
pub use param::ParamExpr;

#[cfg(test)]
mod proptests {
    use crate::circuit::Circuit;
    use crate::fusion::fuse;
    use crate::passes::cancel_and_merge;
    use crate::reference::{run, states_equivalent};
    use proptest::prelude::*;

    /// A random concrete circuit on `n` qubits.
    fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
        let gate = (0..10u8, 0..n, 1..n.max(2), -3.0..3.0f64);
        proptest::collection::vec(gate, 0..max_len).prop_map(move |specs| {
            let mut c = Circuit::new(n);
            for (kind, q, dq, angle) in specs {
                let q2 = (q + dq) % n;
                match kind {
                    0 => c.h(q),
                    1 => c.x(q),
                    2 => c.s(q),
                    3 => c.t(q),
                    4 => c.rz(q, angle),
                    5 => c.ry(q, angle),
                    6 if q2 != q => c.cx(q, q2),
                    7 if q2 != q => c.cz(q, q2),
                    8 if q2 != q => c.rzz(q, q2, angle),
                    9 if q2 != q => c.swap(q, q2),
                    _ => c.rx(q, angle),
                };
            }
            c
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn fusion_preserves_state(c in arb_circuit(4, 24)) {
            let before = run(&c, &[]).unwrap();
            let (fused, stats) = fuse(&c).unwrap();
            let after = run(&fused, &[]).unwrap();
            prop_assert!(states_equivalent(&before, &after, 1e-8));
            prop_assert!(stats.gates_after <= stats.gates_before);
        }

        #[test]
        fn cancellation_preserves_state(c in arb_circuit(4, 24)) {
            let before = run(&c, &[]).unwrap();
            let simplified = cancel_and_merge(&c).unwrap();
            let after = run(&simplified, &[]).unwrap();
            prop_assert!(states_equivalent(&before, &after, 1e-8));
            prop_assert!(simplified.len() <= c.len());
        }

        #[test]
        fn inverse_undoes_circuit(c in arb_circuit(4, 16)) {
            let mut round = c.clone();
            round.append(&c.inverse()).unwrap();
            let psi = run(&round, &[]).unwrap();
            let zero = crate::reference::zero_state(4);
            prop_assert!(states_equivalent(&psi, &zero, 1e-8));
        }

        #[test]
        fn fusion_idempotent_on_state(c in arb_circuit(3, 16)) {
            let (fused, _) = fuse(&c).unwrap();
            let (fused2, stats2) = fuse(&fused).unwrap();
            let a = run(&fused, &[]).unwrap();
            let b = run(&fused2, &[]).unwrap();
            prop_assert!(states_equivalent(&a, &b, 1e-8));
            prop_assert!(stats2.gates_after <= fused.len());
        }

        #[test]
        fn qasm_roundtrip_preserves_state(c in arb_circuit(4, 20)) {
            let text = crate::qasm::to_qasm(&c).unwrap();
            let back = crate::qasm::from_qasm(&text).unwrap();
            let a = run(&c, &[]).unwrap();
            let b = run(&back, &[]).unwrap();
            for (x, y) in a.iter().zip(&b) {
                prop_assert!(x.approx_eq(*y, 1e-9));
            }
        }

        #[test]
        fn routing_on_linear_chain_preserves_state(c in arb_circuit(4, 16)) {
            let map = crate::routing::CouplingMap::linear(4);
            let routed = crate::routing::route(&c, &map).unwrap();
            for g in routed.circuit.gates() {
                let qs = g.qubits();
                if qs.len() == 2 {
                    prop_assert!(map.adjacent(qs[0], qs[1]));
                }
            }
            let original = run(&c, &[]).unwrap();
            let physical = run(&routed.circuit, &[]).unwrap();
            // Undo the final layout.
            let mut logical = vec![nwq_common::C_ZERO; physical.len()];
            for (pidx, &a) in physical.iter().enumerate() {
                let mut lidx = 0usize;
                for (q, &p) in routed.final_layout.iter().enumerate() {
                    if (pidx >> p) & 1 == 1 {
                        lidx |= 1 << q;
                    }
                }
                logical[lidx] = a;
            }
            prop_assert!(states_equivalent(&original, &logical, 1e-8));
        }

        #[test]
        fn depth_at_most_len(c in arb_circuit(5, 32)) {
            prop_assert!(c.depth() <= c.len());
            let counts = c.one_qubit_count() + c.two_qubit_count();
            prop_assert_eq!(counts, c.len());
        }
    }
}
