//! Measurement-basis change circuits (paper §4.1.2).
//!
//! To measure a qubit in the X basis, apply H before a computational-basis
//! measurement; for the Y basis, apply S† then H. These small circuits are
//! what the cached-state execution (paper §4.1) applies to the stored
//! post-ansatz state instead of re-running the whole ansatz.

use crate::circuit::Circuit;
use nwq_common::Result;
use nwq_pauli::{grouping::MeasurementGroup, Pauli, PauliString};

/// Circuit rotating each qubit listed in `basis` into the computational
/// basis: H for X, (S† then H) for Y, nothing for Z/I.
pub fn basis_change_circuit(n_qubits: usize, basis: &[Pauli]) -> Result<Circuit> {
    let mut c = Circuit::new(n_qubits);
    for (q, p) in basis.iter().enumerate() {
        match p {
            Pauli::X => {
                c.push(crate::gate::Gate::H(q))?;
            }
            Pauli::Y => {
                c.push(crate::gate::Gate::Sdg(q))?;
                c.push(crate::gate::Gate::H(q))?;
            }
            _ => {}
        }
    }
    Ok(c)
}

/// Basis-change circuit for measuring a single Pauli string.
pub fn string_basis_circuit(s: &PauliString) -> Result<Circuit> {
    let basis: Vec<Pauli> = (0..s.n_qubits()).map(|q| s.op(q)).collect();
    basis_change_circuit(s.n_qubits(), &basis)
}

/// Basis-change circuit for a qubit-wise-commuting measurement group.
pub fn group_basis_circuit(n_qubits: usize, group: &MeasurementGroup) -> Result<Circuit> {
    basis_change_circuit(n_qubits, &group.basis)
}

/// After the basis change, each string in the group is diagonal: this
/// returns the diagonalized (Z/I-only) form of `s`, i.e. the same support
/// with every X/Y replaced by Z.
pub fn diagonalized(s: &PauliString) -> PauliString {
    PauliString::from_masks(s.n_qubits(), 0, s.support())
        .expect("support mask is within register by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_basis_needs_no_gates() {
        let s = PauliString::parse("ZIZ").unwrap();
        assert!(string_basis_circuit(&s).unwrap().is_empty());
    }

    #[test]
    fn x_basis_one_hadamard_per_qubit() {
        let s = PauliString::parse("XX").unwrap();
        let c = string_basis_circuit(&s).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.gates().iter().all(|g| g.name() == "h"));
    }

    #[test]
    fn y_basis_two_gates_per_qubit() {
        let s = PauliString::parse("YI").unwrap();
        let c = string_basis_circuit(&s).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.gates()[0].name(), "sdg");
        assert_eq!(c.gates()[1].name(), "h");
    }

    #[test]
    fn group_circuit_matches_basis_gate_count() {
        let op = nwq_pauli::PauliOp::parse("1.0 XY + 0.5 XI").unwrap();
        let groups = nwq_pauli::grouping::group_qubit_wise(&op);
        assert_eq!(groups.len(), 1);
        let c = group_basis_circuit(2, &groups[0]).unwrap();
        assert_eq!(c.len(), groups[0].basis_change_gates());
    }

    #[test]
    fn diagonalization_keeps_support() {
        let s = PauliString::parse("XYZI").unwrap();
        let d = diagonalized(&s);
        assert_eq!(d.label(), "ZZZI");
        assert!(d.is_diagonal());
        assert_eq!(d.support(), s.support());
    }
}
