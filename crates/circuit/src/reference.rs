//! A deliberately naive reference simulator.
//!
//! This serial, allocation-happy implementation exists as a *test oracle*:
//! the optimized kernels in `nwq-statevec` and the distributed executor in
//! `nwq-dist` are validated against it. Keep it simple and obviously
//! correct; never optimize it.

use crate::circuit::Circuit;
use crate::gate::GateMatrix;
use nwq_common::bits::{bit, dim, with_bit};
use nwq_common::{Mat2, Mat4, Result, C64, C_ONE, C_ZERO};

/// `|0…0⟩` on `n` qubits.
pub fn zero_state(n_qubits: usize) -> Vec<C64> {
    let mut v = vec![C_ZERO; dim(n_qubits)];
    v[0] = C_ONE;
    v
}

/// Applies a single-qubit matrix to `psi` on qubit `q` (out of place).
pub fn apply_mat2(psi: &[C64], q: usize, m: &Mat2) -> Vec<C64> {
    let mut out = vec![C_ZERO; psi.len()];
    for (i, &amp) in psi.iter().enumerate() {
        let b = bit(i, q) as usize;
        for r in 0..2 {
            out[with_bit(i, q, r == 1)] += m.0[r][b] * amp;
        }
    }
    out
}

/// Applies a two-qubit matrix to `psi` on `(high, low)` (out of place).
pub fn apply_mat4(psi: &[C64], high: usize, low: usize, m: &Mat4) -> Vec<C64> {
    let mut out = vec![C_ZERO; psi.len()];
    for (i, &amp) in psi.iter().enumerate() {
        let col = ((bit(i, high) as usize) << 1) | bit(i, low) as usize;
        for row in 0..4 {
            let j = with_bit(with_bit(i, high, row & 2 != 0), low, row & 1 != 0);
            out[j] += m.0[row][col] * amp;
        }
    }
    out
}

/// Runs a circuit on an explicit initial state.
pub fn run_on(circuit: &Circuit, params: &[f64], mut psi: Vec<C64>) -> Result<Vec<C64>> {
    for g in circuit.gates() {
        psi = match g.matrix(params)? {
            GateMatrix::One(q, m) => apply_mat2(&psi, q, &m),
            GateMatrix::Two(a, b, m) => apply_mat4(&psi, a, b, &m),
        };
    }
    Ok(psi)
}

/// Runs a circuit from `|0…0⟩`.
pub fn run(circuit: &Circuit, params: &[f64]) -> Result<Vec<C64>> {
    run_on(circuit, params, zero_state(circuit.n_qubits()))
}

/// Fidelity `|⟨a|b⟩|²` between two states.
pub fn fidelity(a: &[C64], b: &[C64]) -> f64 {
    let overlap: C64 = a.iter().zip(b).map(|(x, y)| x.conj() * *y).sum();
    overlap.norm_sqr()
}

/// `true` when two circuits act identically on `|0…0⟩` up to global phase.
pub fn states_equivalent(a: &[C64], b: &[C64], tol: f64) -> bool {
    (fidelity(a, b) - 1.0).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let psi = run(&c, &[]).unwrap();
        assert!((psi[0].re - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((psi[3].re - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!(psi[1].norm() < 1e-12 && psi[2].norm() < 1e-12);
    }

    #[test]
    fn x_gate_flips() {
        let mut c = Circuit::new(3);
        c.x(1);
        let psi = run(&c, &[]).unwrap();
        assert!((psi[2].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cx_control_polarity() {
        // Control qubit 0 in |0⟩: target unchanged.
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let psi = run(&c, &[]).unwrap();
        assert!((psi[0].re - 1.0).abs() < 1e-12);
        // Control set: target flips. State |01⟩ (qubit0=1) -> |11⟩.
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let psi = run(&c, &[]).unwrap();
        assert!((psi[3].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circuit_then_inverse_is_identity() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(1, 0.7).ry(2, -0.3).cx(1, 2).t(0);
        let mut full = c.clone();
        full.append(&c.inverse()).unwrap();
        let psi = run(&full, &[]).unwrap();
        let zero = zero_state(3);
        assert!(states_equivalent(&psi, &zero, 1e-10));
    }

    #[test]
    fn norm_preserved() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).cx(0, 2).rzz(1, 3, 0.9).swap(0, 3).sx(2);
        let psi = run(&c, &[]).unwrap();
        let n: f64 = psi.iter().map(|a| a.norm_sqr()).sum();
        assert!((n - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_bounds() {
        let a = zero_state(2);
        assert!((fidelity(&a, &a) - 1.0).abs() < 1e-12);
        let mut c = Circuit::new(2);
        c.x(0);
        let b = run(&c, &[]).unwrap();
        assert!(fidelity(&a, &b) < 1e-12);
    }
}
