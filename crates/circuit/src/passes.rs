//! Lightweight circuit-rewriting passes complementing gate fusion:
//! adjacent-inverse cancellation and rotation merging (the classic
//! optimizations cited from Sabre-style compilers in paper §6.1).

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::param::ParamExpr;
use nwq_common::Result;

fn cancels(a: &Gate, b: &Gate) -> bool {
    use Gate::*;
    match (a, b) {
        (X(p), X(q)) | (Y(p), Y(q)) | (Z(p), Z(q)) | (H(p), H(q)) => p == q,
        (S(p), Sdg(q)) | (Sdg(p), S(q)) | (T(p), Tdg(q)) | (Tdg(p), T(q)) => p == q,
        (CX(a1, b1), CX(a2, b2)) | (CZ(a1, b1), CZ(a2, b2)) => {
            (a1 == a2 && b1 == b2) || (matches!(a, CZ(..)) && a1 == b2 && b1 == a2)
        }
        (SWAP(a1, b1), SWAP(a2, b2)) => (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2),
        _ => false,
    }
}

/// Merges two same-axis rotations into one, if possible. Only concrete
/// angles merge (symbolic sums are not representable in [`ParamExpr`]).
fn merge_rotations(a: &Gate, b: &Gate) -> Option<Gate> {
    use Gate::*;
    let sum = |x: &ParamExpr, y: &ParamExpr| -> Option<ParamExpr> {
        match (x, y) {
            (ParamExpr::Const(u), ParamExpr::Const(v)) => Some(ParamExpr::Const(u + v)),
            // Same parameter, affine combine.
            (
                ParamExpr::Var {
                    index: i,
                    coeff: c1,
                    offset: o1,
                },
                ParamExpr::Var {
                    index: j,
                    coeff: c2,
                    offset: o2,
                },
            ) if i == j => Some(ParamExpr::Var {
                index: *i,
                coeff: c1 + c2,
                offset: o1 + o2,
            }),
            _ => None,
        }
    };
    match (a, b) {
        (RX(p, x), RX(q, y)) if p == q => sum(x, y).map(|e| RX(*p, e)),
        (RY(p, x), RY(q, y)) if p == q => sum(x, y).map(|e| RY(*p, e)),
        (RZ(p, x), RZ(q, y)) if p == q => sum(x, y).map(|e| RZ(*p, e)),
        (P(p, x), P(q, y)) if p == q => sum(x, y).map(|e| P(*p, e)),
        (RZZ(a1, b1, x), RZZ(a2, b2, y)) if a1 == a2 && b1 == b2 => {
            sum(x, y).map(|e| RZZ(*a1, *b1, e))
        }
        _ => None,
    }
}

fn is_zero_rotation(g: &Gate) -> bool {
    use Gate::*;
    match g {
        RX(_, ParamExpr::Const(v))
        | RY(_, ParamExpr::Const(v))
        | RZ(_, ParamExpr::Const(v))
        | P(_, ParamExpr::Const(v))
        | RZZ(_, _, ParamExpr::Const(v)) => *v == 0.0,
        _ => false,
    }
}

/// Repeatedly cancels adjacent inverse pairs and merges adjacent same-axis
/// rotations until a fixed point. "Adjacent" means consecutive among the
/// gates touching those qubits: gates on disjoint qubits in between are
/// skipped (they commute past).
pub fn cancel_and_merge(circuit: &Circuit) -> Result<Circuit> {
    let mut gates: Vec<Option<Gate>> = circuit.gates().iter().cloned().map(Some).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..gates.len() {
            let Some(a) = gates[i].clone() else { continue };
            if is_zero_rotation(&a) {
                gates[i] = None;
                changed = true;
                continue;
            }
            let qa = a.qubits();
            // Find the next gate touching any qubit of `a`.
            let mut j = i + 1;
            let mut partner: Option<usize> = None;
            while j < gates.len() {
                if let Some(b) = &gates[j] {
                    let qb = b.qubits();
                    if qb.iter().any(|q| qa.contains(q)) {
                        // Only a candidate if it covers exactly the same
                        // qubit set; otherwise it blocks.
                        if qb.len() == qa.len() && qa.iter().all(|q| qb.contains(q)) {
                            partner = Some(j);
                        }
                        break;
                    }
                }
                j += 1;
            }
            if let Some(j) = partner {
                let b = gates[j].clone().unwrap();
                if cancels(&a, &b) {
                    gates[i] = None;
                    gates[j] = None;
                    changed = true;
                } else if let Some(m) = merge_rotations(&a, &b) {
                    gates[i] = None;
                    gates[j] = Some(m);
                    changed = true;
                }
            }
        }
    }
    let mut out = Circuit::with_params(circuit.n_qubits(), circuit.n_params());
    for g in gates.into_iter().flatten() {
        out.push(g)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_hadamard_cancels() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        assert!(cancel_and_merge(&c).unwrap().is_empty());
    }

    #[test]
    fn s_sdg_cancels() {
        let mut c = Circuit::new(1);
        c.s(0).sdg(0).t(0).tdg(0);
        assert!(cancel_and_merge(&c).unwrap().is_empty());
    }

    #[test]
    fn double_cnot_cancels() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        assert!(cancel_and_merge(&c).unwrap().is_empty());
    }

    #[test]
    fn reversed_cnot_does_not_cancel() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        assert_eq!(cancel_and_merge(&c).unwrap().len(), 2);
    }

    #[test]
    fn reversed_cz_cancels() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).cz(1, 0);
        assert!(cancel_and_merge(&c).unwrap().is_empty());
    }

    #[test]
    fn cancellation_across_disjoint_gates() {
        // H(0), X(1), H(0): the X on qubit 1 does not block.
        let mut c = Circuit::new(2);
        c.h(0).x(1).h(0);
        let out = cancel_and_merge(&c).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.gates()[0], Gate::X(1));
    }

    #[test]
    fn blocking_gate_prevents_cancellation() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        assert_eq!(cancel_and_merge(&c).unwrap().len(), 3);
    }

    #[test]
    fn rotations_merge() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.3).rz(0, 0.4);
        let out = cancel_and_merge(&c).unwrap();
        assert_eq!(out.len(), 1);
        match out.gates()[0] {
            Gate::RZ(0, ParamExpr::Const(v)) => assert!((v - 0.7).abs() < 1e-12),
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn opposite_rotations_vanish() {
        let mut c = Circuit::new(1);
        c.rx(0, 0.5).rx(0, -0.5);
        assert!(cancel_and_merge(&c).unwrap().is_empty());
    }

    #[test]
    fn symbolic_same_param_rotations_merge() {
        let mut c = Circuit::new(1);
        c.rz(0, ParamExpr::scaled_var(0, 1.0))
            .rz(0, ParamExpr::scaled_var(0, 2.0));
        let out = cancel_and_merge(&c).unwrap();
        assert_eq!(out.len(), 1);
        match out.gates()[0] {
            Gate::RZ(0, ParamExpr::Var { coeff, .. }) => assert_eq!(coeff, 3.0),
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn different_param_rotations_do_not_merge() {
        let mut c = Circuit::new(1);
        c.rz(0, ParamExpr::var(0)).rz(0, ParamExpr::var(1));
        assert_eq!(cancel_and_merge(&c).unwrap().len(), 2);
    }

    #[test]
    fn cnot_conjugation_pattern_shrinks() {
        // CX RZ CX ... with an inner cancellation opportunity after merges.
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(1, 0.2).rz(1, -0.2).cx(0, 1);
        assert!(cancel_and_merge(&c).unwrap().is_empty());
    }

    #[test]
    fn mismatched_qubit_sets_block() {
        // CX(0,1) then H(0): H blocks on qubit 0 but its qubit set differs,
        // nothing cancels.
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(0).cx(0, 1);
        assert_eq!(cancel_and_merge(&c).unwrap().len(), 3);
    }
}
