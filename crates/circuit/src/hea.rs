//! Hardware-efficient ansatz (Kandala et al., cited in paper §6.1).
//!
//! Alternating layers of per-qubit RY/RZ rotations and a linear CX
//! entangler chain — the standard low-depth alternative to UCCSD when
//! circuit depth, not chemical structure, is the binding constraint.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::param::ParamExpr;
use nwq_common::{Error, Result};

/// Builds a hardware-efficient ansatz with `layers` entangling layers.
///
/// Structure: an initial RY+RZ rotation layer, then `layers` repetitions
/// of (linear CX chain; RY+RZ layer). Parameters are indexed layer-major:
/// `2·n_qubits` per rotation layer, `(layers + 1) · 2 · n_qubits` total.
pub fn hardware_efficient_ansatz(n_qubits: usize, layers: usize) -> Result<Circuit> {
    if n_qubits == 0 {
        return Err(Error::Invalid("ansatz needs at least one qubit".into()));
    }
    let mut c = Circuit::with_params(n_qubits, (layers + 1) * 2 * n_qubits);
    let mut k = 0;
    let rotation_layer = |c: &mut Circuit, k: &mut usize| -> Result<()> {
        for q in 0..n_qubits {
            c.push(Gate::RY(q, ParamExpr::var(*k)))?;
            c.push(Gate::RZ(q, ParamExpr::var(*k + 1)))?;
            *k += 2;
        }
        Ok(())
    };
    rotation_layer(&mut c, &mut k)?;
    for _ in 0..layers {
        for q in 0..n_qubits.saturating_sub(1) {
            c.push(Gate::CX(q, q + 1))?;
        }
        rotation_layer(&mut c, &mut k)?;
    }
    Ok(c)
}

/// Gate count of the ansatz without building it.
pub fn hea_gate_count(n_qubits: usize, layers: usize) -> usize {
    (layers + 1) * 2 * n_qubits + layers * n_qubits.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn parameter_and_gate_counts() {
        for (n, l) in [(2usize, 1usize), (4, 2), (6, 3), (1, 0)] {
            let c = hardware_efficient_ansatz(n, l).unwrap();
            assert_eq!(c.n_params(), (l + 1) * 2 * n, "n={n} l={l}");
            assert_eq!(c.len(), hea_gate_count(n, l), "n={n} l={l}");
        }
        assert!(hardware_efficient_ansatz(0, 1).is_err());
    }

    #[test]
    fn zero_params_prepares_zero_state() {
        let c = hardware_efficient_ansatz(3, 2).unwrap();
        let psi = reference::run(&c, &vec![0.0; c.n_params()]).unwrap();
        assert!((psi[0].norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn nonzero_params_entangle() {
        // One layer with generic angles produces an entangled 2-qubit
        // state: the reduced purity of qubit 0 drops below 1.
        let c = hardware_efficient_ansatz(2, 1).unwrap();
        let params: Vec<f64> = (0..c.n_params()).map(|k| 0.4 + 0.3 * k as f64).collect();
        let psi = reference::run(&c, &params).unwrap();
        // ρ0 = Tr_1 |ψ⟩⟨ψ|.
        let mut rho = [[nwq_common::C_ZERO; 2]; 2];
        for a in 0..2 {
            for b in 0..2 {
                for e in 0..2 {
                    rho[a][b] += psi[(e << 1) | a].conj() * psi[(e << 1) | b];
                }
            }
        }
        let purity = (rho[0][0] * rho[0][0]
            + rho[0][1] * rho[1][0]
            + rho[1][0] * rho[0][1]
            + rho[1][1] * rho[1][1])
            .re;
        assert!(purity < 0.999, "state not entangled, purity {purity}");
    }

    #[test]
    fn depth_grows_linearly_with_layers() {
        let d1 = hardware_efficient_ansatz(4, 1).unwrap().depth();
        let d3 = hardware_efficient_ansatz(4, 3).unwrap().depth();
        assert!(d3 > d1);
        assert!(d3 < 3 * d1 + 10);
    }

    #[test]
    fn single_qubit_ansatz_has_no_entanglers() {
        let c = hardware_efficient_ansatz(1, 2).unwrap();
        assert_eq!(c.two_qubit_count(), 0);
        assert_eq!(c.one_qubit_count(), 6);
    }
}
