//! Gradient estimation and gradient-descent optimizers.
//!
//! For ansatz parameters entering through Pauli exponentials, the
//! parameter-shift rule gives *exact* gradients from two energy
//! evaluations per parameter: `∂E/∂θ = [E(θ+s) − E(θ−s)] / (2 sin s)` with
//! `s = π/2` for generators with eigenvalues ±1. Central finite differences
//! are provided for everything else.

use crate::traits::{state_f64, OptResult, Optimizer};
use nwq_common::Result;
use nwq_telemetry::JsonValue;

/// Exact parameter-shift gradient for ±1-eigenvalue generators, with a
/// fallible objective: the first evaluation error aborts the sweep.
pub fn try_parameter_shift_gradient(
    f: &mut dyn FnMut(&[f64]) -> Result<f64>,
    x: &[f64],
) -> Result<Vec<f64>> {
    let s = std::f64::consts::FRAC_PI_2;
    let mut grad = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        xp[i] = x[i] + s;
        let fp = f(&xp)?;
        xp[i] = x[i] - s;
        let fm = f(&xp)?;
        xp[i] = x[i];
        grad[i] = (fp - fm) / 2.0;
    }
    Ok(grad)
}

/// Exact parameter-shift gradient for ±1-eigenvalue generators.
pub fn parameter_shift_gradient(f: &mut dyn FnMut(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
    try_parameter_shift_gradient(&mut |p| Ok(f(p)), x)
        .expect("infallible objective cannot produce an error")
}

/// Central finite-difference gradient with step `eps` and a fallible
/// objective: the first evaluation error aborts the sweep.
pub fn try_finite_difference_gradient(
    f: &mut dyn FnMut(&[f64]) -> Result<f64>,
    x: &[f64],
    eps: f64,
) -> Result<Vec<f64>> {
    let mut grad = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        xp[i] = x[i] + eps;
        let fp = f(&xp)?;
        xp[i] = x[i] - eps;
        let fm = f(&xp)?;
        xp[i] = x[i];
        grad[i] = (fp - fm) / (2.0 * eps);
    }
    Ok(grad)
}

/// Central finite-difference gradient with step `eps`.
pub fn finite_difference_gradient(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x: &[f64],
    eps: f64,
) -> Vec<f64> {
    try_finite_difference_gradient(&mut |p| Ok(f(p)), x, eps)
        .expect("infallible objective cannot produce an error")
}

/// How [`Adam`] obtains gradients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GradientMode {
    /// Parameter-shift rule (exact for Pauli-exponential parameters).
    ParameterShift,
    /// Central finite differences with the given step.
    FiniteDifference(f64),
}

/// Adam gradient descent.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
    /// Gradient source.
    pub mode: GradientMode,
    /// Stop when the gradient ∞-norm falls below this.
    pub g_tol: f64,
}

impl Default for Adam {
    fn default() -> Self {
        Adam {
            lr: 0.05,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            mode: GradientMode::ParameterShift,
            g_tol: 1e-6,
        }
    }
}

impl Optimizer for Adam {
    fn name(&self) -> &'static str {
        "adam"
    }

    fn state_json(&self) -> JsonValue {
        let (mode, fd_step) = match self.mode {
            GradientMode::ParameterShift => ("parameter-shift", JsonValue::Null),
            GradientMode::FiniteDifference(eps) => ("finite-difference", JsonValue::Float(eps)),
        };
        JsonValue::Object(vec![
            ("lr".into(), JsonValue::Float(self.lr)),
            ("beta1".into(), JsonValue::Float(self.beta1)),
            ("beta2".into(), JsonValue::Float(self.beta2)),
            ("eps".into(), JsonValue::Float(self.eps)),
            ("g_tol".into(), JsonValue::Float(self.g_tol)),
            ("mode".into(), JsonValue::Str(mode.into())),
            ("fd_step".into(), fd_step),
        ])
    }

    fn restore_state(&mut self, state: &JsonValue) -> Result<()> {
        self.lr = state_f64(state, "lr")?;
        self.beta1 = state_f64(state, "beta1")?;
        self.beta2 = state_f64(state, "beta2")?;
        self.eps = state_f64(state, "eps")?;
        self.g_tol = state_f64(state, "g_tol")?;
        self.mode = match state.get("mode").and_then(JsonValue::as_str) {
            Some("parameter-shift") => GradientMode::ParameterShift,
            Some("finite-difference") => {
                GradientMode::FiniteDifference(state_f64(state, "fd_step")?)
            }
            other => {
                return Err(nwq_common::Error::Invalid(format!(
                    "unknown adam gradient mode {other:?}"
                )))
            }
        };
        Ok(())
    }

    fn try_minimize(
        &mut self,
        f: &mut dyn FnMut(&[f64]) -> Result<f64>,
        x0: &[f64],
        max_evals: usize,
    ) -> Result<OptResult> {
        let n = x0.len();
        let mut x = x0.to_vec();
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut evals = 0usize;
        let mut best_val = f(&x)?;
        evals += 1;
        let mut best_x = x.clone();
        let mut converged = false;
        let grad_cost = 2 * n.max(1);
        let mut t = 0usize;
        while evals + grad_cost < max_evals {
            t += 1;
            let grad = match self.mode {
                GradientMode::ParameterShift => try_parameter_shift_gradient(f, &x)?,
                GradientMode::FiniteDifference(eps) => try_finite_difference_gradient(f, &x, eps)?,
            };
            evals += grad_cost;
            let gnorm = grad.iter().fold(0.0f64, |a, g| a.max(g.abs()));
            if gnorm < self.g_tol {
                converged = true;
                break;
            }
            for i in 0..n {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
                let mhat = m[i] / (1.0 - self.beta1.powi(t as i32));
                let vhat = v[i] / (1.0 - self.beta2.powi(t as i32));
                x[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            let val = f(&x)?;
            evals += 1;
            if val < best_val {
                best_val = val;
                best_x = x.clone();
            }
        }
        Ok(OptResult {
            params: best_x,
            value: best_val,
            evals,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_shift_is_exact_for_sinusoids() {
        // E(θ) = cos θ: parameter-shift gives exactly −sin θ.
        let mut f = |x: &[f64]| x[0].cos();
        for theta in [-1.0, 0.0, 0.4, 2.2] {
            let g = parameter_shift_gradient(&mut f, &[theta]);
            assert!((g[0] + theta.sin()).abs() < 1e-12, "θ={theta}");
        }
    }

    #[test]
    fn finite_difference_approximates() {
        let mut f = |x: &[f64]| x[0].powi(3) + 2.0 * x[1];
        let g = finite_difference_gradient(&mut f, &[2.0, 0.0], 1e-5);
        assert!((g[0] - 12.0).abs() < 1e-5);
        assert!((g[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn adam_minimizes_vqe_like_energy() {
        // E(θ) = 1 − cos(θ0)·cos(θ1), minimum 0 at origin.
        let mut adam = Adam {
            lr: 0.1,
            ..Default::default()
        };
        let mut f = |x: &[f64]| 1.0 - x[0].cos() * x[1].cos();
        let r = adam.minimize(&mut f, &[0.8, -0.6], 4000);
        assert!(r.value < 1e-6, "value {}", r.value);
    }

    #[test]
    fn adam_with_finite_difference() {
        let mut adam = Adam {
            lr: 0.2,
            mode: GradientMode::FiniteDifference(1e-6),
            ..Default::default()
        };
        let mut f = |x: &[f64]| (x[0] - 3.0).powi(2);
        let r = adam.minimize(&mut f, &[0.0], 4000);
        assert!((r.params[0] - 3.0).abs() < 1e-2, "{:?}", r.params);
    }

    #[test]
    fn adam_converges_flag_on_flat_landscape() {
        let mut adam = Adam::default();
        let mut f = |_: &[f64]| 1.0;
        let r = adam.minimize(&mut f, &[0.5], 100);
        assert!(r.converged);
        assert_eq!(r.value, 1.0);
    }

    #[test]
    fn adam_aborts_promptly_on_objective_error() {
        let mut adam = Adam::default();
        let mut count = 0usize;
        let mut f = |x: &[f64]| -> Result<f64> {
            count += 1;
            if count == 4 {
                Err(nwq_common::Error::Backend("lost".into()))
            } else {
                Ok(x[0].powi(2))
            }
        };
        assert!(adam.try_minimize(&mut f, &[1.0], 5000).is_err());
        assert_eq!(count, 4);
    }

    #[test]
    fn adam_state_round_trip_both_modes() {
        for mode in [
            GradientMode::ParameterShift,
            GradientMode::FiniteDifference(1e-5),
        ] {
            let src = Adam {
                lr: 0.07,
                mode,
                ..Default::default()
            };
            let mut dst = Adam::default();
            dst.restore_state(&src.state_json()).unwrap();
            assert_eq!(dst.lr, 0.07);
            assert_eq!(dst.mode, mode);
        }
        assert_eq!(Adam::default().name(), "adam");
    }

    #[test]
    fn adam_respects_budget() {
        let mut adam = Adam::default();
        let mut count = 0usize;
        let mut f = |x: &[f64]| {
            count += 1;
            x[0].powi(2)
        };
        let r = adam.minimize(&mut f, &[1.0], 30);
        assert!(r.evals <= 30);
        assert_eq!(count, r.evals);
    }
}
