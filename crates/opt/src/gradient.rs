//! Gradient estimation and gradient-descent optimizers.
//!
//! For ansatz parameters entering through Pauli exponentials, the
//! parameter-shift rule gives *exact* gradients from two energy
//! evaluations per parameter: `∂E/∂θ = [E(θ+s) − E(θ−s)] / (2 sin s)` with
//! `s = π/2` for generators with eigenvalues ±1. Central finite differences
//! are provided for everything else.

use crate::traits::{
    single, state_f64, BatchedObjective, GradObjective, GradOptimizer, OptResult, Optimizer,
};
use nwq_common::Result;
use nwq_telemetry::JsonValue;

/// Exact parameter-shift gradient for ±1-eigenvalue generators, with a
/// fallible objective: the first evaluation error aborts the sweep.
pub fn try_parameter_shift_gradient(
    f: &mut dyn FnMut(&[f64]) -> Result<f64>,
    x: &[f64],
) -> Result<Vec<f64>> {
    let s = std::f64::consts::FRAC_PI_2;
    let mut grad = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        xp[i] = x[i] + s;
        let fp = f(&xp)?;
        xp[i] = x[i] - s;
        let fm = f(&xp)?;
        xp[i] = x[i];
        grad[i] = (fp - fm) / 2.0;
    }
    Ok(grad)
}

/// Exact parameter-shift gradient for ±1-eigenvalue generators.
pub fn parameter_shift_gradient(f: &mut dyn FnMut(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
    try_parameter_shift_gradient(&mut |p| Ok(f(p)), x)
        .expect("infallible objective cannot produce an error")
}

/// Central finite-difference gradient with step `eps` and a fallible
/// objective: the first evaluation error aborts the sweep.
pub fn try_finite_difference_gradient(
    f: &mut dyn FnMut(&[f64]) -> Result<f64>,
    x: &[f64],
    eps: f64,
) -> Result<Vec<f64>> {
    let mut grad = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        xp[i] = x[i] + eps;
        let fp = f(&xp)?;
        xp[i] = x[i] - eps;
        let fm = f(&xp)?;
        xp[i] = x[i];
        grad[i] = (fp - fm) / (2.0 * eps);
    }
    Ok(grad)
}

/// Central finite-difference gradient with step `eps`.
pub fn finite_difference_gradient(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x: &[f64],
    eps: f64,
) -> Vec<f64> {
    try_finite_difference_gradient(&mut |p| Ok(f(p)), x, eps)
        .expect("infallible objective cannot produce an error")
}

/// Builds the `2·n` shifted parameter vectors of a two-term shift rule in
/// the same interleaved order (`x+s·e_0, x−s·e_0, x+s·e_1, …`) the serial
/// sweeps evaluate, so batched and serial gradients visit identical
/// points.
fn shifted_pairs(x: &[f64], s: f64) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(2 * x.len());
    for i in 0..x.len() {
        let mut plus = x.to_vec();
        plus[i] += s;
        out.push(plus);
        let mut minus = x.to_vec();
        minus[i] -= s;
        out.push(minus);
    }
    out
}

/// Parameter-shift gradient through a *batched* objective: all `2·n`
/// shifted evaluations ride one call, so walker-batched backends evolve
/// them in a single multi-walker sweep instead of `2·n` serial
/// simulations. Values match [`try_parameter_shift_gradient`] exactly
/// (same points, and batched backends are bitwise identical per entry).
pub fn try_parameter_shift_gradient_batched(
    f: &mut BatchedObjective<'_>,
    x: &[f64],
) -> Result<Vec<f64>> {
    if x.is_empty() {
        return Ok(Vec::new());
    }
    let e = f(&shifted_pairs(x, std::f64::consts::FRAC_PI_2))?;
    if e.len() != 2 * x.len() {
        return Err(nwq_common::Error::Invalid(format!(
            "batched objective returned {} values for {} parameter vectors",
            e.len(),
            2 * x.len()
        )));
    }
    Ok((0..x.len())
        .map(|i| (e[2 * i] - e[2 * i + 1]) / 2.0)
        .collect())
}

/// Central finite-difference gradient through a *batched* objective; the
/// batched analog of [`try_finite_difference_gradient`].
pub fn try_finite_difference_gradient_batched(
    f: &mut BatchedObjective<'_>,
    x: &[f64],
    eps: f64,
) -> Result<Vec<f64>> {
    if x.is_empty() {
        return Ok(Vec::new());
    }
    let e = f(&shifted_pairs(x, eps))?;
    if e.len() != 2 * x.len() {
        return Err(nwq_common::Error::Invalid(format!(
            "batched objective returned {} values for {} parameter vectors",
            e.len(),
            2 * x.len()
        )));
    }
    Ok((0..x.len())
        .map(|i| (e[2 * i] - e[2 * i + 1]) / (2.0 * eps))
        .collect())
}

/// How [`Adam`] obtains gradients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GradientMode {
    /// Parameter-shift rule (exact for Pauli-exponential parameters).
    ParameterShift,
    /// Central finite differences with the given step.
    FiniteDifference(f64),
}

/// Adam gradient descent.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
    /// Gradient source.
    pub mode: GradientMode,
    /// Stop when the gradient ∞-norm falls below this.
    pub g_tol: f64,
}

impl Default for Adam {
    fn default() -> Self {
        Adam {
            lr: 0.05,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            mode: GradientMode::ParameterShift,
            g_tol: 1e-6,
        }
    }
}

impl Optimizer for Adam {
    fn name(&self) -> &'static str {
        "adam"
    }

    fn state_json(&self) -> JsonValue {
        let (mode, fd_step) = match self.mode {
            GradientMode::ParameterShift => ("parameter-shift", JsonValue::Null),
            GradientMode::FiniteDifference(eps) => ("finite-difference", JsonValue::Float(eps)),
        };
        JsonValue::Object(vec![
            ("lr".into(), JsonValue::Float(self.lr)),
            ("beta1".into(), JsonValue::Float(self.beta1)),
            ("beta2".into(), JsonValue::Float(self.beta2)),
            ("eps".into(), JsonValue::Float(self.eps)),
            ("g_tol".into(), JsonValue::Float(self.g_tol)),
            ("mode".into(), JsonValue::Str(mode.into())),
            ("fd_step".into(), fd_step),
        ])
    }

    fn restore_state(&mut self, state: &JsonValue) -> Result<()> {
        self.lr = state_f64(state, "lr")?;
        self.beta1 = state_f64(state, "beta1")?;
        self.beta2 = state_f64(state, "beta2")?;
        self.eps = state_f64(state, "eps")?;
        self.g_tol = state_f64(state, "g_tol")?;
        self.mode = match state.get("mode").and_then(JsonValue::as_str) {
            Some("parameter-shift") => GradientMode::ParameterShift,
            Some("finite-difference") => {
                GradientMode::FiniteDifference(state_f64(state, "fd_step")?)
            }
            other => {
                return Err(nwq_common::Error::Invalid(format!(
                    "unknown adam gradient mode {other:?}"
                )))
            }
        };
        Ok(())
    }

    fn try_minimize(
        &mut self,
        f: &mut dyn FnMut(&[f64]) -> Result<f64>,
        x0: &[f64],
        max_evals: usize,
    ) -> Result<OptResult> {
        let n = x0.len();
        let mut x = x0.to_vec();
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut evals = 0usize;
        let mut best_val = f(&x)?;
        evals += 1;
        let mut best_x = x.clone();
        let mut converged = false;
        let grad_cost = 2 * n.max(1);
        let mut t = 0usize;
        while evals + grad_cost < max_evals {
            t += 1;
            let grad = match self.mode {
                GradientMode::ParameterShift => try_parameter_shift_gradient(f, &x)?,
                GradientMode::FiniteDifference(eps) => try_finite_difference_gradient(f, &x, eps)?,
            };
            evals += grad_cost;
            let gnorm = grad.iter().fold(0.0f64, |a, g| a.max(g.abs()));
            if gnorm < self.g_tol {
                converged = true;
                break;
            }
            for i in 0..n {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
                let mhat = m[i] / (1.0 - self.beta1.powi(t as i32));
                let vhat = v[i] / (1.0 - self.beta2.powi(t as i32));
                x[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            let val = f(&x)?;
            evals += 1;
            if val < best_val {
                best_val = val;
                best_x = x.clone();
            }
        }
        Ok(OptResult {
            params: best_x,
            value: best_val,
            evals,
            converged,
        })
    }

    /// Batched override: every gradient's `2·n` shifted evaluations ride
    /// ONE multi-vector call (a single walker-batched sweep on backends
    /// that support it) instead of `2·n` serial simulations. The
    /// trajectory is identical to [`Optimizer::try_minimize`] — same
    /// points, same order, same eval count.
    fn try_minimize_batched(
        &mut self,
        f: &mut BatchedObjective<'_>,
        x0: &[f64],
        max_evals: usize,
    ) -> Result<OptResult> {
        let n = x0.len();
        let mut x = x0.to_vec();
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut evals = 0usize;
        let mut best_val = single(f, &x)?;
        evals += 1;
        let mut best_x = x.clone();
        let mut converged = false;
        let grad_cost = 2 * n.max(1);
        let mut t = 0usize;
        while evals + grad_cost < max_evals {
            t += 1;
            let grad = match self.mode {
                GradientMode::ParameterShift => try_parameter_shift_gradient_batched(f, &x)?,
                GradientMode::FiniteDifference(eps) => {
                    try_finite_difference_gradient_batched(f, &x, eps)?
                }
            };
            evals += grad_cost;
            let gnorm = grad.iter().fold(0.0f64, |a, g| a.max(g.abs()));
            if gnorm < self.g_tol {
                converged = true;
                break;
            }
            for i in 0..n {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
                let mhat = m[i] / (1.0 - self.beta1.powi(t as i32));
                let vhat = v[i] / (1.0 - self.beta2.powi(t as i32));
                x[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            let val = single(f, &x)?;
            evals += 1;
            if val < best_val {
                best_val = val;
                best_x = x.clone();
            }
        }
        Ok(OptResult {
            params: best_x,
            value: best_val,
            evals,
            converged,
        })
    }
}

impl GradOptimizer for Adam {
    /// Analytic-gradient loop: one [`GradObjective::value_and_grad`] per
    /// iteration supplies both the step direction and the best-so-far
    /// tracking, so an adjoint-backed objective costs `grad_cost` (≈ 4)
    /// evaluation-equivalents per iteration regardless of the parameter
    /// count — versus `2·n + 1` for the shift-rule loops above.
    fn try_minimize_grad(
        &mut self,
        obj: &mut dyn GradObjective,
        x0: &[f64],
        max_evals: usize,
    ) -> Result<OptResult> {
        let n = x0.len();
        let mut x = x0.to_vec();
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let grad_cost = obj.grad_cost(n).max(1);
        let mut evals = 0usize;
        let mut best: Option<(f64, Vec<f64>)> = None;
        let mut converged = false;
        let mut t = 0usize;
        while evals + grad_cost <= max_evals {
            let (val, grad) = obj.value_and_grad(&x)?;
            evals += grad_cost;
            if best.as_ref().is_none_or(|(b, _)| val < *b) {
                best = Some((val, x.clone()));
            }
            let gnorm = grad.iter().fold(0.0f64, |a, g| a.max(g.abs()));
            if gnorm < self.g_tol {
                converged = true;
                break;
            }
            t += 1;
            for i in 0..n {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
                let mhat = m[i] / (1.0 - self.beta1.powi(t as i32));
                let vhat = v[i] / (1.0 - self.beta2.powi(t as i32));
                x[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
        let (value, params) = match best {
            Some(b) => b,
            None => {
                // Budget too small for even one gradient: report the
                // starting point honestly with one plain evaluation.
                let val = obj.value(&x)?;
                evals += 1;
                (val, x)
            }
        };
        Ok(OptResult {
            params,
            value,
            evals,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_shift_is_exact_for_sinusoids() {
        // E(θ) = cos θ: parameter-shift gives exactly −sin θ.
        let mut f = |x: &[f64]| x[0].cos();
        for theta in [-1.0, 0.0, 0.4, 2.2] {
            let g = parameter_shift_gradient(&mut f, &[theta]);
            assert!((g[0] + theta.sin()).abs() < 1e-12, "θ={theta}");
        }
    }

    #[test]
    fn finite_difference_approximates() {
        let mut f = |x: &[f64]| x[0].powi(3) + 2.0 * x[1];
        let g = finite_difference_gradient(&mut f, &[2.0, 0.0], 1e-5);
        assert!((g[0] - 12.0).abs() < 1e-5);
        assert!((g[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn adam_minimizes_vqe_like_energy() {
        // E(θ) = 1 − cos(θ0)·cos(θ1), minimum 0 at origin.
        let mut adam = Adam {
            lr: 0.1,
            ..Default::default()
        };
        let mut f = |x: &[f64]| 1.0 - x[0].cos() * x[1].cos();
        let r = adam.minimize(&mut f, &[0.8, -0.6], 4000);
        assert!(r.value < 1e-6, "value {}", r.value);
    }

    #[test]
    fn adam_with_finite_difference() {
        let mut adam = Adam {
            lr: 0.2,
            mode: GradientMode::FiniteDifference(1e-6),
            ..Default::default()
        };
        let mut f = |x: &[f64]| (x[0] - 3.0).powi(2);
        let r = adam.minimize(&mut f, &[0.0], 4000);
        assert!((r.params[0] - 3.0).abs() < 1e-2, "{:?}", r.params);
    }

    #[test]
    fn adam_converges_flag_on_flat_landscape() {
        let mut adam = Adam::default();
        let mut f = |_: &[f64]| 1.0;
        let r = adam.minimize(&mut f, &[0.5], 100);
        assert!(r.converged);
        assert_eq!(r.value, 1.0);
    }

    #[test]
    fn adam_aborts_promptly_on_objective_error() {
        let mut adam = Adam::default();
        let mut count = 0usize;
        let mut f = |x: &[f64]| -> Result<f64> {
            count += 1;
            if count == 4 {
                Err(nwq_common::Error::Backend("lost".into()))
            } else {
                Ok(x[0].powi(2))
            }
        };
        assert!(adam.try_minimize(&mut f, &[1.0], 5000).is_err());
        assert_eq!(count, 4);
    }

    #[test]
    fn adam_state_round_trip_both_modes() {
        for mode in [
            GradientMode::ParameterShift,
            GradientMode::FiniteDifference(1e-5),
        ] {
            let src = Adam {
                lr: 0.07,
                mode,
                ..Default::default()
            };
            let mut dst = Adam::default();
            dst.restore_state(&src.state_json()).unwrap();
            assert_eq!(dst.lr, 0.07);
            assert_eq!(dst.mode, mode);
        }
        assert_eq!(Adam::default().name(), "adam");
    }

    #[test]
    fn adam_respects_budget() {
        let mut adam = Adam::default();
        let mut count = 0usize;
        let mut f = |x: &[f64]| {
            count += 1;
            x[0].powi(2)
        };
        let r = adam.minimize(&mut f, &[1.0], 30);
        assert!(r.evals <= 30);
        assert_eq!(count, r.evals);
    }

    #[test]
    fn batched_gradients_match_serial_exactly() {
        let f = |x: &[f64]| 1.5 - x[0].cos() * x[1].cos() + 0.2 * (x[0] - x[1]).sin();
        let x = [0.31, -1.07];
        let serial_ps = try_parameter_shift_gradient(&mut |p: &[f64]| Ok(f(p)), &x).unwrap();
        let mut bf = |xs: &[Vec<f64>]| Ok(xs.iter().map(|p| f(p)).collect::<Vec<_>>());
        let batched_ps = try_parameter_shift_gradient_batched(&mut bf, &x).unwrap();
        assert_eq!(
            serial_ps, batched_ps,
            "bitwise-identical points → bitwise grad"
        );

        let serial_fd =
            try_finite_difference_gradient(&mut |p: &[f64]| Ok(f(p)), &x, 1e-6).unwrap();
        let batched_fd = try_finite_difference_gradient_batched(&mut bf, &x, 1e-6).unwrap();
        assert_eq!(serial_fd, batched_fd);

        // Empty parameter vector: no objective call at all.
        let mut calls = 0usize;
        let mut counting = |xs: &[Vec<f64>]| {
            calls += 1;
            Ok(xs.iter().map(|p| f(p)).collect::<Vec<_>>())
        };
        assert!(try_parameter_shift_gradient_batched(&mut counting, &[])
            .unwrap()
            .is_empty());
        assert_eq!(calls, 0);

        // Wrong output width surfaces as an error, not a bad gradient.
        let e = try_parameter_shift_gradient_batched(&mut |_| Ok(vec![0.0]), &x).unwrap_err();
        assert!(matches!(e, nwq_common::Error::Invalid(_)), "{e:?}");
    }

    #[test]
    fn adam_batched_matches_serial_trajectory_exactly() {
        let f = |x: &[f64]| 1.0 - x[0].cos() * x[1].cos();
        let x0 = [0.8, -0.6];
        let mut serial_pts: Vec<Vec<f64>> = Vec::new();
        let mut a1 = Adam::default();
        let r1 = a1
            .try_minimize(
                &mut |x: &[f64]| {
                    serial_pts.push(x.to_vec());
                    Ok(f(x))
                },
                &x0,
                60,
            )
            .unwrap();
        let mut batched_pts: Vec<Vec<f64>> = Vec::new();
        let mut widths: Vec<usize> = Vec::new();
        let mut a2 = Adam::default();
        let r2 = a2
            .try_minimize_batched(
                &mut |xs: &[Vec<f64>]| {
                    widths.push(xs.len());
                    batched_pts.extend(xs.iter().cloned());
                    Ok(xs.iter().map(|x| f(x)).collect())
                },
                &x0,
                60,
            )
            .unwrap();
        assert_eq!(r1, r2);
        assert_eq!(serial_pts, batched_pts);
        assert_eq!(serial_pts.len(), r1.evals);
        // Shift pairs actually ride multi-vector calls (2·n wide).
        assert_eq!(widths.iter().max(), Some(&4), "{widths:?}");
    }

    struct CosObj {
        grad_calls: usize,
    }

    impl GradObjective for CosObj {
        fn value(&mut self, x: &[f64]) -> Result<f64> {
            Ok(1.0 - x[0].cos() * x[1].cos())
        }

        fn value_and_grad(&mut self, x: &[f64]) -> Result<(f64, Vec<f64>)> {
            self.grad_calls += 1;
            Ok((
                1.0 - x[0].cos() * x[1].cos(),
                vec![x[0].sin() * x[1].cos(), x[0].cos() * x[1].sin()],
            ))
        }

        fn grad_cost(&self, _n_params: usize) -> usize {
            4
        }
    }

    #[test]
    fn adam_analytic_loop_costs_grad_cost_per_iteration() {
        let mut adam = Adam {
            lr: 0.1,
            ..Default::default()
        };
        let mut obj = CosObj { grad_calls: 0 };
        let r = adam
            .try_minimize_grad(&mut obj, &[0.8, -0.6], 2000)
            .unwrap();
        assert!(r.value < 1e-6, "value {}", r.value);
        assert!(r.evals <= 2000);
        // Every iteration is exactly one fused value-and-gradient call.
        assert_eq!(r.evals, 4 * obj.grad_calls);
    }

    #[test]
    fn adam_grad_budget_too_small_falls_back_to_one_value() {
        let mut adam = Adam::default();
        let mut obj = CosObj { grad_calls: 0 };
        let r = adam.try_minimize_grad(&mut obj, &[0.8, -0.6], 3).unwrap();
        assert_eq!(r.evals, 1);
        assert!(!r.converged);
        assert_eq!(r.params, vec![0.8, -0.6]);
        assert_eq!(obj.grad_calls, 0);
    }

    #[test]
    fn adam_grad_converges_flag_at_stationary_point() {
        let mut adam = Adam::default();
        let mut obj = CosObj { grad_calls: 0 };
        let r = adam.try_minimize_grad(&mut obj, &[0.0, 0.0], 100).unwrap();
        assert!(r.converged);
        assert_eq!(r.value, 0.0);
        assert_eq!(obj.grad_calls, 1);
    }
}
