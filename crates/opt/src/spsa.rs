//! Simultaneous Perturbation Stochastic Approximation.
//!
//! SPSA estimates the full gradient from two objective evaluations per
//! iteration regardless of dimension — the standard choice when VQE
//! energies are noisy (shot-based backends) or parameter counts are large.

use crate::traits::{single, state_f64, state_u64, BatchedObjective, OptResult, Optimizer};
use nwq_common::Result;
use nwq_telemetry::JsonValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SPSA configuration with the classic `a_k = a/(k+1+A)^α`,
/// `c_k = c/(k+1)^γ` gain schedules.
#[derive(Clone, Debug)]
pub struct Spsa {
    /// Step-size numerator.
    pub a: f64,
    /// Perturbation-size numerator.
    pub c: f64,
    /// Step-size stability constant.
    pub big_a: f64,
    /// Step-size decay exponent (0.602 is the canonical value).
    pub alpha: f64,
    /// Perturbation decay exponent (0.101 canonical).
    pub gamma: f64,
    /// RNG seed (runs are reproducible for a fixed seed).
    pub seed: u64,
}

impl Default for Spsa {
    fn default() -> Self {
        Spsa {
            a: 0.2,
            c: 0.1,
            big_a: 10.0,
            alpha: 0.602,
            gamma: 0.101,
            seed: 7,
        }
    }
}

impl Optimizer for Spsa {
    fn name(&self) -> &'static str {
        "spsa"
    }

    fn state_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("a".into(), JsonValue::Float(self.a)),
            ("c".into(), JsonValue::Float(self.c)),
            ("big_a".into(), JsonValue::Float(self.big_a)),
            ("alpha".into(), JsonValue::Float(self.alpha)),
            ("gamma".into(), JsonValue::Float(self.gamma)),
            ("seed".into(), JsonValue::Int(self.seed)),
        ])
    }

    fn restore_state(&mut self, state: &JsonValue) -> Result<()> {
        self.a = state_f64(state, "a")?;
        self.c = state_f64(state, "c")?;
        self.big_a = state_f64(state, "big_a")?;
        self.alpha = state_f64(state, "alpha")?;
        self.gamma = state_f64(state, "gamma")?;
        self.seed = state_u64(state, "seed")?;
        Ok(())
    }

    fn try_minimize(
        &mut self,
        f: &mut dyn FnMut(&[f64]) -> Result<f64>,
        x0: &[f64],
        max_evals: usize,
    ) -> Result<OptResult> {
        let n = x0.len();
        // Re-seeding at the start of every run makes the perturbation
        // sequence a pure function of the configuration: a resumed run
        // replaying a logged energy prefix reconstructs the RNG exactly.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut x = x0.to_vec();
        let mut evals = 0usize;
        let mut best = (f(&x)?, x.clone());
        evals += 1;
        if n == 0 {
            return Ok(OptResult {
                params: x,
                value: best.0,
                evals,
                converged: true,
            });
        }
        let mut k = 0usize;
        while evals + 2 <= max_evals {
            let ak = self.a / ((k as f64) + 1.0 + self.big_a).powf(self.alpha);
            let ck = self.c / ((k as f64) + 1.0).powf(self.gamma);
            // Rademacher perturbation.
            let delta: Vec<f64> = (0..n)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let xp: Vec<f64> = x.iter().zip(&delta).map(|(v, d)| v + ck * d).collect();
            let xm: Vec<f64> = x.iter().zip(&delta).map(|(v, d)| v - ck * d).collect();
            let fp = f(&xp)?;
            let fm = f(&xm)?;
            evals += 2;
            let diff = (fp - fm) / (2.0 * ck);
            for (v, d) in x.iter_mut().zip(&delta) {
                *v -= ak * diff / d;
            }
            let fx = f(&x)?;
            evals += 1;
            if fx < best.0 {
                best = (fx, x.clone());
            }
            k += 1;
        }
        Ok(OptResult {
            params: best.1,
            value: best.0,
            evals,
            converged: false,
        })
    }

    /// SPSA's two perturbed evaluations per iteration are independent of
    /// each other, so they go out as one width-2 batch — a walker-batched
    /// backend evolves both `θ±c·Δ` states in a single blocked sweep. The
    /// evaluation points, their order, and the eval count are identical to
    /// [`try_minimize`](Optimizer::try_minimize): `f([x])`, then per
    /// iteration `f([x+cΔ, x−cΔ])` followed by `f([x'])`.
    fn try_minimize_batched(
        &mut self,
        f: &mut BatchedObjective<'_>,
        x0: &[f64],
        max_evals: usize,
    ) -> Result<OptResult> {
        let n = x0.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut x = x0.to_vec();
        let mut evals = 0usize;
        let mut best = (single(f, &x)?, x.clone());
        evals += 1;
        if n == 0 {
            return Ok(OptResult {
                params: x,
                value: best.0,
                evals,
                converged: true,
            });
        }
        let mut k = 0usize;
        while evals + 2 <= max_evals {
            let ak = self.a / ((k as f64) + 1.0 + self.big_a).powf(self.alpha);
            let ck = self.c / ((k as f64) + 1.0).powf(self.gamma);
            let delta: Vec<f64> = (0..n)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let xp: Vec<f64> = x.iter().zip(&delta).map(|(v, d)| v + ck * d).collect();
            let xm: Vec<f64> = x.iter().zip(&delta).map(|(v, d)| v - ck * d).collect();
            let pair = f(&[xp, xm])?;
            let [fp, fm] = pair.as_slice() else {
                return Err(nwq_common::Error::Invalid(format!(
                    "batched objective returned {} values for 2 parameter vectors",
                    pair.len()
                )));
            };
            evals += 2;
            let diff = (fp - fm) / (2.0 * ck);
            for (v, d) in x.iter_mut().zip(&delta) {
                *v -= ak * diff / d;
            }
            let fx = single(f, &x)?;
            evals += 1;
            if fx < best.0 {
                best = (fx, x.clone());
            }
            k += 1;
        }
        Ok(OptResult {
            params: best.1,
            value: best.0,
            evals,
            converged: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let mut spsa = Spsa {
            a: 0.5,
            ..Default::default()
        };
        let mut f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 0.5).powi(2);
        let r = spsa.minimize(&mut f, &[0.0, 0.0], 3000);
        assert!(r.value < 1e-3, "value {}", r.value);
        assert!((r.params[0] - 1.0).abs() < 0.05);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut spsa = Spsa::default();
            let mut f = |x: &[f64]| x[0].powi(2) + 0.3 * x[1].powi(2);
            spsa.minimize(&mut f, &[1.0, -1.0], 500)
        };
        let a = run();
        let b = run();
        assert_eq!(a.params, b.params);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn tolerates_noisy_objective() {
        // Deterministic pseudo-noise superimposed on a bowl.
        let mut spsa = Spsa {
            a: 0.4,
            c: 0.2,
            ..Default::default()
        };
        let mut calls = 0usize;
        let mut f = |x: &[f64]| {
            calls += 1;
            let noise = ((calls as f64) * 12.9898).sin() * 0.01;
            x[0].powi(2) + x[1].powi(2) + noise
        };
        let r = spsa.minimize(&mut f, &[1.5, -1.5], 4000);
        assert!(r.params[0].abs() < 0.2, "{:?}", r.params);
        assert!(r.params[1].abs() < 0.2);
    }

    #[test]
    fn aborts_promptly_on_objective_error() {
        let mut spsa = Spsa::default();
        let mut count = 0usize;
        let mut f = |x: &[f64]| -> Result<f64> {
            count += 1;
            if count == 7 {
                Err(nwq_common::Error::Numerical("nan energy".into()))
            } else {
                Ok(x[0].powi(2))
            }
        };
        let e = spsa.try_minimize(&mut f, &[1.0, 2.0], 10_000).unwrap_err();
        assert!(e.is_transient());
        assert_eq!(count, 7);
    }

    #[test]
    fn state_json_round_trip_preserves_seed() {
        let src = Spsa {
            seed: 424242,
            a: 0.3,
            ..Default::default()
        };
        let mut dst = Spsa::default();
        dst.restore_state(&src.state_json()).unwrap();
        assert_eq!(dst.seed, 424242);
        assert_eq!(dst.a, 0.3);
        assert_eq!(src.name(), "spsa");
        // Restored configuration reproduces the exact trajectory.
        let run = |opt: &mut Spsa| {
            let mut f = |x: &[f64]| x[0].powi(2) + 0.3 * x[1].powi(2);
            opt.minimize(&mut f, &[1.0, -1.0], 300)
        };
        let mut a = Spsa {
            seed: 424242,
            a: 0.3,
            ..Default::default()
        };
        assert_eq!(run(&mut a).params, run(&mut dst).params);
    }

    #[test]
    fn batched_trajectory_matches_scalar_exactly() {
        // The batched entry point must be a drop-in replacement: identical
        // evaluation points ⇒ identical (bitwise) trajectory and counts.
        let obj = |x: &[f64]| (x[0] - 0.7).powi(2) + 0.4 * x[1] * x[1] + 0.05 * (x[0] * x[1]).sin();
        let scalar = Spsa::default()
            .try_minimize(&mut |x| Ok(obj(x)), &[1.0, -0.5], 400)
            .unwrap();
        let mut widths = Vec::new();
        let batched = Spsa::default()
            .try_minimize_batched(
                &mut |xs| {
                    widths.push(xs.len());
                    Ok(xs.iter().map(|x| obj(x)).collect())
                },
                &[1.0, -0.5],
                400,
            )
            .unwrap();
        assert_eq!(scalar.params, batched.params);
        assert_eq!(scalar.value, batched.value);
        assert_eq!(scalar.evals, batched.evals);
        // Per-iteration shape: initial width-1, then (2, 1) pairs.
        assert_eq!(widths[0], 1);
        assert_eq!(widths[1], 2);
        assert_eq!(widths[2], 1);
        assert!(widths.iter().filter(|&&w| w == 2).count() > 10);
    }

    #[test]
    fn batched_rejects_wrong_width_and_propagates_errors() {
        let e = Spsa::default()
            .try_minimize_batched(&mut |xs| Ok(vec![0.0; xs.len() + 1]), &[1.0], 100)
            .unwrap_err();
        assert!(matches!(e, nwq_common::Error::Invalid(_)), "{e:?}");
        let mut calls = 0usize;
        let e = Spsa::default()
            .try_minimize_batched(
                &mut |xs| {
                    calls += 1;
                    if calls == 2 {
                        Err(nwq_common::Error::Numerical("nan energy".into()))
                    } else {
                        Ok(vec![0.0; xs.len()])
                    }
                },
                &[1.0],
                100,
            )
            .unwrap_err();
        assert!(e.is_transient());
        assert_eq!(calls, 2);
    }

    #[test]
    fn respects_budget() {
        let mut spsa = Spsa::default();
        let mut count = 0usize;
        let mut f = |x: &[f64]| {
            count += 1;
            x[0].powi(2)
        };
        let r = spsa.minimize(&mut f, &[3.0], 50);
        assert!(r.evals <= 50);
        assert_eq!(count, r.evals);
    }
}
