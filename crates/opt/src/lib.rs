//! # nwq-opt
//!
//! Classical optimizers for variational quantum algorithms — step 4 of the
//! XACC co-processing loop (paper §3.1): derivative-free Nelder–Mead (the
//! default VQE inner loop), SPSA for noisy/shot-based objectives, and Adam
//! and L-BFGS with exact gradients — parameter-shift, finite-difference,
//! or analytic adjoint gradients supplied through [`GradObjective`].

#![warn(missing_docs)]

pub mod gradient;
pub mod lbfgs;
pub mod nelder_mead;
pub mod spsa;
pub mod traits;

pub use gradient::{
    try_finite_difference_gradient_batched, try_parameter_shift_gradient_batched, Adam,
    GradientMode,
};
pub use lbfgs::Lbfgs;
pub use nelder_mead::NelderMead;
pub use spsa::Spsa;
pub use traits::{BatchedObjective, GradObjective, GradOptimizer, OptResult, Optimizer};

#[cfg(test)]
mod proptests {
    use crate::{Adam, NelderMead, Optimizer};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn nelder_mead_never_worse_than_start(
            a in -2.0..2.0f64, b in -2.0..2.0f64, x0 in -1.0..1.0f64, x1 in -1.0..1.0f64
        ) {
            let mut nm = NelderMead::default();
            let mut f = move |x: &[f64]| (x[0] - a).powi(2) + 0.5 * (x[1] - b).powi(2);
            let start = f(&[x0, x1]);
            let r = nm.minimize(&mut f, &[x0, x1], 400);
            prop_assert!(r.value <= start + 1e-12);
        }

        #[test]
        fn adam_never_worse_than_start(c in 0.1..3.0f64, x0 in -1.5..1.5f64) {
            let mut adam = Adam::default();
            let mut f = move |x: &[f64]| c * (1.0 - x[0].cos());
            let start = f(&[x0]);
            let r = adam.minimize(&mut f, &[x0], 200);
            prop_assert!(r.value <= start + 1e-12);
        }

        #[test]
        fn quadratic_minimum_found(a in -1.5..1.5f64) {
            let mut nm = NelderMead::default();
            let mut f = move |x: &[f64]| (x[0] - a).powi(2);
            let r = nm.minimize(&mut f, &[0.0], 600);
            prop_assert!((r.params[0] - a).abs() < 1e-3);
        }
    }
}
