//! Optimizer interface shared by the VQE drivers.

/// Result of an optimization run.
#[derive(Clone, Debug, PartialEq)]
pub struct OptResult {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Objective value at `params`.
    pub value: f64,
    /// Objective evaluations consumed.
    pub evals: usize,
    /// Whether the convergence criterion was met (vs. hitting the
    /// evaluation budget).
    pub converged: bool,
}

/// A minimizer of black-box objectives `f: R^n → R`.
///
/// Implementations must be deterministic for a fixed seed/configuration so
/// experiment harness runs are reproducible.
pub trait Optimizer {
    /// Minimizes `f` starting from `x0`, with at most `max_evals`
    /// objective evaluations.
    fn minimize(
        &mut self,
        f: &mut dyn FnMut(&[f64]) -> f64,
        x0: &[f64],
        max_evals: usize,
    ) -> OptResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;
    impl Optimizer for Null {
        fn minimize(
            &mut self,
            f: &mut dyn FnMut(&[f64]) -> f64,
            x0: &[f64],
            _max_evals: usize,
        ) -> OptResult {
            OptResult {
                params: x0.to_vec(),
                value: f(x0),
                evals: 1,
                converged: false,
            }
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut opt: Box<dyn Optimizer> = Box::new(Null);
        let mut f = |x: &[f64]| x[0] * x[0];
        let r = opt.minimize(&mut f, &[2.0], 10);
        assert_eq!(r.value, 4.0);
        assert_eq!(r.evals, 1);
    }
}
