//! Optimizer interface shared by the VQE drivers.

use nwq_common::Result;
use nwq_telemetry::JsonValue;

/// A batched black-box objective: evaluates every parameter vector in the
/// slice, returning one value per vector in input order.
pub type BatchedObjective<'a> = dyn FnMut(&[Vec<f64>]) -> Result<Vec<f64>> + 'a;

/// Result of an optimization run.
#[derive(Clone, Debug, PartialEq)]
pub struct OptResult {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Objective value at `params`.
    pub value: f64,
    /// Objective evaluations consumed.
    pub evals: usize,
    /// Whether the convergence criterion was met (vs. hitting the
    /// evaluation budget).
    pub converged: bool,
}

/// A minimizer of black-box objectives `f: R^n → R`.
///
/// Implementations must be deterministic for a fixed seed/configuration so
/// experiment harness runs are reproducible — the checkpoint/restart layer
/// in `nwq-core` relies on this to replay an interrupted trajectory from a
/// logged prefix of objective values.
pub trait Optimizer {
    /// Minimizes the *fallible* objective `f` starting from `x0`, with at
    /// most `max_evals` evaluations. An `Err` from the objective aborts the
    /// run promptly and is propagated to the caller — implementations must
    /// not keep burning the evaluation budget after a failure.
    fn try_minimize(
        &mut self,
        f: &mut dyn FnMut(&[f64]) -> Result<f64>,
        x0: &[f64],
        max_evals: usize,
    ) -> Result<OptResult>;

    /// Minimizes using a *batched* objective: one call evaluates every
    /// parameter vector in the slice and returns one value per vector, in
    /// input order. Optimizers whose iterations contain structurally
    /// independent evaluations (SPSA's `θ±c·Δ` pair) override this to
    /// group them into multi-vector calls, letting walker-batched
    /// backends evolve all of them in one blocked sweep. The trajectory
    /// must be *identical* to [`try_minimize`](Self::try_minimize) — same
    /// evaluation points, same order, same eval count — so the two entry
    /// points are interchangeable for checkpoint replay.
    ///
    /// The default adapter simply feeds width-1 batches through
    /// `try_minimize`.
    fn try_minimize_batched(
        &mut self,
        f: &mut BatchedObjective<'_>,
        x0: &[f64],
        max_evals: usize,
    ) -> Result<OptResult> {
        self.try_minimize(&mut |x: &[f64]| single(f, x), x0, max_evals)
    }

    /// Infallible convenience wrapper around
    /// [`try_minimize`](Self::try_minimize).
    fn minimize(
        &mut self,
        f: &mut dyn FnMut(&[f64]) -> f64,
        x0: &[f64],
        max_evals: usize,
    ) -> OptResult {
        self.try_minimize(&mut |x| Ok(f(x)), x0, max_evals)
            .expect("infallible objective cannot produce an error")
    }

    /// Stable identifier used in checkpoint files to verify that a resumed
    /// run reconstructs the same optimizer kind (e.g. `"nelder-mead"`).
    fn name(&self) -> &'static str;

    /// Serializable configuration snapshot for checkpoints. The default is
    /// `null` (stateless / nothing worth recording); optimizers whose
    /// trajectory depends on configuration (step sizes, RNG seeds) should
    /// return an object so resume can verify or restore it.
    fn state_json(&self) -> JsonValue {
        JsonValue::Null
    }

    /// Restores configuration from a [`state_json`](Self::state_json)
    /// snapshot. The default accepts anything and changes nothing.
    fn restore_state(&mut self, _state: &JsonValue) -> Result<()> {
        Ok(())
    }
}

/// An objective that can produce its own analytic gradient — e.g. a VQE
/// energy backed by adjoint differentiation, where the full `∂E/∂θ`
/// costs a small constant number of statevector evolutions regardless of
/// the parameter count.
pub trait GradObjective {
    /// Evaluates the objective alone (one energy-evaluation equivalent).
    fn value(&mut self, x: &[f64]) -> Result<f64>;

    /// Evaluates the objective and its full gradient at `x` in one pass.
    fn value_and_grad(&mut self, x: &[f64]) -> Result<(f64, Vec<f64>)>;

    /// Cost of one [`value_and_grad`](GradObjective::value_and_grad) call
    /// in energy-evaluation equivalents, used for `max_evals` budget
    /// accounting (adjoint: ~4 independent of `n_params`;
    /// parameter-shift: `2·n_params`).
    fn grad_cost(&self, n_params: usize) -> usize;
}

/// A minimizer that can consume analytic gradients via [`GradObjective`].
/// The budget is still expressed in energy-evaluation equivalents so
/// gradient-based and derivative-free runs are directly comparable.
pub trait GradOptimizer: Optimizer {
    /// Minimizes `obj` from `x0` spending at most `max_evals`
    /// energy-evaluation equivalents (gradient calls cost
    /// [`GradObjective::grad_cost`] each).
    fn try_minimize_grad(
        &mut self,
        obj: &mut dyn GradObjective,
        x0: &[f64],
        max_evals: usize,
    ) -> Result<OptResult>;
}

/// Evaluates a batched objective on one parameter vector, enforcing the
/// one-value-per-vector contract.
pub(crate) fn single(f: &mut BatchedObjective<'_>, x: &[f64]) -> Result<f64> {
    let vals = f(std::slice::from_ref(&x.to_vec()))?;
    match vals.as_slice() {
        [v] => Ok(*v),
        other => Err(nwq_common::Error::Invalid(format!(
            "batched objective returned {} values for 1 parameter vector",
            other.len()
        ))),
    }
}

/// Reads a required float field out of an optimizer state object, keeping
/// restore-path error messages uniform across implementations.
pub(crate) fn state_f64(state: &JsonValue, key: &str) -> Result<f64> {
    state
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| nwq_common::Error::Invalid(format!("optimizer state missing float '{key}'")))
}

/// Reads a required unsigned-integer field out of an optimizer state object.
pub(crate) fn state_u64(state: &JsonValue, key: &str) -> Result<u64> {
    state.get(key).and_then(JsonValue::as_u64).ok_or_else(|| {
        nwq_common::Error::Invalid(format!("optimizer state missing integer '{key}'"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_common::Error;

    struct Null;
    impl Optimizer for Null {
        fn try_minimize(
            &mut self,
            f: &mut dyn FnMut(&[f64]) -> Result<f64>,
            x0: &[f64],
            _max_evals: usize,
        ) -> Result<OptResult> {
            Ok(OptResult {
                params: x0.to_vec(),
                value: f(x0)?,
                evals: 1,
                converged: false,
            })
        }

        fn name(&self) -> &'static str {
            "null"
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut opt: Box<dyn Optimizer> = Box::new(Null);
        let mut f = |x: &[f64]| x[0] * x[0];
        let r = opt.minimize(&mut f, &[2.0], 10);
        assert_eq!(r.value, 4.0);
        assert_eq!(r.evals, 1);
    }

    #[test]
    fn objective_error_propagates() {
        let mut opt = Null;
        let mut f = |_: &[f64]| Err(Error::Backend("boom".into()));
        let e = opt.try_minimize(&mut f, &[1.0], 10).unwrap_err();
        assert_eq!(e, Error::Backend("boom".into()));
    }

    #[test]
    fn default_batched_adapter_feeds_width_one_batches() {
        let mut opt = Null;
        let mut widths = Vec::new();
        let r = opt
            .try_minimize_batched(
                &mut |xs: &[Vec<f64>]| {
                    widths.push(xs.len());
                    Ok(xs.iter().map(|x| x[0] * x[0]).collect())
                },
                &[3.0],
                10,
            )
            .unwrap();
        assert_eq!(r.value, 9.0);
        assert_eq!(widths, vec![1]);

        // Contract violation (wrong output width) surfaces as an error.
        let e = opt
            .try_minimize_batched(&mut |_| Ok(vec![]), &[1.0], 10)
            .unwrap_err();
        assert!(matches!(e, Error::Invalid(_)), "{e:?}");
    }

    #[test]
    fn default_state_round_trip() {
        let mut opt = Null;
        assert!(matches!(opt.state_json(), JsonValue::Null));
        opt.restore_state(&JsonValue::Int(3)).unwrap();
        assert_eq!(opt.name(), "null");
    }
}
