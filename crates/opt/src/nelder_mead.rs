//! Nelder–Mead downhill simplex — the workhorse derivative-free optimizer
//! of the VQE loop (the role COBYLA plays in XACC).

use crate::traits::{state_f64, OptResult, Optimizer};
use nwq_common::Result;
use nwq_telemetry::JsonValue;

/// Nelder–Mead configuration.
#[derive(Clone, Debug)]
pub struct NelderMead {
    /// Initial simplex edge length.
    pub initial_step: f64,
    /// Terminate when the simplex value spread falls below this.
    pub f_tol: f64,
    /// Terminate when the simplex size falls below this.
    pub x_tol: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            initial_step: 0.1,
            f_tol: 1e-10,
            x_tol: 1e-10,
        }
    }
}

impl NelderMead {
    /// A configuration with tolerances suited to chemical-accuracy VQE
    /// inner loops.
    pub fn for_vqe() -> Self {
        NelderMead {
            initial_step: 0.05,
            f_tol: 1e-9,
            x_tol: 1e-7,
        }
    }
}

impl Optimizer for NelderMead {
    fn name(&self) -> &'static str {
        "nelder-mead"
    }

    fn state_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("initial_step".into(), JsonValue::Float(self.initial_step)),
            ("f_tol".into(), JsonValue::Float(self.f_tol)),
            ("x_tol".into(), JsonValue::Float(self.x_tol)),
        ])
    }

    fn restore_state(&mut self, state: &JsonValue) -> Result<()> {
        self.initial_step = state_f64(state, "initial_step")?;
        self.f_tol = state_f64(state, "f_tol")?;
        self.x_tol = state_f64(state, "x_tol")?;
        Ok(())
    }

    fn try_minimize(
        &mut self,
        f: &mut dyn FnMut(&[f64]) -> Result<f64>,
        x0: &[f64],
        max_evals: usize,
    ) -> Result<OptResult> {
        let n = x0.len();
        let mut evals = 0usize;
        let mut eval = |x: &[f64], evals: &mut usize| -> Result<f64> {
            *evals += 1;
            f(x)
        };
        if n == 0 {
            let v = eval(x0, &mut evals)?;
            return Ok(OptResult {
                params: Vec::new(),
                value: v,
                evals,
                converged: true,
            });
        }

        // Build initial simplex: x0 plus a step along each axis.
        let mut simplex: Vec<(f64, Vec<f64>)> = Vec::with_capacity(n + 1);
        let v0 = eval(x0, &mut evals)?;
        simplex.push((v0, x0.to_vec()));
        for i in 0..n {
            let mut x = x0.to_vec();
            x[i] += self.initial_step;
            let v = eval(&x, &mut evals)?;
            simplex.push((v, x));
        }

        const ALPHA: f64 = 1.0; // reflection
        const GAMMA: f64 = 2.0; // expansion
        const RHO: f64 = 0.5; // contraction
        const SIGMA: f64 = 0.5; // shrink

        let mut converged = false;
        while evals < max_evals {
            simplex.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let best = simplex[0].0;
            let worst = simplex[n].0;
            let spread = (worst - best).abs();
            let size: f64 = (0..n)
                .map(|i| {
                    simplex
                        .iter()
                        .map(|(_, x)| x[i])
                        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
                            (lo.min(v), hi.max(v))
                        })
                })
                .map(|(lo, hi)| hi - lo)
                .fold(0.0, f64::max);
            if spread < self.f_tol || size < self.x_tol {
                converged = true;
                break;
            }

            // Centroid of all but the worst.
            let mut centroid = vec![0.0; n];
            for (_, x) in &simplex[..n] {
                for (c, v) in centroid.iter_mut().zip(x) {
                    *c += v / n as f64;
                }
            }
            let combine = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
                a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
            };

            // Reflection.
            let xr = combine(&centroid, &simplex[n].1, -ALPHA);
            let vr = eval(&xr, &mut evals)?;
            if vr < simplex[0].0 {
                // Expansion.
                let xe = combine(&centroid, &simplex[n].1, -GAMMA);
                let ve = eval(&xe, &mut evals)?;
                simplex[n] = if ve < vr { (ve, xe) } else { (vr, xr) };
            } else if vr < simplex[n - 1].0 {
                simplex[n] = (vr, xr);
            } else {
                // Contraction (outside if reflected better than worst).
                let (vref, xref) = if vr < simplex[n].0 {
                    (vr, xr.clone())
                } else {
                    (simplex[n].0, simplex[n].1.clone())
                };
                let xc = combine(&centroid, &xref, RHO);
                let vc = eval(&xc, &mut evals)?;
                if vc < vref {
                    simplex[n] = (vc, xc);
                } else {
                    // Shrink toward the best point.
                    let best_x = simplex[0].1.clone();
                    for entry in simplex.iter_mut().skip(1) {
                        let x: Vec<f64> = entry
                            .1
                            .iter()
                            .zip(&best_x)
                            .map(|(v, b)| b + SIGMA * (v - b))
                            .collect();
                        let v = eval(&x, &mut evals)?;
                        *entry = (v, x);
                        if evals >= max_evals {
                            break;
                        }
                    }
                }
            }
        }
        simplex.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let (value, params) = simplex.swap_remove(0);
        Ok(OptResult {
            params,
            value,
            evals,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let mut nm = NelderMead::default();
        let mut f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2);
        let r = nm.minimize(&mut f, &[0.0, 0.0], 2000);
        assert!(r.converged);
        assert!((r.params[0] - 1.0).abs() < 1e-4, "{:?}", r.params);
        assert!((r.params[1] + 2.0).abs() < 1e-4);
        assert!(r.value < 1e-8);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let mut nm = NelderMead {
            initial_step: 0.5,
            ..Default::default()
        };
        let mut f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = nm.minimize(&mut f, &[-1.2, 1.0], 5000);
        assert!((r.params[0] - 1.0).abs() < 1e-3, "{:?}", r.params);
        assert!((r.params[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn respects_eval_budget() {
        let mut nm = NelderMead::default();
        let mut count = 0usize;
        let mut f = |x: &[f64]| {
            count += 1;
            x[0].powi(2)
        };
        let r = nm.minimize(&mut f, &[5.0], 20);
        assert!(r.evals <= 20 + 1); // shrink step may finish its sweep
        assert_eq!(count, r.evals);
    }

    #[test]
    fn handles_zero_dimensional_problem() {
        let mut nm = NelderMead::default();
        let mut f = |_: &[f64]| 7.0;
        let r = nm.minimize(&mut f, &[], 10);
        assert_eq!(r.value, 7.0);
        assert!(r.converged);
    }

    #[test]
    fn aborts_promptly_on_objective_error() {
        let mut nm = NelderMead::default();
        let mut count = 0usize;
        let mut f = |x: &[f64]| -> Result<f64> {
            count += 1;
            if count == 5 {
                Err(nwq_common::Error::Backend("rank lost".into()))
            } else {
                Ok(x[0].powi(2))
            }
        };
        let e = nm.try_minimize(&mut f, &[2.0], 10_000).unwrap_err();
        assert!(e.is_transient());
        assert_eq!(count, 5, "must stop at the failing evaluation");
    }

    #[test]
    fn state_json_round_trip() {
        let src = NelderMead {
            initial_step: 0.25,
            f_tol: 1e-8,
            x_tol: 1e-6,
        };
        let mut dst = NelderMead::default();
        dst.restore_state(&src.state_json()).unwrap();
        assert_eq!(dst.initial_step, 0.25);
        assert_eq!(dst.f_tol, 1e-8);
        assert_eq!(dst.x_tol, 1e-6);
        assert_eq!(src.name(), "nelder-mead");
        assert!(dst.restore_state(&JsonValue::Null).is_err());
    }

    #[test]
    fn minimizes_periodic_vqe_like_landscape() {
        // E(θ) = 1 − cos θ has minimum 0 at θ = 0 (mod 2π).
        let mut nm = NelderMead::default();
        let mut f = |x: &[f64]| 1.0 - x[0].cos() + 0.5 * (1.0 - (x[1] - 0.3).cos());
        let r = nm.minimize(&mut f, &[0.5, -0.5], 2000);
        assert!(r.value < 1e-6, "value {}", r.value);
    }
}
