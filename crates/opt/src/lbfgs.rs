//! Limited-memory BFGS with backtracking line search.
//!
//! The quasi-Newton workhorse for smooth, exactly-evaluated objectives —
//! the regime the paper's direct-expectation backend creates (no shot
//! noise), where it converges in far fewer energy evaluations than
//! simplex or SPSA methods.

use crate::gradient::{try_finite_difference_gradient, try_finite_difference_gradient_batched};
use crate::traits::{
    single, state_f64, state_u64, BatchedObjective, GradObjective, GradOptimizer, OptResult,
    Optimizer,
};
use nwq_common::Result;
use nwq_telemetry::JsonValue;
use std::collections::VecDeque;

/// L-BFGS configuration.
#[derive(Clone, Debug)]
pub struct Lbfgs {
    /// History length (m). 5–10 is standard.
    pub memory: usize,
    /// Finite-difference step for gradients.
    pub fd_eps: f64,
    /// Terminate when the gradient ∞-norm falls below this.
    pub g_tol: f64,
    /// Armijo sufficient-decrease constant.
    pub c1: f64,
    /// Line-search backtracking factor.
    pub backtrack: f64,
    /// Maximum line-search trials per iteration.
    pub max_ls: usize,
}

impl Default for Lbfgs {
    fn default() -> Self {
        Lbfgs {
            memory: 8,
            fd_eps: 1e-6,
            g_tol: 1e-7,
            c1: 1e-4,
            backtrack: 0.5,
            max_ls: 25,
        }
    }
}

impl Optimizer for Lbfgs {
    fn name(&self) -> &'static str {
        "lbfgs"
    }

    fn state_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("memory".into(), JsonValue::Int(self.memory as u64)),
            ("fd_eps".into(), JsonValue::Float(self.fd_eps)),
            ("g_tol".into(), JsonValue::Float(self.g_tol)),
            ("c1".into(), JsonValue::Float(self.c1)),
            ("backtrack".into(), JsonValue::Float(self.backtrack)),
            ("max_ls".into(), JsonValue::Int(self.max_ls as u64)),
        ])
    }

    fn restore_state(&mut self, state: &JsonValue) -> Result<()> {
        self.memory = state_u64(state, "memory")? as usize;
        self.fd_eps = state_f64(state, "fd_eps")?;
        self.g_tol = state_f64(state, "g_tol")?;
        self.c1 = state_f64(state, "c1")?;
        self.backtrack = state_f64(state, "backtrack")?;
        self.max_ls = state_u64(state, "max_ls")? as usize;
        Ok(())
    }

    fn try_minimize(
        &mut self,
        f: &mut dyn FnMut(&[f64]) -> Result<f64>,
        x0: &[f64],
        max_evals: usize,
    ) -> Result<OptResult> {
        let n = x0.len();
        let mut evals = 0usize;
        let mut x = x0.to_vec();
        let mut fx = f(&x)?;
        evals += 1;
        if n == 0 {
            return Ok(OptResult {
                params: x,
                value: fx,
                evals,
                converged: true,
            });
        }
        let grad_cost = 2 * n;
        let mut history: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::new(); // (s, y, 1/yᵀs)
        let mut g = try_finite_difference_gradient(f, &x, self.fd_eps)?;
        evals += grad_cost;
        let mut converged = false;

        while evals + grad_cost + 2 <= max_evals {
            let gnorm = g.iter().fold(0.0f64, |a, v| a.max(v.abs()));
            if gnorm < self.g_tol {
                converged = true;
                break;
            }
            let d = two_loop_direction(&history, &g);
            let slope = dot(&g, &d);
            if slope >= 0.0 {
                // Not a descent direction (stale curvature) — reset.
                history.clear();
                let d: Vec<f64> = g.iter().map(|v| -v).collect();
                let (nx, nfx, used, ok) = self.line_search(f, &x, fx, &g, &d, max_evals - evals)?;
                evals += used;
                if !ok {
                    break;
                }
                x = nx;
                fx = nfx;
            } else {
                let (nx, nfx, used, ok) = self.line_search(f, &x, fx, &g, &d, max_evals - evals)?;
                evals += used;
                if !ok {
                    break;
                }
                let s: Vec<f64> = nx.iter().zip(&x).map(|(a, b)| a - b).collect();
                x = nx;
                fx = nfx;
                if evals + grad_cost > max_evals {
                    break;
                }
                let new_g = try_finite_difference_gradient(f, &x, self.fd_eps)?;
                evals += grad_cost;
                let y: Vec<f64> = new_g.iter().zip(&g).map(|(a, b)| a - b).collect();
                let ys = dot(&y, &s);
                if ys > 1e-12 {
                    if history.len() == self.memory {
                        history.pop_front();
                    }
                    history.push_back((s, y, 1.0 / ys));
                }
                g = new_g;
                continue;
            }
            if evals + grad_cost > max_evals {
                break;
            }
            g = try_finite_difference_gradient(f, &x, self.fd_eps)?;
            evals += grad_cost;
        }
        Ok(OptResult {
            params: x,
            value: fx,
            evals,
            converged,
        })
    }

    /// Batched override: every finite-difference gradient's `2·n` probe
    /// evaluations ride ONE multi-vector call (a single walker-batched
    /// sweep on backends that support it). Line-search trials stay
    /// sequential — each depends on the previous trial's outcome. The
    /// trajectory is identical to [`Optimizer::try_minimize`] — same
    /// points, same order, same eval count.
    fn try_minimize_batched(
        &mut self,
        f: &mut BatchedObjective<'_>,
        x0: &[f64],
        max_evals: usize,
    ) -> Result<OptResult> {
        let n = x0.len();
        let mut evals = 0usize;
        let mut x = x0.to_vec();
        let mut fx = single(f, &x)?;
        evals += 1;
        if n == 0 {
            return Ok(OptResult {
                params: x,
                value: fx,
                evals,
                converged: true,
            });
        }
        let grad_cost = 2 * n;
        let mut history: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::new();
        let mut g = try_finite_difference_gradient_batched(f, &x, self.fd_eps)?;
        evals += grad_cost;
        let mut converged = false;

        while evals + grad_cost + 2 <= max_evals {
            let gnorm = g.iter().fold(0.0f64, |a, v| a.max(v.abs()));
            if gnorm < self.g_tol {
                converged = true;
                break;
            }
            let d = two_loop_direction(&history, &g);
            let slope = dot(&g, &d);
            if slope >= 0.0 {
                history.clear();
                let d: Vec<f64> = g.iter().map(|v| -v).collect();
                let (nx, nfx, used, ok) = {
                    let mut sf = |p: &[f64]| single(f, p);
                    self.line_search(&mut sf, &x, fx, &g, &d, max_evals - evals)?
                };
                evals += used;
                if !ok {
                    break;
                }
                x = nx;
                fx = nfx;
            } else {
                let (nx, nfx, used, ok) = {
                    let mut sf = |p: &[f64]| single(f, p);
                    self.line_search(&mut sf, &x, fx, &g, &d, max_evals - evals)?
                };
                evals += used;
                if !ok {
                    break;
                }
                let s: Vec<f64> = nx.iter().zip(&x).map(|(a, b)| a - b).collect();
                x = nx;
                fx = nfx;
                if evals + grad_cost > max_evals {
                    break;
                }
                let new_g = try_finite_difference_gradient_batched(f, &x, self.fd_eps)?;
                evals += grad_cost;
                let y: Vec<f64> = new_g.iter().zip(&g).map(|(a, b)| a - b).collect();
                let ys = dot(&y, &s);
                if ys > 1e-12 {
                    if history.len() == self.memory {
                        history.pop_front();
                    }
                    history.push_back((s, y, 1.0 / ys));
                }
                g = new_g;
                continue;
            }
            if evals + grad_cost > max_evals {
                break;
            }
            g = try_finite_difference_gradient_batched(f, &x, self.fd_eps)?;
            evals += grad_cost;
        }
        Ok(OptResult {
            params: x,
            value: fx,
            evals,
            converged,
        })
    }
}

impl GradOptimizer for Lbfgs {
    /// Analytic-gradient loop: each gradient is one
    /// [`GradObjective::value_and_grad`] call costing
    /// [`GradObjective::grad_cost`] evaluation-equivalents (≈ 4 for an
    /// adjoint-backed objective, independent of the parameter count),
    /// versus `2·n` finite-difference probes in the black-box loops.
    /// Line-search trials use [`GradObjective::value`] at cost 1 each.
    fn try_minimize_grad(
        &mut self,
        obj: &mut dyn GradObjective,
        x0: &[f64],
        max_evals: usize,
    ) -> Result<OptResult> {
        let n = x0.len();
        let mut evals = 0usize;
        let mut x = x0.to_vec();
        if n == 0 {
            let fx = obj.value(&x)?;
            return Ok(OptResult {
                params: x,
                value: fx,
                evals: 1,
                converged: true,
            });
        }
        let grad_cost = obj.grad_cost(n).max(1);
        if grad_cost > max_evals {
            // Budget too small for even one gradient: report the starting
            // point honestly with one plain evaluation.
            let fx = obj.value(&x)?;
            return Ok(OptResult {
                params: x,
                value: fx,
                evals: 1,
                converged: false,
            });
        }
        let (mut fx, mut g) = obj.value_and_grad(&x)?;
        evals += grad_cost;
        let mut history: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::new();
        let mut converged = false;

        while evals + grad_cost < max_evals {
            let gnorm = g.iter().fold(0.0f64, |a, v| a.max(v.abs()));
            if gnorm < self.g_tol {
                converged = true;
                break;
            }
            let d = two_loop_direction(&history, &g);
            let slope = dot(&g, &d);
            if slope >= 0.0 {
                history.clear();
                let d: Vec<f64> = g.iter().map(|v| -v).collect();
                let (nx, nfx, used, ok) = {
                    let mut vf = |p: &[f64]| obj.value(p);
                    self.line_search(&mut vf, &x, fx, &g, &d, max_evals - evals)?
                };
                evals += used;
                if !ok {
                    break;
                }
                x = nx;
                fx = nfx;
            } else {
                let (nx, nfx, used, ok) = {
                    let mut vf = |p: &[f64]| obj.value(p);
                    self.line_search(&mut vf, &x, fx, &g, &d, max_evals - evals)?
                };
                evals += used;
                if !ok {
                    break;
                }
                let s: Vec<f64> = nx.iter().zip(&x).map(|(a, b)| a - b).collect();
                x = nx;
                fx = nfx;
                if evals + grad_cost > max_evals {
                    break;
                }
                let (nfx2, new_g) = obj.value_and_grad(&x)?;
                evals += grad_cost;
                fx = nfx2;
                let y: Vec<f64> = new_g.iter().zip(&g).map(|(a, b)| a - b).collect();
                let ys = dot(&y, &s);
                if ys > 1e-12 {
                    if history.len() == self.memory {
                        history.pop_front();
                    }
                    history.push_back((s, y, 1.0 / ys));
                }
                g = new_g;
                continue;
            }
            if evals + grad_cost > max_evals {
                break;
            }
            let (nfx2, new_g) = obj.value_and_grad(&x)?;
            evals += grad_cost;
            fx = nfx2;
            g = new_g;
        }
        Ok(OptResult {
            params: x,
            value: fx,
            evals,
            converged,
        })
    }
}

impl Lbfgs {
    /// Backtracking Armijo line search; returns `(x_new, f_new,
    /// evals_used, success)`.
    fn line_search(
        &self,
        f: &mut dyn FnMut(&[f64]) -> Result<f64>,
        x: &[f64],
        fx: f64,
        g: &[f64],
        d: &[f64],
        budget: usize,
    ) -> Result<(Vec<f64>, f64, usize, bool)> {
        let slope = dot(g, d);
        let mut t = 1.0;
        let mut used = 0usize;
        for _ in 0..self.max_ls {
            if used + 1 > budget {
                break;
            }
            let cand: Vec<f64> = x.iter().zip(d).map(|(xi, di)| xi + t * di).collect();
            let fc = f(&cand)?;
            used += 1;
            if fc <= fx + self.c1 * t * slope {
                return Ok((cand, fc, used, true));
            }
            t *= self.backtrack;
        }
        Ok((x.to_vec(), fx, used, false))
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Two-loop L-BFGS recursion: the search direction `d = −H·g` implied by
/// the curvature history `(s, y, 1/yᵀs)`, with the standard initial
/// Hessian scaling `γ = sᵀy/yᵀy` from the latest pair.
fn two_loop_direction(history: &VecDeque<(Vec<f64>, Vec<f64>, f64)>, g: &[f64]) -> Vec<f64> {
    let mut q = g.to_vec();
    let mut alphas = Vec::with_capacity(history.len());
    for (s, y, rho) in history.iter().rev() {
        let alpha = rho * dot(s, &q);
        for (qi, yi) in q.iter_mut().zip(y) {
            *qi -= alpha * yi;
        }
        alphas.push(alpha);
    }
    if let Some((s, y, _)) = history.back() {
        let gamma = dot(s, y) / dot(y, y).max(1e-300);
        for qi in q.iter_mut() {
            *qi *= gamma;
        }
    }
    for ((s, y, rho), alpha) in history.iter().zip(alphas.into_iter().rev()) {
        let beta = rho * dot(y, &q);
        for (qi, si) in q.iter_mut().zip(s) {
            *qi += (alpha - beta) * si;
        }
    }
    q.iter().map(|v| -v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl_fast_convergence() {
        let mut opt = Lbfgs::default();
        let mut f = |x: &[f64]| (x[0] - 1.0).powi(2) + 10.0 * (x[1] + 2.0).powi(2);
        let r = opt.minimize(&mut f, &[0.0, 0.0], 500);
        assert!(r.converged, "{r:?}");
        assert!((r.params[0] - 1.0).abs() < 1e-5);
        assert!((r.params[1] + 2.0).abs() < 1e-5);
    }

    #[test]
    fn rosenbrock_2d() {
        let mut opt = Lbfgs::default();
        let mut f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = opt.minimize(&mut f, &[-1.2, 1.0], 5000);
        assert!((r.params[0] - 1.0).abs() < 1e-3, "{:?}", r.params);
        assert!((r.params[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn beats_nelder_mead_on_smooth_high_dim() {
        // 10-dimensional convex quadratic: L-BFGS should reach 1e-8 in
        // far fewer evaluations than Nelder–Mead.
        let bowl = |x: &[f64]| -> f64 {
            x.iter()
                .enumerate()
                .map(|(i, v)| (1.0 + i as f64) * v * v)
                .sum()
        };
        let x0 = vec![1.0; 10];
        let mut lbfgs = Lbfgs::default();
        let mut f1 = bowl;
        let r1 = lbfgs.minimize(&mut f1, &x0, 3000);
        let mut nm = crate::NelderMead::default();
        let mut f2 = bowl;
        let r2 = nm.minimize(&mut f2, &x0, 3000);
        assert!(r1.value < 1e-8, "L-BFGS value {}", r1.value);
        assert!(r1.value <= r2.value * 1.0001 + 1e-12);
    }

    #[test]
    fn vqe_like_periodic_landscape() {
        let mut opt = Lbfgs::default();
        let mut f = |x: &[f64]| 2.0 - x[0].cos() - (x[1] - 0.4).cos();
        let r = opt.minimize(&mut f, &[0.6, -0.3], 1000);
        assert!(r.value < 1e-8, "value {}", r.value);
    }

    #[test]
    fn aborts_promptly_on_objective_error() {
        let mut opt = Lbfgs::default();
        let mut count = 0usize;
        let mut f = |x: &[f64]| -> Result<f64> {
            count += 1;
            if count == 3 {
                Err(nwq_common::Error::Backend("fault".into()))
            } else {
                Ok((x[0] - 1.0).powi(2))
            }
        };
        assert!(opt.try_minimize(&mut f, &[0.0], 5000).is_err());
        assert_eq!(count, 3, "must stop inside the first gradient sweep");
    }

    #[test]
    fn state_json_round_trip() {
        let src = Lbfgs {
            memory: 12,
            fd_eps: 1e-5,
            ..Default::default()
        };
        let mut dst = Lbfgs::default();
        dst.restore_state(&src.state_json()).unwrap();
        assert_eq!(dst.memory, 12);
        assert_eq!(dst.fd_eps, 1e-5);
        assert_eq!(src.name(), "lbfgs");
    }

    #[test]
    fn batched_matches_serial_trajectory_exactly() {
        // The identical-trajectory contract checkpoint replay depends on:
        // same points, same order, same eval count, bitwise-equal result.
        let bowl =
            |x: &[f64]| (x[0] - 1.0).powi(2) + 10.0 * (x[1] + 2.0).powi(2) + 0.3 * x[0] * x[1];
        let mut serial_pts: Vec<Vec<f64>> = Vec::new();
        let mut opt1 = Lbfgs::default();
        let r1 = opt1
            .try_minimize(
                &mut |x: &[f64]| {
                    serial_pts.push(x.to_vec());
                    Ok(bowl(x))
                },
                &[0.2, -0.4],
                90,
            )
            .unwrap();
        let mut batched_pts: Vec<Vec<f64>> = Vec::new();
        let mut widths: Vec<usize> = Vec::new();
        let mut opt2 = Lbfgs::default();
        let r2 = opt2
            .try_minimize_batched(
                &mut |xs: &[Vec<f64>]| {
                    widths.push(xs.len());
                    batched_pts.extend(xs.iter().cloned());
                    Ok(xs.iter().map(|x| bowl(x)).collect())
                },
                &[0.2, -0.4],
                90,
            )
            .unwrap();
        assert_eq!(r1, r2);
        assert_eq!(serial_pts, batched_pts);
        assert_eq!(serial_pts.len(), r1.evals);
        // The FD probes actually ride multi-vector calls (2·n wide).
        assert_eq!(widths.iter().max(), Some(&4), "{widths:?}");
    }

    struct Quad {
        value_calls: usize,
        grad_calls: usize,
        fail_on_grad_call: Option<usize>,
    }

    impl Quad {
        fn new() -> Self {
            Quad {
                value_calls: 0,
                grad_calls: 0,
                fail_on_grad_call: None,
            }
        }

        fn f(x: &[f64]) -> f64 {
            x.iter()
                .enumerate()
                .map(|(i, v)| (1.0 + i as f64) * (v - 0.5).powi(2))
                .sum()
        }
    }

    impl GradObjective for Quad {
        fn value(&mut self, x: &[f64]) -> Result<f64> {
            self.value_calls += 1;
            Ok(Self::f(x))
        }

        fn value_and_grad(&mut self, x: &[f64]) -> Result<(f64, Vec<f64>)> {
            self.grad_calls += 1;
            if self.fail_on_grad_call == Some(self.grad_calls) {
                return Err(nwq_common::Error::Backend("fault".into()));
            }
            let g = x
                .iter()
                .enumerate()
                .map(|(i, v)| 2.0 * (1.0 + i as f64) * (v - 0.5))
                .collect();
            Ok((Self::f(x), g))
        }

        fn grad_cost(&self, _n_params: usize) -> usize {
            4
        }
    }

    #[test]
    fn analytic_gradients_converge_within_flat_budget() {
        // 6 parameters: an FD gradient costs 12 evals, so a 100-eval
        // budget allows only ~7 iterations. The analytic objective's flat
        // cost of 4 buys three times as many — enough to drive the
        // quadratic's gradient ∞-norm below g_tol and set the flag.
        let mut opt = Lbfgs::default();
        let mut obj = Quad::new();
        let r = opt
            .try_minimize_grad(&mut obj, &[1.0, -1.0, 2.0, 0.0, 0.9, -0.2], 100)
            .unwrap();
        assert!(r.converged, "{r:?}");
        assert!(r.value < 1e-10, "value {}", r.value);
        assert!(r.evals <= 100, "{r:?}");
        for p in &r.params {
            assert!((p - 0.5).abs() < 1e-5);
        }
    }

    #[test]
    fn grad_budget_too_small_falls_back_to_one_value() {
        let mut opt = Lbfgs::default();
        let mut obj = Quad::new();
        let r = opt.try_minimize_grad(&mut obj, &[2.0, 2.0], 3).unwrap();
        assert_eq!(r.evals, 1);
        assert!(!r.converged);
        assert_eq!(r.params, vec![2.0, 2.0]);
        assert_eq!(obj.value_calls, 1);
        assert_eq!(obj.grad_calls, 0);
    }

    #[test]
    fn grad_zero_dim_converges_immediately() {
        let mut opt = Lbfgs::default();
        let mut obj = Quad::new();
        let r = opt.try_minimize_grad(&mut obj, &[], 10).unwrap();
        assert!(r.converged);
        assert_eq!(r.evals, 1);
    }

    #[test]
    fn grad_objective_error_aborts_promptly() {
        let mut opt = Lbfgs::default();
        let mut obj = Quad::new();
        obj.fail_on_grad_call = Some(2);
        assert!(opt.try_minimize_grad(&mut obj, &[3.0], 1000).is_err());
        assert_eq!(obj.grad_calls, 2, "must stop at the failing gradient");
    }

    #[test]
    fn respects_budget_and_zero_dim() {
        let mut opt = Lbfgs::default();
        let mut count = 0usize;
        let mut f = |x: &[f64]| {
            count += 1;
            x[0].powi(2)
        };
        let r = opt.minimize(&mut f, &[3.0], 25);
        assert!(r.evals <= 25);
        assert_eq!(count, r.evals);
        let mut f0 = |_: &[f64]| 5.0;
        let r0 = opt.minimize(&mut f0, &[], 10);
        assert_eq!(r0.value, 5.0);
        assert!(r0.converged);
    }
}
