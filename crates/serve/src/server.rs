//! The TCP front end: `std::net` listener, one handler thread per
//! connection, line-JSON dispatch onto the shared [`Engine`].
//!
//! Shutdown is protocol-driven: a `drain` request stops admission, waits
//! for every accepted job to reach a terminal state (the PR 3 graceful
//! kill-switch discipline — no accepted work is ever lost), replies, and
//! then stops the accept loop. Blocking `result` waits are capped by
//! [`ServerConfig::wait_cap`] so a slow client cannot pin a handler
//! forever — capped waiters just poll again.

use crate::engine::{Engine, EngineConfig};
use crate::protocol::{self, Request};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Front-end tuning.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Engine (queue/workers/batching/cache) configuration.
    pub engine: EngineConfig,
    /// Upper bound on one blocking `result` wait; longer waits return the
    /// current (possibly non-terminal) status and the client polls again.
    pub wait_cap: Duration,
    /// Upper bound on writing one reply line: a client that stops reading
    /// (full TCP window) cannot wedge its handler thread — the write
    /// fails after this budget and the connection is dropped. Set both as
    /// the socket's OS write timeout and as the retry budget of
    /// [`protocol::write_line_with_deadline`].
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            engine: EngineConfig::default(),
            wait_cap: Duration::from_secs(300),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// A bound, not-yet-serving TCP server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    cfg: ServerConfig,
}

impl Server {
    /// Binds the listener and starts the engine's worker pool. Use port 0
    /// to let the OS pick (tests and the loopback smoke do).
    pub fn bind(addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let engine = Arc::new(Engine::start(cfg.engine.clone()));
        Ok(Server {
            listener,
            engine,
            cfg,
        })
    }

    /// The bound address (read the OS-assigned port from here).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle to the engine backing this server.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// Serves until a client sends `drain`. Returns once the engine has
    /// drained and every connection handler has exited.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            engine,
            cfg,
        } = self;
        let shutdown = Arc::new(AtomicBool::new(false));
        let local = listener.local_addr()?;
        let mut handlers = Vec::new();
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // Per-connection accept errors (e.g. a client that went
                // away mid-handshake) don't take the server down.
                Err(_) => continue,
            };
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            let wait_cap = cfg.wait_cap;
            let write_timeout = cfg.write_timeout;
            // Replies must not block forever on a stalled client; reads
            // stay un-timed so `result --wait` can block legitimately.
            let _ = stream.set_write_timeout(Some(write_timeout));
            handlers.push(std::thread::spawn(move || {
                let drained = handle_connection(stream, &engine, wait_cap, write_timeout);
                if drained {
                    shutdown.store(true, Ordering::SeqCst);
                    // The accept loop is blocked in `incoming()`; a
                    // throwaway self-connection unblocks it so it can
                    // observe the flag and exit.
                    let _ = TcpStream::connect(local);
                }
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Serves one connection; returns whether this client drained the server.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    wait_cap: Duration,
    write_timeout: Duration,
) -> bool {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        nwq_telemetry::counter_add("serve.requests", 1);
        let (reply, drained) = dispatch(&line, engine, wait_cap);
        if protocol::write_line_with_deadline(&mut writer, &reply.render(), write_timeout).is_err()
        {
            nwq_telemetry::counter_add("serve.reply_write_failures", 1);
            break;
        }
        if drained {
            return true;
        }
    }
    false
}

/// Decodes and executes one request line. Returns the reply and whether
/// the request was a completed `drain`.
fn dispatch(line: &str, engine: &Engine, wait_cap: Duration) -> (nwq_telemetry::JsonValue, bool) {
    let req = match Request::parse_line(line) {
        Ok(r) => r,
        Err(e) => return (protocol::error_reply(&e), false),
    };
    match req {
        Request::Submit(spec) => (protocol::submit_reply(&engine.submit(spec)), false),
        Request::Status { id } => (protocol::status_reply(id, engine.status(id)), false),
        Request::Result { id, wait } => {
            let view = if wait {
                engine.wait_terminal(id, wait_cap)
            } else {
                engine.view(id)
            };
            (protocol::result_reply(view.as_ref()), false)
        }
        Request::Cancel { id } => (protocol::cancel_reply(engine.cancel(id)), false),
        Request::Stats => (
            protocol::stats_reply(
                engine.queue_depth(),
                engine.draining(),
                &engine.stats(),
                &engine.cache_stats(),
            ),
            false,
        ),
        Request::Drain => {
            engine.drain();
            (protocol::drain_reply(), true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::job::{JobSpec, JobStatus};

    /// Full loopback round trip: submit over TCP, wait for the result,
    /// check stats, drain; the server thread must exit cleanly.
    #[test]
    fn loopback_submit_result_drain() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let serving = std::thread::spawn(move || server.run());

        let mut client = Client::connect(&addr.to_string()).unwrap();
        let id = match client
            .submit(&JobSpec::energy("toy", vec![0.3, 0.6]))
            .unwrap()
        {
            crate::SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        let result = client.wait_result(id).unwrap();
        assert_eq!(
            result
                .get("status")
                .and_then(nwq_telemetry::JsonValue::as_str),
            Some(JobStatus::Done.as_str())
        );
        let energy = result
            .get("energy")
            .and_then(nwq_telemetry::JsonValue::as_f64)
            .unwrap();
        assert!(energy.is_finite());

        let stats = client.stats().unwrap();
        assert_eq!(
            stats
                .get("engine")
                .and_then(|e| e.get("completed"))
                .and_then(nwq_telemetry::JsonValue::as_u64),
            Some(1)
        );

        client.drain().unwrap();
        serving.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_lines_do_not_kill_the_connection() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let engine = server.engine();
        let serving = std::thread::spawn(move || server.run());

        let mut client = Client::connect(&addr.to_string()).unwrap();
        let err = client.raw_line("this is not json").unwrap();
        assert_eq!(
            err.get("ok").and_then(nwq_telemetry::JsonValue::as_u64),
            Some(0)
        );
        // Same connection still works.
        assert!(matches!(
            client
                .submit(&JobSpec::energy("toy", vec![0.0, 0.0]))
                .unwrap(),
            crate::SubmitOutcome::Accepted(_)
        ));
        client.drain().unwrap();
        serving.join().unwrap().unwrap();
        assert_eq!(engine.stats().completed, 1);
    }
}
