//! A minimal blocking client for the line-JSON protocol — used by the CLI
//! `client` subcommand, the load generator, and the integration tests.

use crate::engine::SubmitOutcome;
use crate::job::{JobId, JobSpec, JobStatus};
use crate::protocol::Request;
use nwq_common::{Error, Result};
use nwq_telemetry::JsonValue;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One protocol connection to a running server.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn connect(addr: &str) -> Result<Client> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| Error::Backend(format!("connecting to {addr}: {e}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| Error::Backend(format!("cloning stream: {e}")))?,
        );
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sends one raw protocol line and reads one reply line.
    pub fn raw_line(&mut self, line: &str) -> Result<JsonValue> {
        writeln!(self.writer, "{line}")
            .map_err(|e| Error::Backend(format!("sending request: {e}")))?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| Error::Backend(format!("reading reply: {e}")))?;
        if n == 0 {
            return Err(Error::Backend("server closed the connection".into()));
        }
        JsonValue::parse(reply.trim_end())
            .map_err(|e| Error::Invalid(format!("unparseable reply {reply:?}: {e}")))
    }

    /// Sends a typed request and reads the reply.
    pub fn request(&mut self, req: &Request) -> Result<JsonValue> {
        self.raw_line(&req.to_line())
    }

    /// Submits a job; distinguishes acceptance from explicit rejection.
    /// Protocol-level errors (bad molecule, transport) are `Err`.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<SubmitOutcome> {
        let reply = self.request(&Request::Submit(spec.clone()))?;
        if reply.get("ok").and_then(JsonValue::as_u64) == Some(1) {
            let id = reply
                .get("id")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| Error::Invalid("accepted reply without an id".into()))?;
            return Ok(SubmitOutcome::Accepted(id));
        }
        if reply.get("rejected").and_then(JsonValue::as_u64) == Some(1) {
            let reason = reply
                .get("reason")
                .and_then(JsonValue::as_str)
                .unwrap_or("unspecified")
                .to_string();
            return Ok(SubmitOutcome::Rejected { reason });
        }
        Err(Error::Invalid(format!(
            "submit failed: {}",
            reply
                .get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown error")
        )))
    }

    /// Queries a job's lifecycle status.
    pub fn status(&mut self, id: JobId) -> Result<Option<JobStatus>> {
        let reply = self.request(&Request::Status { id })?;
        match reply.get("status").and_then(JsonValue::as_str) {
            Some(s) => Ok(parse_status(s)),
            None => Ok(None),
        }
    }

    /// Fetches a job's result without blocking.
    pub fn result(&mut self, id: JobId) -> Result<JsonValue> {
        self.request(&Request::Result { id, wait: false })
    }

    /// Blocks until the job is terminal (re-polling past the server's wait
    /// cap) and returns the final result reply.
    pub fn wait_result(&mut self, id: JobId) -> Result<JsonValue> {
        loop {
            let reply = self.request(&Request::Result { id, wait: true })?;
            match reply.get("status").and_then(JsonValue::as_str) {
                Some(s) if parse_status(s).is_some_and(JobStatus::is_terminal) => return Ok(reply),
                Some(_) => continue, // wait cap hit; poll again
                None => {
                    return Err(Error::Invalid(format!(
                        "result failed: {}",
                        reply
                            .get("error")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("unknown error")
                    )))
                }
            }
        }
    }

    /// Cancels a still-queued job; `Ok(true)` when it was removed.
    pub fn cancel(&mut self, id: JobId) -> Result<bool> {
        let reply = self.request(&Request::Cancel { id })?;
        Ok(reply.get("cancelled").and_then(JsonValue::as_u64) == Some(1))
    }

    /// Server-wide statistics snapshot.
    pub fn stats(&mut self) -> Result<JsonValue> {
        self.request(&Request::Stats)
    }

    /// Drains the server: blocks until every accepted job finished and the
    /// server acknowledges shutdown.
    pub fn drain(&mut self) -> Result<JsonValue> {
        self.request(&Request::Drain)
    }
}

fn parse_status(s: &str) -> Option<JobStatus> {
    [
        JobStatus::Queued,
        JobStatus::Running,
        JobStatus::Done,
        JobStatus::Failed,
        JobStatus::Cancelled,
        JobStatus::Expired,
    ]
    .into_iter()
    .find(|status| status.as_str() == s)
}
