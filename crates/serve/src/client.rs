//! A minimal blocking client for the line-JSON protocol — used by the CLI
//! `client` subcommand, the load generator, and the integration tests.

use crate::engine::SubmitOutcome;
use crate::job::{JobId, JobSpec, JobStatus};
use crate::protocol::{write_line_with_deadline, Request};
use nwq_common::{Error, Result};
use nwq_telemetry::JsonValue;
use std::io::{BufRead, BufReader, ErrorKind};
use std::net::TcpStream;
use std::time::Duration;

/// Budget for writing one request line: a server that accepts but stops
/// reading must surface as an error, not a stuck client process.
const WRITE_BUDGET: Duration = Duration::from_secs(10);

/// One protocol connection to a running server.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    read_timeout: Option<Duration>,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`) with no read timeout:
    /// a reply wait blocks indefinitely. Interactive callers should prefer
    /// [`Client::connect_with_timeout`] so a hung or silent server surfaces
    /// as a clean error instead of a stuck process.
    pub fn connect(addr: &str) -> Result<Client> {
        Self::connect_with_timeout(addr, None)
    }

    /// Connects with a per-reply read timeout. When the server accepts the
    /// connection but never answers within `read_timeout`, the pending call
    /// returns [`Error::Backend`] rather than blocking forever.
    pub fn connect_with_timeout(addr: &str, read_timeout: Option<Duration>) -> Result<Client> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| Error::Backend(format!("connecting to {addr}: {e}")))?;
        stream
            .set_read_timeout(read_timeout)
            .map_err(|e| Error::Backend(format!("setting read timeout: {e}")))?;
        stream
            .set_write_timeout(Some(WRITE_BUDGET))
            .map_err(|e| Error::Backend(format!("setting write timeout: {e}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| Error::Backend(format!("cloning stream: {e}")))?,
        );
        Ok(Client {
            writer: stream,
            reader,
            read_timeout,
        })
    }

    /// Sends one raw protocol line and reads one reply line.
    pub fn raw_line(&mut self, line: &str) -> Result<JsonValue> {
        write_line_with_deadline(&mut self.writer, line, WRITE_BUDGET)
            .map_err(|e| Error::Backend(format!("sending request: {e}")))?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).map_err(|e| {
            // A timed-out socket read surfaces as WouldBlock (unix) or
            // TimedOut (windows); both mean "server did not answer in time".
            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                let t = self.read_timeout.unwrap_or_default();
                Error::Backend(format!("server did not respond within {t:?}"))
            } else {
                Error::Backend(format!("reading reply: {e}"))
            }
        })?;
        if n == 0 {
            return Err(Error::Backend("server closed the connection".into()));
        }
        JsonValue::parse(reply.trim_end())
            .map_err(|e| Error::Invalid(format!("unparseable reply {reply:?}: {e}")))
    }

    /// Sends a typed request and reads the reply.
    pub fn request(&mut self, req: &Request) -> Result<JsonValue> {
        self.raw_line(&req.to_line())
    }

    /// Submits a job; distinguishes acceptance from explicit rejection.
    /// Protocol-level errors (bad molecule, transport) are `Err`.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<SubmitOutcome> {
        let reply = self.request(&Request::Submit(spec.clone()))?;
        if reply.get("ok").and_then(JsonValue::as_u64) == Some(1) {
            let id = reply
                .get("id")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| Error::Invalid("accepted reply without an id".into()))?;
            return Ok(SubmitOutcome::Accepted(id));
        }
        if reply.get("rejected").and_then(JsonValue::as_u64) == Some(1) {
            let reason = reply
                .get("reason")
                .and_then(JsonValue::as_str)
                .unwrap_or("unspecified")
                .to_string();
            return Ok(SubmitOutcome::Rejected { reason });
        }
        Err(Error::Invalid(format!(
            "submit failed: {}",
            reply
                .get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown error")
        )))
    }

    /// Queries a job's lifecycle status.
    pub fn status(&mut self, id: JobId) -> Result<Option<JobStatus>> {
        let reply = self.request(&Request::Status { id })?;
        match reply.get("status").and_then(JsonValue::as_str) {
            Some(s) => Ok(parse_status(s)),
            None => Ok(None),
        }
    }

    /// Fetches a job's result without blocking.
    pub fn result(&mut self, id: JobId) -> Result<JsonValue> {
        self.request(&Request::Result { id, wait: false })
    }

    /// Blocks until the job is terminal (re-polling past the server's wait
    /// cap) and returns the final result reply.
    pub fn wait_result(&mut self, id: JobId) -> Result<JsonValue> {
        loop {
            let reply = self.request(&Request::Result { id, wait: true })?;
            match reply.get("status").and_then(JsonValue::as_str) {
                Some(s) if parse_status(s).is_some_and(JobStatus::is_terminal) => return Ok(reply),
                Some(_) => continue, // wait cap hit; poll again
                None => {
                    return Err(Error::Invalid(format!(
                        "result failed: {}",
                        reply
                            .get("error")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("unknown error")
                    )))
                }
            }
        }
    }

    /// Cancels a still-queued job; `Ok(true)` when it was removed.
    pub fn cancel(&mut self, id: JobId) -> Result<bool> {
        let reply = self.request(&Request::Cancel { id })?;
        Ok(reply.get("cancelled").and_then(JsonValue::as_u64) == Some(1))
    }

    /// Server-wide statistics snapshot.
    pub fn stats(&mut self) -> Result<JsonValue> {
        self.request(&Request::Stats)
    }

    /// Drains the server: blocks until every accepted job finished and the
    /// server acknowledges shutdown.
    pub fn drain(&mut self) -> Result<JsonValue> {
        self.request(&Request::Drain)
    }
}

fn parse_status(s: &str) -> Option<JobStatus> {
    [
        JobStatus::Queued,
        JobStatus::Running,
        JobStatus::Done,
        JobStatus::Failed,
        JobStatus::Cancelled,
        JobStatus::Expired,
    ]
    .into_iter()
    .find(|status| status.as_str() == s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::mpsc;

    /// A server that accepts the connection and then goes silent, holding
    /// the socket open until the test finishes.
    fn silent_server() -> (String, mpsc::Sender<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        std::thread::spawn(move || {
            let Ok((_conn, _)) = listener.accept() else {
                return;
            };
            // Keep _conn alive (no reply, no EOF) until the test drops done_tx.
            let _ = done_rx.recv();
        });
        (addr, done_tx)
    }

    #[test]
    fn silent_server_times_out_with_clean_error() {
        let (addr, _hold) = silent_server();
        let mut client =
            Client::connect_with_timeout(&addr, Some(Duration::from_millis(50))).unwrap();
        let err = client.stats().unwrap_err();
        assert!(
            matches!(&err, Error::Backend(m) if m.contains("did not respond within")),
            "expected a timeout error, got: {err}"
        );
    }

    #[test]
    fn killed_server_yields_eof_error_not_a_hang() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t = std::thread::spawn(move || {
            // Accept, then drop the connection immediately — the server
            // process "dying" mid-conversation.
            let _ = listener.accept();
        });
        let mut client =
            Client::connect_with_timeout(&addr, Some(Duration::from_millis(500))).unwrap();
        t.join().unwrap();
        let err = client.stats().unwrap_err();
        assert!(
            matches!(&err, Error::Backend(m) if m.contains("closed the connection")
                || m.contains("reading reply")
                || m.contains("sending request")),
            "expected a connection-loss error, got: {err}"
        );
    }

    #[test]
    fn zero_is_a_rejected_timeout_not_a_footgun() {
        // set_read_timeout(Some(0)) is an io error by contract; the client
        // must surface it at connect time, not silently disable timeouts.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let err = Client::connect_with_timeout(&addr, Some(Duration::ZERO)).unwrap_err();
        assert!(
            matches!(&err, Error::Backend(m) if m.contains("read timeout")),
            "{err}"
        );
    }
}
