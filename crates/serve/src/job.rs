//! The job model: what tenants submit and what they get back.
//!
//! A [`JobSpec`] names a molecule from the registry, the kind of work
//! (single energy evaluation, full VQE minimization, or ADAPT-VQE growth),
//! a [`Priority`], and an optional queueing deadline. Specs round-trip
//! through the line-JSON protocol via [`JobSpec::to_json`] /
//! [`JobSpec::from_json`]; parameters survive the trip bitwise because the
//! telemetry JSON layer round-trips finite `f64` exactly — which is what
//! lets the server promise energies identical to a local run.

use nwq_telemetry::{JsonValue, Object};

/// Server-assigned job identifier, unique per engine lifetime.
pub type JobId = u64;

/// Scheduling priority. Higher classes are served first, but queued jobs
/// age upward (see [`crate::queue::QueueConfig::aging_ms`]) so low-priority
/// work cannot starve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Background work.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive work.
    High,
}

impl Priority {
    /// Base scheduling level (aging adds to this).
    pub fn level(self) -> f64 {
        match self {
            Priority::Low => 0.0,
            Priority::Normal => 1.0,
            Priority::High => 2.0,
        }
    }

    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }
}

/// What a job computes.
#[derive(Clone, Debug, PartialEq)]
pub enum JobKind {
    /// One energy evaluation `E(θ)` at fixed parameters — the batchable
    /// kind: compatible pending evaluations (same problem fingerprint) are
    /// grouped into one expectation sweep.
    EnergyEval {
        /// Ansatz parameters, one per symbolic parameter.
        params: Vec<f64>,
    },
    /// A full VQE minimization.
    Vqe {
        /// Starting point; empty means all zeros.
        x0: Vec<f64>,
        /// Optimizer evaluation budget.
        max_evals: usize,
    },
    /// An ADAPT-VQE growth run.
    Adapt {
        /// Growth-iteration budget.
        max_iterations: usize,
    },
}

impl JobKind {
    /// Wire name of the kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobKind::EnergyEval { .. } => "energy",
            JobKind::Vqe { .. } => "vqe",
            JobKind::Adapt { .. } => "adapt",
        }
    }

    /// Whether jobs of this kind may share one batched expectation sweep.
    pub fn batchable(&self) -> bool {
        matches!(self, JobKind::EnergyEval { .. })
    }
}

/// A submitted unit of work.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Registry molecule name (see [`crate::problem::MOLECULES`]).
    pub molecule: String,
    /// What to compute.
    pub kind: JobKind,
    /// Scheduling class.
    pub priority: Priority,
    /// Maximum time the job may wait in the queue, in milliseconds; jobs
    /// exceeding it are marked [`JobStatus::Expired`] instead of running.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// An energy-evaluation spec at normal priority.
    pub fn energy(molecule: impl Into<String>, params: Vec<f64>) -> Self {
        JobSpec {
            molecule: molecule.into(),
            kind: JobKind::EnergyEval { params },
            priority: Priority::Normal,
            deadline_ms: None,
        }
    }

    /// A VQE spec at normal priority (empty `x0` means all zeros).
    pub fn vqe(molecule: impl Into<String>, x0: Vec<f64>, max_evals: usize) -> Self {
        JobSpec {
            molecule: molecule.into(),
            kind: JobKind::Vqe { x0, max_evals },
            priority: Priority::Normal,
            deadline_ms: None,
        }
    }

    /// An ADAPT-VQE spec at normal priority.
    pub fn adapt(molecule: impl Into<String>, max_iterations: usize) -> Self {
        JobSpec {
            molecule: molecule.into(),
            kind: JobKind::Adapt { max_iterations },
            priority: Priority::Normal,
            deadline_ms: None,
        }
    }

    /// Sets the priority (builder style).
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the queueing deadline (builder style).
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Protocol encoding.
    pub fn to_json(&self) -> JsonValue {
        let floats =
            |xs: &[f64]| JsonValue::Array(xs.iter().map(|&x| JsonValue::Float(x)).collect());
        let mut o = Object::new();
        o.push("molecule", JsonValue::Str(self.molecule.clone()));
        o.push("job", JsonValue::Str(self.kind.as_str().into()));
        match &self.kind {
            JobKind::EnergyEval { params } => o.push("params", floats(params)),
            JobKind::Vqe { x0, max_evals } => {
                o.push("x0", floats(x0));
                o.push("max_evals", JsonValue::Int(*max_evals as u64));
            }
            JobKind::Adapt { max_iterations } => {
                o.push("max_iterations", JsonValue::Int(*max_iterations as u64));
            }
        }
        o.push("priority", JsonValue::Str(self.priority.as_str().into()));
        if let Some(d) = self.deadline_ms {
            o.push("deadline_ms", JsonValue::Int(d));
        }
        o.into_value()
    }

    /// Protocol decoding (inverse of [`JobSpec::to_json`]).
    pub fn from_json(v: &JsonValue) -> Result<JobSpec, String> {
        let molecule = v
            .get("molecule")
            .and_then(JsonValue::as_str)
            .ok_or("submit is missing \"molecule\"")?
            .to_string();
        let floats = |key: &str| -> Result<Vec<f64>, String> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(arr) => arr
                    .as_array()
                    .ok_or_else(|| format!("\"{key}\" must be an array of numbers"))?
                    .iter()
                    .map(|x| {
                        x.as_f64()
                            .ok_or_else(|| format!("non-numeric entry in \"{key}\""))
                    })
                    .collect(),
            }
        };
        let kind = match v.get("job").and_then(JsonValue::as_str).unwrap_or("energy") {
            "energy" => JobKind::EnergyEval {
                params: floats("params")?,
            },
            "vqe" => JobKind::Vqe {
                x0: floats("x0")?,
                max_evals: v
                    .get("max_evals")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(2000) as usize,
            },
            "adapt" => JobKind::Adapt {
                max_iterations: v
                    .get("max_iterations")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(8) as usize,
            },
            other => return Err(format!("unknown job kind {other:?}")),
        };
        let priority = match v.get("priority").and_then(JsonValue::as_str) {
            None => Priority::Normal,
            Some(s) => Priority::parse(s).ok_or_else(|| format!("unknown priority {s:?}"))?,
        };
        Ok(JobSpec {
            molecule,
            kind,
            priority,
            deadline_ms: v.get("deadline_ms").and_then(JsonValue::as_u64),
        })
    }
}

/// Lifecycle of a job inside the engine. Admission rejection is *not* a
/// status: rejected submissions never get an id or a record — backpressure
/// is reported on the submit reply itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting in the admission queue.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Finished successfully; the record carries a [`JobOutcome`].
    Done,
    /// Finished unsuccessfully; the record carries an error message.
    Failed,
    /// Cancelled while still queued.
    Cancelled,
    /// Queueing deadline elapsed before a worker claimed it.
    Expired,
}

impl JobStatus {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Expired => "expired",
        }
    }

    /// Whether the job will never change state again.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }
}

/// What a successfully completed job produced.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutcome {
    /// The computed energy (final energy for VQE/ADAPT).
    pub energy: f64,
    /// Backend evaluations consumed.
    pub evaluations: u64,
    /// Size of the cross-job batch this job rode in (1 = alone).
    pub batch_size: usize,
    /// Whether the energy was answered from the shared cross-tenant cache.
    pub cache_hit: bool,
    /// Submit-to-completion latency in milliseconds.
    pub wall_ms: f64,
    /// Time spent waiting in the admission queue, in milliseconds.
    pub queue_wait_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_round_trips_all_kinds_bitwise() {
        // One ULP off 0.1 — a value decimal shortest-round-trip must get
        // exactly right — plus a negative zero and an irrational.
        let theta = [
            f64::from_bits(0.1f64.to_bits() + 1),
            -0.0,
            std::f64::consts::PI,
        ];
        let specs = [
            JobSpec::energy("h2", theta.to_vec())
                .with_priority(Priority::High)
                .with_deadline_ms(250),
            JobSpec::vqe("toy", vec![0.4, 0.2], 1500).with_priority(Priority::Low),
            JobSpec::adapt("water", 6),
        ];
        for spec in specs {
            let line = spec.to_json().render();
            let back = JobSpec::from_json(&JsonValue::parse(&line).unwrap()).unwrap();
            assert_eq!(back, spec, "{line}");
            if let (JobKind::EnergyEval { params: a }, JobKind::EnergyEval { params: b }) =
                (&back.kind, &spec.kind)
            {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "params must survive bitwise");
                }
            }
        }
    }

    #[test]
    fn spec_decoding_rejects_malformed_input() {
        for bad in [
            r#"{"job":"energy"}"#,                         // no molecule
            r#"{"molecule":"h2","job":"teleport"}"#,       // unknown kind
            r#"{"molecule":"h2","priority":"urgent"}"#,    // unknown priority
            r#"{"molecule":"h2","params":["x"]}"#,         // non-numeric params
            r#"{"molecule":"h2","params":{"not":"arr"}}"#, // wrong shape
        ] {
            let v = JsonValue::parse(bad).unwrap();
            assert!(JobSpec::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn priority_ordering_and_terminal_statuses() {
        assert!(Priority::High.level() > Priority::Normal.level());
        assert!(Priority::Normal.level() > Priority::Low.level());
        assert_eq!(Priority::parse("high"), Some(Priority::High));
        for s in [
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Cancelled,
            JobStatus::Expired,
        ] {
            assert!(s.is_terminal());
            assert_eq!(JobStatus::Queued.as_str(), "queued");
        }
        assert!(!JobStatus::Queued.is_terminal());
        assert!(!JobStatus::Running.is_terminal());
    }
}
