//! Bounded admission queue with priority aging and batch-aware pops.
//!
//! Admission is where backpressure lives: a full queue rejects *at
//! submit time* with an explicit reason, instead of buffering without
//! bound or hanging the client. Scheduling order is by *effective*
//! priority — the job's class level plus its queue age divided by
//! [`QueueConfig::aging_ms`] — so a high-priority stream cannot starve
//! low-priority tenants: every `aging_ms` of waiting promotes a job by
//! one full class.
//!
//! Pops are batch-aware: after choosing the highest-effective-priority
//! job, a worker also claims up to `max_batch − 1` *batchable* jobs with
//! the same problem fingerprint, so compatible energy evaluations from
//! different tenants leave the queue as one group and run as one
//! expectation sweep.
//!
//! This module intentionally uses `std::sync::{Mutex, Condvar}` (not the
//! vendored `parking_lot`, which has no condvar) — blocking pops need a
//! real wait/notify primitive.

use crate::job::{JobId, Priority};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Admission-queue tuning.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Maximum queued (not yet claimed) jobs; submissions beyond this are
    /// rejected.
    pub capacity: usize,
    /// Milliseconds of queue age worth one priority class. Smaller values
    /// age faster.
    pub aging_ms: f64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            capacity: 64,
            aging_ms: 1000.0,
        }
    }
}

/// A queued job, as the scheduler sees it.
#[derive(Clone, Debug)]
pub struct QueuedJob {
    /// Engine job id.
    pub id: JobId,
    /// Problem content fingerprint (batching key).
    pub fingerprint: u64,
    /// Whether this job may join a cross-job batch.
    pub batchable: bool,
    /// Scheduling class.
    pub priority: Priority,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Queueing deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
    /// Execution attempts already consumed. 0 for a fresh submission;
    /// incremented each time a crashed worker's claim is re-queued, so the
    /// poison-job quarantine can cap the crash loop.
    pub attempts: u32,
}

impl QueuedJob {
    /// Milliseconds spent in the queue as of `now`.
    pub fn waited_ms(&self, now: Instant) -> f64 {
        now.duration_since(self.enqueued).as_secs_f64() * 1e3
    }

    /// Whether the queueing deadline has elapsed as of `now`.
    pub fn expired(&self, now: Instant) -> bool {
        self.deadline_ms
            .is_some_and(|d| self.waited_ms(now) > d as f64)
    }
}

/// Outcome of an admission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The job entered the queue.
    Accepted,
    /// The bounded queue is full — explicit backpressure, retry later.
    RejectedQueueFull,
    /// The server is draining and takes no new work.
    RejectedDraining,
}

/// What one [`AdmissionQueue::pop_batch`] call hands a worker: the jobs to
/// run, plus any deadline-expired jobs purged during the claim (to be
/// failed fast with a `deadline_exceeded` status, never executed).
#[derive(Debug)]
pub struct Claim {
    /// The claimed batch: the highest-effective-priority job plus its
    /// batchable fingerprint mates. May be empty when the queue held only
    /// expired entries.
    pub runnable: Vec<QueuedJob>,
    /// Jobs whose queueing deadline had elapsed before selection.
    pub expired: Vec<QueuedJob>,
}

struct Inner {
    entries: Vec<QueuedJob>,
    draining: bool,
    closed: bool,
}

/// The bounded, aging, batch-aware admission queue.
pub struct AdmissionQueue {
    cfg: QueueConfig,
    inner: Mutex<Inner>,
    available: Condvar,
}

impl AdmissionQueue {
    /// An empty queue.
    pub fn new(cfg: QueueConfig) -> Self {
        AdmissionQueue {
            cfg,
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                draining: false,
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Jobs currently queued (claimed jobs are no longer counted).
    pub fn depth(&self) -> usize {
        self.lock().entries.len()
    }

    /// Attempts admission. Never blocks.
    pub fn push(&self, job: QueuedJob) -> Admission {
        let mut g = self.lock();
        if g.draining || g.closed {
            return Admission::RejectedDraining;
        }
        if g.entries.len() >= self.cfg.capacity.max(1) {
            return Admission::RejectedQueueFull;
        }
        g.entries.push(job);
        drop(g);
        self.available.notify_one();
        Admission::Accepted
    }

    /// Blocks until work is available (or the queue is closed), then claims
    /// the highest-effective-priority job plus up to `max_batch − 1`
    /// batchable jobs sharing its fingerprint.
    ///
    /// Jobs whose queueing deadline has already elapsed are purged *before*
    /// selection and returned separately in [`Claim::expired`]: an expired
    /// job must never lead a batch, ride along in one, count against
    /// `max_batch`, or distort the priority choice — it costs the claimant
    /// nothing but the terminal-status bookkeeping. A claim may carry ONLY
    /// expired jobs (empty `runnable`) so expirations are reported promptly
    /// instead of waiting for live work to arrive.
    ///
    /// Returns `None` only on close-and-empty — the worker-exit signal.
    pub fn pop_batch(&self, max_batch: usize) -> Option<Claim> {
        let mut g = self.lock();
        loop {
            if !g.entries.is_empty() {
                break;
            }
            if g.closed {
                return None;
            }
            g = self
                .available
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let now = Instant::now();
        let mut expired = Vec::new();
        let mut i = 0;
        while i < g.entries.len() {
            if g.entries[i].expired(now) {
                expired.push(g.entries.remove(i));
            } else {
                i += 1;
            }
        }
        if g.entries.is_empty() {
            // Everything queued was past its deadline: report the
            // expirations rather than blocking with them unaccounted.
            return Some(Claim {
                runnable: Vec::new(),
                expired,
            });
        }
        let lead_idx = (0..g.entries.len())
            .max_by(|&a, &b| {
                let ea = self.effective_priority(&g.entries[a], now);
                let eb = self.effective_priority(&g.entries[b], now);
                // Ties (and NaN-free floats generally) break FIFO: the
                // smaller id was submitted first and wins.
                ea.total_cmp(&eb)
                    .then_with(|| g.entries[b].id.cmp(&g.entries[a].id))
            })
            .expect("entries is non-empty");
        let lead = g.entries.remove(lead_idx);
        let mut batch = vec![lead];
        if batch[0].batchable {
            let mut i = 0;
            while i < g.entries.len() && batch.len() < max_batch.max(1) {
                if g.entries[i].batchable && g.entries[i].fingerprint == batch[0].fingerprint {
                    batch.push(g.entries.remove(i));
                } else {
                    i += 1;
                }
            }
        }
        Some(Claim {
            runnable: batch,
            expired,
        })
    }

    /// Returns a claimed-but-unfinished job to the queue after its worker
    /// crashed. Unlike [`AdmissionQueue::push`] this bypasses the capacity
    /// bound and the draining gate: the job was *already admitted* once —
    /// dropping it here would break the "drain loses nothing" contract
    /// (and deadlock a drain waiting on its terminal status).
    pub fn requeue(&self, job: QueuedJob) {
        let mut g = self.lock();
        g.entries.push(job);
        drop(g);
        self.available.notify_one();
    }

    /// Removes a still-queued job (the cancel path). Returns whether it was
    /// found — `false` means a worker already claimed it.
    pub fn remove(&self, id: JobId) -> bool {
        let mut g = self.lock();
        match g.entries.iter().position(|j| j.id == id) {
            Some(idx) => {
                g.entries.remove(idx);
                true
            }
            None => false,
        }
    }

    /// Stops admitting new jobs; queued jobs still run to completion.
    pub fn set_draining(&self) {
        self.lock().draining = true;
    }

    /// Whether the queue is draining.
    pub fn draining(&self) -> bool {
        self.lock().draining
    }

    /// Wakes all blocked pops and makes future pops return `None` once the
    /// queue empties. Call after the last job has been claimed.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    fn effective_priority(&self, job: &QueuedJob, now: Instant) -> f64 {
        job.priority.level() + job.waited_ms(now) / self.cfg.aging_ms.max(1e-9)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn job(id: JobId, fp: u64, batchable: bool, priority: Priority) -> QueuedJob {
        QueuedJob {
            id,
            fingerprint: fp,
            batchable,
            priority,
            enqueued: Instant::now(),
            deadline_ms: None,
            attempts: 0,
        }
    }

    #[test]
    fn bounded_admission_rejects_when_full() {
        let q = AdmissionQueue::new(QueueConfig {
            capacity: 2,
            ..Default::default()
        });
        assert_eq!(
            q.push(job(1, 0, true, Priority::Normal)),
            Admission::Accepted
        );
        assert_eq!(
            q.push(job(2, 0, true, Priority::Normal)),
            Admission::Accepted
        );
        assert_eq!(
            q.push(job(3, 0, true, Priority::Normal)),
            Admission::RejectedQueueFull
        );
        assert_eq!(q.depth(), 2);
        // Claiming frees capacity again.
        q.pop_batch(1).unwrap();
        assert_eq!(
            q.push(job(3, 0, true, Priority::Normal)),
            Admission::Accepted
        );
    }

    #[test]
    fn higher_priority_pops_first_ties_break_fifo() {
        let q = AdmissionQueue::new(QueueConfig::default());
        q.push(job(1, 0, false, Priority::Low));
        q.push(job(2, 0, false, Priority::High));
        q.push(job(3, 0, false, Priority::High));
        q.push(job(4, 0, false, Priority::Normal));
        let order: Vec<JobId> = (0..4)
            .map(|_| q.pop_batch(1).unwrap().runnable[0].id)
            .collect();
        assert_eq!(order, vec![2, 3, 4, 1]);
    }

    #[test]
    fn aging_eventually_promotes_low_priority() {
        // 1 ms per class: a low job older than ~2 ms outranks fresh high.
        let q = AdmissionQueue::new(QueueConfig {
            capacity: 8,
            aging_ms: 1.0,
        });
        let mut old_low = job(1, 0, false, Priority::Low);
        old_low.enqueued = Instant::now() - Duration::from_millis(50);
        q.push(old_low);
        q.push(job(2, 0, false, Priority::High));
        assert_eq!(
            q.pop_batch(1).unwrap().runnable[0].id,
            1,
            "aged job must win"
        );
    }

    #[test]
    fn pop_groups_batchable_jobs_by_fingerprint_only() {
        let q = AdmissionQueue::new(QueueConfig::default());
        q.push(job(1, 77, true, Priority::High));
        q.push(job(2, 77, true, Priority::Low)); // same problem, rides along
        q.push(job(3, 99, true, Priority::Low)); // different problem
        q.push(job(4, 77, false, Priority::Low)); // same fp but not batchable
        q.push(job(5, 77, true, Priority::Low)); // same problem, rides along
        let batch = q.pop_batch(8).unwrap().runnable;
        let ids: Vec<JobId> = batch.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 2, 5]);
        assert_eq!(q.depth(), 2);
        // max_batch caps the group size.
        q.push(job(6, 99, true, Priority::Low));
        q.push(job(7, 99, true, Priority::Low));
        let capped = q.pop_batch(2).unwrap().runnable;
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn non_batchable_lead_pops_alone() {
        let q = AdmissionQueue::new(QueueConfig::default());
        q.push(job(1, 77, false, Priority::High));
        q.push(job(2, 77, true, Priority::Low));
        assert_eq!(q.pop_batch(8).unwrap().runnable.len(), 1);
    }

    #[test]
    fn draining_rejects_new_work_but_serves_queued() {
        let q = AdmissionQueue::new(QueueConfig::default());
        q.push(job(1, 0, true, Priority::Normal));
        q.set_draining();
        assert_eq!(
            q.push(job(2, 0, true, Priority::Normal)),
            Admission::RejectedDraining
        );
        assert_eq!(q.pop_batch(1).unwrap().runnable[0].id, 1);
    }

    #[test]
    fn close_wakes_blocked_pop() {
        let q = std::sync::Arc::new(AdmissionQueue::new(QueueConfig::default()));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_batch(1));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(t.join().unwrap().is_none());
    }

    #[test]
    fn cancel_removes_only_queued_jobs() {
        let q = AdmissionQueue::new(QueueConfig::default());
        q.push(job(1, 0, true, Priority::Normal));
        assert!(q.remove(1));
        assert!(!q.remove(1), "already removed");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn requeue_bypasses_capacity_and_draining() {
        let q = AdmissionQueue::new(QueueConfig {
            capacity: 1,
            ..Default::default()
        });
        q.push(job(1, 0, true, Priority::Normal));
        // Full and draining: a fresh push is rejected both ways...
        q.set_draining();
        assert_eq!(
            q.push(job(2, 0, true, Priority::Normal)),
            Admission::RejectedDraining
        );
        // ...but a crashed worker's claim goes back in regardless — it was
        // already admitted once and drain accounting depends on it.
        let mut reclaimed = job(3, 0, true, Priority::Normal);
        reclaimed.attempts = 1;
        q.requeue(reclaimed);
        assert_eq!(q.depth(), 2);
        let ids: Vec<JobId> = (0..2)
            .map(|_| q.pop_batch(1).unwrap().runnable[0].id)
            .collect();
        assert!(ids.contains(&3));
    }

    #[test]
    fn deadline_expiry_is_visible_to_claimants() {
        let mut j = job(1, 0, true, Priority::Normal);
        j.deadline_ms = Some(5);
        assert!(!j.expired(j.enqueued + Duration::from_millis(2)));
        assert!(j.expired(j.enqueued + Duration::from_millis(9)));
    }

    #[test]
    fn expired_jobs_are_purged_before_selection() {
        let q = AdmissionQueue::new(QueueConfig::default());
        // An already-expired HIGH-priority job must not lead the batch, nor
        // count against max_batch — it comes back in `expired` instead.
        let mut dead = job(1, 77, true, Priority::High);
        dead.deadline_ms = Some(1);
        dead.enqueued = Instant::now() - Duration::from_millis(50);
        q.push(dead);
        q.push(job(2, 77, true, Priority::Normal));
        q.push(job(3, 77, true, Priority::Normal));
        let claim = q.pop_batch(2).unwrap();
        let expired_ids: Vec<JobId> = claim.expired.iter().map(|j| j.id).collect();
        let runnable_ids: Vec<JobId> = claim.runnable.iter().map(|j| j.id).collect();
        assert_eq!(expired_ids, vec![1]);
        assert_eq!(runnable_ids, vec![2, 3], "expired lead must not cap batch");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn all_expired_queue_yields_empty_runnable_claim() {
        let q = AdmissionQueue::new(QueueConfig::default());
        let mut dead = job(1, 0, false, Priority::Normal);
        dead.deadline_ms = Some(1);
        dead.enqueued = Instant::now() - Duration::from_millis(50);
        q.push(dead);
        // The claim reports the expiration immediately instead of blocking
        // until live work shows up.
        let claim = q.pop_batch(4).unwrap();
        assert!(claim.runnable.is_empty());
        assert_eq!(claim.expired.len(), 1);
        assert_eq!(q.depth(), 0);
    }
}
