//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, UTF-8, `\n`-terminated —
//! debuggable with `nc` and greppable in logs. Encoding rides on the
//! workspace's hand-rolled JSON layer (`nwq-telemetry`), which round-trips
//! finite `f64` bitwise; that is what extends the server's exactness
//! guarantee across the wire. Booleans are encoded as `0`/`1` (the JSON
//! layer has no boolean variant; incoming `true`/`false` literals parse to
//! `1`/`0`, so standard clients interoperate).
//!
//! ## Verbs
//!
//! | request | reply |
//! |---|---|
//! | `{"verb":"submit","spec":{…}}` | `{"ok":1,"id":N,"status":"queued"}` or `{"ok":0,"rejected":1,"reason":"queue_full"}` |
//! | `{"verb":"status","id":N}` | `{"ok":1,"id":N,"status":"running"}` |
//! | `{"verb":"result","id":N,"wait":1}` | `{"ok":1,"id":N,"status":"done","energy":…,…}` |
//! | `{"verb":"cancel","id":N}` | `{"ok":1,"cancelled":0∣1}` |
//! | `{"verb":"stats"}` | `{"ok":1,"queue_depth":…,"engine":{…},"cache":{…}}` |
//! | `{"verb":"drain"}` | `{"ok":1,"draining":1}` after all accepted jobs finish |
//!
//! Malformed lines get `{"ok":0,"error":"…"}` and the connection stays
//! open.

use crate::engine::{EngineStats, JobView, SubmitOutcome};
use crate::job::{JobId, JobSpec, JobStatus};
use nwq_telemetry::{JsonValue, Object};
use std::io::{ErrorKind, Write};
use std::time::{Duration, Instant};

/// Writes one `\n`-terminated protocol line, surviving partial writes and
/// transient stalls, and giving up after `budget` of cumulative stalling.
///
/// A reply is written to a socket owned by a worker-side connection
/// thread, so an unread reply to a stalled client must never wedge that
/// thread forever: short writes are resumed from where they stopped,
/// `Interrupted` is retried, and `WouldBlock`/`TimedOut` (what a socket
/// with `set_write_timeout` reports when the peer stops reading) is
/// retried only until `budget` has elapsed — then the write fails with
/// `TimedOut` and the caller drops the connection.
pub fn write_line_with_deadline<W: Write>(
    w: &mut W,
    line: &str,
    budget: Duration,
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    let start = Instant::now();
    let mut written = 0usize;
    while written < buf.len() {
        match w.write(&buf[written..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "client closed the write side mid-reply",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if start.elapsed() >= budget {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        format!(
                            "reply write stalled past {budget:?} \
                             ({written}/{} bytes sent)",
                            buf.len()
                        ),
                    ));
                }
                // An OS-level write timeout already blocked for its
                // interval; the yield only guards against hot-spinning on
                // a genuinely non-blocking stream.
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    w.flush()
}

/// A decoded client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a job.
    Submit(JobSpec),
    /// Query a job's lifecycle status.
    Status {
        /// Target job.
        id: JobId,
    },
    /// Fetch a job's result, optionally blocking until it is terminal.
    Result {
        /// Target job.
        id: JobId,
        /// Block until terminal (bounded by the server's wait cap).
        wait: bool,
    },
    /// Cancel a still-queued job.
    Cancel {
        /// Target job.
        id: JobId,
    },
    /// Server-wide statistics snapshot.
    Stats,
    /// Stop admission, finish all accepted jobs, then shut down.
    Drain,
}

impl Request {
    /// Decodes one protocol line.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let v = JsonValue::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let verb = v
            .get("verb")
            .and_then(JsonValue::as_str)
            .ok_or("request is missing \"verb\"")?;
        let id = || -> Result<JobId, String> {
            v.get("id")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("{verb:?} needs a numeric \"id\""))
        };
        match verb {
            "submit" => {
                let spec = v.get("spec").ok_or("submit is missing \"spec\"")?;
                Ok(Request::Submit(JobSpec::from_json(spec)?))
            }
            "status" => Ok(Request::Status { id: id()? }),
            "result" => Ok(Request::Result {
                id: id()?,
                wait: v.get("wait").and_then(JsonValue::as_u64).unwrap_or(0) != 0,
            }),
            "cancel" => Ok(Request::Cancel { id: id()? }),
            "stats" => Ok(Request::Stats),
            "drain" => Ok(Request::Drain),
            other => Err(format!("unknown verb {other:?}")),
        }
    }

    /// Encodes the request as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut o = Object::new();
        match self {
            Request::Submit(spec) => {
                o.push("verb", JsonValue::Str("submit".into()));
                o.push("spec", spec.to_json());
            }
            Request::Status { id } => {
                o.push("verb", JsonValue::Str("status".into()));
                o.push("id", JsonValue::Int(*id));
            }
            Request::Result { id, wait } => {
                o.push("verb", JsonValue::Str("result".into()));
                o.push("id", JsonValue::Int(*id));
                o.push("wait", JsonValue::Int(u64::from(*wait)));
            }
            Request::Cancel { id } => {
                o.push("verb", JsonValue::Str("cancel".into()));
                o.push("id", JsonValue::Int(*id));
            }
            Request::Stats => o.push("verb", JsonValue::Str("stats".into())),
            Request::Drain => o.push("verb", JsonValue::Str("drain".into())),
        }
        o.into_value().render()
    }
}

fn flag(b: bool) -> JsonValue {
    JsonValue::Int(u64::from(b))
}

/// `{"ok":0,"error":…}` — protocol-level failure; connection stays open.
pub fn error_reply(message: &str) -> JsonValue {
    let mut o = Object::new();
    o.push("ok", flag(false));
    o.push("error", JsonValue::Str(message.into()));
    o.into_value()
}

/// Reply to a submit: accepted (with id) or explicitly rejected.
pub fn submit_reply(outcome: &SubmitOutcome) -> JsonValue {
    let mut o = Object::new();
    match outcome {
        SubmitOutcome::Accepted(id) => {
            o.push("ok", flag(true));
            o.push("id", JsonValue::Int(*id));
            o.push("status", JsonValue::Str(JobStatus::Queued.as_str().into()));
        }
        SubmitOutcome::Rejected { reason } => {
            o.push("ok", flag(false));
            o.push("rejected", flag(true));
            o.push("reason", JsonValue::Str(reason.clone()));
        }
    }
    o.into_value()
}

/// Reply to a status query.
pub fn status_reply(id: JobId, status: Option<JobStatus>) -> JsonValue {
    match status {
        None => error_reply(&format!("unknown job id {id}")),
        Some(s) => {
            let mut o = Object::new();
            o.push("ok", flag(true));
            o.push("id", JsonValue::Int(id));
            o.push("status", JsonValue::Str(s.as_str().into()));
            o.into_value()
        }
    }
}

/// Reply to a result query: the full record view, outcome included when
/// the job is done.
pub fn result_reply(view: Option<&JobView>) -> JsonValue {
    let Some(view) = view else {
        return error_reply("unknown job id");
    };
    let mut o = Object::new();
    o.push("ok", flag(true));
    o.push("id", JsonValue::Int(view.id));
    o.push("status", JsonValue::Str(view.status.as_str().into()));
    if let Some(out) = &view.outcome {
        o.push("energy", JsonValue::Float(out.energy));
        o.push("evaluations", JsonValue::Int(out.evaluations));
        o.push("batch_size", JsonValue::Int(out.batch_size as u64));
        o.push("cache_hit", flag(out.cache_hit));
        o.push("wall_ms", JsonValue::Float(out.wall_ms));
        o.push("queue_wait_ms", JsonValue::Float(out.queue_wait_ms));
    }
    if let Some(err) = &view.error {
        o.push("error", JsonValue::Str(err.clone()));
    }
    o.into_value()
}

/// Reply to a cancel attempt.
pub fn cancel_reply(cancelled: bool) -> JsonValue {
    let mut o = Object::new();
    o.push("ok", flag(true));
    o.push("cancelled", flag(cancelled));
    o.into_value()
}

/// Reply to a stats query.
pub fn stats_reply(
    queue_depth: usize,
    draining: bool,
    engine: &EngineStats,
    cache: &crate::cache::SharedCacheStats,
) -> JsonValue {
    let mut e = Object::new();
    e.push("submitted", JsonValue::Int(engine.submitted));
    e.push("accepted", JsonValue::Int(engine.accepted));
    e.push("rejected", JsonValue::Int(engine.rejected));
    e.push("completed", JsonValue::Int(engine.completed));
    e.push("failed", JsonValue::Int(engine.failed));
    e.push("cancelled", JsonValue::Int(engine.cancelled));
    e.push("expired", JsonValue::Int(engine.expired));
    e.push("batches", JsonValue::Int(engine.batches));
    e.push("batched_jobs", JsonValue::Int(engine.batched_jobs));
    e.push("max_batch_size", JsonValue::Int(engine.max_batch_size));
    e.push("requeued", JsonValue::Int(engine.requeued));
    e.push("quarantined", JsonValue::Int(engine.quarantined));
    e.push(
        "mean_batch_size",
        JsonValue::Float(engine.mean_batch_size()),
    );
    let mut c = Object::new();
    c.push("hits", JsonValue::Int(cache.hits));
    c.push("misses", JsonValue::Int(cache.misses));
    c.push("insertions", JsonValue::Int(cache.insertions));
    c.push("evictions", JsonValue::Int(cache.evictions));
    c.push("hit_rate", JsonValue::Float(cache.hit_rate()));
    let mut o = Object::new();
    o.push("ok", flag(true));
    o.push("queue_depth", JsonValue::Int(queue_depth as u64));
    o.push("draining", flag(draining));
    o.push("engine", e.into_value());
    o.push("cache", c.into_value());
    o.into_value()
}

/// Reply to a drain request (sent after the engine finishes draining).
pub fn drain_reply() -> JsonValue {
    let mut o = Object::new();
    o.push("ok", flag(true));
    o.push("draining", flag(true));
    o.into_value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobOutcome, Priority};

    #[test]
    fn requests_round_trip_through_lines() {
        let reqs = [
            Request::Submit(
                JobSpec::energy("h2", vec![0.1, -0.2, 0.3])
                    .with_priority(Priority::High)
                    .with_deadline_ms(500),
            ),
            Request::Status { id: 7 },
            Request::Result { id: 7, wait: true },
            Request::Result { id: 8, wait: false },
            Request::Cancel { id: 9 },
            Request::Stats,
            Request::Drain,
        ];
        for req in reqs {
            let line = req.to_line();
            assert!(!line.contains('\n'), "one request per line: {line}");
            assert_eq!(Request::parse_line(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn standard_json_booleans_are_accepted() {
        let req = Request::parse_line(r#"{"verb":"result","id":3,"wait":true}"#).unwrap();
        assert_eq!(req, Request::Result { id: 3, wait: true });
        let req = Request::parse_line(r#"{"verb":"result","id":3,"wait":false}"#).unwrap();
        assert_eq!(req, Request::Result { id: 3, wait: false });
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        for (line, needle) in [
            ("not json", "bad JSON"),
            (r#"{"id":3}"#, "verb"),
            (r#"{"verb":"fly"}"#, "unknown verb"),
            (r#"{"verb":"status"}"#, "id"),
            (r#"{"verb":"submit"}"#, "spec"),
            (r#"{"verb":"submit","spec":{"job":"energy"}}"#, "molecule"),
        ] {
            let err = Request::parse_line(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn result_reply_round_trips_energy_bitwise() {
        let energy = -1.137_283_834_976_625_4_f64;
        let view = JobView {
            id: 42,
            spec: JobSpec::energy("h2", vec![0.1]),
            status: JobStatus::Done,
            outcome: Some(JobOutcome {
                energy,
                evaluations: 1,
                batch_size: 4,
                cache_hit: false,
                wall_ms: 12.5,
                queue_wait_ms: 3.25,
            }),
            error: None,
        };
        let line = result_reply(Some(&view)).render();
        let back = JsonValue::parse(&line).unwrap();
        assert_eq!(back.get("ok").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(back.get("status").and_then(JsonValue::as_str), Some("done"));
        let got = back.get("energy").and_then(JsonValue::as_f64).unwrap();
        assert_eq!(
            got.to_bits(),
            energy.to_bits(),
            "energy must survive the wire"
        );
        assert_eq!(back.get("batch_size").and_then(JsonValue::as_u64), Some(4));
    }

    /// A writer that accepts at most `chunk` bytes per call and emits
    /// `stalls` WouldBlock errors before every successful write.
    struct FlakyWriter {
        chunk: usize,
        stalls: usize,
        pending_stalls: usize,
        wrote: Vec<u8>,
    }

    impl FlakyWriter {
        fn new(chunk: usize, stalls: usize) -> FlakyWriter {
            FlakyWriter {
                chunk,
                stalls,
                pending_stalls: stalls,
                wrote: Vec::new(),
            }
        }
    }

    impl std::io::Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.pending_stalls > 0 {
                self.pending_stalls -= 1;
                return Err(std::io::Error::new(ErrorKind::WouldBlock, "stalled"));
            }
            self.pending_stalls = self.stalls;
            let n = buf.len().min(self.chunk);
            self.wrote.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn deadline_write_survives_partial_writes_and_transient_stalls() {
        let line = stats_reply(3, false, &EngineStats::default(), &Default::default()).render();
        let mut w = FlakyWriter::new(5, 2);
        write_line_with_deadline(&mut w, &line, Duration::from_secs(5)).unwrap();
        assert_eq!(w.wrote, format!("{line}\n").into_bytes());
    }

    #[test]
    fn deadline_write_gives_up_on_a_permanently_stalled_client() {
        struct AlwaysStalled;
        impl std::io::Write for AlwaysStalled {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "stalled"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err =
            write_line_with_deadline(&mut AlwaysStalled, "{\"ok\":1}", Duration::from_millis(20))
                .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::TimedOut, "{err}");
    }

    #[test]
    fn deadline_write_reports_a_closed_peer_as_write_zero() {
        struct Closed;
        impl std::io::Write for Closed {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = write_line_with_deadline(&mut Closed, "{\"ok\":1}", Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WriteZero, "{err}");
    }

    #[test]
    fn stats_reply_reports_containment_counters() {
        let engine = EngineStats {
            requeued: 4,
            quarantined: 1,
            ..Default::default()
        };
        let line = stats_reply(0, false, &engine, &Default::default()).render();
        let v = JsonValue::parse(&line).unwrap();
        let e = v.get("engine").unwrap();
        assert_eq!(e.get("requeued").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(e.get("quarantined").and_then(JsonValue::as_u64), Some(1));
    }

    #[test]
    fn rejection_reply_is_explicit() {
        let reply = submit_reply(&SubmitOutcome::Rejected {
            reason: "queue_full".into(),
        });
        let line = reply.render();
        let v = JsonValue::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(v.get("rejected").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            v.get("reason").and_then(JsonValue::as_str),
            Some("queue_full")
        );
    }
}
