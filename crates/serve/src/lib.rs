//! # nwq-serve
//!
//! A multi-tenant VQE job server over the workspace's simulation stack:
//! many clients submit energy-evaluation, VQE, and ADAPT-VQE jobs against
//! named molecules; a bounded admission queue with priority aging feeds a
//! worker pool; compatible pending energy evaluations from *different*
//! tenants are grouped into one batched expectation sweep; and a shared
//! cross-tenant cache answers repeated `(problem, θ)` requests without
//! recomputation.
//!
//! The server's core promise is **exactness under multi-tenancy**: every
//! energy it returns is bitwise identical to running the same job alone
//! through [`nwq_core`] — batching rides the deterministic
//! `batched_energies` pipeline (the same compiled-plan path
//! `DirectBackend` uses), cached values are replays of deterministic
//! computations, and injected faults (for resilience testing) only ever
//! cause retries of deterministic work.
//!
//! ## Layers
//!
//! - [`job`] — what tenants submit ([`JobSpec`]) and receive
//!   ([`JobOutcome`], [`JobStatus`]);
//! - [`problem`] — the molecule registry (built once, shared by `Arc`);
//! - [`queue`] — bounded admission with priority aging and batch-aware
//!   claims; rejection is explicit backpressure, never silent loss;
//! - [`cache`] — the shared cross-tenant energy memo;
//! - [`engine`] — worker pool (each worker owns a warmed
//!   `DirectBackend`), cross-job batching, retries, graceful drain;
//! - [`protocol`] / [`server`] / [`client`] — the line-delimited JSON
//!   wire layer over `std::net` (no dependencies beyond the workspace).
//!
//! ## In-process quickstart
//!
//! ```
//! use nwq_serve::{Engine, EngineConfig, JobSpec, SubmitOutcome};
//! use std::time::Duration;
//!
//! let engine = Engine::start(EngineConfig::default());
//! let id = match engine.submit(JobSpec::energy("toy", vec![0.3, -0.4])) {
//!     SubmitOutcome::Accepted(id) => id,
//!     SubmitOutcome::Rejected { reason } => panic!("rejected: {reason}"),
//! };
//! let view = engine.wait_terminal(id, Duration::from_secs(30)).unwrap();
//! assert!(view.outcome.unwrap().energy.is_finite());
//! engine.drain();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod job;
pub mod problem;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CacheConfig, SharedCache, SharedCacheStats};
pub use client::Client;
pub use engine::{Engine, EngineConfig, EngineStats, JobView, SubmitOutcome};
pub use job::{JobId, JobKind, JobOutcome, JobSpec, JobStatus, Priority};
pub use problem::{build_problem, ServeProblem, MOLECULES};
pub use protocol::Request;
pub use queue::{Admission, AdmissionQueue, Claim, QueueConfig, QueuedJob};
pub use server::{Server, ServerConfig};
