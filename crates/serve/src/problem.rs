//! The molecule registry: named problems tenants can submit against.
//!
//! Every job names a molecule; the engine builds the qubit Hamiltonian and
//! UCCSD ansatz once per name and shares the result (`Arc`) across all
//! workers and jobs — tenants never pay the Jordan–Wigner mapping or
//! ansatz synthesis twice. The [`ServeProblem::fingerprint`] is the
//! content hash the batcher and the shared energy cache key by.

use nwq_chem::uccsd::uccsd_ansatz;
use nwq_common::{Error, Result};
use nwq_core::problem_content_fingerprint;
use nwq_core::vqe::VqeProblem;
use nwq_pauli::PauliOp;

/// Molecule names the registry accepts.
pub const MOLECULES: &[&str] = &["toy", "h2", "water"];

/// A fully prepared problem, built once per molecule name and shared.
#[derive(Clone, Debug)]
pub struct ServeProblem {
    /// Registry name.
    pub name: String,
    /// Hamiltonian + ansatz, ready for any driver.
    pub problem: VqeProblem,
    /// Electron count (ADAPT pool construction needs it).
    pub n_electrons: usize,
    /// Content fingerprint of `(hamiltonian, ansatz)` — the batching and
    /// shared-cache key.
    pub fingerprint: u64,
}

/// Builds a registry problem by name.
pub fn build_problem(name: &str) -> Result<ServeProblem> {
    let (hamiltonian, ansatz, n_electrons) = match name {
        // A 2-qubit toy with a hand-rolled entangling ansatz: fast enough
        // to serve thousands of jobs in tests and benchmarks.
        "toy" => {
            let h = PauliOp::parse("1.0 ZZ + 1.0 XX")?;
            let mut ansatz = nwq_circuit::Circuit::new(2);
            ansatz
                .ry(0, nwq_circuit::ParamExpr::var(0))
                .cx(0, 1)
                .ry(1, nwq_circuit::ParamExpr::var(1));
            (h, ansatz, 1)
        }
        "h2" => {
            let mol = nwq_chem::molecules::h2_sto3g();
            let h = mol.to_qubit_hamiltonian()?;
            let ansatz = uccsd_ansatz(h.n_qubits(), mol.n_electrons())?;
            (h, ansatz, mol.n_electrons())
        }
        "water" => {
            let mol = nwq_chem::molecules::water_model(4, 4);
            let h = mol.to_qubit_hamiltonian()?;
            let ansatz = uccsd_ansatz(h.n_qubits(), mol.n_electrons())?;
            (h, ansatz, mol.n_electrons())
        }
        other => {
            return Err(Error::Invalid(format!(
                "unknown molecule {other:?} (expected one of {MOLECULES:?})"
            )))
        }
    };
    let fingerprint = problem_content_fingerprint(&hamiltonian, &ansatz);
    Ok(ServeProblem {
        name: name.to_string(),
        problem: VqeProblem {
            hamiltonian,
            ansatz,
        },
        n_electrons,
        fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_every_molecule_with_stable_fingerprints() {
        for name in MOLECULES {
            let a = build_problem(name).unwrap();
            let b = build_problem(name).unwrap();
            assert_eq!(a.fingerprint, b.fingerprint, "{name}");
            assert!(a.problem.ansatz.n_params() > 0, "{name}");
            assert_eq!(
                a.problem.ansatz.n_qubits(),
                a.problem.hamiltonian.n_qubits()
            );
        }
        // Distinct molecules must not collide (they'd share cache entries).
        let fps: Vec<u64> = MOLECULES
            .iter()
            .map(|m| build_problem(m).unwrap().fingerprint)
            .collect();
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "{} vs {}", MOLECULES[i], MOLECULES[j]);
            }
        }
    }

    #[test]
    fn unknown_molecule_is_rejected() {
        assert!(build_problem("benzene").is_err());
    }
}
