//! Shared cross-tenant energy cache.
//!
//! Keyed by `(problem fingerprint, exact parameter bit patterns)`: two
//! tenants asking for the same molecule at the same θ get one computation.
//! Because every energy path in the workspace is deterministic, a cached
//! value is bitwise identical to a recomputation — serving from the cache
//! preserves the server's exactness guarantee. Negative zero normalizes to
//! positive zero in the key (mirroring the post-ansatz cache in
//! `nwq-statevec`) since `E(−0.0) = E(0.0)` exactly.
//!
//! Eviction is FIFO over insertion order — cheap and deterministic, and
//! serving workloads are dominated by bursts of identical requests where
//! recency tracking buys little.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Shared-cache sizing.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Maximum cached energies; 0 disables the cache.
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity: 4096 }
    }
}

/// Hit/miss accounting for the shared cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required computation.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
}

impl SharedCacheStats {
    /// Fraction of lookups served from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Key = (u64, Vec<u64>);

fn key_of(fingerprint: u64, params: &[f64]) -> Key {
    let bits = params
        .iter()
        .map(|&p| if p == 0.0 { 0.0f64 } else { p }.to_bits())
        .collect();
    (fingerprint, bits)
}

struct Inner {
    map: HashMap<Key, f64>,
    order: VecDeque<Key>,
    stats: SharedCacheStats,
}

/// The process-wide energy memo shared by all workers.
pub struct SharedCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl SharedCache {
    /// An empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        SharedCache {
            capacity: cfg.capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                stats: SharedCacheStats::default(),
            }),
        }
    }

    /// Looks up a cached energy; records a hit or miss either way.
    pub fn lookup(&self, fingerprint: u64, params: &[f64]) -> Option<f64> {
        let mut g = self.lock();
        match g.map.get(&key_of(fingerprint, params)).copied() {
            Some(e) => {
                g.stats.hits += 1;
                nwq_telemetry::counter_add("serve.cache.hits", 1);
                Some(e)
            }
            None => {
                g.stats.misses += 1;
                nwq_telemetry::counter_add("serve.cache.misses", 1);
                None
            }
        }
    }

    /// Stores a computed energy (idempotent; no-op at zero capacity).
    pub fn insert(&self, fingerprint: u64, params: &[f64], energy: f64) {
        if self.capacity == 0 {
            return;
        }
        let key = key_of(fingerprint, params);
        let mut g = self.lock();
        if g.map.contains_key(&key) {
            return;
        }
        g.map.insert(key.clone(), energy);
        g.order.push_back(key);
        g.stats.insertions += 1;
        while g.map.len() > self.capacity {
            if let Some(old) = g.order.pop_front() {
                g.map.remove(&old);
                g.stats.evictions += 1;
            }
        }
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> SharedCacheStats {
        self.lock().stats
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_returns_exact_bits() {
        let c = SharedCache::new(CacheConfig::default());
        let theta = [0.25, -1.5];
        assert_eq!(c.lookup(7, &theta), None);
        let e = -1.137_283_834_976_1_f64;
        c.insert(7, &theta, e);
        assert_eq!(c.lookup(7, &theta).unwrap().to_bits(), e.to_bits());
        // Different fingerprint or θ misses.
        assert_eq!(c.lookup(8, &theta), None);
        assert_eq!(c.lookup(7, &[0.25, -1.6]), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 3, 1));
        assert!((s.hit_rate() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn negative_zero_params_share_an_entry() {
        let c = SharedCache::new(CacheConfig::default());
        c.insert(1, &[0.0, 0.5], 2.5);
        assert_eq!(c.lookup(1, &[-0.0, 0.5]), Some(2.5));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let c = SharedCache::new(CacheConfig { capacity: 2 });
        c.insert(1, &[1.0], 1.0);
        c.insert(1, &[2.0], 2.0);
        c.insert(1, &[3.0], 3.0); // evicts [1.0]
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(1, &[1.0]), None);
        assert_eq!(c.lookup(1, &[3.0]), Some(3.0));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let c = SharedCache::new(CacheConfig { capacity: 0 });
        c.insert(1, &[1.0], 1.0);
        assert!(c.is_empty());
        assert_eq!(c.lookup(1, &[1.0]), None);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let c = SharedCache::new(CacheConfig { capacity: 8 });
        c.insert(1, &[1.0], 1.0);
        c.insert(1, &[1.0], 999.0); // first value wins; no double entry
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(1, &[1.0]), Some(1.0));
        assert_eq!(c.stats().insertions, 1);
    }
}
