//! The in-process job engine: admission, scheduling, worker pool,
//! cross-job batching, shared caching, and graceful drain.
//!
//! ## Ownership model (see DESIGN.md)
//!
//! Each worker thread *owns* one [`DirectBackend`] for the lifetime of the
//! engine. The `run_vqe_with`/`run_adapt_vqe_with` drivers take
//! `&mut dyn Backend`, so a worker lends its backend to one job at a time
//! and keeps the warmed post-ansatz cache and compiled-plan state across
//! jobs — no per-job backend construction, no statevector cloning, no
//! locking on the hot path.
//!
//! ## Determinism
//!
//! Every result the engine returns is bitwise identical to running the
//! same job alone through the library: energy evaluations go through
//! exactly the `ExecPlan::compile → run_plan → energy_direct_batched`
//! pipeline that [`DirectBackend`] uses (whether computed alone, inside a
//! cross-job batch, or answered from the shared cache), and VQE/ADAPT jobs
//! run the stock resilient drivers. Injected faults only ever trigger
//! retries, which recompute the same deterministic values.
//!
//! `ExecPlan::compile` resolves through the process-global
//! [`nwq_statevec::plan_cache`], so all workers share ONE
//! [`nwq_statevec::PlanTemplate`] per circuit structure: the first worker
//! to see a molecule's ansatz pays the structural fusion pass, every
//! later evaluation on any worker only rebinds θ. Template binding is
//! bitwise identical to a cold compile (pinned by the plan-parity suite),
//! so this sharing is invisible in results.

use crate::cache::{CacheConfig, SharedCache, SharedCacheStats};
use crate::job::{JobId, JobKind, JobOutcome, JobSpec, JobStatus};
use crate::problem::{build_problem, ServeProblem};
use crate::queue::{Admission, AdmissionQueue, QueueConfig, QueuedJob};
use nwq_core::adapt::{run_adapt_vqe_with, AdaptConfig};
use nwq_core::backend::{Backend, BackendStats, DirectBackend};
use nwq_core::resilience::{run_vqe_with, ResilienceOptions, RetryPolicy};
use nwq_dist::{FaultInjector, FaultSpec};
use nwq_opt::NelderMead;
use nwq_statevec::batch::batched_energies;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine tuning.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads, each owning a [`DirectBackend`].
    pub workers: usize,
    /// Admission-queue bounds and aging.
    pub queue: QueueConfig,
    /// Shared energy-cache sizing.
    pub cache: CacheConfig,
    /// Maximum energy evaluations grouped into one expectation sweep.
    pub max_batch: usize,
    /// Retry budget for transient evaluation failures.
    pub retry: RetryPolicy,
    /// Deterministic fault injection applied by every worker (testing).
    pub faults: Option<FaultSpec>,
    /// PR 3 kill switch, plumbed into each job's resilience options: abort
    /// any single job after this many fresh evaluations.
    pub abort_after_evals: Option<usize>,
    /// Crash-containment budget: a job whose worker panics is re-queued
    /// (alone, with its attempt counter bumped) until it has been tried
    /// this many times, then quarantined as a poison job — terminal
    /// `Failed` with a `poison_job_quarantined` error — so one bad job
    /// cannot crash-loop the pool.
    pub max_job_attempts: u32,
    /// Testing hook: an energy job whose FIRST parameter is bitwise equal
    /// to this value panics the claiming worker before any computation,
    /// exercising the crash-containment path deterministically.
    pub panic_marker: Option<f64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            queue: QueueConfig::default(),
            cache: CacheConfig::default(),
            max_batch: 8,
            retry: RetryPolicy::default(),
            faults: None,
            abort_after_evals: None,
            max_job_attempts: 3,
            panic_marker: None,
        }
    }
}

/// Reply to a submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job was admitted under this id.
    Accepted(JobId),
    /// Explicit backpressure or validation failure; nothing was queued.
    Rejected {
        /// Machine-readable reason (`"queue_full"`, `"draining"`, or a
        /// validation message).
        reason: String,
    },
}

/// Aggregate engine accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Submissions received (accepted or not).
    pub submitted: u64,
    /// Submissions admitted to the queue.
    pub accepted: u64,
    /// Submissions rejected (backpressure or validation).
    pub rejected: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished with an error.
    pub failed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Jobs whose queueing deadline elapsed.
    pub expired: u64,
    /// Energy-evaluation groups executed (size ≥ 1).
    pub batches: u64,
    /// Energy evaluations that ran inside those groups.
    pub batched_jobs: u64,
    /// Largest group executed.
    pub max_batch_size: u64,
    /// Jobs re-queued after their worker panicked mid-claim.
    pub requeued: u64,
    /// Jobs quarantined as poison after exhausting their attempt budget.
    pub quarantined: u64,
}

impl EngineStats {
    /// Mean energy-evaluation group size (1.0 when nothing batched yet).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            1.0
        } else {
            self.batched_jobs as f64 / self.batches as f64
        }
    }
}

/// A client-visible view of one job's record.
#[derive(Clone, Debug)]
pub struct JobView {
    /// Engine job id.
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Result, once `status == Done`.
    pub outcome: Option<JobOutcome>,
    /// Failure message, once `status == Failed` (or `Expired`).
    pub error: Option<String>,
}

struct JobRecord {
    spec: JobSpec,
    status: JobStatus,
    outcome: Option<JobOutcome>,
    error: Option<String>,
    submitted: Instant,
}

struct Shared {
    cfg: EngineConfig,
    queue: AdmissionQueue,
    jobs: Mutex<HashMap<JobId, JobRecord>>,
    /// Notified whenever any job reaches a terminal status.
    terminal: Condvar,
    problems: Mutex<HashMap<String, Arc<ServeProblem>>>,
    cache: SharedCache,
    next_id: AtomicU64,
    stats: Mutex<EngineStats>,
}

/// The multi-tenant job engine. All methods take `&self`; share it behind
/// an `Arc` across connection handlers.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Starts the worker pool and returns the running engine.
    pub fn start(cfg: EngineConfig) -> Engine {
        let n_workers = cfg.workers.max(1);
        let faults = cfg.faults;
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(cfg.queue),
            cache: SharedCache::new(cfg.cache),
            cfg,
            jobs: Mutex::new(HashMap::new()),
            terminal: Condvar::new(),
            problems: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            stats: Mutex::new(EngineStats::default()),
        });
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nwq-serve-worker-{i}"))
                    .spawn(move || worker_loop(shared, faults))
                    .expect("spawning a worker thread")
            })
            .collect();
        Engine {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Submits a job: validates it against the registry, then attempts
    /// admission. Rejection is explicit and immediate — nothing queues.
    pub fn submit(&self, mut spec: JobSpec) -> SubmitOutcome {
        let s = &self.shared;
        lock(&s.stats).submitted += 1;
        nwq_telemetry::counter_add("serve.submitted", 1);
        let problem = match s.problem(&spec.molecule) {
            Ok(p) => p,
            Err(e) => return self.reject(e.to_string()),
        };
        let n_params = problem.problem.ansatz.n_params();
        match &mut spec.kind {
            JobKind::EnergyEval { params } => {
                if params.len() != n_params {
                    return self.reject(format!(
                        "molecule {:?} needs {n_params} params, got {}",
                        spec.molecule,
                        params.len()
                    ));
                }
            }
            JobKind::Vqe { x0, .. } => {
                if x0.is_empty() {
                    *x0 = vec![0.0; n_params];
                } else if x0.len() != n_params {
                    return self.reject(format!(
                        "molecule {:?} needs {n_params} x0 entries, got {}",
                        spec.molecule,
                        x0.len()
                    ));
                }
            }
            JobKind::Adapt { max_iterations } => {
                if *max_iterations == 0 {
                    return self.reject("adapt needs max_iterations >= 1".into());
                }
            }
        }
        let id = s.next_id.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        lock(&s.jobs).insert(
            id,
            JobRecord {
                spec: spec.clone(),
                status: JobStatus::Queued,
                outcome: None,
                error: None,
                submitted: now,
            },
        );
        let admission = s.queue.push(QueuedJob {
            id,
            fingerprint: problem.fingerprint,
            batchable: spec.kind.batchable(),
            priority: spec.priority,
            enqueued: now,
            deadline_ms: spec.deadline_ms,
            attempts: 0,
        });
        match admission {
            Admission::Accepted => {
                lock(&s.stats).accepted += 1;
                nwq_telemetry::counter_add("serve.accepted", 1);
                nwq_telemetry::gauge_set("serve.queue_depth", s.queue.depth() as f64);
                SubmitOutcome::Accepted(id)
            }
            Admission::RejectedQueueFull => {
                lock(&s.jobs).remove(&id);
                self.reject("queue_full".into())
            }
            Admission::RejectedDraining => {
                lock(&s.jobs).remove(&id);
                self.reject("draining".into())
            }
        }
    }

    fn reject(&self, reason: String) -> SubmitOutcome {
        lock(&self.shared.stats).rejected += 1;
        nwq_telemetry::counter_add("serve.rejected", 1);
        SubmitOutcome::Rejected { reason }
    }

    /// Current status of a job, if the id is known.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        lock(&self.shared.jobs).get(&id).map(|r| r.status)
    }

    /// Full record view of a job, if the id is known.
    pub fn view(&self, id: JobId) -> Option<JobView> {
        lock(&self.shared.jobs).get(&id).map(|r| JobView {
            id,
            spec: r.spec.clone(),
            status: r.status,
            outcome: r.outcome.clone(),
            error: r.error.clone(),
        })
    }

    /// Blocks until the job reaches a terminal status or `timeout` passes;
    /// returns the latest view either way (`None` for unknown ids).
    pub fn wait_terminal(&self, id: JobId, timeout: Duration) -> Option<JobView> {
        let s = &self.shared;
        let deadline = Instant::now() + timeout;
        let mut jobs = lock(&s.jobs);
        loop {
            match jobs.get(&id) {
                None => return None,
                Some(r) if r.status.is_terminal() => break,
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = s
                .terminal
                .wait_timeout(jobs, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            jobs = guard;
        }
        jobs.get(&id).map(|r| JobView {
            id,
            spec: r.spec.clone(),
            status: r.status,
            outcome: r.outcome.clone(),
            error: r.error.clone(),
        })
    }

    /// Cancels a job that is still queued. Returns `false` when the job is
    /// unknown or already claimed by a worker — running work is never
    /// interrupted.
    pub fn cancel(&self, id: JobId) -> bool {
        let s = &self.shared;
        if !s.queue.remove(id) {
            return false;
        }
        lock(&s.stats).cancelled += 1;
        nwq_telemetry::counter_add("serve.cancelled", 1);
        s.finish(id, JobStatus::Cancelled, None, Some("cancelled".into()));
        true
    }

    /// Graceful drain: stop admitting, run every accepted job to a
    /// terminal state, then shut the worker pool down. No accepted job is
    /// lost. Idempotent.
    pub fn drain(&self) {
        let s = &self.shared;
        s.queue.set_draining();
        let mut jobs = lock(&s.jobs);
        while jobs.values().any(|r| !r.status.is_terminal()) {
            jobs = s
                .terminal
                .wait(jobs)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(jobs);
        s.queue.close();
        for handle in lock(&self.workers).drain(..) {
            let _ = handle.join();
        }
    }

    /// Engine accounting snapshot.
    pub fn stats(&self) -> EngineStats {
        *lock(&self.shared.stats)
    }

    /// Shared-cache accounting snapshot.
    pub fn cache_stats(&self) -> SharedCacheStats {
        self.shared.cache.stats()
    }

    /// Jobs currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Whether the engine has stopped admitting new work.
    pub fn draining(&self) -> bool {
        self.shared.queue.draining()
    }
}

impl Shared {
    /// Builds (once) and returns the shared problem for a molecule.
    fn problem(&self, name: &str) -> nwq_common::Result<Arc<ServeProblem>> {
        if let Some(p) = lock(&self.problems).get(name) {
            return Ok(Arc::clone(p));
        }
        // Built outside the lock: construction is pure, and a duplicate
        // build on a race is cheaper than holding the map over JW mapping.
        let built = Arc::new(build_problem(name)?);
        let mut g = lock(&self.problems);
        let entry = g.entry(name.to_string()).or_insert(built);
        Ok(Arc::clone(entry))
    }

    /// Marks a queued job running; returns its spec and queue wait. `None`
    /// means the record vanished (should not happen — cancel goes through
    /// the queue) and the claim is dropped.
    fn claim(&self, job: &QueuedJob) -> Option<(JobSpec, f64)> {
        let wait_ms = job.waited_ms(Instant::now());
        let mut jobs = lock(&self.jobs);
        let r = jobs.get_mut(&job.id)?;
        r.status = JobStatus::Running;
        Some((r.spec.clone(), wait_ms))
    }

    /// Transitions a job to a terminal status and wakes waiters.
    fn finish(
        &self,
        id: JobId,
        status: JobStatus,
        outcome: Option<JobOutcome>,
        error: Option<String>,
    ) {
        let mut jobs = lock(&self.jobs);
        if let Some(r) = jobs.get_mut(&id) {
            r.status = status;
            r.outcome = outcome;
            r.error = error;
            if let Some(o) = &r.outcome {
                nwq_telemetry::histogram_record("serve.latency_ms", o.wall_ms);
                nwq_telemetry::histogram_record("serve.queue_wait_ms", o.queue_wait_ms);
            }
        }
        drop(jobs);
        let mut stats = lock(&self.stats);
        match status {
            JobStatus::Done => {
                stats.completed += 1;
                nwq_telemetry::counter_add("serve.completed", 1);
            }
            JobStatus::Failed => {
                stats.failed += 1;
                nwq_telemetry::counter_add("serve.failed", 1);
            }
            JobStatus::Expired => {
                stats.expired += 1;
                nwq_telemetry::counter_add("serve.expired", 1);
                nwq_telemetry::counter_add("serve.deadline_exceeded", 1);
            }
            _ => {}
        }
        drop(stats);
        self.terminal.notify_all();
    }

    fn wall_ms(&self, id: JobId) -> f64 {
        lock(&self.jobs)
            .get(&id)
            .map_or(0.0, |r| r.submitted.elapsed().as_secs_f64() * 1e3)
    }

    /// Resolves every claimed-but-unfinished job after a worker panic:
    /// jobs under the attempt budget go back to the queue (alone, so a
    /// poison job cannot drag batch-mates down again); jobs at the budget
    /// are quarantined — terminal `Failed` with a `poison_job_quarantined`
    /// error. Every claimed job MUST end up queued or terminal here, or
    /// [`Engine::drain`] would wait forever on a `Running` record.
    fn recover_claimed(&self, claimed: &[QueuedJob], panic_msg: &str) {
        let budget = self.cfg.max_job_attempts.max(1);
        for job in claimed {
            let unfinished = lock(&self.jobs)
                .get(&job.id)
                .is_some_and(|r| !r.status.is_terminal());
            if !unfinished {
                continue;
            }
            let attempts = job.attempts + 1;
            if attempts >= budget {
                lock(&self.stats).quarantined += 1;
                nwq_telemetry::counter_add("serve.jobs_quarantined", 1);
                self.finish(
                    job.id,
                    JobStatus::Failed,
                    None,
                    Some(format!(
                        "poison_job_quarantined: worker panicked on all \
                         {attempts} attempts (last: {panic_msg})"
                    )),
                );
            } else {
                if let Some(r) = lock(&self.jobs).get_mut(&job.id) {
                    r.status = JobStatus::Queued;
                }
                lock(&self.stats).requeued += 1;
                nwq_telemetry::counter_add("serve.jobs_requeued", 1);
                self.queue.requeue(QueuedJob {
                    batchable: false,
                    enqueued: Instant::now(),
                    attempts,
                    ..job.clone()
                });
            }
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A borrowing fault decorator — same semantics as
/// [`nwq_core::FaultyBackend`], but over a worker's long-lived backend and
/// injector, so the warmed backend survives across jobs.
struct InjectingBackend<'a> {
    inner: &'a mut DirectBackend,
    injector: &'a mut FaultInjector,
}

impl Backend for InjectingBackend<'_> {
    fn energy(
        &mut self,
        ansatz: &nwq_circuit::Circuit,
        params: &[f64],
        observable: &nwq_pauli::PauliOp,
    ) -> nwq_common::Result<f64> {
        let fail = self.injector.should_fail_eval();
        let nan = self.injector.should_inject_nan();
        if fail {
            return Err(nwq_common::Error::Backend(
                "injected evaluation failure".into(),
            ));
        }
        if nan {
            return Ok(f64::NAN);
        }
        self.inner.energy(ansatz, params, observable)
    }

    fn stats(&self) -> BackendStats {
        self.inner.stats()
    }

    fn name(&self) -> &'static str {
        "serve-injecting"
    }

    fn invalidate_cache(&mut self) {
        self.inner.invalidate_cache();
    }
}

/// Derives the fault injector for one job. Streams are seeded per *job*,
/// not per worker: which worker claims a job (a race) and what it ran
/// before must not shift another job's fault sequence, so the injected
/// pattern is a pure function of the configured seed and the job id
/// regardless of scheduling. The multiplier is the splitmix64 increment,
/// spreading consecutive ids across the seed space.
fn injector_for(faults: Option<FaultSpec>, job: JobId) -> Option<FaultInjector> {
    faults.map(|spec| {
        FaultInjector::new(FaultSpec {
            seed: spec.seed ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..spec
        })
    })
}

fn worker_loop(shared: Arc<Shared>, faults: Option<FaultSpec>) {
    let mut backend = DirectBackend::new();
    let max_batch = shared.cfg.max_batch.max(1);
    while let Some(claim) = shared.queue.pop_batch(max_batch) {
        nwq_telemetry::gauge_set("serve.queue_depth", shared.queue.depth() as f64);
        // Jobs the queue purged as past-deadline fail fast with a distinct
        // terminal error — they never touch the backend and never occupy a
        // batch slot.
        for job in claim.expired {
            shared.finish(
                job.id,
                JobStatus::Expired,
                None,
                Some("deadline_exceeded: job expired while queued".into()),
            );
        }
        // Defensive second pass: a job can cross its deadline between the
        // queue's purge and this worker getting scheduled.
        let now = Instant::now();
        let mut live = Vec::with_capacity(claim.runnable.len());
        for job in claim.runnable {
            if job.expired(now) {
                shared.finish(
                    job.id,
                    JobStatus::Expired,
                    None,
                    Some("deadline_exceeded: job expired while queued".into()),
                );
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }
        // Crash-requeued energy evals come back with `batchable == false`
        // (they re-run alone so a poison job cannot take batch-mates down
        // with it), but they still need the energy-group path — route by
        // the job's actual kind, not the queue flag.
        let solo_energy = !live[0].batchable
            && lock(&shared.jobs)
                .get(&live[0].id)
                .is_some_and(|r| matches!(r.spec.kind, JobKind::EnergyEval { .. }));
        // Containment boundary: a panic anywhere in job execution must not
        // take the worker thread (and every job it would ever have run)
        // down with it. The backend is rebuilt afterwards — its caches may
        // be mid-mutation — and every claimed-but-unfinished job in the
        // group is re-queued or quarantined.
        let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if live[0].batchable || solo_energy {
                run_energy_group(&shared, &mut backend, faults, &live);
            } else {
                debug_assert_eq!(live.len(), 1, "non-batchable jobs pop alone");
                for job in &live {
                    let mut injector = injector_for(faults, job.id);
                    run_long_job(&shared, &mut backend, &mut injector, job);
                }
            }
        }));
        if let Err(payload) = ran {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            nwq_telemetry::counter_add("serve.worker_panics", 1);
            backend = DirectBackend::new();
            shared.recover_claimed(&live, &msg);
        }
    }
}

/// Evaluates one energy with the PR 3 retry discipline. The first attempt
/// may use `precomputed` (the value from the cross-job sweep); retries and
/// later attempts recompute through the worker's backend — bitwise the
/// same value, since both paths are the compiled-plan pipeline.
fn energy_with_retries(
    shared: &Shared,
    backend: &mut DirectBackend,
    injector: &mut Option<FaultInjector>,
    problem: &ServeProblem,
    params: &[f64],
    mut precomputed: Option<f64>,
) -> nwq_common::Result<f64> {
    let mut attempt = 0;
    loop {
        // Mirror FaultyBackend: both draws happen before the computation so
        // the fault sequence is a pure function of the seed.
        let (fail, nan) = match injector.as_mut() {
            Some(inj) => (inj.should_fail_eval(), inj.should_inject_nan()),
            None => (false, false),
        };
        let outcome = if fail {
            Err(nwq_common::Error::Backend(
                "injected evaluation failure".into(),
            ))
        } else if nan {
            Err(nwq_common::Error::Numerical(
                "non-finite energy returned by backend".into(),
            ))
        } else {
            match precomputed.take() {
                Some(e) => Ok(e),
                None => backend.energy(
                    &problem.problem.ansatz,
                    params,
                    &problem.problem.hamiltonian,
                ),
            }
        };
        match outcome {
            Ok(e) if e.is_finite() => return Ok(e),
            Ok(_) => {
                return Err(nwq_common::Error::Numerical(
                    "non-finite energy returned by backend".into(),
                ))
            }
            Err(e) if e.is_transient() && attempt < shared.cfg.retry.max_retries => {
                attempt += 1;
                nwq_telemetry::counter_add("serve.retries", 1);
                backend.invalidate_cache();
            }
            Err(e) => return Err(e),
        }
    }
}

/// Runs one claimed group of compatible energy evaluations: shared-cache
/// pass first, then one batched expectation sweep over the misses.
fn run_energy_group(
    shared: &Shared,
    backend: &mut DirectBackend,
    faults: Option<FaultSpec>,
    group: &[QueuedJob],
) {
    let batch_size = group.len();
    {
        let mut stats = lock(&shared.stats);
        stats.batches += 1;
        stats.batched_jobs += batch_size as u64;
        stats.max_batch_size = stats.max_batch_size.max(batch_size as u64);
    }
    nwq_telemetry::counter_add("serve.batches", 1);
    nwq_telemetry::histogram_record("serve.batch_size", batch_size as f64);

    let problem = match shared.problem_of(group) {
        Ok(p) => p,
        Err(e) => {
            for job in group {
                shared.claim(job);
                shared.finish(job.id, JobStatus::Failed, None, Some(e.to_string()));
            }
            return;
        }
    };

    // Cache pass: hits complete immediately; misses collect for the sweep.
    let mut misses: Vec<(JobId, Vec<f64>, f64)> = Vec::new();
    for job in group {
        let Some((spec, wait_ms)) = shared.claim(job) else {
            continue;
        };
        let JobKind::EnergyEval { params } = spec.kind else {
            shared.finish(
                job.id,
                JobStatus::Failed,
                None,
                Some("non-energy job in an energy group".into()),
            );
            continue;
        };
        match shared.cache.lookup(problem.fingerprint, &params) {
            Some(e) => {
                let outcome = JobOutcome {
                    energy: e,
                    evaluations: 0,
                    batch_size,
                    cache_hit: true,
                    wall_ms: shared.wall_ms(job.id),
                    queue_wait_ms: wait_ms,
                };
                shared.finish(job.id, JobStatus::Done, Some(outcome), None);
            }
            None => misses.push((job.id, params, wait_ms)),
        }
    }
    if misses.is_empty() {
        return;
    }
    if let Some(marker) = shared.cfg.panic_marker {
        // Deterministic crash hook for containment tests: trips after the
        // whole group is claimed (so batch-mates are provably recovered)
        // and before any computation (so the poison value never runs).
        if misses
            .iter()
            .any(|(_, p, _)| p.first().is_some_and(|x| x.to_bits() == marker.to_bits()))
        {
            panic!("panic_marker parameter claimed by worker");
        }
    }

    // One batched sweep over all missed parameter sets — the same
    // compile-and-run pipeline DirectBackend uses per evaluation; on a
    // single-thread pool the sweep is walker-batched (one blocked kernel
    // pass for all θ). Record the distinct-θ width the merge produced —
    // the walker count of the sweep.
    let param_sets: Vec<Vec<f64>> = misses.iter().map(|(_, p, _)| p.clone()).collect();
    let distinct_thetas = {
        let mut keys: Vec<Vec<u64>> = param_sets
            .iter()
            .map(|p| p.iter().map(|x| x.to_bits()).collect())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    };
    nwq_telemetry::histogram_record("serve.walker_batch_width", distinct_thetas as f64);
    let sweep = batched_energies(
        &problem.problem.ansatz,
        &param_sets,
        &problem.problem.hamiltonian,
    );
    match sweep {
        Ok(energies) => {
            for ((id, params, wait_ms), e) in misses.into_iter().zip(energies) {
                let mut injector = injector_for(faults, id);
                match energy_with_retries(
                    shared,
                    backend,
                    &mut injector,
                    &problem,
                    &params,
                    Some(e),
                ) {
                    Ok(e) => {
                        shared.cache.insert(problem.fingerprint, &params, e);
                        let outcome = JobOutcome {
                            energy: e,
                            evaluations: 1,
                            batch_size,
                            cache_hit: false,
                            wall_ms: shared.wall_ms(id),
                            queue_wait_ms: wait_ms,
                        };
                        shared.finish(id, JobStatus::Done, Some(outcome), None);
                    }
                    Err(err) => {
                        shared.finish(id, JobStatus::Failed, None, Some(err.to_string()));
                    }
                }
            }
        }
        Err(err) => {
            for (id, _, _) in misses {
                shared.finish(id, JobStatus::Failed, None, Some(err.to_string()));
            }
        }
    }
}

/// Runs one VQE or ADAPT job through the stock resilient drivers, lending
/// the worker's warmed backend (optionally behind the fault decorator).
fn run_long_job(
    shared: &Shared,
    backend: &mut DirectBackend,
    injector: &mut Option<FaultInjector>,
    job: &QueuedJob,
) {
    let Some((spec, wait_ms)) = shared.claim(job) else {
        return;
    };
    let problem = match shared.problem(&spec.molecule) {
        Ok(p) => p,
        Err(e) => {
            shared.finish(job.id, JobStatus::Failed, None, Some(e.to_string()));
            return;
        }
    };
    let opts = ResilienceOptions {
        retry: shared.cfg.retry,
        abort_after_evals: shared.cfg.abort_after_evals,
        ..Default::default()
    };
    let mut opt = NelderMead::for_vqe();
    let mut run = |backend: &mut dyn Backend| -> nwq_common::Result<(f64, u64)> {
        match &spec.kind {
            JobKind::Vqe { x0, max_evals } => {
                let r = run_vqe_with(&problem.problem, backend, &mut opt, x0, *max_evals, &opts)?;
                Ok((r.energy, r.evaluations as u64))
            }
            JobKind::Adapt { max_iterations } => {
                let pool = nwq_chem::pool::OperatorPool::singles_doubles(
                    problem.problem.hamiltonian.n_qubits(),
                    problem.n_electrons,
                )?;
                let config = AdaptConfig {
                    max_iterations: *max_iterations,
                    ..Default::default()
                };
                let r = run_adapt_vqe_with(
                    &problem.problem.hamiltonian,
                    &pool,
                    problem.n_electrons,
                    backend,
                    &mut opt,
                    &config,
                    &opts,
                )?;
                Ok((r.energy, r.total_evaluations as u64))
            }
            JobKind::EnergyEval { .. } => Err(nwq_common::Error::Invalid(
                "energy jobs take the batched path".into(),
            )),
        }
    };
    let result = match injector.as_mut() {
        Some(inj) => run(&mut InjectingBackend {
            inner: backend,
            injector: inj,
        }),
        None => run(backend),
    };
    match result {
        Ok((energy, evaluations)) => {
            let outcome = JobOutcome {
                energy,
                evaluations,
                batch_size: 1,
                cache_hit: false,
                wall_ms: shared.wall_ms(job.id),
                queue_wait_ms: wait_ms,
            };
            shared.finish(job.id, JobStatus::Done, Some(outcome), None);
        }
        Err(e) => shared.finish(job.id, JobStatus::Failed, None, Some(e.to_string())),
    }
}

impl Shared {
    /// Resolves the (already memoized) problem a claimed group refers to.
    fn problem_of(&self, group: &[QueuedJob]) -> nwq_common::Result<Arc<ServeProblem>> {
        let id = group[0].id;
        let molecule = lock(&self.jobs)
            .get(&id)
            .map(|r| r.spec.molecule.clone())
            .ok_or_else(|| nwq_common::Error::Invalid(format!("job {id} has no record")))?;
        self.problem(&molecule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_energy(theta: [f64; 2]) -> JobSpec {
        JobSpec::energy("toy", theta.to_vec())
    }

    fn wait(engine: &Engine, id: JobId) -> JobView {
        engine
            .wait_terminal(id, Duration::from_secs(60))
            .expect("job id must be known")
    }

    #[test]
    fn served_energy_matches_direct_backend_bitwise() {
        let engine = Engine::start(EngineConfig::default());
        let thetas = [[0.3, -0.7], [1.1, 0.2], [0.0, 0.0]];
        let ids: Vec<JobId> = thetas
            .iter()
            .map(|&t| match engine.submit(toy_energy(t)) {
                SubmitOutcome::Accepted(id) => id,
                r => panic!("{r:?}"),
            })
            .collect();
        let problem = build_problem("toy").unwrap();
        for (&theta, &id) in thetas.iter().zip(&ids) {
            let view = wait(&engine, id);
            assert_eq!(view.status, JobStatus::Done, "{:?}", view.error);
            let mut direct = DirectBackend::new();
            let reference = direct
                .energy(
                    &problem.problem.ansatz,
                    &theta,
                    &problem.problem.hamiltonian,
                )
                .unwrap();
            let served = view.outcome.unwrap().energy;
            assert_eq!(served.to_bits(), reference.to_bits());
        }
        engine.drain();
    }

    #[test]
    fn repeated_theta_hits_shared_cache() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let first = match engine.submit(toy_energy([0.4, 0.9])) {
            SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        let e1 = wait(&engine, first).outcome.unwrap();
        let second = match engine.submit(toy_energy([0.4, 0.9])) {
            SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        let e2 = wait(&engine, second).outcome.unwrap();
        assert_eq!(e1.energy.to_bits(), e2.energy.to_bits());
        assert!(!e1.cache_hit);
        assert!(e2.cache_hit, "second identical request must be a hit");
        assert!(engine.cache_stats().hits >= 1);
        engine.drain();
    }

    #[test]
    fn full_queue_rejects_explicitly_and_loses_nothing() {
        // One worker, held busy by a VQE job, with a 2-slot queue: the
        // overload must be rejected with "queue_full", and every accepted
        // job must still complete on drain.
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue: QueueConfig {
                capacity: 2,
                ..Default::default()
            },
            ..Default::default()
        });
        let blocker = match engine.submit(JobSpec::vqe("toy", vec![1.0, 2.5], 2000)) {
            SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        let mut accepted = vec![blocker];
        let mut rejected = 0;
        for k in 0..12 {
            match engine.submit(toy_energy([0.01 * k as f64, 0.5])) {
                SubmitOutcome::Accepted(id) => accepted.push(id),
                SubmitOutcome::Rejected { reason } => {
                    assert_eq!(reason, "queue_full");
                    rejected += 1;
                }
            }
        }
        assert!(rejected > 0, "12 submissions into 2 slots must overflow");
        engine.drain();
        for id in accepted {
            let view = engine.view(id).unwrap();
            assert_eq!(view.status, JobStatus::Done, "{:?}", view.error);
        }
        assert_eq!(engine.stats().rejected, rejected);
        // Post-drain submissions are rejected, not lost.
        assert!(matches!(
            engine.submit(toy_energy([0.0, 0.0])),
            SubmitOutcome::Rejected { .. }
        ));
    }

    #[test]
    fn compatible_pending_evals_share_one_batch() {
        // One worker, blocked behind a VQE job while ten compatible energy
        // evals queue up: when the worker frees, it must claim them as
        // one group (mean batch size > 1).
        let engine = Engine::start(EngineConfig {
            workers: 1,
            max_batch: 16,
            ..Default::default()
        });
        let blocker = match engine.submit(JobSpec::vqe("toy", vec![1.0, 2.5], 1500)) {
            SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        let ids: Vec<JobId> = (0..10)
            .map(
                |k| match engine.submit(toy_energy([0.1 * k as f64, -0.3])) {
                    SubmitOutcome::Accepted(id) => id,
                    r => panic!("{r:?}"),
                },
            )
            .collect();
        wait(&engine, blocker);
        for id in &ids {
            assert_eq!(wait(&engine, *id).status, JobStatus::Done);
        }
        let stats = engine.stats();
        assert!(
            stats.max_batch_size > 1,
            "queued compatible evals must group: {stats:?}"
        );
        // Every grouped job reports the batch it rode in.
        let sizes: Vec<usize> = ids
            .iter()
            .map(|&id| engine.view(id).unwrap().outcome.unwrap().batch_size)
            .collect();
        assert!(sizes.iter().any(|&s| s > 1), "{sizes:?}");
        engine.drain();
    }

    #[test]
    fn vqe_and_adapt_jobs_match_library_runs() {
        let engine = Engine::start(EngineConfig::default());
        let vqe_id = match engine.submit(JobSpec::vqe("toy", vec![1.0, 2.5], 2000)) {
            SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        let adapt_id = match engine.submit(JobSpec::adapt("h2", 4)) {
            SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        let vqe_view = wait(&engine, vqe_id);
        assert_eq!(vqe_view.status, JobStatus::Done, "{:?}", vqe_view.error);
        let served = vqe_view.outcome.unwrap();

        let problem = build_problem("toy").unwrap();
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::for_vqe();
        let reference = run_vqe_with(
            &problem.problem,
            &mut backend,
            &mut opt,
            &[1.0, 2.5],
            2000,
            &ResilienceOptions::default(),
        )
        .unwrap();
        assert_eq!(served.energy.to_bits(), reference.energy.to_bits());
        assert_eq!(served.evaluations, reference.evaluations as u64);

        let adapt_view = wait(&engine, adapt_id);
        assert_eq!(adapt_view.status, JobStatus::Done, "{:?}", adapt_view.error);
        // H2 UCCSD ADAPT reaches the curve minimum quickly.
        assert!((adapt_view.outcome.unwrap().energy + 1.137).abs() < 5e-3);
        engine.drain();
    }

    #[test]
    fn expired_deadline_jobs_never_run() {
        // Deadline of 0 ms: by the time any worker claims it, it is late.
        let engine = Engine::start(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let blocker = match engine.submit(JobSpec::vqe("toy", vec![1.0, 2.5], 1500)) {
            SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        let doomed = match engine.submit(toy_energy([0.5, 0.5]).with_deadline_ms(0)) {
            SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        wait(&engine, blocker);
        let view = wait(&engine, doomed);
        assert_eq!(view.status, JobStatus::Expired);
        assert!(view.outcome.is_none());
        assert!(engine.stats().expired >= 1);
        engine.drain();
    }

    #[test]
    fn already_expired_job_fails_fast_without_burning_a_worker() {
        // No blocker here: the worker is idle and pops the job immediately,
        // but the queue purges it before selection — it must terminate with
        // the distinct deadline_exceeded error and never reach a backend
        // (no batch is ever formed).
        let engine = Engine::start(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let doomed = match engine.submit(toy_energy([0.5, 0.5]).with_deadline_ms(0)) {
            SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        let view = wait(&engine, doomed);
        assert_eq!(view.status, JobStatus::Expired);
        assert!(
            view.outcome.is_none(),
            "expired job must not produce output"
        );
        let err = view.error.expect("expired job carries a terminal error");
        assert!(
            err.starts_with("deadline_exceeded"),
            "distinct terminal status, got: {err}"
        );
        let stats = engine.stats();
        assert!(stats.expired >= 1);
        assert_eq!(stats.batches, 0, "job must never reach a backend");
        engine.drain();
    }

    #[test]
    fn cancel_works_only_while_queued() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let blocker = match engine.submit(JobSpec::vqe("toy", vec![1.0, 2.5], 1500)) {
            SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        let victim = match engine.submit(toy_energy([0.2, 0.2])) {
            SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        assert!(engine.cancel(victim), "queued job must cancel");
        assert_eq!(engine.status(victim), Some(JobStatus::Cancelled));
        assert!(!engine.cancel(victim), "cancel is not idempotent-true");
        assert!(!engine.cancel(9999), "unknown id");
        wait(&engine, blocker);
        assert!(!engine.cancel(blocker), "terminal job cannot cancel");
        engine.drain();
        assert_eq!(engine.stats().cancelled, 1);
    }

    #[test]
    fn faulty_engine_still_returns_exact_energies() {
        let engine = Engine::start(EngineConfig {
            faults: Some(FaultSpec::eval_failures(0.2, 11)),
            ..Default::default()
        });
        let theta = [0.45, -1.2];
        // Enough submissions that a 20% fault rate fires with near
        // certainty somewhere, exercising the retry path.
        let ids: Vec<JobId> = (0..16)
            .map(|k| {
                let t = [theta[0] + 0.01 * k as f64, theta[1]];
                match engine.submit(toy_energy(t)) {
                    SubmitOutcome::Accepted(id) => id,
                    r => panic!("{r:?}"),
                }
            })
            .collect();
        let problem = build_problem("toy").unwrap();
        for (k, id) in ids.iter().enumerate() {
            let view = wait(&engine, *id);
            assert_eq!(view.status, JobStatus::Done, "{:?}", view.error);
            let t = [theta[0] + 0.01 * k as f64, theta[1]];
            let mut direct = DirectBackend::new();
            let reference = direct
                .energy(&problem.problem.ansatz, &t, &problem.problem.hamiltonian)
                .unwrap();
            assert_eq!(view.outcome.unwrap().energy.to_bits(), reference.to_bits());
        }
        engine.drain();
    }

    #[test]
    fn panicking_job_is_quarantined_without_losing_batch_mates() {
        // One worker, one poison energy job sharing a claim group with
        // innocents. The first claim panics the worker: everyone in the
        // group is re-queued solo; the innocents then complete, while the
        // poison job crash-loops until the attempt budget quarantines it.
        let marker = f64::from_bits(0x7ff8_0000_dead_0001); // NaN payload, never computed
        let engine = Engine::start(EngineConfig {
            workers: 1,
            max_batch: 8,
            max_job_attempts: 3,
            panic_marker: Some(marker),
            ..Default::default()
        });
        let blocker = match engine.submit(JobSpec::vqe("toy", vec![1.0, 2.5], 1500)) {
            SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        let poison = match engine.submit(toy_energy([marker, 0.0])) {
            SubmitOutcome::Accepted(id) => id,
            r => panic!("{r:?}"),
        };
        let innocents: Vec<JobId> = (0..4)
            .map(
                |k| match engine.submit(toy_energy([0.1 * k as f64, -0.2])) {
                    SubmitOutcome::Accepted(id) => id,
                    r => panic!("{r:?}"),
                },
            )
            .collect();
        wait(&engine, blocker);
        for id in &innocents {
            let view = wait(&engine, *id);
            assert_eq!(view.status, JobStatus::Done, "{:?}", view.error);
        }
        let view = wait(&engine, poison);
        assert_eq!(view.status, JobStatus::Failed);
        let err = view.error.expect("quarantine carries a terminal error");
        assert!(
            err.starts_with("poison_job_quarantined"),
            "distinct terminal error, got: {err}"
        );
        engine.drain();
        let stats = engine.stats();
        assert_eq!(stats.quarantined, 1, "{stats:?}");
        assert!(stats.requeued >= 1, "{stats:?}");
        // Zero-loss accounting: every accepted job reached exactly one
        // terminal state despite the crashes.
        assert_eq!(
            stats.completed + stats.failed + stats.cancelled + stats.expired,
            stats.accepted,
            "{stats:?}"
        );
    }

    #[test]
    fn invalid_specs_are_rejected_without_queueing() {
        let engine = Engine::start(EngineConfig::default());
        for spec in [
            JobSpec::energy("benzene", vec![0.1]),
            JobSpec::energy("toy", vec![0.1]), // needs 2 params
            JobSpec::vqe("toy", vec![0.1, 0.2, 0.3], 100),
            JobSpec::adapt("toy", 0),
        ] {
            assert!(
                matches!(engine.submit(spec.clone()), SubmitOutcome::Rejected { .. }),
                "{spec:?}"
            );
        }
        assert_eq!(engine.stats().rejected, 4);
        assert_eq!(engine.queue_depth(), 0);
        engine.drain();
    }
}
