//! Minimal hand-rolled JSON emitter.
//!
//! Supports exactly what the telemetry schema needs: objects with ordered
//! keys, arrays, strings, integers, floats, and null. Floats that are not
//! finite serialize as `null` (JSON has no NaN/Infinity); integer-valued
//! floats keep a trailing `.0` so consumers see a consistent number type.

/// A JSON value tree.
#[derive(Clone, Debug)]
pub enum JsonValue {
    /// `null`
    Null,
    /// JSON string (escaped on render).
    Str(String),
    /// Non-negative integer.
    Int(u64),
    /// Finite or non-finite float (non-finite renders as `null`).
    Float(f64),
    /// Ordered array.
    Array(Vec<JsonValue>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Float(f) => {
                if f.is_finite() {
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builder for [`JsonValue::Object`] preserving insertion order.
#[derive(Default)]
pub struct Object {
    fields: Vec<(String, JsonValue)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Appends a field.
    pub fn push(&mut self, key: impl Into<String>, value: JsonValue) {
        self.fields.push((key.into(), value));
    }

    /// Finishes into a [`JsonValue`].
    pub fn into_value(self) -> JsonValue {
        JsonValue::Object(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let mut inner = Object::new();
        inner.push("n", JsonValue::Int(3));
        inner.push("x", JsonValue::Float(1.5));
        let mut root = Object::new();
        root.push("a", inner.into_value());
        root.push(
            "list",
            JsonValue::Array(vec![JsonValue::Null, JsonValue::Str("hi".into())]),
        );
        assert_eq!(
            root.into_value().render(),
            r#"{"a":{"n":3,"x":1.5},"list":[null,"hi"]}"#
        );
    }

    #[test]
    fn escapes_and_specials() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(2.0).render(), "2.0");
        assert_eq!(JsonValue::Float(-0.25).render(), "-0.25");
    }
}
