//! Minimal hand-rolled JSON emitter and parser.
//!
//! Supports exactly what the telemetry schema needs: objects with ordered
//! keys, arrays, strings, integers, floats, and null. Floats that are not
//! finite serialize as `null` (JSON has no NaN/Infinity); integer-valued
//! floats keep a trailing `.0` so consumers see a consistent number type.
//! The parser round-trips everything the emitter produces — in particular
//! finite `f64` values survive a render → parse cycle bitwise, which the
//! checkpoint/restart layer in `nwq-core` relies on.

/// A JSON value tree.
#[derive(Clone, Debug)]
pub enum JsonValue {
    /// `null`
    Null,
    /// JSON string (escaped on render).
    Str(String),
    /// Non-negative integer.
    Int(u64),
    /// Finite or non-finite float (non-finite renders as `null`).
    Float(f64),
    /// Ordered array.
    Array(Vec<JsonValue>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a JSON document. Accepts standard JSON (insignificant
    /// whitespace, string escapes, scientific notation); numbers parse to
    /// [`JsonValue::Int`] when they are plain non-negative integers that fit
    /// a `u64`, otherwise to [`JsonValue::Float`]. Trailing garbage after
    /// the top-level value is an error.
    pub fn parse(input: &str) -> std::result::Result<JsonValue, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Float` both convert; everything else is
    /// `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Unsigned-integer view. `Float` values convert only when they are
    /// exactly integer-valued and non-negative (the emitter writes `2.0`
    /// for integer-valued floats, so counters may come back either way).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object-fields view (insertion order preserved).
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Float(f) => {
                if f.is_finite() {
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Error from [`JsonValue::parse`]: a message plus the byte offset where
/// parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> std::result::Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(
        &mut self,
        word: &str,
        value: JsonValue,
    ) -> std::result::Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> std::result::Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Int(1)),
            Some(b'f') => self.literal("false", JsonValue::Int(0)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> std::result::Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> std::result::Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> std::result::Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates never appear in emitter output;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // slicing at a char boundary is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("empty string tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> std::result::Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans ASCII bytes only");
        if !is_float {
            if let Ok(i) = text.parse::<u64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| ParseError {
                message: format!("invalid number '{text}'"),
                offset: start,
            })
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builder for [`JsonValue::Object`] preserving insertion order.
#[derive(Default)]
pub struct Object {
    fields: Vec<(String, JsonValue)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Appends a field.
    pub fn push(&mut self, key: impl Into<String>, value: JsonValue) {
        self.fields.push((key.into(), value));
    }

    /// Finishes into a [`JsonValue`].
    pub fn into_value(self) -> JsonValue {
        JsonValue::Object(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let mut inner = Object::new();
        inner.push("n", JsonValue::Int(3));
        inner.push("x", JsonValue::Float(1.5));
        let mut root = Object::new();
        root.push("a", inner.into_value());
        root.push(
            "list",
            JsonValue::Array(vec![JsonValue::Null, JsonValue::Str("hi".into())]),
        );
        assert_eq!(
            root.into_value().render(),
            r#"{"a":{"n":3,"x":1.5},"list":[null,"hi"]}"#
        );
    }

    #[test]
    fn escapes_and_specials() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(2.0).render(), "2.0");
        assert_eq!(JsonValue::Float(-0.25).render(), "-0.25");
    }

    #[test]
    fn parses_nested_structure() {
        let doc = r#" { "a" : { "n" : 3 , "x" : 1.5 } ,
                        "list" : [ null , "hi" , -2 , 1e3 , true ] } "#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(
            v.get("a")
                .and_then(|a| a.get("n"))
                .and_then(JsonValue::as_u64),
            Some(3)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.get("x"))
                .and_then(JsonValue::as_f64),
            Some(1.5)
        );
        let list = v.get("list").and_then(JsonValue::as_array).unwrap();
        assert!(matches!(list[0], JsonValue::Null));
        assert_eq!(list[1].as_str(), Some("hi"));
        assert_eq!(list[2].as_f64(), Some(-2.0));
        assert_eq!(list[3].as_f64(), Some(1000.0));
        assert_eq!(list[4].as_u64(), Some(1));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_string_escapes() {
        let v = JsonValue::parse(r#""a\"b\\c\ndé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{e9}"));
    }

    #[test]
    fn render_parse_round_trip_is_exact() {
        // Floats must survive render → parse bitwise: the checkpoint layer
        // stores optimizer trajectories this way and requires bit-identical
        // resumes. `{f}` emits the shortest round-trippable repr and
        // `{f:.1}` (integer-valued floats) is exact too.
        let samples = [
            0.1 + 0.2,
            -1.0863735643871554, // typical H2 energy
            1e-17,
            -0.0,
            3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            std::f64::consts::PI,
        ];
        for &x in &samples {
            let rendered = JsonValue::Float(x).render();
            let back = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x:?} via {rendered}");
        }
        // Structured round trip preserves everything including key order.
        let mut obj = Object::new();
        obj.push("e", JsonValue::Float(-1.137270174657105));
        obj.push("k", JsonValue::Int(u64::MAX));
        obj.push("s", JsonValue::Str("θ=0.5\n".into()));
        let v = obj.into_value();
        let round = JsonValue::parse(&v.render()).unwrap();
        assert_eq!(round.render(), v.render());
        assert_eq!(round.get("k").and_then(JsonValue::as_u64), Some(u64::MAX));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "12 34",
            "nul",
            "{\"x\":1}extra",
            "--1",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = JsonValue::parse("[1, oops]").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn accessor_type_mismatches_are_none() {
        let v = JsonValue::parse(r#"{"s":"x","f":2.5,"neg":-1.0}"#).unwrap();
        assert!(v.get("s").unwrap().as_f64().is_none());
        assert!(v.get("f").unwrap().as_str().is_none());
        assert!(v.get("f").unwrap().as_u64().is_none(), "2.5 is not a u64");
        assert!(v.get("neg").unwrap().as_u64().is_none());
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        // Integer-valued float counters convert.
        let c = JsonValue::parse("7.0").unwrap();
        assert_eq!(c.as_u64(), Some(7));
        assert!(v.as_object().is_some());
        assert!(v.as_array().is_none());
    }
}
