//! Process-wide telemetry: hierarchical span timers, atomic counters, and
//! per-iteration optimizer records, exported as a stable JSON document.
//!
//! The registry is a process-wide singleton that is **disabled by default**:
//! every recording call starts with one relaxed atomic load and a branch, so
//! instrumented hot paths (per-gate counters in the statevector kernels) are
//! effectively free unless a sink is installed with [`set_enabled`].
//!
//! Layout of the exported document (see [`Snapshot::to_json`]):
//!
//! ```json
//! {
//!   "run": { "command": "vqe", "molecule": "h2", ... },
//!   "spans": [ { "path": "vqe/iteration", "count": 12,
//!                "total_ms": 3.4, "min_ms": 0.1, "max_ms": 0.9 } ],
//!   "counters": { "statevec.gates_1q": 420, "dist.modeled_time_s": 0.0012 },
//!   "iterations": [ { "i": 0, "energy": -1.1, "grad_norm": 0.3,
//!                     "evaluations": 5, "gates": 120, "wall_ms": 1.2 } ],
//!   "histograms": { "serve.latency_ms": { "count": 120, "mean": 4.2,
//!                   "min": 0.4, "max": 39.0, "p50": 3.1, "p95": 12.0,
//!                   "p99": 31.0 } }
//! }
//! ```
//!
//! Only `std` and `parking_lot` are used; JSON is serialized by hand so the
//! crate stays dependency-light and the schema stays under our control.

mod histogram;
mod json;

pub use histogram::Histogram;
pub use json::{JsonValue, Object, ParseError};

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// A counter cell: monotonically accumulated integer or float.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CounterValue {
    /// Integer counter (event counts, byte totals).
    Int(u64),
    /// Float accumulator (modeled times, fractional quantities).
    Float(f64),
}

/// Aggregated timing for one span path.
#[derive(Clone, Debug, Default)]
pub struct SpanStats {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total time across completions, in nanoseconds.
    pub total_ns: u128,
    /// Shortest single completion, in nanoseconds.
    pub min_ns: u128,
    /// Longest single completion, in nanoseconds.
    pub max_ns: u128,
}

/// One optimizer iteration as recorded by the VQE / ADAPT drivers.
#[derive(Clone, Debug, Default)]
pub struct IterationRecord {
    /// Zero-based iteration index.
    pub iteration: usize,
    /// Best energy known at the end of the iteration (Hartree).
    pub energy: f64,
    /// Gradient norm, when the driver computes one (ADAPT screening).
    pub grad_norm: Option<f64>,
    /// Objective evaluations consumed by the iteration.
    pub evaluations: u64,
    /// Gates in the ansatz at the end of the iteration.
    pub gates: u64,
    /// Wall-clock time of the iteration in milliseconds.
    pub wall_ms: f64,
    /// Free-form label (ADAPT: operator chosen this round).
    pub label: Option<String>,
}

#[derive(Default)]
struct Registry {
    run: BTreeMap<String, String>,
    spans: BTreeMap<String, SpanStats>,
    counters: BTreeMap<String, CounterValue>,
    iterations: Vec<IterationRecord>,
    histograms: BTreeMap<String, Histogram>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SPAN_HISTOGRAMS: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
        run: BTreeMap::new(),
        spans: BTreeMap::new(),
        counters: BTreeMap::new(),
        iterations: Vec::new(),
        histograms: BTreeMap::new(),
    });
    &REGISTRY
}

thread_local! {
    static SPAN_PATH: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Turns recording on or off process-wide. Off (the default) reduces every
/// recording call to a relaxed load and a branch.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the registry currently accepts records.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Attaches a key/value pair to the run header of the export.
pub fn set_run_info(key: impl Into<String>, value: impl Into<String>) {
    if !enabled() {
        return;
    }
    registry().lock().run.insert(key.into(), value.into());
}

/// Adds `delta` to the integer counter `name`.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock();
    match reg
        .counters
        .entry(name.to_string())
        .or_insert(CounterValue::Int(0))
    {
        CounterValue::Int(v) => *v += delta,
        CounterValue::Float(v) => *v += delta as f64,
    }
}

/// Adds `delta` to the float accumulator `name`.
#[inline]
pub fn value_add(name: &'static str, delta: f64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock();
    match reg
        .counters
        .entry(name.to_string())
        .or_insert(CounterValue::Float(0.0))
    {
        CounterValue::Int(v) => *v += delta as u64,
        CounterValue::Float(v) => *v += delta,
    }
}

/// Overwrites the float gauge `name` with `value` (last write wins). Use for
/// derived ratios such as cache hit-rates where accumulation is meaningless.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    registry()
        .lock()
        .counters
        .insert(name.to_string(), CounterValue::Float(value));
}

/// Records one sample into the histogram `name` (creating it on first
/// use). Histograms aggregate latency-style quantities into fixed
/// log-buckets; the export carries p50/p95/p99 summaries.
pub fn histogram_record(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    registry()
        .lock()
        .histograms
        .entry(name.to_string())
        .or_default()
        .record(value);
}

/// Reads a copy of the histogram `name`, if it has recorded anything.
pub fn histogram_snapshot(name: &str) -> Option<Histogram> {
    registry().lock().histograms.get(name).cloned()
}

/// When enabled, every completed [`span`] additionally records its elapsed
/// milliseconds into a histogram named `span.<path>`, making tail latency
/// (not just min/mean/max) visible for any instrumented section.
pub fn set_span_histograms(on: bool) {
    SPAN_HISTOGRAMS.store(on, Ordering::Relaxed);
}

/// Records one optimizer iteration.
pub fn record_iteration(record: IterationRecord) {
    if !enabled() {
        return;
    }
    registry().lock().iterations.push(record);
}

/// RAII timer for one section; see [`span`].
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Opens a span named `name`, nested under any span currently open on this
/// thread: dropping the guard records the elapsed time under the
/// slash-joined path (e.g. `"vqe/iteration/energy"`). When telemetry is
/// disabled the guard is inert and costs one atomic load.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { start: None };
    }
    SPAN_PATH.with(|p| p.borrow_mut().push(name));
    SpanGuard {
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_nanos();
        let path = SPAN_PATH.with(|p| {
            let mut stack = p.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut reg = registry().lock();
        if SPAN_HISTOGRAMS.load(Ordering::Relaxed) {
            reg.histograms
                .entry(format!("span.{path}"))
                .or_default()
                .record(elapsed as f64 / 1e6);
        }
        let s = reg.spans.entry(path).or_default();
        s.count += 1;
        s.total_ns += elapsed;
        s.min_ns = if s.count == 1 {
            elapsed
        } else {
            s.min_ns.min(elapsed)
        };
        s.max_ns = s.max_ns.max(elapsed);
    }
}

/// Opens a [`span`] guard bound to a local: `let _s = span!("vqe.iteration");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Immutable copy of the registry contents at one moment.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Run header key/value pairs.
    pub run: BTreeMap<String, String>,
    /// Aggregated spans keyed by slash-joined path.
    pub spans: BTreeMap<String, SpanStats>,
    /// Counters and float accumulators.
    pub counters: BTreeMap<String, CounterValue>,
    /// Optimizer iterations in recording order.
    pub iterations: Vec<IterationRecord>,
    /// Log-bucket histograms keyed by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Copies the current registry contents.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock();
    Snapshot {
        run: reg.run.clone(),
        spans: reg.spans.clone(),
        counters: reg.counters.clone(),
        iterations: reg.iterations.clone(),
        histograms: reg.histograms.clone(),
    }
}

/// Clears all recorded data (the enabled flag is left as-is).
pub fn reset() {
    let mut reg = registry().lock();
    reg.run.clear();
    reg.spans.clear();
    reg.counters.clear();
    reg.iterations.clear();
    reg.histograms.clear();
}

/// Convenience: reads a counter's integer value (0 when absent or float).
pub fn counter_value(name: &str) -> u64 {
    match registry().lock().counters.get(name) {
        Some(CounterValue::Int(v)) => *v,
        _ => 0,
    }
}

impl Snapshot {
    /// Serializes to the stable JSON schema described at the crate root.
    pub fn to_json(&self) -> String {
        let mut root = json::Object::new();
        let mut run = json::Object::new();
        for (k, v) in &self.run {
            run.push(k, JsonValue::Str(v.clone()));
        }
        root.push("run", run.into_value());

        let mut spans = Vec::new();
        for (path, s) in &self.spans {
            let mut o = json::Object::new();
            o.push("path", JsonValue::Str(path.clone()));
            o.push("count", JsonValue::Int(s.count));
            o.push("total_ms", JsonValue::Float(s.total_ns as f64 / 1e6));
            o.push("min_ms", JsonValue::Float(s.min_ns as f64 / 1e6));
            o.push("max_ms", JsonValue::Float(s.max_ns as f64 / 1e6));
            spans.push(o.into_value());
        }
        root.push("spans", JsonValue::Array(spans));

        let mut counters = json::Object::new();
        for (name, v) in &self.counters {
            let jv = match v {
                CounterValue::Int(i) => JsonValue::Int(*i),
                CounterValue::Float(f) => JsonValue::Float(*f),
            };
            counters.push(name, jv);
        }
        root.push("counters", counters.into_value());

        let mut iterations = Vec::new();
        for it in &self.iterations {
            let mut o = json::Object::new();
            o.push("i", JsonValue::Int(it.iteration as u64));
            o.push("energy", JsonValue::Float(it.energy));
            o.push(
                "grad_norm",
                it.grad_norm
                    .map(JsonValue::Float)
                    .unwrap_or(JsonValue::Null),
            );
            o.push("evaluations", JsonValue::Int(it.evaluations));
            o.push("gates", JsonValue::Int(it.gates));
            o.push("wall_ms", JsonValue::Float(it.wall_ms));
            if let Some(label) = &it.label {
                o.push("label", JsonValue::Str(label.clone()));
            }
            iterations.push(o.into_value());
        }
        root.push("iterations", JsonValue::Array(iterations));

        let mut histograms = json::Object::new();
        for (name, h) in &self.histograms {
            histograms.push(name, h.summary_json());
        }
        root.push("histograms", histograms.into_value());

        root.into_value().render()
    }

    /// Writes the JSON document to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so tests share it; each test uses its
    // own counter/span names and tolerates other tests' records.
    fn with_telemetry<R>(f: impl FnOnce() -> R) -> R {
        set_enabled(true);
        let r = f();
        set_enabled(false);
        r
    }

    #[test]
    fn disabled_records_nothing() {
        set_enabled(false);
        counter_add("test.disabled", 5);
        let _g = span("test.disabled.span");
        drop(_g);
        let snap = snapshot();
        assert!(!snap.counters.contains_key("test.disabled"));
        assert!(!snap.spans.contains_key("test.disabled.span"));
    }

    #[test]
    fn counters_accumulate() {
        with_telemetry(|| {
            counter_add("test.counters.a", 2);
            counter_add("test.counters.a", 3);
            value_add("test.counters.f", 0.5);
            value_add("test.counters.f", 0.25);
        });
        let snap = snapshot();
        assert_eq!(snap.counters["test.counters.a"], CounterValue::Int(5));
        assert_eq!(snap.counters["test.counters.f"], CounterValue::Float(0.75));
    }

    #[test]
    fn spans_nest_and_aggregate() {
        with_telemetry(|| {
            for _ in 0..3 {
                let _outer = span("test_outer");
                let _inner = span("test_inner");
            }
        });
        let snap = snapshot();
        assert_eq!(snap.spans["test_outer"].count, 3);
        let nested = &snap.spans["test_outer/test_inner"];
        assert_eq!(nested.count, 3);
        assert!(nested.total_ns >= nested.min_ns * 3 / 2);
        assert!(nested.min_ns <= nested.max_ns);
    }

    #[test]
    fn gauges_overwrite_instead_of_accumulating() {
        with_telemetry(|| {
            gauge_set("test.gauge.rate", 0.25);
            gauge_set("test.gauge.rate", 0.75);
        });
        let snap = snapshot();
        assert_eq!(snap.counters["test.gauge.rate"], CounterValue::Float(0.75));
        set_enabled(false);
        gauge_set("test.gauge.disabled", 1.0);
        assert!(!snapshot().counters.contains_key("test.gauge.disabled"));
    }

    #[test]
    fn iteration_records_roundtrip() {
        with_telemetry(|| {
            record_iteration(IterationRecord {
                iteration: 0,
                energy: -1.25,
                grad_norm: Some(0.5),
                evaluations: 7,
                gates: 42,
                wall_ms: 1.5,
                label: Some("op_3".into()),
            });
        });
        let snap = snapshot();
        let it = snap.iterations.iter().find(|i| i.gates == 42).unwrap();
        assert_eq!(it.energy, -1.25);
        assert_eq!(it.label.as_deref(), Some("op_3"));
    }

    #[test]
    fn json_has_stable_top_level_shape() {
        with_telemetry(|| {
            set_run_info("command", "test \"quoted\"");
            counter_add("test.json.count", 1);
        });
        let doc = snapshot().to_json();
        assert!(doc.starts_with('{'));
        for key in [
            "\"run\"",
            "\"spans\"",
            "\"counters\"",
            "\"iterations\"",
            "\"histograms\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
        assert!(doc.contains("test \\\"quoted\\\""));
    }

    #[test]
    fn histogram_registry_records_and_exports() {
        with_telemetry(|| {
            for i in 1..=100 {
                histogram_record("test.hist.latency", i as f64);
            }
        });
        let h = histogram_snapshot("test.hist.latency").unwrap();
        assert_eq!(h.count(), 100);
        assert!(h.p99().unwrap() >= h.p50().unwrap());
        let doc = snapshot().to_json();
        assert!(doc.contains("\"test.hist.latency\""), "{doc}");
        // Disabled: nothing recorded.
        set_enabled(false);
        histogram_record("test.hist.disabled", 1.0);
        assert!(histogram_snapshot("test.hist.disabled").is_none());
    }

    #[test]
    fn span_timers_feed_histograms_when_opted_in() {
        with_telemetry(|| {
            set_span_histograms(true);
            for _ in 0..5 {
                let _g = span("test_span_hist");
            }
            set_span_histograms(false);
            let _g = span("test_span_hist_off");
        });
        let h = histogram_snapshot("span.test_span_hist").unwrap();
        assert_eq!(h.count(), 5);
        assert!(h.p95().unwrap() >= 0.0);
        assert!(histogram_snapshot("span.test_span_hist_off").is_none());
        // The plain span aggregate still recorded both.
        let snap = snapshot();
        assert_eq!(snap.spans["test_span_hist"].count, 5);
        assert_eq!(snap.spans["test_span_hist_off"].count, 1);
    }
}
