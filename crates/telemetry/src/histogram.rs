//! Fixed log-bucket histogram for latency-style quantities.
//!
//! The serving layer needs tail percentiles (p50/p95/p99) over request
//! latencies without keeping every sample. A [`Histogram`] stores counts in
//! geometrically spaced buckets — `BUCKETS_PER_OCTAVE` buckets per factor of
//! two above a fixed floor — so recording is O(1), memory is a fixed few
//! kilobytes, merging is element-wise addition, and any quantile is
//! recoverable to within one bucket's relative width
//! (`2^(1/BUCKETS_PER_OCTAVE) − 1 ≈ 19 %`). Exact `min`/`max`/`sum` are
//! tracked on the side, and quantile estimates are clamped to the observed
//! `[min, max]` so small samples never report values outside what was seen.
//!
//! Units are caller-defined; the registry's `serve.*` histograms record
//! milliseconds.

/// Total bucket count. With 4 buckets per octave the dynamic range above
/// [`FLOOR`] is `2^(256/4) = 2^64` — for millisecond samples that spans
/// nanoseconds to centuries.
pub const BUCKETS: usize = 256;

/// Buckets per factor-of-two of value growth.
pub const BUCKETS_PER_OCTAVE: f64 = 4.0;

/// Values at or below this land in bucket 0.
pub const FLOOR: f64 = 1e-6;

/// A mergeable fixed-size log-bucket histogram.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_of(value: f64) -> usize {
    if value.is_nan() || value <= FLOOR {
        // NaN and everything at or below the floor.
        return 0;
    }
    // Subtract logs rather than dividing: `value / FLOOR` can overflow to
    // infinity for huge samples, and clamp in f64 before the cast.
    let b = ((value.log2() - FLOOR.log2()) * BUCKETS_PER_OCTAVE).floor() + 1.0;
    b.clamp(1.0, (BUCKETS - 1) as f64) as usize
}

/// Geometric midpoint of a bucket — the representative value quantile
/// queries report for samples that landed there.
fn bucket_mid(bucket: usize) -> f64 {
    if bucket == 0 {
        FLOOR
    } else {
        FLOOR * ((bucket as f64 - 0.5) / BUCKETS_PER_OCTAVE).exp2()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. NaN samples are dropped; negative samples clamp
    /// to the floor bucket.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value.max(0.0);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (negatives counted as zero).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`q` in `[0, 1]`) to within one bucket's relative
    /// width, clamped to the observed range. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_mid(b).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Adds every sample of `other` into `self` (bucket-wise; exact
    /// min/max/sum merge exactly).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serializes the summary statistics (not the raw buckets) as a JSON
    /// object: `{count, mean, min, max, p50, p95, p99}`.
    pub fn summary_json(&self) -> crate::JsonValue {
        let f = |v: Option<f64>| {
            v.map(crate::JsonValue::Float)
                .unwrap_or(crate::JsonValue::Null)
        };
        crate::JsonValue::Object(vec![
            ("count".into(), crate::JsonValue::Int(self.count)),
            ("mean".into(), f(self.mean())),
            ("min".into(), f(self.min())),
            ("max".into(), f(self.max())),
            ("p50".into(), f(self.p50())),
            ("p95".into(), f(self.p95())),
            ("p99".into(), f(self.p99())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_statistics() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.mean().is_none());
        assert!(h.min().is_none());
        assert!(h.max().is_none());
        assert!(h.p50().is_none());
        assert!(h.quantile(0.99).is_none());
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        // 1..=1000 uniformly: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990 — each must
        // come back within one bucket's relative width (~19%).
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let tol = BUCKETS_PER_OCTAVE.recip().exp2() - 1.0 + 1e-9;
        for (q, expect) in [(0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q).unwrap();
            assert!(
                (got / expect - 1.0).abs() <= tol,
                "q{q}: {got} vs {expect} (tol {tol})"
            );
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(1000.0));
        assert!((h.mean().unwrap() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_reports_itself_at_every_quantile() {
        // Clamping to [min, max] makes one-sample histograms exact.
        let mut h = Histogram::new();
        h.record(3.7);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(3.7));
        }
    }

    #[test]
    fn extremes_land_in_terminal_buckets() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::MAX);
        assert_eq!(h.count(), 3);
        // NaN is dropped entirely.
        h.record(f64::NAN);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(-5.0));
        assert_eq!(h.max(), Some(f64::MAX));
        // Quantiles stay finite and ordered.
        assert!(h.p50().unwrap() <= h.p99().unwrap());
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..200 {
            let v = 0.1 * (i as f64 + 1.0) * if i % 2 == 0 { 1.0 } else { 37.0 };
            if i < 120 {
                a.record(v)
            } else {
                b.record(v)
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        // Sum is merged as a.sum + b.sum — same samples, different addition
        // order than `all`, so compare with a relative tolerance.
        assert!((a.sum() / all.sum() - 1.0).abs() < 1e-12);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn summary_json_shape() {
        let mut h = Histogram::new();
        h.record(2.0);
        h.record(4.0);
        let doc = h.summary_json().render();
        for key in [
            "\"count\":2",
            "\"mean\":3.0",
            "\"p50\"",
            "\"p95\"",
            "\"p99\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }
}
