//! # nwq-chem
//!
//! The quantum-chemistry substrate of the NWQ-Sim-rs workspace:
//!
//! - [`fermion`] — second-quantized operators (ladder-operator products);
//! - [`integrals`] — spatial-orbital molecular integrals with 8-fold
//!   symmetry, HF energies, and the qubit-Hamiltonian construction;
//! - [`jw`] — the Jordan–Wigner transform;
//! - [`uccsd`] — UCCSD excitations and ansatz synthesis (Figs 1a, 4);
//! - [`pool`] — ADAPT-VQE operator pools and gradient screening (§5.3);
//! - [`downfold`] — coupled-cluster downfolding (§2): the literal Eq. 2
//!   commutator pipeline at the qubit level plus the scalable
//!   integral-level fold used by the evaluation;
//! - [`molecules`] — H2/STO-3G literature integrals, hydrogen chains, and
//!   the deterministic water-like generator standing in for the paper's
//!   downfolded H2O/cc-pV5Z systems.

#![warn(missing_docs)]

pub mod downfold;
pub mod fermion;
pub mod integrals;
pub mod jw;
pub mod molecules;
pub mod pool;
pub mod spin;
pub mod sto3g;
pub mod uccsd;

pub use integrals::MolecularIntegrals;

#[cfg(test)]
mod proptests {
    use crate::fermion::FermionOp;
    use crate::jw::{jordan_wigner, ladder_to_pauli};
    use crate::uccsd::uccsd_excitations;
    use nwq_common::C64;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn jw_of_hermitian_pairs_is_hermitian(
            p in 0usize..4, q in 0usize..4, c in -2.0..2.0f64
        ) {
            let mut f = FermionOp::one_body(c, p, q);
            f.add_assign(FermionOp::one_body(c, q, p));
            let h = jordan_wigner(&f, 4).unwrap();
            prop_assert!(h.is_hermitian(1e-10));
        }

        #[test]
        fn jw_anti_hermitian_parts(
            p in 0usize..4, q in 0usize..4, r in 0usize..4, s in 0usize..4
        ) {
            let t = FermionOp::single(
                C64::real(1.0),
                vec![(p, true), (q, true), (r, false), (s, false)],
            );
            let a = jordan_wigner(&t.anti_hermitian_part(), 4).unwrap();
            prop_assert!(a.is_anti_hermitian(1e-10));
        }

        #[test]
        fn ladder_squares_to_zero(p in 0usize..5, creation in proptest::bool::ANY) {
            // a² = (a†)² = 0 — Pauli exclusion.
            let l = ladder_to_pauli(5, p, creation).unwrap();
            let sq = l.mul_op(&l).unwrap();
            prop_assert!(sq.is_zero());
        }

        #[test]
        fn excitation_count_formula_singles(n_pairs in 1usize..5, occ_pairs in 1usize..3) {
            // With interleaved spins and closed shells:
            // singles = 2 · occ_spatial · virt_spatial.
            let n_so = 2 * (n_pairs + occ_pairs);
            let n_e = 2 * occ_pairs;
            let singles = uccsd_excitations(n_so, n_e)
                .iter()
                .filter(|e| e.is_single())
                .count();
            prop_assert_eq!(singles, 2 * occ_pairs * n_pairs);
        }
    }
}
