//! Molecular integrals in a spatial-orbital basis.
//!
//! Stores the one-electron integrals `h_pq` and two-electron integrals
//! `(pq|rs)` (chemist notation) for a closed-shell molecule, with the
//! physical 8-fold permutation symmetry enforced on insertion. Spin
//! orbitals are interleaved: spin orbital `2p` is the α component of
//! spatial orbital `p` and `2p+1` the β component, and qubit `q` hosts
//! spin orbital `q` under Jordan–Wigner.

use crate::fermion::FermionOp;
use crate::jw::jordan_wigner;
use nwq_common::{Error, Result};
use nwq_pauli::PauliOp;

/// Integral container for a closed-shell molecule.
#[derive(Clone, Debug, PartialEq)]
pub struct MolecularIntegrals {
    n_spatial: usize,
    n_electrons: usize,
    /// Constant nuclear-repulsion energy added to the qubit Hamiltonian.
    pub nuclear_repulsion: f64,
    h: Vec<f64>,
    g: Vec<f64>,
}

impl MolecularIntegrals {
    /// An all-zero integral set for `n_spatial` orbitals and
    /// `n_electrons` electrons (must be even: RHF closed shell).
    pub fn new(n_spatial: usize, n_electrons: usize) -> Result<Self> {
        if !n_electrons.is_multiple_of(2) {
            return Err(Error::Invalid(
                "closed-shell integrals need an even electron count".into(),
            ));
        }
        if n_electrons > 2 * n_spatial {
            return Err(Error::Invalid(format!(
                "{n_electrons} electrons exceed capacity of {n_spatial} spatial orbitals"
            )));
        }
        Ok(MolecularIntegrals {
            n_spatial,
            n_electrons,
            nuclear_repulsion: 0.0,
            h: vec![0.0; n_spatial * n_spatial],
            g: vec![0.0; n_spatial.pow(4)],
        })
    }

    /// Number of spatial orbitals.
    pub fn n_spatial(&self) -> usize {
        self.n_spatial
    }

    /// Number of spin orbitals (= qubits under JW).
    pub fn n_spin_orbitals(&self) -> usize {
        2 * self.n_spatial
    }

    /// Electron count.
    pub fn n_electrons(&self) -> usize {
        self.n_electrons
    }

    /// Number of doubly occupied spatial orbitals in the RHF reference.
    pub fn n_occupied(&self) -> usize {
        self.n_electrons / 2
    }

    #[inline]
    fn hidx(&self, p: usize, q: usize) -> usize {
        p * self.n_spatial + q
    }

    #[inline]
    fn gidx(&self, p: usize, q: usize, r: usize, s: usize) -> usize {
        ((p * self.n_spatial + q) * self.n_spatial + r) * self.n_spatial + s
    }

    /// One-electron integral `h_pq`.
    pub fn h(&self, p: usize, q: usize) -> f64 {
        self.h[self.hidx(p, q)]
    }

    /// Two-electron integral `(pq|rs)` in chemist notation.
    pub fn g(&self, p: usize, q: usize, r: usize, s: usize) -> f64 {
        self.g[self.gidx(p, q, r, s)]
    }

    /// Sets `h_pq = h_qp = v`.
    pub fn set_h(&mut self, p: usize, q: usize, v: f64) {
        let (i, j) = (self.hidx(p, q), self.hidx(q, p));
        self.h[i] = v;
        self.h[j] = v;
    }

    /// Sets `(pq|rs)` and its 8 symmetry images to `v`:
    /// `(pq|rs) = (qp|rs) = (pq|sr) = (qp|sr) = (rs|pq) = …`.
    pub fn set_g(&mut self, p: usize, q: usize, r: usize, s: usize, v: f64) {
        for (a, b, c, d) in [
            (p, q, r, s),
            (q, p, r, s),
            (p, q, s, r),
            (q, p, s, r),
            (r, s, p, q),
            (s, r, p, q),
            (r, s, q, p),
            (s, r, q, p),
        ] {
            let i = self.gidx(a, b, c, d);
            self.g[i] = v;
        }
    }

    /// Restricted Hartree–Fock electronic energy of the reference
    /// determinant: `2 Σ_i h_ii + Σ_ij [2(ii|jj) − (ij|ji)]`.
    pub fn hf_electronic_energy(&self) -> f64 {
        let occ = self.n_occupied();
        let mut e = 0.0;
        for i in 0..occ {
            e += 2.0 * self.h(i, i);
            for j in 0..occ {
                e += 2.0 * self.g(i, i, j, j) - self.g(i, j, j, i);
            }
        }
        e
    }

    /// Total HF energy including nuclear repulsion.
    pub fn hf_total_energy(&self) -> f64 {
        self.hf_electronic_energy() + self.nuclear_repulsion
    }

    /// Mean-field orbital energy `ε_p = h_pp + Σ_i [2(pp|ii) − (pi|ip)]`,
    /// used for MP2-style denominators in the downfolding σ amplitudes.
    pub fn orbital_energy(&self, p: usize) -> f64 {
        let occ = self.n_occupied();
        let mut e = self.h(p, p);
        for i in 0..occ {
            e += 2.0 * self.g(p, p, i, i) - self.g(p, i, i, p);
        }
        e
    }

    /// The electronic Hamiltonian as a fermionic operator over interleaved
    /// spin orbitals:
    /// `Σ_{pqσ} h_pq a†_{pσ} a_{qσ} + ½ Σ_{pqrsστ} (pq|rs) a†_{pσ} a†_{rτ} a_{sτ} a_{qσ}`.
    pub fn to_fermion_op(&self) -> FermionOp {
        let n = self.n_spatial;
        let so = |p: usize, spin: usize| 2 * p + spin;
        let mut op = FermionOp::zero();
        for p in 0..n {
            for q in 0..n {
                let v = self.h(p, q);
                if v == 0.0 {
                    continue;
                }
                for spin in 0..2 {
                    op.add_assign(FermionOp::one_body(v, so(p, spin), so(q, spin)));
                }
            }
        }
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for s in 0..n {
                        let v = self.g(p, q, r, s);
                        if v == 0.0 {
                            continue;
                        }
                        for sigma in 0..2 {
                            for tau in 0..2 {
                                let (a, b, c, d) =
                                    (so(p, sigma), so(r, tau), so(s, tau), so(q, sigma));
                                // a†_a a†_b a_c a_d vanishes when a=b or c=d.
                                if a == b || c == d {
                                    continue;
                                }
                                op.push(
                                    nwq_common::C64::real(0.5 * v),
                                    vec![(a, true), (b, true), (c, false), (d, false)],
                                );
                            }
                        }
                    }
                }
            }
        }
        op
    }

    /// The qubit Hamiltonian: JW of the electronic part plus the nuclear
    /// repulsion as an identity term.
    pub fn to_qubit_hamiltonian(&self) -> Result<PauliOp> {
        let n_q = self.n_spin_orbitals();
        let elec = jordan_wigner(&self.to_fermion_op(), n_q)?;
        let nuc = PauliOp::scalar(n_q, nwq_common::C64::real(self.nuclear_repulsion));
        Ok(&elec + &nuc)
    }

    /// The JW basis-state index of the RHF reference determinant (lowest
    /// `n_electrons` spin orbitals occupied).
    pub fn hf_determinant(&self) -> u64 {
        (1u64 << self.n_electrons) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h2() -> MolecularIntegrals {
        crate::molecules::h2_sto3g()
    }

    #[test]
    fn construction_checks() {
        assert!(MolecularIntegrals::new(2, 3).is_err());
        assert!(MolecularIntegrals::new(2, 6).is_err());
        let m = MolecularIntegrals::new(3, 4).unwrap();
        assert_eq!(m.n_spin_orbitals(), 6);
        assert_eq!(m.n_occupied(), 2);
    }

    #[test]
    fn symmetry_on_insertion() {
        let mut m = MolecularIntegrals::new(3, 2).unwrap();
        m.set_h(0, 1, 0.5);
        assert_eq!(m.h(1, 0), 0.5);
        m.set_g(0, 1, 2, 0, 0.25);
        for v in [
            m.g(0, 1, 2, 0),
            m.g(1, 0, 2, 0),
            m.g(0, 1, 0, 2),
            m.g(2, 0, 0, 1),
            m.g(0, 2, 1, 0),
        ] {
            assert_eq!(v, 0.25);
        }
    }

    #[test]
    fn h2_hf_energy_matches_literature() {
        // Szabo–Ostlund STO-3G H2 at R = 1.4 a.u.: E_HF ≈ −1.1167 Ha.
        let m = h2();
        assert!(
            (m.hf_total_energy() + 1.1167).abs() < 2e-3,
            "HF total {}",
            m.hf_total_energy()
        );
    }

    #[test]
    fn h2_qubit_hamiltonian_ground_state() {
        // Full pipeline validation: integrals → fermion → JW → exact diag.
        // FCI total energy of H2/STO-3G at equilibrium ≈ −1.1373 Ha.
        let m = h2();
        let h = m.to_qubit_hamiltonian().unwrap();
        assert_eq!(h.n_qubits(), 4);
        assert!(h.is_hermitian(1e-10));
        let (e0, _) = nwq_pauli::matrix::dense_ground_state(&h, 2000);
        assert!((e0 + 1.1373).abs() < 2e-3, "FCI total {e0}");
    }

    #[test]
    fn hf_determinant_energy_matches_expectation() {
        // ⟨HF|H|HF⟩ must equal the RHF energy — ties the fermionic
        // Hamiltonian convention to the HF formula.
        let m = h2();
        let h = m.to_qubit_hamiltonian().unwrap();
        let hf_index = m.hf_determinant() as usize;
        let state = {
            let mut v = vec![nwq_common::C_ZERO; 1 << h.n_qubits()];
            v[hf_index] = nwq_common::C_ONE;
            v
        };
        let e = nwq_pauli::apply::expectation_op(&h, &state).unwrap().re;
        assert!(
            (e - m.hf_total_energy()).abs() < 1e-8,
            "⟨HF|H|HF⟩ = {e} vs RHF {}",
            m.hf_total_energy()
        );
    }

    #[test]
    fn orbital_energies_ordered_for_h2() {
        let m = h2();
        // Bonding orbital below antibonding.
        assert!(m.orbital_energy(0) < m.orbital_energy(1));
        assert!(m.orbital_energy(0) < 0.0);
    }

    #[test]
    fn hf_determinant_bitmask() {
        let m = MolecularIntegrals::new(4, 4).unwrap();
        assert_eq!(m.hf_determinant(), 0b1111);
    }
}
