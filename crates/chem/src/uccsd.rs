//! UCCSD ansatz construction (paper Figs 1a, 4).
//!
//! The unitary coupled-cluster singles-and-doubles ansatz is
//! `|ψ(θ)⟩ = e^{T(θ) − T†(θ)} |HF⟩` with `T = Σ_k θ_k T_k` over all
//! spin- and particle-conserving single and double excitations. After
//! Jordan–Wigner each anti-Hermitian generator becomes `A_k = i Σ_j c_j P_j`
//! with real `c_j` and mutually commuting strings, so the first-order
//! Trotter factorization `∏_j exp(iθ_k c_j P_j)` is exact per excitation
//! and synthesizes into CNOT-ladder Pauli exponentials.

use crate::fermion::FermionOp;
use crate::jw::jordan_wigner;
use nwq_circuit::exp_pauli::{append_exp_pauli, exp_pauli_gate_count};
use nwq_circuit::{Circuit, ParamExpr};
use nwq_common::{Error, Result};
use nwq_pauli::PauliOp;

/// A particle- and spin-conserving excitation between spin orbitals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Excitation {
    /// Occupied spin orbitals vacated (1 for singles, 2 for doubles).
    pub from: Vec<usize>,
    /// Virtual spin orbitals populated.
    pub to: Vec<usize>,
}

impl Excitation {
    /// The excitation operator `T = a†_to … a_from …`.
    pub fn operator(&self) -> FermionOp {
        let mut ops = Vec::with_capacity(self.from.len() * 2);
        for &a in &self.to {
            ops.push((a, true));
        }
        for &i in self.from.iter().rev() {
            ops.push((i, false));
        }
        FermionOp::single(nwq_common::C_ONE, ops)
    }

    /// The anti-Hermitian generator `A = T − T†` as a Pauli operator.
    pub fn generator(&self, n_qubits: usize) -> Result<PauliOp> {
        jordan_wigner(&self.operator().anti_hermitian_part(), n_qubits)
    }

    /// A short printable name like `2->4` or `0,1->4,5`.
    pub fn name(&self) -> String {
        let join = |v: &[usize]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!("{}->{}", join(&self.from), join(&self.to))
    }

    /// `true` for single excitations.
    pub fn is_single(&self) -> bool {
        self.from.len() == 1
    }
}

/// Spin of an interleaved spin orbital (0 = α, 1 = β).
#[inline]
fn spin(so: usize) -> usize {
    so & 1
}

/// Enumerates all spin-conserving UCCSD excitations for `n_electrons`
/// electrons in `n_spin_orbitals` spin orbitals (interleaved ordering,
/// lowest `n_electrons` occupied).
pub fn uccsd_excitations(n_spin_orbitals: usize, n_electrons: usize) -> Vec<Excitation> {
    let occ: Vec<usize> = (0..n_electrons).collect();
    let virt: Vec<usize> = (n_electrons..n_spin_orbitals).collect();
    let mut out = Vec::new();
    // Singles: same spin.
    for &i in &occ {
        for &a in &virt {
            if spin(i) == spin(a) {
                out.push(Excitation {
                    from: vec![i],
                    to: vec![a],
                });
            }
        }
    }
    // Doubles: total spin conserved.
    for (xi, &i) in occ.iter().enumerate() {
        for &j in occ.iter().skip(xi + 1) {
            for (xa, &a) in virt.iter().enumerate() {
                for &b in virt.iter().skip(xa + 1) {
                    if spin(i) + spin(j) == spin(a) + spin(b) {
                        out.push(Excitation {
                            from: vec![i, j],
                            to: vec![a, b],
                        });
                    }
                }
            }
        }
    }
    out
}

/// Appends the Hartree–Fock preparation (X on the lowest `n_electrons`
/// qubits) to a circuit.
pub fn append_hf_state(circuit: &mut Circuit, n_electrons: usize) -> Result<()> {
    for q in 0..n_electrons {
        circuit.push(nwq_circuit::Gate::X(q))?;
    }
    Ok(())
}

/// Builds the full UCCSD ansatz circuit: HF preparation followed by one
/// parameterized Pauli-exponential block per excitation. Parameter `k`
/// controls excitation `k` in the order of [`uccsd_excitations`].
pub fn uccsd_ansatz(n_spin_orbitals: usize, n_electrons: usize) -> Result<Circuit> {
    if n_electrons > n_spin_orbitals {
        return Err(Error::Invalid(format!(
            "{n_electrons} electrons exceed {n_spin_orbitals} spin orbitals"
        )));
    }
    let excs = uccsd_excitations(n_spin_orbitals, n_electrons);
    let mut c = Circuit::with_params(n_spin_orbitals, excs.len());
    append_hf_state(&mut c, n_electrons)?;
    for (k, exc) in excs.iter().enumerate() {
        append_generator_exponential(&mut c, &exc.generator(n_spin_orbitals)?, k)?;
    }
    Ok(c)
}

/// Appends `exp(θ_k · A)` for an anti-Hermitian generator `A = iΣ c_j P_j`:
/// each string becomes `exp(−i(−2θ_k c_j)/2 · P_j)`.
pub fn append_generator_exponential(
    circuit: &mut Circuit,
    generator: &PauliOp,
    param_index: usize,
) -> Result<()> {
    if !generator.is_anti_hermitian(1e-10) {
        return Err(Error::Invalid("generator must be anti-Hermitian".into()));
    }
    for (coeff, string) in generator.terms() {
        let c = coeff.im;
        if c == 0.0 {
            continue;
        }
        append_exp_pauli(
            circuit,
            string,
            ParamExpr::scaled_var(param_index, -2.0 * c),
        )?;
    }
    Ok(())
}

/// Ansatz size statistics without paying for circuit storage — used by the
/// Fig 1a sweep up to 30 qubits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UccsdStats {
    /// Number of variational parameters (= excitations).
    pub n_params: usize,
    /// Total gates in the synthesized ansatz (including HF preparation).
    pub gate_count: usize,
}

/// Computes [`UccsdStats`] for the given register.
pub fn uccsd_stats(n_spin_orbitals: usize, n_electrons: usize) -> Result<UccsdStats> {
    let excs = uccsd_excitations(n_spin_orbitals, n_electrons);
    let mut gates = n_electrons; // HF X gates
    for exc in &excs {
        let gen = exc.generator(n_spin_orbitals)?;
        for (coeff, s) in gen.terms() {
            if coeff.im != 0.0 {
                gates += exp_pauli_gate_count(s);
            }
        }
    }
    Ok(UccsdStats {
        n_params: excs.len(),
        gate_count: gates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_circuit::reference;

    #[test]
    fn excitation_enumeration_h2() {
        // 4 spin orbitals, 2 electrons: singles 0→2, 1→3; doubles 01→23.
        let excs = uccsd_excitations(4, 2);
        assert_eq!(excs.len(), 3);
        assert_eq!(
            excs[0],
            Excitation {
                from: vec![0],
                to: vec![2]
            }
        );
        assert_eq!(
            excs[1],
            Excitation {
                from: vec![1],
                to: vec![3]
            }
        );
        assert_eq!(
            excs[2],
            Excitation {
                from: vec![0, 1],
                to: vec![2, 3]
            }
        );
        assert!(excs[0].is_single());
        assert!(!excs[2].is_single());
        assert_eq!(excs[2].name(), "0,1->2,3");
    }

    #[test]
    fn excitations_conserve_spin() {
        for exc in uccsd_excitations(8, 4) {
            let s_from: usize = exc.from.iter().map(|&i| spin(i)).sum();
            let s_to: usize = exc.to.iter().map(|&a| spin(a)).sum();
            assert_eq!(s_from, s_to, "{}", exc.name());
        }
    }

    #[test]
    fn generators_are_anti_hermitian_with_commuting_strings() {
        for exc in uccsd_excitations(6, 2) {
            let g = exc.generator(6).unwrap();
            assert!(g.is_anti_hermitian(1e-12), "{}", exc.name());
            // The strings of one excitation generator mutually commute,
            // making the per-excitation Trotter factorization exact.
            let terms = g.terms();
            for (i, (_, a)) in terms.iter().enumerate() {
                for (_, b) in terms.iter().skip(i + 1) {
                    assert!(a.commutes_with(b), "{}", exc.name());
                }
            }
        }
    }

    #[test]
    fn single_excitation_generator_structure() {
        // A_0→2 on 4 qubits: (i/2)(X0 Z1 Y2 − Y0 Z1 X2) pattern.
        let exc = Excitation {
            from: vec![0],
            to: vec![2],
        };
        let g = exc.generator(4).unwrap();
        assert_eq!(g.num_terms(), 2);
        for (c, s) in g.terms() {
            assert!(c.re.abs() < 1e-12);
            assert!((c.im.abs() - 0.5).abs() < 1e-12);
            assert_eq!(s.op(1), nwq_pauli::Pauli::Z); // JW Z-tail through q1
            assert_eq!(s.op(3), nwq_pauli::Pauli::I);
        }
    }

    #[test]
    fn hf_state_preparation() {
        let mut c = Circuit::new(4);
        append_hf_state(&mut c, 2).unwrap();
        let psi = reference::run(&c, &[]).unwrap();
        assert!((psi[0b0011].norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ansatz_at_zero_is_hf() {
        let ansatz = uccsd_ansatz(4, 2).unwrap();
        let psi = reference::run(&ansatz, &vec![0.0; ansatz.n_params()]).unwrap();
        assert!((psi[0b0011].norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ansatz_conserves_particle_number() {
        let ansatz = uccsd_ansatz(4, 2).unwrap();
        let psi = reference::run(&ansatz, &[0.3, -0.2, 0.5]).unwrap();
        for (idx, a) in psi.iter().enumerate() {
            if a.norm() > 1e-12 {
                assert_eq!((idx as u64).count_ones(), 2, "index {idx:b} breaks N");
            }
        }
    }

    #[test]
    fn ansatz_is_normalized_and_parameterized() {
        let ansatz = uccsd_ansatz(4, 2).unwrap();
        assert_eq!(ansatz.n_params(), 3);
        let psi = reference::run(&ansatz, &[0.1, 0.2, 0.3]).unwrap();
        let n: f64 = psi.iter().map(|a| a.norm_sqr()).sum();
        assert!((n - 1.0).abs() < 1e-10);
    }

    #[test]
    fn stats_match_built_circuit() {
        for (n_so, n_e) in [(4, 2), (6, 2), (8, 4)] {
            let stats = uccsd_stats(n_so, n_e).unwrap();
            let circuit = uccsd_ansatz(n_so, n_e).unwrap();
            assert_eq!(stats.gate_count, circuit.len(), "{n_so}/{n_e}");
            assert_eq!(stats.n_params, circuit.n_params());
        }
    }

    #[test]
    fn gate_count_grows_steeply_with_qubits() {
        // Fig 1a shape: strong growth with register width at fixed filling.
        let g4 = uccsd_stats(4, 2).unwrap().gate_count;
        let g6 = uccsd_stats(6, 2).unwrap().gate_count;
        let g8 = uccsd_stats(8, 4).unwrap().gate_count;
        assert!(g6 > 2 * g4, "g4={g4} g6={g6}");
        assert!(g8 > 2 * g6, "g6={g6} g8={g8}");
    }

    #[test]
    fn non_anti_hermitian_generator_rejected() {
        let mut c = Circuit::new(2);
        let h = PauliOp::parse("1.0 ZZ").unwrap();
        assert!(append_generator_exponential(&mut c, &h, 0).is_err());
    }

    #[test]
    fn too_many_electrons_rejected() {
        assert!(uccsd_ansatz(4, 6).is_err());
    }
}
