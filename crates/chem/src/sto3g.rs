//! A minimal ab-initio integral engine: STO-3G hydrogen-type systems.
//!
//! Computes overlap, kinetic, nuclear-attraction, and two-electron
//! integrals over contracted s-type Gaussians from closed forms
//! (Szabo & Ostlund, appendix A), runs a restricted Hartree–Fock SCF,
//! and transforms to the MO basis — producing [`MolecularIntegrals`] for
//! *any* geometry, not just the tabulated equilibrium point. This powers
//! the H2 dissociation-curve example (the classic VQE demonstration) and
//! validates against the literature values in
//! [`crate::molecules::h2_sto3g`] at R = 1.401 a₀.

use crate::integrals::MolecularIntegrals;
use nwq_common::{Error, Result};
use std::f64::consts::PI;

/// STO-3G exponents for hydrogen (ζ = 1.24 already folded in).
const H_EXPONENTS: [f64; 3] = [3.425_250_914, 0.623_913_729_8, 0.168_855_404_0];
/// Matching contraction coefficients.
const H_COEFFS: [f64; 3] = [0.154_328_967_3, 0.535_328_142_3, 0.444_634_542_2];

/// A contracted s-type Gaussian basis function at a nuclear center.
#[derive(Clone, Debug)]
pub struct SGaussian {
    /// Center (Cartesian, bohr).
    pub center: [f64; 3],
    /// Primitive exponents.
    pub exponents: Vec<f64>,
    /// Contraction coefficients (for normalized primitives).
    pub coeffs: Vec<f64>,
}

impl SGaussian {
    /// The STO-3G hydrogen 1s function at `center`.
    pub fn hydrogen(center: [f64; 3]) -> Self {
        SGaussian {
            center,
            exponents: H_EXPONENTS.to_vec(),
            coeffs: H_COEFFS.to_vec(),
        }
    }
}

fn dist_sqr(a: [f64; 3], b: [f64; 3]) -> f64 {
    (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)
}

/// Primitive normalization constant `(2α/π)^{3/4}`.
fn norm_s(alpha: f64) -> f64 {
    (2.0 * alpha / PI).powf(0.75)
}

/// The Boys function `F₀(t) = ½√(π/t)·erf(√t)`, with the `t → 0` limit 1.
pub fn boys_f0(t: f64) -> f64 {
    if t < 1e-10 {
        1.0 - t / 3.0
    } else {
        0.5 * (PI / t).sqrt() * erf(t.sqrt())
    }
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (|ε| ≤ 1.5 × 10⁻⁷), adequate for sub-millihartree energies here.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Gaussian product prefactor and combined center for two primitives.
fn gaussian_product(alpha: f64, a: [f64; 3], beta: f64, b: [f64; 3]) -> (f64, f64, [f64; 3]) {
    let p = alpha + beta;
    let k = (-alpha * beta / p * dist_sqr(a, b)).exp();
    let center = [
        (alpha * a[0] + beta * b[0]) / p,
        (alpha * a[1] + beta * b[1]) / p,
        (alpha * a[2] + beta * b[2]) / p,
    ];
    (p, k, center)
}

/// Contracted overlap integral `⟨a|b⟩`.
pub fn overlap(a: &SGaussian, b: &SGaussian) -> f64 {
    let mut s = 0.0;
    for (&ai, &ci) in a.exponents.iter().zip(&a.coeffs) {
        for (&bj, &cj) in b.exponents.iter().zip(&b.coeffs) {
            let (p, k, _) = gaussian_product(ai, a.center, bj, b.center);
            s += ci * cj * norm_s(ai) * norm_s(bj) * k * (PI / p).powf(1.5);
        }
    }
    s
}

/// Contracted kinetic-energy integral `⟨a|−∇²/2|b⟩`.
pub fn kinetic(a: &SGaussian, b: &SGaussian) -> f64 {
    let mut t = 0.0;
    let r2 = dist_sqr(a.center, b.center);
    for (&ai, &ci) in a.exponents.iter().zip(&a.coeffs) {
        for (&bj, &cj) in b.exponents.iter().zip(&b.coeffs) {
            let (p, k, _) = gaussian_product(ai, a.center, bj, b.center);
            let red = ai * bj / p;
            let s_prim = k * (PI / p).powf(1.5);
            t += ci * cj * norm_s(ai) * norm_s(bj) * red * (3.0 - 2.0 * red * r2) * s_prim;
        }
    }
    t
}

/// Contracted nuclear-attraction integral `⟨a| −Z/|r−C| |b⟩`.
pub fn nuclear_attraction(a: &SGaussian, b: &SGaussian, z: f64, c: [f64; 3]) -> f64 {
    let mut v = 0.0;
    for (&ai, &ci) in a.exponents.iter().zip(&a.coeffs) {
        for (&bj, &cj) in b.exponents.iter().zip(&b.coeffs) {
            let (p, k, center) = gaussian_product(ai, a.center, bj, b.center);
            let f = boys_f0(p * dist_sqr(center, c));
            v += ci * cj * norm_s(ai) * norm_s(bj) * (-2.0 * PI / p) * z * k * f;
        }
    }
    v
}

/// Contracted two-electron repulsion integral `(ab|cd)` in chemist
/// notation.
pub fn electron_repulsion(a: &SGaussian, b: &SGaussian, c: &SGaussian, d: &SGaussian) -> f64 {
    let mut g = 0.0;
    for (&ai, &ca) in a.exponents.iter().zip(&a.coeffs) {
        for (&bj, &cb) in b.exponents.iter().zip(&b.coeffs) {
            let (p, kab, rp) = gaussian_product(ai, a.center, bj, b.center);
            for (&ck, &cc) in c.exponents.iter().zip(&c.coeffs) {
                for (&dl, &cd) in d.exponents.iter().zip(&d.coeffs) {
                    let (q, kcd, rq) = gaussian_product(ck, c.center, dl, d.center);
                    let f = boys_f0(p * q / (p + q) * dist_sqr(rp, rq));
                    let pref = 2.0 * PI.powf(2.5) / (p * q * (p + q).sqrt());
                    g += ca
                        * cb
                        * cc
                        * cd
                        * norm_s(ai)
                        * norm_s(bj)
                        * norm_s(ck)
                        * norm_s(dl)
                        * pref
                        * kab
                        * kcd
                        * f;
                }
            }
        }
    }
    g
}

/// H2 at bond length `r` (bohr): AO integrals → RHF SCF → MO-basis
/// [`MolecularIntegrals`].
///
/// SCF details (2-basis-function closed shell): symmetric orthogonalization
/// `S^{-1/2}`, Fock diagonalization in the orthogonal basis, density
/// fixed-point iteration to 1e-12. For homonuclear H2 the occupied MO is
/// the symmetric combination by symmetry, so convergence is immediate,
/// but the loop is written generally.
pub fn h2_molecule(r: f64) -> Result<MolecularIntegrals> {
    if r <= 0.0 || r.is_nan() {
        return Err(Error::Invalid(format!("bond length {r} must be positive")));
    }
    let centers = [[0.0, 0.0, 0.0], [0.0, 0.0, r]];
    let basis = [
        SGaussian::hydrogen(centers[0]),
        SGaussian::hydrogen(centers[1]),
    ];
    let n = 2;

    // AO matrices.
    let mut s = [[0.0f64; 2]; 2];
    let mut hcore = [[0.0f64; 2]; 2];
    for i in 0..n {
        for j in 0..n {
            s[i][j] = overlap(&basis[i], &basis[j]);
            let mut h = kinetic(&basis[i], &basis[j]);
            for &c in &centers {
                h += nuclear_attraction(&basis[i], &basis[j], 1.0, c);
            }
            hcore[i][j] = h;
        }
    }
    let mut g_ao = [[[[0.0f64; 2]; 2]; 2]; 2];
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                for l in 0..n {
                    g_ao[i][j][k][l] =
                        electron_repulsion(&basis[i], &basis[j], &basis[k], &basis[l]);
                }
            }
        }
    }

    // Symmetric orthogonalization of the 2×2 overlap: eigenvectors are
    // (1,±1)/√2 by symmetry of any real-symmetric 2×2 with equal diagonal.
    // Handle the general case via explicit 2×2 eigendecomposition.
    let (s_evals, s_evecs) = sym2_eigen(s);
    if s_evals[0] <= 1e-10 || s_evals[1] <= 1e-10 {
        return Err(Error::Numerical("overlap matrix near-singular".into()));
    }
    // X = U diag(1/√λ) Uᵀ.
    let mut x = [[0.0f64; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            for m in 0..2 {
                x[i][j] += s_evecs[i][m] * s_evecs[j][m] / s_evals[m].sqrt();
            }
        }
    }

    // SCF loop.
    let mut density = [[0.0f64; 2]; 2];
    let mut coeffs = [[0.0f64; 2]; 2];
    let mut last_e = f64::INFINITY;
    for _ in 0..200 {
        // Fock matrix.
        let mut fock = hcore;
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    for l in 0..2 {
                        fock[i][j] += density[k][l] * (g_ao[i][j][k][l] - 0.5 * g_ao[i][l][k][j]);
                    }
                }
            }
        }
        // F' = Xᵀ F X; diagonalize; C = X C'.
        let fp = mat2_sandwich(x, fock);
        let (_evals, evecs) = sym2_eigen(fp);
        for i in 0..2 {
            for m in 0..2 {
                coeffs[i][m] = x[i][0] * evecs[0][m] + x[i][1] * evecs[1][m];
            }
        }
        // Closed shell: doubly occupy the lowest MO (column 0).
        let mut new_density = [[0.0f64; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                new_density[i][j] = 2.0 * coeffs[i][0] * coeffs[j][0];
            }
        }
        // Electronic energy for convergence check.
        let mut e = 0.0;
        for i in 0..2 {
            for j in 0..2 {
                e += 0.5 * new_density[i][j] * (hcore[i][j] + fock[i][j]);
            }
        }
        density = new_density;
        if (e - last_e).abs() < 1e-12 {
            break;
        }
        last_e = e;
    }

    // MO transformation. Index loops mirror the tensor-contraction math;
    // iterator forms would obscure the Einstein-summation structure.
    let mo = |p: usize, i: usize| coeffs[i][p];
    let mut out = MolecularIntegrals::new(2, 2)?;
    out.nuclear_repulsion = 1.0 / r;
    #[allow(clippy::needless_range_loop)]
    for p in 0..2 {
        for q in p..2 {
            let mut v = 0.0;
            for i in 0..2 {
                for j in 0..2 {
                    v += mo(p, i) * mo(q, j) * hcore[i][j];
                }
            }
            out.set_h(p, q, v);
        }
    }
    #[allow(clippy::needless_range_loop)]
    for p in 0..2 {
        for q in p..2 {
            for r2 in 0..2 {
                for s2 in r2..2 {
                    if (r2, s2) < (p, q) {
                        continue;
                    }
                    let mut v = 0.0;
                    for i in 0..2 {
                        for j in 0..2 {
                            for k in 0..2 {
                                for l in 0..2 {
                                    v += mo(p, i)
                                        * mo(q, j)
                                        * mo(r2, k)
                                        * mo(s2, l)
                                        * g_ao[i][j][k][l];
                                }
                            }
                        }
                    }
                    out.set_g(p, q, r2, s2, v);
                }
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// General N-center hydrogen clusters.
// ---------------------------------------------------------------------------

/// Jacobi eigendecomposition of a dense symmetric matrix (row-major).
/// Returns `(eigenvalues ascending, eigenvectors as columns of a
/// row-major matrix)`. O(n³) per sweep; fine for the ≤ 8 basis functions
/// used here.
pub fn jacobi_eigen(mat: &[f64], n: usize) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(mat.len(), n * n);
    let mut a = mat.to_vec();
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    for _sweep in 0..100 {
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += a[r * n + c] * a[r * n + c];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q * n + q] - a[p * n + p]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Sort ascending, permuting the eigenvector columns alongside.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[i * n + i].partial_cmp(&a[j * n + j]).unwrap());
    let evals: Vec<f64> = order.iter().map(|&i| a[i * n + i]).collect();
    let mut evecs = vec![0.0; n * n];
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            evecs[r * n + new_col] = v[r * n + old_col];
        }
    }
    (evals, evecs)
}

/// A general hydrogen cluster in STO-3G: one 1s basis function per
/// center, `n_electrons` electrons, RHF SCF, MO-basis integrals.
///
/// Handles H2 (reproducing [`h2_molecule`]), H3+ (2 electrons),
/// H4 chains/rings, … up to ~8 centers comfortably.
pub fn hydrogen_cluster(centers: &[[f64; 3]], n_electrons: usize) -> Result<MolecularIntegrals> {
    let n = centers.len();
    if n == 0 {
        return Err(Error::Invalid("cluster needs at least one center".into()));
    }
    if !n_electrons.is_multiple_of(2) || n_electrons == 0 || n_electrons > 2 * n {
        return Err(Error::Invalid(format!(
            "{n_electrons} electrons invalid for a closed-shell {n}-center cluster"
        )));
    }
    let n_occ = n_electrons / 2;
    let basis: Vec<SGaussian> = centers.iter().map(|&c| SGaussian::hydrogen(c)).collect();

    // Nuclear repulsion.
    let mut e_nuc = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            e_nuc += 1.0 / dist_sqr(centers[i], centers[j]).sqrt();
        }
    }

    // AO matrices.
    let idx = |r: usize, c: usize| r * n + c;
    let mut s_mat = vec![0.0; n * n];
    let mut hcore = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            s_mat[idx(i, j)] = overlap(&basis[i], &basis[j]);
            let mut h = kinetic(&basis[i], &basis[j]);
            for &c in centers {
                h += nuclear_attraction(&basis[i], &basis[j], 1.0, c);
            }
            hcore[idx(i, j)] = h;
        }
    }
    let gidx = |i: usize, j: usize, k: usize, l: usize| ((i * n + j) * n + k) * n + l;
    let mut g_ao = vec![0.0; n * n * n * n];
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                for l in 0..n {
                    g_ao[gidx(i, j, k, l)] =
                        electron_repulsion(&basis[i], &basis[j], &basis[k], &basis[l]);
                }
            }
        }
    }

    // X = S^{-1/2} via Jacobi.
    let (s_evals, s_evecs) = jacobi_eigen(&s_mat, n);
    if s_evals.iter().any(|&l| l <= 1e-8) {
        return Err(Error::Numerical(
            "overlap matrix near-singular (centers too close?)".into(),
        ));
    }
    let mut x = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            for m in 0..n {
                x[idx(i, j)] += s_evecs[idx(i, m)] * s_evecs[idx(j, m)] / s_evals[m].sqrt();
            }
        }
    }

    // SCF with density damping for robustness on stretched geometries.
    let mut density = vec![0.0; n * n];
    let mut coeffs = vec![0.0; n * n];
    let mut last_e = f64::INFINITY;
    for iter in 0..500 {
        let mut fock = hcore.clone();
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    for l in 0..n {
                        acc += density[idx(k, l)]
                            * (g_ao[gidx(i, j, k, l)] - 0.5 * g_ao[gidx(i, l, k, j)]);
                    }
                }
                fock[idx(i, j)] += acc;
            }
        }
        // F' = Xᵀ F X.
        let mut fx = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    fx[idx(i, j)] += fock[idx(i, k)] * x[idx(k, j)];
                }
            }
        }
        let mut fp = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    fp[idx(i, j)] += x[idx(k, i)] * fx[idx(k, j)];
                }
            }
        }
        let (_evals, evecs) = jacobi_eigen(&fp, n);
        for i in 0..n {
            for m in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += x[idx(i, k)] * evecs[idx(k, m)];
                }
                coeffs[idx(i, m)] = acc;
            }
        }
        let mut new_density = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for o in 0..n_occ {
                    acc += 2.0 * coeffs[idx(i, o)] * coeffs[idx(j, o)];
                }
                new_density[idx(i, j)] = acc;
            }
        }
        let mut e = 0.0;
        for i in 0..n {
            for j in 0..n {
                e += 0.5 * new_density[idx(i, j)] * (hcore[idx(i, j)] + fock[idx(i, j)]);
            }
        }
        // Damp after the first few iterations to stabilize oscillations.
        let mix = if iter < 3 { 1.0 } else { 0.7 };
        for (d, nd) in density.iter_mut().zip(&new_density) {
            *d = (1.0 - mix) * *d + mix * *nd;
        }
        if (e - last_e).abs() < 1e-12 {
            break;
        }
        last_e = e;
    }

    // MO transform.
    let mo = |p: usize, i: usize| coeffs[idx(i, p)];
    let mut out = MolecularIntegrals::new(n, n_electrons)?;
    out.nuclear_repulsion = e_nuc;
    for p in 0..n {
        for q in p..n {
            let mut v = 0.0;
            for i in 0..n {
                for j in 0..n {
                    v += mo(p, i) * mo(q, j) * hcore[idx(i, j)];
                }
            }
            out.set_h(p, q, v);
        }
    }
    // Two-step (O(n⁵)) transform: (pq|kl) then (pq|rs).
    let mut half = vec![0.0; n * n * n * n];
    for p in 0..n {
        for q in 0..n {
            for k in 0..n {
                for l in 0..n {
                    let mut v = 0.0;
                    for i in 0..n {
                        for j in 0..n {
                            v += mo(p, i) * mo(q, j) * g_ao[gidx(i, j, k, l)];
                        }
                    }
                    half[gidx(p, q, k, l)] = v;
                }
            }
        }
    }
    for p in 0..n {
        for q in p..n {
            for r in 0..n {
                for s2 in r..n {
                    if (r, s2) < (p, q) {
                        continue;
                    }
                    let mut v = 0.0;
                    for k in 0..n {
                        for l in 0..n {
                            v += mo(r, k) * mo(s2, l) * half[gidx(p, q, k, l)];
                        }
                    }
                    out.set_g(p, q, r, s2, v);
                }
            }
        }
    }
    Ok(out)
}

/// A linear hydrogen chain with spacing `r` (bohr), half filling.
pub fn hydrogen_chain_sto3g(n_sites: usize, r: f64) -> Result<MolecularIntegrals> {
    let centers: Vec<[f64; 3]> = (0..n_sites).map(|k| [0.0, 0.0, r * k as f64]).collect();
    hydrogen_cluster(&centers, n_sites)
}

/// Eigendecomposition of a symmetric 2×2 matrix; returns (eigenvalues
/// ascending, eigenvectors as columns `evecs[row][col]`).
fn sym2_eigen(m: [[f64; 2]; 2]) -> ([f64; 2], [[f64; 2]; 2]) {
    let (a, b, c) = (m[0][0], m[0][1], m[1][1]);
    if b.abs() < 1e-300 {
        return if a <= c {
            ([a, c], [[1.0, 0.0], [0.0, 1.0]])
        } else {
            ([c, a], [[0.0, 1.0], [1.0, 0.0]])
        };
    }
    let tr = a + c;
    let det = a * c - b * b;
    let disc = (tr * tr / 4.0 - det).max(0.0).sqrt();
    let l0 = tr / 2.0 - disc;
    let l1 = tr / 2.0 + disc;
    let v0 = normalize2([b, l0 - a]);
    let v1 = normalize2([b, l1 - a]);
    ([l0, l1], [[v0[0], v1[0]], [v0[1], v1[1]]])
}

fn normalize2(v: [f64; 2]) -> [f64; 2] {
    let n = (v[0] * v[0] + v[1] * v[1]).sqrt();
    [v[0] / n, v[1] / n]
}

/// `Xᵀ M X` for 2×2 matrices.
fn mat2_sandwich(x: [[f64; 2]; 2], m: [[f64; 2]; 2]) -> [[f64; 2]; 2] {
    let mut mx = [[0.0f64; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            for k in 0..2 {
                mx[i][j] += m[i][k] * x[k][j];
            }
        }
    }
    let mut out = [[0.0f64; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            for k in 0..2 {
                out[i][j] += x[k][i] * mx[k][j];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const R_EQ: f64 = 1.400_8;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(5.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn boys_limits() {
        assert!((boys_f0(0.0) - 1.0).abs() < 1e-9);
        assert!((boys_f0(1e-12) - 1.0).abs() < 1e-9);
        // Large t: F0 → √(π/t)/2.
        let t = 30.0;
        assert!((boys_f0(t) - 0.5 * (PI / t).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn self_overlap_is_one() {
        let g = SGaussian::hydrogen([0.0; 3]);
        assert!((overlap(&g, &g) - 1.0).abs() < 1e-6, "{}", overlap(&g, &g));
    }

    #[test]
    fn szabo_ostlund_ao_integrals_at_equilibrium() {
        // Szabo & Ostlund table 3.5 (R = 1.4 a0, STO-3G, ζ = 1.24):
        // S12 = 0.6593, T11 = 0.7600, T12 = 0.2365,
        // (11|11) = 0.7746, (11|22) = 0.5697, (12|12) = 0.2970.
        let a = SGaussian::hydrogen([0.0, 0.0, 0.0]);
        let b = SGaussian::hydrogen([0.0, 0.0, 1.4]);
        assert!((overlap(&a, &b) - 0.6593).abs() < 2e-3);
        assert!((kinetic(&a, &a) - 0.7600).abs() < 2e-3);
        assert!((kinetic(&a, &b) - 0.2365).abs() < 2e-3);
        assert!((electron_repulsion(&a, &a, &a, &a) - 0.7746).abs() < 2e-3);
        assert!((electron_repulsion(&a, &a, &b, &b) - 0.5697).abs() < 2e-3);
        assert!((electron_repulsion(&a, &b, &a, &b) - 0.2970).abs() < 2e-3);
    }

    #[test]
    fn nuclear_attraction_matches_szabo_ostlund() {
        // V11 (own nucleus) = −1.2266, V12 = −0.5974 at R = 1.4 (single
        // center); table 3.5 values for the first nucleus.
        let a = SGaussian::hydrogen([0.0, 0.0, 0.0]);
        let b = SGaussian::hydrogen([0.0, 0.0, 1.4]);
        let v11 = nuclear_attraction(&a, &a, 1.0, [0.0, 0.0, 0.0]);
        let v12 = nuclear_attraction(&a, &b, 1.0, [0.0, 0.0, 0.0]);
        assert!((v11 + 1.2266).abs() < 2e-3, "{v11}");
        assert!((v12 + 0.5974).abs() < 2e-3, "{v12}");
    }

    #[test]
    fn mo_integrals_match_literature_at_equilibrium() {
        // The SCF + MO transform must land on the tabulated values used by
        // molecules::h2_sto3g (within basis-convention rounding).
        let m = h2_molecule(R_EQ).unwrap();
        let lit = crate::molecules::h2_sto3g();
        assert!(
            (m.h(0, 0) - lit.h(0, 0)).abs() < 3e-3,
            "{} vs {}",
            m.h(0, 0),
            lit.h(0, 0)
        );
        assert!((m.h(1, 1) - lit.h(1, 1)).abs() < 3e-3);
        assert!((m.g(0, 0, 0, 0) - lit.g(0, 0, 0, 0)).abs() < 3e-3);
        assert!((m.g(0, 0, 1, 1) - lit.g(0, 0, 1, 1)).abs() < 3e-3);
        assert!((m.g(0, 1, 0, 1) - lit.g(0, 1, 0, 1)).abs() < 3e-3);
        assert!((m.hf_total_energy() - lit.hf_total_energy()).abs() < 2e-3);
    }

    #[test]
    fn hf_energy_minimized_near_equilibrium() {
        let e = |r: f64| h2_molecule(r).unwrap().hf_total_energy();
        let e_eq = e(1.40);
        assert!(e_eq < e(1.1));
        assert!(e_eq < e(1.8));
        // Known minimum ≈ −1.1167 Ha.
        assert!((e_eq + 1.1167).abs() < 2e-3, "{e_eq}");
    }

    #[test]
    fn dissociation_limit_rhf_overbinds() {
        // RHF famously fails at dissociation: E_HF(R→∞) ≫ 2·E(H) = −0.934
        // (in STO-3G, H atom ≈ −0.4666). The curve must rise past
        // equilibrium.
        let e_far = h2_molecule(8.0).unwrap().hf_total_energy();
        let e_eq = h2_molecule(1.4).unwrap().hf_total_energy();
        assert!(e_far > e_eq + 0.2, "{e_far} vs {e_eq}");
    }

    #[test]
    fn fci_dissociation_is_size_consistent_to_atoms() {
        // FCI in the minimal basis dissociates to two STO-3G H atoms:
        // 2 × (−0.46658) ≈ −0.93316 Ha.
        let m = h2_molecule(10.0).unwrap();
        let h = m.to_qubit_hamiltonian().unwrap();
        let (e, _) = nwq_pauli::matrix::dense_ground_state(&h, 4000);
        assert!((e + 0.93316).abs() < 2e-3, "{e}");
    }

    #[test]
    fn jacobi_diagonalizes_known_matrices() {
        // [[2,1],[1,2]] has eigenvalues {1, 3} with (1,∓1)/√2.
        let (e, v) = jacobi_eigen(&[2.0, 1.0, 1.0, 2.0], 2);
        assert!((e[0] - 1.0).abs() < 1e-12);
        assert!((e[1] - 3.0).abs() < 1e-12);
        // Columns orthonormal.
        let dot01 = v[0] * v[1] + v[2] * v[3];
        assert!(dot01.abs() < 1e-12);
        // 3x3 with known spectrum: diag(1,2,3) rotated is still {1,2,3}.
        let m = [4.0, -2.0, 0.0, -2.0, 4.0, -2.0, 0.0, -2.0, 4.0];
        let (e3, _) = jacobi_eigen(&m, 3);
        // Eigenvalues of this tridiagonal: 4, 4 ± 2√2.
        assert!((e3[0] - (4.0 - 2.0 * 2.0f64.sqrt())).abs() < 1e-10);
        assert!((e3[1] - 4.0).abs() < 1e-10);
        assert!((e3[2] - (4.0 + 2.0 * 2.0f64.sqrt())).abs() < 1e-10);
    }

    #[test]
    fn cluster_reproduces_h2_molecule() {
        let a = h2_molecule(1.4).unwrap();
        let b = hydrogen_cluster(&[[0.0; 3], [0.0, 0.0, 1.4]], 2).unwrap();
        assert!((a.hf_total_energy() - b.hf_total_energy()).abs() < 1e-9);
        for p in 0..2 {
            for q in 0..2 {
                assert!((a.h(p, q).abs() - b.h(p, q).abs()).abs() < 1e-8);
            }
        }
        assert!((a.g(0, 0, 0, 0) - b.g(0, 0, 0, 0)).abs() < 1e-8);
    }

    #[test]
    fn h3_plus_is_bound() {
        // H3+ (equilateral, R ≈ 1.65 a0) is the textbook 2-electron
        // 3-center bond: its energy lies below H2 + bare proton.
        let r = 1.65;
        let h = r * 3.0f64.sqrt() / 2.0;
        let centers = [[0.0, 0.0, 0.0], [0.0, 0.0, r], [0.0, h, r / 2.0]];
        let m = hydrogen_cluster(&centers, 2).unwrap();
        let e_h3p = m.hf_total_energy();
        let e_h2 = h2_molecule(1.4).unwrap().hf_total_energy();
        assert!(e_h3p < e_h2 - 0.1, "H3+ {e_h3p} vs H2 {e_h2}");
        // Literature HF/STO-3G ≈ −1.25 ÷ −1.30 Ha region.
        assert!(e_h3p < -1.2 && e_h3p > -1.45, "{e_h3p}");
    }

    #[test]
    fn h4_chain_scf_and_fci_sanity() {
        let m = hydrogen_chain_sto3g(4, 1.8).unwrap();
        assert_eq!(m.n_spin_orbitals(), 8);
        // FCI (in the N = 4 sector via dense power iteration) must sit
        // below HF and above a crude lower bound.
        let h = m.to_qubit_hamiltonian().unwrap();
        let hf = m.hf_total_energy();
        let mut psi = vec![nwq_common::C_ZERO; 1 << 8];
        psi[m.hf_determinant() as usize] = nwq_common::C_ONE;
        let e_det = nwq_pauli::apply::expectation_op(&h, &psi).unwrap().re;
        assert!((e_det - hf).abs() < 1e-8, "⟨HF|H|HF⟩ {e_det} vs SCF {hf}");
        assert!(hf < 0.0, "chain should be bound at this spacing: {hf}");
    }

    #[test]
    fn h4_dissociates_to_two_h2() {
        // Two far-separated H2 units: cluster energy ≈ 2 × E(H2).
        let r = 1.4;
        let far = 40.0;
        let centers = [
            [0.0, 0.0, 0.0],
            [0.0, 0.0, r],
            [0.0, 0.0, far],
            [0.0, 0.0, far + r],
        ];
        let m = hydrogen_cluster(&centers, 4).unwrap();
        let e_h2 = h2_molecule(r).unwrap().hf_total_energy();
        assert!(
            (m.hf_total_energy() - 2.0 * e_h2).abs() < 2e-3,
            "{} vs {}",
            m.hf_total_energy(),
            2.0 * e_h2
        );
    }

    #[test]
    fn cluster_validation() {
        assert!(hydrogen_cluster(&[], 2).is_err());
        assert!(hydrogen_cluster(&[[0.0; 3]], 3).is_err());
        assert!(hydrogen_cluster(&[[0.0; 3]], 4).is_err());
        // Coincident centers make S singular.
        assert!(hydrogen_cluster(&[[0.0; 3], [0.0; 3]], 2).is_err());
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(h2_molecule(0.0).is_err());
        assert!(h2_molecule(-1.0).is_err());
        assert!(h2_molecule(f64::NAN).is_err());
    }
}
