//! Jordan–Wigner transformation.
//!
//! Maps fermionic ladder operators on `n` spin orbitals to Pauli operators
//! on `n` qubits:
//!
//! ```text
//! a†_p = (X_p − iY_p)/2 · Z_{p−1} ⊗ … ⊗ Z_0
//! a_p  = (X_p + iY_p)/2 · Z_{p−1} ⊗ … ⊗ Z_0
//! ```
//!
//! Products of ladder operators map through [`nwq_pauli::PauliOp::mul_op`],
//! so arbitrary second-quantized expressions (one-/two-body Hamiltonian
//! terms, cluster excitations, downfolding σ operators) transform without
//! special-case templates.

use crate::fermion::{FermionOp, FermionTerm};
use nwq_common::{Error, Result, C64};
use nwq_pauli::{Pauli, PauliOp, PauliString};

/// JW image of a single ladder operator.
pub fn ladder_to_pauli(n_qubits: usize, orbital: usize, creation: bool) -> Result<PauliOp> {
    if orbital >= n_qubits {
        return Err(Error::QubitOutOfRange {
            qubit: orbital,
            n_qubits,
        });
    }
    // Z string on qubits 0..orbital, X or Y at `orbital`.
    let mut x_ops: Vec<(usize, Pauli)> = (0..orbital).map(|q| (q, Pauli::Z)).collect();
    let mut y_ops = x_ops.clone();
    x_ops.push((orbital, Pauli::X));
    y_ops.push((orbital, Pauli::Y));
    let xs = PauliString::from_ops(n_qubits, &x_ops)?;
    let ys = PauliString::from_ops(n_qubits, &y_ops)?;
    let half = C64::real(0.5);
    // a† has −i/2 on Y, a has +i/2.
    let y_coeff = if creation {
        C64::new(0.0, -0.5)
    } else {
        C64::new(0.0, 0.5)
    };
    Ok(PauliOp::from_terms(
        n_qubits,
        vec![(half, xs), (y_coeff, ys)],
    ))
}

/// JW image of a product term.
pub fn term_to_pauli(n_qubits: usize, term: &FermionTerm) -> Result<PauliOp> {
    let mut acc = PauliOp::scalar(n_qubits, term.coeff);
    for &(p, c) in &term.ops {
        let ladder = ladder_to_pauli(n_qubits, p, c)?;
        acc = acc.mul_op(&ladder)?;
    }
    Ok(acc)
}

/// JW image of a full fermionic operator on an `n_qubits`-qubit register.
pub fn jordan_wigner(op: &FermionOp, n_qubits: usize) -> Result<PauliOp> {
    op.validate(n_qubits)?;
    let mut terms = Vec::new();
    for t in &op.terms {
        let p = term_to_pauli(n_qubits, t)?;
        terms.extend_from_slice(p.terms());
    }
    Ok(PauliOp::from_terms(n_qubits, terms))
}

/// The JW computational-basis index of a Slater determinant with the given
/// spin orbitals occupied (qubit `p` set ⇔ orbital `p` occupied).
pub fn determinant_index(occupied: &[usize]) -> u64 {
    occupied.iter().fold(0u64, |acc, &p| acc | (1u64 << p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_common::{C_ONE, C_ZERO};
    use nwq_pauli::matrix::op_to_dense;

    /// Dense matrix of a†_p on `n` qubits built from first principles
    /// (column = input basis state), including the JW sign string.
    fn dense_creation(n: usize, p: usize) -> Vec<C64> {
        let dim = 1usize << n;
        let mut m = vec![C_ZERO; dim * dim];
        for col in 0..dim {
            if (col >> p) & 1 == 0 {
                let row = col | (1 << p);
                // Fermionic sign: parity of occupied orbitals below p.
                let below = (col as u64) & ((1u64 << p) - 1);
                let sign = if below.count_ones() % 2 == 1 {
                    -1.0
                } else {
                    1.0
                };
                m[row * dim + col] = C64::real(sign);
            }
        }
        m
    }

    #[test]
    fn creation_matrix_matches_first_principles() {
        for n in 1..=4 {
            for p in 0..n {
                let jw = ladder_to_pauli(n, p, true).unwrap();
                let got = op_to_dense(&jw);
                let expect = dense_creation(n, p);
                for (a, b) in got.iter().zip(&expect) {
                    assert!(a.approx_eq(*b, 1e-12), "n={n} p={p}");
                }
            }
        }
    }

    #[test]
    fn annihilation_is_dagger_of_creation() {
        let n = 3;
        for p in 0..n {
            let c = ladder_to_pauli(n, p, true).unwrap();
            let a = ladder_to_pauli(n, p, false).unwrap();
            assert_eq!(c.dagger(), a, "p={p}");
        }
    }

    #[test]
    fn canonical_anticommutation_relations() {
        // {a_p, a†_q} = δ_pq, {a_p, a_q} = 0.
        let n = 3;
        for p in 0..n {
            for q in 0..n {
                let ap = ladder_to_pauli(n, p, false).unwrap();
                let aq_dag = ladder_to_pauli(n, q, true).unwrap();
                let anti = &ap.mul_op(&aq_dag).unwrap() + &aq_dag.mul_op(&ap).unwrap();
                if p == q {
                    assert_eq!(anti.num_terms(), 1);
                    assert!(anti.identity_coeff().approx_eq(C_ONE, 1e-12));
                } else {
                    assert!(anti.is_zero(), "{{a_{p}, a†_{q}}} ≠ 0");
                }
                let aq = ladder_to_pauli(n, q, false).unwrap();
                let anti2 = &ap.mul_op(&aq).unwrap() + &aq.mul_op(&ap).unwrap();
                assert!(anti2.is_zero(), "{{a_{p}, a_{q}}} ≠ 0");
            }
        }
    }

    #[test]
    fn number_operator_is_diagonal() {
        // a†_p a_p = (I − Z_p)/2.
        let n = 2;
        let num = jordan_wigner(&FermionOp::one_body(1.0, 1, 1), n).unwrap();
        assert_eq!(num.num_terms(), 2);
        assert!(num.identity_coeff().approx_eq(C64::real(0.5), 1e-12));
        let z_term = num
            .terms()
            .iter()
            .find(|(_, s)| s.label() == "ZI")
            .expect("Z1 term present");
        assert!(z_term.0.approx_eq(C64::real(-0.5), 1e-12));
    }

    #[test]
    fn hopping_term_is_hermitian_combination() {
        // a†_0 a_1 + a†_1 a_0 = (X0X1 + Y0Y1)/2.
        let mut f = FermionOp::one_body(1.0, 0, 1);
        f.add_assign(FermionOp::one_body(1.0, 1, 0));
        let h = jordan_wigner(&f, 2).unwrap();
        assert!(h.is_hermitian(1e-12));
        assert_eq!(h.num_terms(), 2);
        let get = |lbl: &str| {
            h.terms()
                .iter()
                .find(|(_, s)| s.label() == lbl)
                .map(|(c, _)| *c)
                .unwrap_or(C_ZERO)
        };
        assert!(get("XX").approx_eq(C64::real(0.5), 1e-12));
        assert!(get("YY").approx_eq(C64::real(0.5), 1e-12));
    }

    #[test]
    fn jw_strings_carry_z_tails() {
        // a†_2 acts with Z on qubits 0 and 1.
        let c = ladder_to_pauli(4, 2, true).unwrap();
        for (_, s) in c.terms() {
            assert_eq!(s.op(0), Pauli::Z);
            assert_eq!(s.op(1), Pauli::Z);
            assert_eq!(s.op(3), Pauli::I);
        }
    }

    #[test]
    fn anti_hermitian_excitation_maps_to_anti_hermitian_pauli() {
        let t = FermionOp::two_body(1.0, 2, 3, 1, 0).anti_hermitian_part();
        let p = jordan_wigner(&t, 4).unwrap();
        assert!(p.is_anti_hermitian(1e-12));
        assert!(!p.is_zero());
    }

    #[test]
    fn determinant_index_builds_bitmask() {
        assert_eq!(determinant_index(&[0, 1]), 0b11);
        assert_eq!(determinant_index(&[2]), 0b100);
        assert_eq!(determinant_index(&[]), 0);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(ladder_to_pauli(2, 2, true).is_err());
        assert!(jordan_wigner(&FermionOp::one_body(1.0, 5, 0), 3).is_err());
    }
}
