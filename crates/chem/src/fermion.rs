//! Second-quantized fermionic operators.
//!
//! A [`FermionOp`] is a weighted sum of products of creation/annihilation
//! operators on spin orbitals. It is the input language of the
//! Jordan–Wigner transform ([`crate::jw`]); all operator algebra needed
//! downstream (products for two-body terms, Hermitian conjugates for
//! anti-Hermitian cluster operators) lives here.

use nwq_common::{Error, Result, C64};
use std::fmt;

/// One ladder operator: `(orbital, is_creation)`.
pub type Ladder = (usize, bool);

/// A single product term `coeff · a†/a · a†/a · …` (operators applied
/// right-to-left like matrix products).
#[derive(Clone, Debug, PartialEq)]
pub struct FermionTerm {
    /// Complex weight.
    pub coeff: C64,
    /// Ladder operators, leftmost first.
    pub ops: Vec<Ladder>,
}

impl FermionTerm {
    /// A number-operator-style term from explicit ladder ops.
    pub fn new(coeff: C64, ops: Vec<Ladder>) -> Self {
        FermionTerm { coeff, ops }
    }

    /// Hermitian conjugate: reverse order, flip daggers, conjugate weight.
    pub fn dagger(&self) -> Self {
        FermionTerm {
            coeff: self.coeff.conj(),
            ops: self.ops.iter().rev().map(|&(p, c)| (p, !c)).collect(),
        }
    }

    /// Highest orbital index touched (`None` for the scalar term).
    pub fn max_orbital(&self) -> Option<usize> {
        self.ops.iter().map(|&(p, _)| p).max()
    }
}

/// A weighted sum of fermionic product terms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FermionOp {
    /// Terms of the sum.
    pub terms: Vec<FermionTerm>,
}

impl FermionOp {
    /// The zero operator.
    pub fn zero() -> Self {
        FermionOp { terms: Vec::new() }
    }

    /// A single term.
    pub fn single(coeff: C64, ops: Vec<Ladder>) -> Self {
        FermionOp {
            terms: vec![FermionTerm::new(coeff, ops)],
        }
    }

    /// One-body term `coeff · a†_p a_q`.
    pub fn one_body(coeff: f64, p: usize, q: usize) -> Self {
        FermionOp::single(C64::real(coeff), vec![(p, true), (q, false)])
    }

    /// Two-body term `coeff · a†_p a†_q a_r a_s`.
    pub fn two_body(coeff: f64, p: usize, q: usize, r: usize, s: usize) -> Self {
        FermionOp::single(
            C64::real(coeff),
            vec![(p, true), (q, true), (r, false), (s, false)],
        )
    }

    /// Appends all terms of `other`.
    pub fn add_assign(&mut self, other: FermionOp) {
        self.terms.extend(other.terms);
    }

    /// Adds one term.
    pub fn push(&mut self, coeff: C64, ops: Vec<Ladder>) {
        self.terms.push(FermionTerm::new(coeff, ops));
    }

    /// Hermitian conjugate of the sum.
    pub fn dagger(&self) -> Self {
        FermionOp {
            terms: self.terms.iter().map(FermionTerm::dagger).collect(),
        }
    }

    /// `self − self†` — the anti-Hermitian combination used for unitary
    /// cluster operators (`T − T†`).
    pub fn anti_hermitian_part(&self) -> Self {
        let mut out = self.clone();
        for t in self.dagger().terms {
            out.terms.push(FermionTerm {
                coeff: -t.coeff,
                ops: t.ops,
            });
        }
        out
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when there are no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Highest orbital index, for sizing the qubit register.
    pub fn max_orbital(&self) -> Option<usize> {
        self.terms.iter().filter_map(FermionTerm::max_orbital).max()
    }

    /// Validates that all orbitals are below `n`.
    pub fn validate(&self, n: usize) -> Result<()> {
        match self.max_orbital() {
            Some(m) if m >= n => Err(Error::QubitOutOfRange {
                qubit: m,
                n_qubits: n,
            }),
            _ => Ok(()),
        }
    }
}

impl fmt::Display for FermionTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.coeff)?;
        for &(p, c) in &self.ops {
            write!(f, " a{}{}", if c { "†" } else { "" }, p)?;
        }
        Ok(())
    }
}

impl fmt::Display for FermionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_common::C_ONE;

    #[test]
    fn construction() {
        let t = FermionOp::one_body(0.5, 2, 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.terms[0].ops, vec![(2, true), (1, false)]);
        let v = FermionOp::two_body(0.25, 0, 1, 2, 3);
        assert_eq!(v.terms[0].ops.len(), 4);
        assert_eq!(v.max_orbital(), Some(3));
    }

    #[test]
    fn dagger_reverses_and_flips() {
        let t = FermionTerm::new(C64::new(0.0, 1.0), vec![(0, true), (3, false)]);
        let d = t.dagger();
        assert_eq!(d.ops, vec![(3, true), (0, false)]);
        assert!(d.coeff.approx_eq(C64::new(0.0, -1.0), 1e-12));
        // Double dagger is identity.
        assert_eq!(d.dagger(), t);
    }

    #[test]
    fn anti_hermitian_part_doubles_terms() {
        let t = FermionOp::one_body(1.0, 1, 0);
        let a = t.anti_hermitian_part();
        assert_eq!(a.len(), 2);
        // a†_1 a_0 − a†_0 a_1.
        assert_eq!(a.terms[1].ops, vec![(0, true), (1, false)]);
        assert!(a.terms[1].coeff.approx_eq(-C_ONE, 1e-12));
    }

    #[test]
    fn validation() {
        let t = FermionOp::one_body(1.0, 5, 0);
        assert!(t.validate(5).is_err());
        assert!(t.validate(6).is_ok());
        assert!(FermionOp::zero().validate(0).is_ok());
    }

    #[test]
    fn display() {
        let t = FermionOp::one_body(1.0, 1, 0);
        let s = t.to_string();
        assert!(s.contains("a†1"));
        assert!(s.contains("a0"));
        assert_eq!(FermionOp::zero().to_string(), "0");
    }
}
