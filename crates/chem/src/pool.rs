//! Operator pools for ADAPT-VQE (paper §5.3).
//!
//! ADAPT-VQE grows its ansatz one operator at a time, picking the pool
//! element with the largest energy gradient `|⟨ψ|[H, A_k]|ψ⟩|`. Two pools
//! are provided: the fermionic singles+doubles pool (Grimsley et al.) and
//! a hardware-friendly qubit pool of individual Pauli strings drawn from
//! the fermionic generators (qubit-ADAPT).

use crate::uccsd::{uccsd_excitations, Excitation};
use nwq_common::{Result, C64};
use nwq_pauli::{PauliOp, PauliString};

/// A candidate ansatz-growth operator.
#[derive(Clone, Debug)]
pub struct PoolOperator {
    /// Human-readable provenance (e.g. `"0,1->2,3"`).
    pub name: String,
    /// Anti-Hermitian generator `A` (appended to the ansatz as `e^{θA}`).
    pub generator: PauliOp,
}

/// An ADAPT operator pool.
#[derive(Clone, Debug)]
pub struct OperatorPool {
    /// The candidate operators.
    pub ops: Vec<PoolOperator>,
}

impl OperatorPool {
    /// The fermionic singles+doubles pool on `n_spin_orbitals` qubits with
    /// the lowest `n_electrons` occupied.
    pub fn singles_doubles(n_spin_orbitals: usize, n_electrons: usize) -> Result<Self> {
        let excs = uccsd_excitations(n_spin_orbitals, n_electrons);
        let mut ops = Vec::with_capacity(excs.len());
        for exc in &excs {
            let generator = exc.generator(n_spin_orbitals)?;
            if !generator.is_zero() {
                ops.push(PoolOperator {
                    name: exc.name(),
                    generator,
                });
            }
        }
        Ok(OperatorPool { ops })
    }

    /// The qubit pool: every distinct Pauli string appearing in the
    /// fermionic pool, individually (as `i·P`, anti-Hermitian).
    pub fn qubit_pool(n_spin_orbitals: usize, n_electrons: usize) -> Result<Self> {
        let fermionic = Self::singles_doubles(n_spin_orbitals, n_electrons)?;
        let mut seen: std::collections::BTreeSet<PauliString> = Default::default();
        let mut ops = Vec::new();
        for op in &fermionic.ops {
            for (_, s) in op.generator.terms() {
                if seen.insert(*s) {
                    ops.push(PoolOperator {
                        name: format!("i{}", s.label()),
                        generator: PauliOp::single(C64::imag(1.0), *s),
                    });
                }
            }
        }
        Ok(OperatorPool { ops })
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the pool has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The ADAPT gradient of pool element `k` in state `psi`:
    /// `dE/dθ_k |_{θ_k=0} = ⟨ψ|[H, A_k]|ψ⟩` (real for Hermitian H and
    /// anti-Hermitian A).
    pub fn gradient(&self, k: usize, hamiltonian: &PauliOp, psi: &[C64]) -> Result<f64> {
        let comm = hamiltonian.commutator(&self.ops[k].generator)?;
        Ok(nwq_pauli::apply::expectation_op(&comm, psi)?.re)
    }

    /// Gradients of all pool elements (the ADAPT screening step).
    pub fn gradients(&self, hamiltonian: &PauliOp, psi: &[C64]) -> Result<Vec<f64>> {
        (0..self.ops.len())
            .map(|k| self.gradient(k, hamiltonian, psi))
            .collect()
    }

    /// Gradients of all pool elements via a shared `φ = H|ψ⟩`.
    ///
    /// For Hermitian `H` and anti-Hermitian `A` (so `A† = −A`),
    /// `⟨ψ|[H, A]|ψ⟩ = ⟨φ|Aψ⟩ + ⟨Aψ|φ⟩ = 2·Re⟨φ|A_k ψ⟩`, which lets the
    /// screening apply `H` **once** for the whole pool instead of forming
    /// one symbolic commutator per operator (the commutator of an
    /// `m`-term Hamiltonian with a `t`-term generator has up to `2·m·t`
    /// terms — the dominant screening cost for large pools). Results
    /// match [`OperatorPool::gradients`] to floating-point accuracy.
    pub fn gradients_via_phi(&self, hamiltonian: &PauliOp, psi: &[C64]) -> Result<Vec<f64>> {
        let phi = nwq_pauli::apply::apply_op(hamiltonian, psi)?;
        self.ops
            .iter()
            .map(|op| {
                let a_psi = nwq_pauli::apply::apply_op(&op.generator, psi)?;
                let inner: C64 = phi.iter().zip(&a_psi).map(|(f, a)| f.conj() * *a).sum();
                Ok(2.0 * inner.re)
            })
            .collect()
    }
}

/// Convenience: the single excitation used in tests/examples.
pub fn single_excitation_generator(n_qubits: usize, from: usize, to: usize) -> Result<PauliOp> {
    Excitation {
        from: vec![from],
        to: vec![to],
    }
    .generator(n_qubits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecules::h2_sto3g;

    #[test]
    fn h2_pool_size() {
        let pool = OperatorPool::singles_doubles(4, 2).unwrap();
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
    }

    #[test]
    fn all_generators_anti_hermitian() {
        for pool in [
            OperatorPool::singles_doubles(6, 2).unwrap(),
            OperatorPool::qubit_pool(6, 2).unwrap(),
        ] {
            for op in &pool.ops {
                assert!(op.generator.is_anti_hermitian(1e-12), "{}", op.name);
            }
        }
    }

    #[test]
    fn qubit_pool_has_singleton_generators() {
        let pool = OperatorPool::qubit_pool(4, 2).unwrap();
        assert!(!pool.is_empty());
        for op in &pool.ops {
            assert_eq!(op.generator.num_terms(), 1, "{}", op.name);
        }
        // Qubit pool is at least as large as the fermionic pool.
        let fermionic = OperatorPool::singles_doubles(4, 2).unwrap();
        assert!(pool.len() >= fermionic.len());
    }

    #[test]
    fn gradient_at_hf_identifies_double_excitation_for_h2() {
        // At the HF state of H2, single-excitation gradients vanish
        // (Brillouin's theorem); the double has a non-zero gradient.
        let m = h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let pool = OperatorPool::singles_doubles(4, 2).unwrap();
        let mut psi = vec![nwq_common::C_ZERO; 16];
        psi[m.hf_determinant() as usize] = nwq_common::C_ONE;
        let grads = pool.gradients(&h, &psi).unwrap();
        assert!(grads[0].abs() < 1e-8, "single grad {}", grads[0]);
        assert!(grads[1].abs() < 1e-8, "single grad {}", grads[1]);
        assert!(grads[2].abs() > 1e-3, "double grad {}", grads[2]);
    }

    #[test]
    fn phi_screening_matches_commutator_gradients() {
        // The shared-φ fast path must agree with the legacy per-operator
        // commutator expectation on both pools, at HF and at a state with
        // broad support (where every term contributes).
        let m = h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let mut hf = vec![nwq_common::C_ZERO; 16];
        hf[m.hf_determinant() as usize] = nwq_common::C_ONE;
        let mut spread: Vec<C64> = (0..16)
            .map(|i| C64::new(1.0 + (i as f64) * 0.3, 0.7 - (i as f64) * 0.11))
            .collect();
        let norm = spread.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        for a in &mut spread {
            *a *= C64::real(1.0 / norm);
        }
        for pool in [
            OperatorPool::singles_doubles(4, 2).unwrap(),
            OperatorPool::qubit_pool(4, 2).unwrap(),
        ] {
            for psi in [&hf, &spread] {
                let slow = pool.gradients(&h, psi).unwrap();
                let fast = pool.gradients_via_phi(&h, psi).unwrap();
                assert_eq!(slow.len(), fast.len());
                for (s, f) in slow.iter().zip(&fast) {
                    assert!((s - f).abs() < 1e-12, "{s} vs {f}");
                }
            }
        }
    }

    #[test]
    fn gradients_are_real_valued_and_finite() {
        let m = h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let pool = OperatorPool::qubit_pool(4, 2).unwrap();
        let mut psi = vec![nwq_common::C_ZERO; 16];
        psi[0b0011] = nwq_common::C_ONE;
        for g in pool.gradients(&h, &psi).unwrap() {
            assert!(g.is_finite());
        }
    }
}
