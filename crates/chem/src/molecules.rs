//! Model molecules.
//!
//! Three tiers, matching the substitution strategy in DESIGN.md:
//!
//! - [`h2_sto3g`] — *true literature integrals* (Szabo–Ostlund) so the full
//!   integrals → Jordan–Wigner → VQE chain is validated against known
//!   energies (HF −1.1167 Ha, FCI −1.1373 Ha);
//! - [`hydrogen_chain`] — a Hubbard-style hydrogen chain for correlation
//!   stress tests and examples;
//! - [`water_model`] — a deterministic synthetic generator standing in for
//!   the paper's downfolded H2O/cc-pV5Z Hamiltonians. It reproduces the
//!   *structural* properties the evaluation depends on: two-body index
//!   symmetry, a realistic magnitude hierarchy (core ≪ valence < virtual,
//!   Coulomb > exchange > multi-center), and the combinatorial O(n⁴) term
//!   growth of Fig 1b.

use crate::integrals::MolecularIntegrals;

/// H2 in the STO-3G basis at the equilibrium bond length (R = 1.401 a₀),
/// MO-basis integrals from Szabo & Ostlund.
pub fn h2_sto3g() -> MolecularIntegrals {
    let mut m = MolecularIntegrals::new(2, 2).expect("valid electron count");
    m.nuclear_repulsion = 0.713_754;
    m.set_h(0, 0, -1.252_477);
    m.set_h(1, 1, -0.475_934);
    m.set_g(0, 0, 0, 0, 0.674_493);
    m.set_g(1, 1, 1, 1, 0.697_397);
    m.set_g(0, 0, 1, 1, 0.663_472);
    m.set_g(0, 1, 0, 1, 0.181_287);
    m
}

/// A hydrogen-chain model with nearest-neighbour hopping `t` (< 0 for
/// bonding) and on-site repulsion `u` — Hubbard-like integrals in a local
/// orbital basis. `n_sites` spatial orbitals host `n_sites` electrons
/// (half filling, `n_sites` even).
pub fn hydrogen_chain(n_sites: usize, t: f64, u: f64) -> MolecularIntegrals {
    assert!(
        n_sites.is_multiple_of(2),
        "half filling needs an even site count"
    );
    let mut m = MolecularIntegrals::new(n_sites, n_sites).expect("valid electron count");
    m.nuclear_repulsion = 0.0;
    for p in 0..n_sites {
        m.set_h(p, p, -u * 0.5);
        if p + 1 < n_sites {
            m.set_h(p, p + 1, t);
        }
        m.set_g(p, p, p, p, u);
    }
    m
}

/// Deterministic synthetic "water-like" integrals on `n_spatial` orbitals
/// with `n_electrons` electrons (both the downfolded Fig 5 instance and
/// the Fig 1a/1b scaling series use this).
///
/// Magnitude model:
/// - diagonal `h_pp`: steeply negative for core orbitals, rising through
///   the valence shell into positive virtuals;
/// - off-diagonal `h_pq`: weak, exponentially decaying in `|p−q|`;
/// - Coulomb `(pp|qq)`: ~0.6–0.8 Ha decaying slowly with orbital
///   separation; exchange `(pq|qp)`: a few tenths decaying faster; general
///   `(pq|rs)`: product of pair factors, small for spread index sets.
///
/// Every value is a fixed smooth function of the indices, so term counts
/// and energies are reproducible without stored data files.
pub fn water_model(n_spatial: usize, n_electrons: usize) -> MolecularIntegrals {
    let mut m = MolecularIntegrals::new(n_spatial, n_electrons).expect("valid electron count");
    // O–H₂ nuclear repulsion at equilibrium geometry ≈ 9.19 Ha; constant
    // offset does not affect convergence behaviour, only absolute energies.
    m.nuclear_repulsion = 9.189_533;
    let nf = n_spatial as f64;
    for p in 0..n_spatial {
        let pf = p as f64;
        // Core-like decay into slowly rising virtuals.
        let diag = -20.0 * (-1.1 * pf).exp() - 1.4 + 0.23 * pf;
        m.set_h(p, p, diag);
        for q in (p + 1)..n_spatial {
            let qf = q as f64;
            let v = 0.12 * (-(0.55) * (qf - pf)).exp() * (0.9 + 0.1 * ((p + q) % 3) as f64);
            m.set_h(p, q, v);
        }
    }
    // Pair factor: large for compact pairs, decaying with separation and
    // with orbital height.
    let pair = |a: usize, b: usize| -> f64 {
        let d = (a as f64 - b as f64).abs();
        let height = (a + b) as f64 * 0.5;
        (-0.38 * d).exp() / (1.0 + 0.13 * height)
    };
    for p in 0..n_spatial {
        for q in p..n_spatial {
            for r in 0..n_spatial {
                for s in r..n_spatial {
                    // Canonical representative: (p≤q, r≤s, (p,q)≤(r,s)).
                    if (r, s) < (p, q) {
                        continue;
                    }
                    let centroid_gap = ((p + q) as f64 * 0.5 - (r + s) as f64 * 0.5).abs();
                    let base = 0.77 * pair(p, q) * pair(r, s) * (-0.21 * centroid_gap).exp();
                    // Suppress highly off-diagonal (small-overlap) terms,
                    // as real integrals do.
                    let offd = (p != q) as usize + (r != s) as usize;
                    let damp = match offd {
                        0 => 1.0,
                        1 => 0.32,
                        _ => 0.16,
                    };
                    let v = base * damp;
                    if v.abs() > 1e-10 {
                        m.set_g(p, q, r, s, v);
                    }
                    let _ = nf;
                }
            }
        }
    }
    m
}

/// The Fig 5 instance: a 6-orbital (12-qubit) downfolded-water-like active
/// space with 6 active electrons.
pub fn water_fig5() -> MolecularIntegrals {
    water_model(6, 6)
}

/// The Fig 1a/1b scaling series: active spaces of `n_spatial` orbitals
/// hosting the 10 electrons of water (requires `n_spatial ≥ 5`).
pub fn water_scaling(n_spatial: usize) -> MolecularIntegrals {
    assert!(
        n_spatial >= 5,
        "water needs at least 5 spatial orbitals for 10 electrons"
    );
    water_model(n_spatial, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2_integral_values() {
        let m = h2_sto3g();
        assert_eq!(m.n_spatial(), 2);
        assert_eq!(m.n_electrons(), 2);
        assert!((m.g(1, 0, 1, 0) - 0.181_287).abs() < 1e-12); // symmetry image
        assert!((m.g(1, 1, 0, 0) - 0.663_472).abs() < 1e-12);
    }

    #[test]
    fn hydrogen_chain_structure() {
        let m = hydrogen_chain(4, -1.0, 2.0);
        assert_eq!(m.n_spin_orbitals(), 8);
        assert_eq!(m.h(0, 1), -1.0);
        assert_eq!(m.h(1, 0), -1.0);
        assert_eq!(m.h(0, 2), 0.0);
        assert_eq!(m.g(2, 2, 2, 2), 2.0);
    }

    #[test]
    #[should_panic]
    fn odd_chain_rejected() {
        let _ = hydrogen_chain(3, -1.0, 2.0);
    }

    #[test]
    fn water_model_is_deterministic() {
        let a = water_model(6, 10);
        let b = water_model(6, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn water_model_magnitude_hierarchy() {
        let m = water_model(8, 10);
        // Core orbital far below valence.
        assert!(m.h(0, 0) < m.h(3, 3) - 5.0);
        // Virtuals above occupied.
        assert!(m.orbital_energy(7) > m.orbital_energy(1));
        // Coulomb beats exchange beats 4-index.
        assert!(m.g(2, 2, 3, 3) > m.g(2, 3, 3, 2));
        assert!(m.g(2, 3, 3, 2) > m.g(1, 4, 5, 2).abs());
    }

    #[test]
    fn water_model_symmetry_holds() {
        let m = water_model(5, 10);
        for (p, q, r, s) in [(0, 1, 2, 3), (1, 1, 2, 4), (0, 3, 3, 0)] {
            let v = m.g(p, q, r, s);
            assert_eq!(v, m.g(q, p, r, s));
            assert_eq!(v, m.g(p, q, s, r));
            assert_eq!(v, m.g(r, s, p, q));
        }
    }

    #[test]
    fn water_fig5_dimensions() {
        let m = water_fig5();
        assert_eq!(m.n_spin_orbitals(), 12);
        assert_eq!(m.n_occupied(), 3);
    }

    #[test]
    fn water_hf_below_zero_correlation_possible() {
        let m = water_fig5();
        // Electronic HF energy must be deeply bound (water-like scale).
        assert!(m.hf_electronic_energy() < -20.0);
    }
}
