//! Spin observables (S_z, S², particle number) as qubit operators.
//!
//! Useful both as physical validation (VQE ground states of closed-shell
//! molecules must be singlets) and as symmetry constraints for the
//! tapering machinery. Interleaved spin-orbital convention: spatial
//! orbital `p` has its α component on qubit `2p` and β on `2p+1`.

use crate::fermion::FermionOp;
use crate::jw::jordan_wigner;
use nwq_common::{Error, Result, C64};
use nwq_pauli::PauliOp;

fn check_even(n_spin_orbitals: usize) -> Result<usize> {
    if !n_spin_orbitals.is_multiple_of(2) {
        return Err(Error::Invalid(format!(
            "{n_spin_orbitals} spin orbitals: interleaved convention needs an even count"
        )));
    }
    Ok(n_spin_orbitals / 2)
}

/// Total particle-number operator `N = Σ_p n_p`.
pub fn number_operator(n_spin_orbitals: usize) -> Result<PauliOp> {
    let mut f = FermionOp::zero();
    for p in 0..n_spin_orbitals {
        f.add_assign(FermionOp::one_body(1.0, p, p));
    }
    jordan_wigner(&f, n_spin_orbitals)
}

/// `S_z = ½ Σ_p (n_{pα} − n_{pβ})`.
pub fn sz_operator(n_spin_orbitals: usize) -> Result<PauliOp> {
    let n_spatial = check_even(n_spin_orbitals)?;
    let mut f = FermionOp::zero();
    for p in 0..n_spatial {
        f.add_assign(FermionOp::one_body(0.5, 2 * p, 2 * p));
        f.add_assign(FermionOp::one_body(-0.5, 2 * p + 1, 2 * p + 1));
    }
    jordan_wigner(&f, n_spin_orbitals)
}

/// The spin-raising operator `S₊ = Σ_p a†_{pα} a_{pβ}` (fermionic form).
pub fn s_plus_fermion(n_spin_orbitals: usize) -> Result<FermionOp> {
    let n_spatial = check_even(n_spin_orbitals)?;
    let mut f = FermionOp::zero();
    for p in 0..n_spatial {
        f.add_assign(FermionOp::one_body(1.0, 2 * p, 2 * p + 1));
    }
    Ok(f)
}

/// Total-spin operator `S² = S₋S₊ + S_z(S_z + 1)`.
pub fn s_squared_operator(n_spin_orbitals: usize) -> Result<PauliOp> {
    let s_plus = jordan_wigner(&s_plus_fermion(n_spin_orbitals)?, n_spin_orbitals)?;
    let s_minus = s_plus.dagger();
    let sz = sz_operator(n_spin_orbitals)?;
    let sz_sq = sz.mul_op(&sz)?;
    let term1 = s_minus.mul_op(&s_plus)?;
    Ok(&(&term1 + &sz_sq) + &sz)
}

/// `⟨ψ|S²|ψ⟩` — 0 for singlets, 2 for triplets, `s(s+1)` generally.
pub fn s_squared_expectation(psi: &[C64], n_spin_orbitals: usize) -> Result<f64> {
    let op = s_squared_operator(n_spin_orbitals)?;
    Ok(nwq_pauli::apply::expectation_op(&op, psi)?.re)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_common::{C_ONE, C_ZERO};

    fn det_state(n_qubits: usize, det: u64) -> Vec<C64> {
        let mut v = vec![C_ZERO; 1 << n_qubits];
        v[det as usize] = C_ONE;
        v
    }

    #[test]
    fn number_operator_counts() {
        let n_op = number_operator(4).unwrap();
        for det in 0u64..16 {
            let psi = det_state(4, det);
            let n = nwq_pauli::apply::expectation_op(&n_op, &psi).unwrap().re;
            assert!((n - det.count_ones() as f64).abs() < 1e-12, "det {det:b}");
        }
    }

    #[test]
    fn sz_of_determinants() {
        let sz = sz_operator(4).unwrap();
        let expect = |det: u64| {
            let alpha = (det & 0b0101).count_ones() as f64;
            let beta = (det & 0b1010).count_ones() as f64;
            0.5 * (alpha - beta)
        };
        for det in 0u64..16 {
            let psi = det_state(4, det);
            let v = nwq_pauli::apply::expectation_op(&sz, &psi).unwrap().re;
            assert!((v - expect(det)).abs() < 1e-12, "det {det:b}");
        }
    }

    #[test]
    fn closed_shell_determinant_is_singlet() {
        // |α0 β0⟩ (both spins of orbital 0 occupied): S² = 0.
        let v = s_squared_expectation(&det_state(4, 0b0011), 4).unwrap();
        assert!(v.abs() < 1e-10, "S² = {v}");
    }

    #[test]
    fn parallel_spins_form_a_triplet() {
        // α0 α1 occupied: S = 1, S² = 2.
        let v = s_squared_expectation(&det_state(4, 0b0101), 4).unwrap();
        assert!((v - 2.0).abs() < 1e-10, "S² = {v}");
    }

    #[test]
    fn single_electron_is_a_doublet() {
        // One α electron: s = 1/2, S² = 3/4.
        let v = s_squared_expectation(&det_state(4, 0b0001), 4).unwrap();
        assert!((v - 0.75).abs() < 1e-10, "S² = {v}");
    }

    #[test]
    fn open_shell_singlet_combination() {
        // (|α0 β1⟩ − |β0 α1⟩)/√2 is the open-shell singlet: S² = 0.
        let mut psi = vec![C_ZERO; 16];
        let r = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        psi[0b1001] = r; // α0 (q0), β1 (q3)
        psi[0b0110] = -r; // β0 (q1), α1 (q2)
        let v = s_squared_expectation(&psi, 4).unwrap();
        assert!(v.abs() < 1e-10, "S² = {v}");
        // The symmetric combination is the m=0 triplet: S² = 2.
        psi[0b0110] = r;
        let v = s_squared_expectation(&psi, 4).unwrap();
        assert!((v - 2.0).abs() < 1e-10, "S² = {v}");
    }

    #[test]
    fn spin_operators_commute_with_h2_hamiltonian() {
        let h = crate::molecules::h2_sto3g().to_qubit_hamiltonian().unwrap();
        for op in [sz_operator(4).unwrap(), s_squared_operator(4).unwrap()] {
            let comm = h.commutator(&op).unwrap();
            assert!(comm.one_norm() < 1e-9, "norm {}", comm.one_norm());
        }
    }

    #[test]
    fn h2_ground_state_is_a_singlet() {
        let h = crate::molecules::h2_sto3g().to_qubit_hamiltonian().unwrap();
        let (_, gs) = nwq_pauli::matrix::dense_ground_state(&h, 2000);
        let v = s_squared_expectation(&gs, 4).unwrap();
        assert!(v.abs() < 1e-6, "S² = {v}");
    }

    #[test]
    fn odd_register_rejected() {
        assert!(sz_operator(3).is_err());
        assert!(s_squared_operator(5).is_err());
    }
}
