//! Coupled-cluster downfolding (paper §2).
//!
//! Two complementary implementations:
//!
//! 1. **Qubit-level Hermitian downfolding** — the literal Eq. 2 pipeline:
//!    build an anti-Hermitian external cluster operator σ_ext, expand
//!    `e^{−σ} H e^{σ}` as nested commutators truncated at second order
//!    (the truncation the paper's applications use), then project onto the
//!    active space with the external qubits frozen at their reference
//!    occupation. Exact-arithmetic Pauli algebra throughout; practical up
//!    to ~16 full qubits, which covers the validation studies.
//!
//! 2. **Integral-level downfolding** — the scalable path used for the
//!    Fig 1b/Fig 5 instances, where the parent basis (cc-pV5Z, hundreds of
//!    orbitals) can never be represented as a qubit operator. It performs
//!    the exact frozen-core fold (mean-field-exact renormalization of
//!    `h_pq` plus a scalar core energy) and folds the correlation energy
//!    of the discarded virtual space in via an MP2-style estimate — the
//!    second-order flavour of Eq. 2 at the integral level.

use crate::fermion::FermionOp;
use crate::integrals::MolecularIntegrals;
use nwq_common::{Error, Result, C64};
use nwq_pauli::{Pauli, PauliOp, PauliString};

// ---------------------------------------------------------------------------
// Qubit-level downfolding (Eq. 2).
// ---------------------------------------------------------------------------

/// Nested-commutator expansion of the similarity transform
/// `e^{−σ} H e^{σ} ≈ H + [H,σ] + ½[[H,σ],σ] + …` truncated at `order`
/// commutators (order 2 is the paper's working truncation).
pub fn commutator_expansion(h: &PauliOp, sigma: &PauliOp, order: usize) -> Result<PauliOp> {
    if !sigma.is_anti_hermitian(1e-10) {
        return Err(Error::Invalid("σ must be anti-Hermitian".into()));
    }
    let mut acc = h.clone();
    let mut nested = h.clone();
    let mut factorial = 1.0;
    for k in 1..=order {
        nested = nested.commutator(sigma)?;
        factorial *= k as f64;
        acc = &acc + &nested.scaled(C64::real(1.0 / factorial));
    }
    Ok(acc)
}

/// Projects a Pauli operator onto an active-qubit subspace, freezing the
/// remaining (external) qubits at the reference occupation given by
/// `external_occupation` (bit q set ⇔ external qubit q occupied in the
/// reference determinant).
///
/// Term-wise rule: an external X or Y factor has zero expectation in a
/// computational reference and kills the term; an external Z contributes
/// ±1 by occupation; external I contributes 1. Active factors survive,
/// re-indexed to `0..active.len()` in the order given.
pub fn project_active(h: &PauliOp, active: &[usize], external_occupation: u64) -> Result<PauliOp> {
    let n = h.n_qubits();
    let m = active.len();
    let mut position = vec![usize::MAX; n];
    for (new, &q) in active.iter().enumerate() {
        if q >= n {
            return Err(Error::QubitOutOfRange {
                qubit: q,
                n_qubits: n,
            });
        }
        if position[q] != usize::MAX {
            return Err(Error::DuplicateQubit(q));
        }
        position[q] = new;
    }
    let mut terms: Vec<(C64, PauliString)> = Vec::new();
    'terms: for &(c, s) in h.terms() {
        let mut coeff = c;
        let mut ops: Vec<(usize, Pauli)> = Vec::new();
        for (q, p) in s.iter_ops() {
            if position[q] != usize::MAX {
                ops.push((position[q], p));
            } else {
                match p {
                    Pauli::X | Pauli::Y => continue 'terms,
                    Pauli::Z => {
                        if (external_occupation >> q) & 1 == 1 {
                            coeff = -coeff;
                        }
                    }
                    Pauli::I => {}
                }
            }
        }
        terms.push((coeff, PauliString::from_ops(m, &ops)?));
    }
    Ok(PauliOp::from_terms(m, terms))
}

/// Full qubit-level Hermitian downfolding: commutator expansion followed by
/// active-space projection.
pub fn hermitian_downfold_qubit(
    h: &PauliOp,
    sigma: &PauliOp,
    active: &[usize],
    external_occupation: u64,
    order: usize,
) -> Result<PauliOp> {
    let transformed = commutator_expansion(h, sigma, order)?;
    project_active(&transformed, active, external_occupation)
}

/// Builds an MP2-amplitude external cluster operator
/// `σ = T_ext − T_ext†` over spin orbitals, where `T_ext` contains the
/// double excitations `i,j → a,b` with at least one index outside the
/// active spatial window `[0, n_active)` and amplitudes
/// `t = (ia|jb) / (ε_i + ε_j − ε_a − ε_b)`.
pub fn mp2_external_sigma(m: &MolecularIntegrals, n_active_spatial: usize) -> FermionOp {
    let occ = m.n_occupied();
    let n = m.n_spatial();
    let so = |p: usize, s: usize| 2 * p + s;
    let mut t_ext = FermionOp::zero();
    for i in 0..occ {
        for j in 0..occ {
            for a in occ..n {
                for b in occ..n {
                    let external = a >= n_active_spatial || b >= n_active_spatial;
                    if !external {
                        continue;
                    }
                    let num = m.g(i, a, j, b);
                    if num.abs() < 1e-12 {
                        continue;
                    }
                    let den = m.orbital_energy(i) + m.orbital_energy(j)
                        - m.orbital_energy(a)
                        - m.orbital_energy(b);
                    if den.abs() < 1e-8 {
                        continue;
                    }
                    let t = num / den;
                    // Opposite-spin component (the dominant channel).
                    let (ia, jb, aa, bb) = (so(i, 0), so(j, 1), so(a, 0), so(b, 1));
                    t_ext.push(
                        C64::real(t),
                        vec![(aa, true), (bb, true), (jb, false), (ia, false)],
                    );
                }
            }
        }
    }
    // Singles with an external target orbital: t_ie = F_ie/(ε_i − ε_e).
    for i in 0..occ {
        for a in occ.max(n_active_spatial)..n {
            let mut f_ia = m.h(i, a);
            for j in 0..occ {
                f_ia += 2.0 * m.g(i, a, j, j) - m.g(i, j, j, a);
            }
            let den = m.orbital_energy(i) - m.orbital_energy(a);
            if den.abs() < 1e-8 || f_ia.abs() < 1e-12 {
                continue;
            }
            let t = f_ia / den;
            for spin in 0..2 {
                t_ext.push(
                    C64::real(t),
                    vec![(so(a, spin), true), (so(i, spin), false)],
                );
            }
        }
    }
    t_ext.anti_hermitian_part()
}

// ---------------------------------------------------------------------------
// Integral-level downfolding (the scalable path).
// ---------------------------------------------------------------------------

/// Report of an integral-level downfold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DownfoldReport {
    /// Energy of the frozen core folded into the scalar part.
    pub core_energy: f64,
    /// MP2 estimate of the correlation energy recovered from the
    /// discarded external virtuals and folded into the scalar part.
    pub external_mp2_energy: f64,
    /// Second-order singles (orbital-relaxation) energy recovered from
    /// the discarded virtuals and folded into the scalar part.
    pub external_singles_energy: f64,
    /// Spatial orbitals removed below (core) and above (virtual) the
    /// active window.
    pub frozen_core: usize,
    /// Discarded virtual orbitals.
    pub discarded_virtuals: usize,
}

/// Exact frozen-core transformation: removes the lowest `n_frozen` doubly
/// occupied spatial orbitals, dressing the one-electron integrals with
/// their mean field and accumulating their energy into
/// `nuclear_repulsion` (standard, exact at the mean-field level).
pub fn freeze_core(m: &MolecularIntegrals, n_frozen: usize) -> Result<MolecularIntegrals> {
    if n_frozen > m.n_occupied() {
        return Err(Error::Invalid(format!(
            "cannot freeze {n_frozen} orbitals with only {} occupied",
            m.n_occupied()
        )));
    }
    let n_new = m.n_spatial() - n_frozen;
    let mut out = MolecularIntegrals::new(n_new, m.n_electrons() - 2 * n_frozen)?;
    // Core energy: 2Σ h_ii + Σ_ij [2(ii|jj) − (ij|ji)] over frozen i, j.
    let mut core = 0.0;
    for i in 0..n_frozen {
        core += 2.0 * m.h(i, i);
        for j in 0..n_frozen {
            core += 2.0 * m.g(i, i, j, j) - m.g(i, j, j, i);
        }
    }
    out.nuclear_repulsion = m.nuclear_repulsion + core;
    for p in 0..n_new {
        for q in p..n_new {
            let (op, oq) = (p + n_frozen, q + n_frozen);
            let mut v = m.h(op, oq);
            for i in 0..n_frozen {
                v += 2.0 * m.g(op, oq, i, i) - m.g(op, i, i, oq);
            }
            out.set_h(p, q, v);
        }
    }
    for p in 0..n_new {
        for q in p..n_new {
            for r in 0..n_new {
                for s in r..n_new {
                    if (r, s) < (p, q) {
                        continue;
                    }
                    let v = m.g(p + n_frozen, q + n_frozen, r + n_frozen, s + n_frozen);
                    if v != 0.0 {
                        out.set_g(p, q, r, s, v);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Bare truncation of the virtual space to `n_keep` spatial orbitals — the
/// baseline the paper says downfolding beats by orders of magnitude.
pub fn truncate_virtuals(m: &MolecularIntegrals, n_keep: usize) -> Result<MolecularIntegrals> {
    if n_keep < m.n_occupied() {
        return Err(Error::Invalid(format!(
            "active window {n_keep} cannot hold the {} occupied orbitals",
            m.n_occupied()
        )));
    }
    if n_keep > m.n_spatial() {
        return Err(Error::DimensionMismatch {
            expected: m.n_spatial(),
            got: n_keep,
        });
    }
    let mut out = MolecularIntegrals::new(n_keep, m.n_electrons())?;
    out.nuclear_repulsion = m.nuclear_repulsion;
    for p in 0..n_keep {
        for q in p..n_keep {
            out.set_h(p, q, m.h(p, q));
        }
    }
    for p in 0..n_keep {
        for q in p..n_keep {
            for r in 0..n_keep {
                for s in r..n_keep {
                    if (r, s) < (p, q) {
                        continue;
                    }
                    let v = m.g(p, q, r, s);
                    if v != 0.0 {
                        out.set_g(p, q, r, s, v);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// MP2 correlation energy restricted to double excitations with at least
/// one index outside the active window `[0, n_active)` — the correlation
/// content the bare truncation discards.
pub fn external_mp2_energy(m: &MolecularIntegrals, n_active: usize) -> f64 {
    let occ = m.n_occupied();
    let n = m.n_spatial();
    let mut e = 0.0;
    for i in 0..occ {
        for j in 0..occ {
            for a in occ..n {
                for b in occ..n {
                    if a < n_active && b < n_active {
                        continue;
                    }
                    let iajb = m.g(i, a, j, b);
                    let ibja = m.g(i, b, j, a);
                    let den = m.orbital_energy(i) + m.orbital_energy(j)
                        - m.orbital_energy(a)
                        - m.orbital_energy(b);
                    if den.abs() < 1e-8 {
                        continue;
                    }
                    e += iajb * (2.0 * iajb - ibja) / den;
                }
            }
        }
    }
    e
}

/// Second-order singles (orbital-relaxation) energy recovered from
/// external virtuals: `Σ_{i,e ext} 2·F_ie² / (ε_i − ε_e)` with the
/// off-diagonal Fock element `F_ie = h_ie + Σ_j [2(ie|jj) − (ij|je)]`.
///
/// In a non-canonical orbital basis the dominant energy lost by
/// truncating a virtual orbital is often this mean-field relaxation, not
/// MP2 doubles — the σ_ext of Eq. 2 contains exactly these single
/// excitations.
pub fn external_singles_energy(m: &MolecularIntegrals, n_active: usize) -> f64 {
    let occ = m.n_occupied();
    let n = m.n_spatial();
    let mut e = 0.0;
    for i in 0..occ {
        for a in n_active.max(occ)..n {
            let mut f_ia = m.h(i, a);
            for j in 0..occ {
                f_ia += 2.0 * m.g(i, a, j, j) - m.g(i, j, j, a);
            }
            let den = m.orbital_energy(i) - m.orbital_energy(a);
            if den.abs() < 1e-8 {
                continue;
            }
            e += 2.0 * f_ia * f_ia / den;
        }
    }
    e
}

/// Integral-level Hermitian downfold: freeze `n_frozen` core orbitals,
/// keep `n_active` spatial orbitals, and fold the external-virtual MP2
/// correlation into the scalar part of the effective Hamiltonian.
pub fn downfold_to_active(
    m: &MolecularIntegrals,
    n_frozen: usize,
    n_active: usize,
) -> Result<(MolecularIntegrals, DownfoldReport)> {
    let nuclear0 = m.nuclear_repulsion;
    let frozen = freeze_core(m, n_frozen)?;
    let core_energy = frozen.nuclear_repulsion - nuclear0;
    let ext_mp2 = external_mp2_energy(&frozen, n_active);
    let ext_singles = external_singles_energy(&frozen, n_active);
    let mut active = truncate_virtuals(&frozen, n_active)?;
    active.nuclear_repulsion += ext_mp2 + ext_singles;
    let report = DownfoldReport {
        core_energy,
        external_mp2_energy: ext_mp2,
        external_singles_energy: ext_singles,
        frozen_core: n_frozen,
        discarded_virtuals: frozen.n_spatial() - n_active,
    };
    Ok((active, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecules::{h2_sto3g, water_model};
    use nwq_pauli::matrix::dense_ground_state;

    #[test]
    fn commutator_expansion_order_zero_is_identity_transform() {
        let h = PauliOp::parse("1.0 ZZ + 0.5 XI").unwrap();
        let sigma = PauliOp::single(C64::imag(0.1), PauliString::parse("XY").unwrap());
        let out = commutator_expansion(&h, &sigma, 0).unwrap();
        assert_eq!(out, h);
    }

    #[test]
    fn commutator_expansion_rejects_hermitian_sigma() {
        let h = PauliOp::parse("1.0 ZZ").unwrap();
        let bad = PauliOp::parse("1.0 XX").unwrap();
        assert!(commutator_expansion(&h, &bad, 2).is_err());
    }

    #[test]
    fn commutator_expansion_preserves_hermiticity() {
        let h = PauliOp::parse("1.0 ZZ + 0.5 XI + 0.25 YY").unwrap();
        let sigma = PauliOp::single(C64::imag(0.2), PauliString::parse("XZ").unwrap());
        let out = commutator_expansion(&h, &sigma, 2).unwrap();
        assert!(out.is_hermitian(1e-10));
    }

    #[test]
    fn commutator_expansion_approximates_exact_transform() {
        // For σ = iθP, e^{−σ}He^{σ} is exactly computable:
        // H' = cos²|θ| terms… — instead verify spectrum preservation order
        // by order: the transform is unitary, so eigenvalues are preserved
        // exactly; the truncation error must shrink with order.
        let h = PauliOp::parse("1.0 ZI + 0.5 XX").unwrap();
        let sigma = PauliOp::single(C64::imag(0.05), PauliString::parse("YX").unwrap());
        let (e_exact, _) = dense_ground_state(&h, 800);
        let mut prev_err = f64::INFINITY;
        for order in [1usize, 2, 3] {
            let out = commutator_expansion(&h, &sigma, order).unwrap();
            let (e, _) = dense_ground_state(&out, 800);
            let err = (e - e_exact).abs();
            assert!(err <= prev_err + 1e-9, "order {order}: {err} > {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 1e-4);
    }

    #[test]
    fn projection_drops_external_xy_terms() {
        let h = PauliOp::parse("1.0 XZ + 0.5 ZZ + 0.25 IZ").unwrap();
        // Active = qubit 0 only; qubit 1 external, unoccupied.
        let p = project_active(&h, &[0], 0).unwrap();
        // XZ has X on external qubit 1 -> dropped. ZZ -> +Z. IZ -> Z.
        assert_eq!(p.n_qubits(), 1);
        assert_eq!(p.num_terms(), 1);
        assert!((p.terms()[0].0.re - 0.75).abs() < 1e-12);
        assert_eq!(p.terms()[0].1.label(), "Z");
    }

    #[test]
    fn projection_signs_follow_occupation() {
        let h = PauliOp::parse("1.0 ZZ").unwrap();
        let unocc = project_active(&h, &[0], 0b00).unwrap();
        let occ = project_active(&h, &[0], 0b10).unwrap();
        assert!((unocc.terms()[0].0.re - 1.0).abs() < 1e-12);
        assert!((occ.terms()[0].0.re + 1.0).abs() < 1e-12);
    }

    #[test]
    fn projection_matches_dense_projector() {
        // Compare against the explicit dense projection ⟨x_e = ref|H|x_e = ref⟩.
        let h = PauliOp::parse("0.7 XY + 0.4 ZI + 0.3 IZ + 0.2 YY").unwrap();
        // Active qubit 1; external qubit 0 occupied.
        let p = project_active(&h, &[1], 0b01).unwrap();
        let dense = nwq_pauli::matrix::op_to_dense(&h);
        // Subspace basis: |q1=0,q0=1⟩ = index 1, |q1=1,q0=1⟩ = index 3.
        let sub = [1usize, 3];
        let pd = nwq_pauli::matrix::op_to_dense(&p);
        for (r, &ri) in sub.iter().enumerate() {
            for (c, &ci) in sub.iter().enumerate() {
                assert!(
                    dense[ri * 4 + ci].approx_eq(pd[r * 2 + c], 1e-12),
                    "({r},{c})"
                );
            }
        }
    }

    #[test]
    fn projection_validates_indices() {
        let h = PauliOp::parse("1.0 ZZ").unwrap();
        assert!(project_active(&h, &[5], 0).is_err());
        assert!(project_active(&h, &[0, 0], 0).is_err());
    }

    #[test]
    fn freeze_core_preserves_hf_energy() {
        // Freezing occupied orbitals must keep the total HF energy exactly.
        let m = water_model(6, 6);
        let f = freeze_core(&m, 1).unwrap();
        assert_eq!(f.n_spatial(), 5);
        assert_eq!(f.n_electrons(), 4);
        assert!(
            (f.hf_total_energy() - m.hf_total_energy()).abs() < 1e-9,
            "{} vs {}",
            f.hf_total_energy(),
            m.hf_total_energy()
        );
    }

    #[test]
    fn freeze_core_limits() {
        let m = h2_sto3g();
        assert!(freeze_core(&m, 2).is_err());
        let same = freeze_core(&m, 0).unwrap();
        assert!((same.hf_total_energy() - m.hf_total_energy()).abs() < 1e-12);
    }

    #[test]
    fn truncate_virtuals_window_checks() {
        let m = water_model(6, 6);
        assert!(truncate_virtuals(&m, 2).is_err()); // below occupancy
        assert!(truncate_virtuals(&m, 7).is_err()); // above basis
        let t = truncate_virtuals(&m, 4).unwrap();
        assert_eq!(t.n_spatial(), 4);
        assert_eq!(t.n_electrons(), 6);
        // HF energy unchanged (occupied window intact).
        assert!((t.hf_total_energy() - m.hf_total_energy()).abs() < 1e-9);
    }

    #[test]
    fn external_mp2_is_negative_and_shrinks_with_window() {
        let m = water_model(8, 6);
        let e_small = external_mp2_energy(&m, 4);
        let e_big = external_mp2_energy(&m, 7);
        assert!(e_small < 0.0);
        // Larger active window discards less correlation.
        assert!(e_big > e_small);
        assert_eq!(external_mp2_energy(&m, 8), 0.0);
    }

    #[test]
    fn downfold_improves_on_bare_truncation() {
        // 4-orbital water-like model: full problem is 8 qubits; truncate
        // to 3 spatial orbitals (6 qubits). The downfolded Hamiltonian's
        // ground energy must be closer to the full FCI energy than the
        // bare truncation's. (A Hubbard-style chain would not work here:
        // its site basis has no (ia|jb) integrals, so external MP2
        // vanishes identically.)
        let m = water_model(4, 4);
        let h_full = m.to_qubit_hamiltonian().unwrap();
        let (e_full, _) = dense_ground_state(&h_full, 3000);

        let bare = truncate_virtuals(&m, 3).unwrap();
        let (e_bare, _) = dense_ground_state(&bare.to_qubit_hamiltonian().unwrap(), 3000);

        let (folded, report) = downfold_to_active(&m, 0, 3).unwrap();
        let (e_fold, _) = dense_ground_state(&folded.to_qubit_hamiltonian().unwrap(), 3000);

        let err_bare = (e_bare - e_full).abs();
        let err_fold = (e_fold - e_full).abs();
        assert!(
            err_fold < err_bare,
            "downfold err {err_fold} !< bare err {err_bare} (full {e_full})"
        );
        assert!(report.external_mp2_energy < 0.0);
        assert_eq!(report.discarded_virtuals, 1);
    }

    #[test]
    fn mp2_sigma_is_anti_hermitian_and_external() {
        let m = water_model(6, 6);
        let sigma_f = mp2_external_sigma(&m, 4);
        assert!(!sigma_f.is_empty());
        let sigma = crate::jw::jordan_wigner(&sigma_f, 12).unwrap();
        assert!(sigma.is_anti_hermitian(1e-10));
        // Every term must touch at least one external spin orbital (≥ 8).
        for t in &sigma_f.terms {
            assert!(t.ops.iter().any(|&(p, _)| p >= 8));
        }
    }

    #[test]
    fn eq2_downfold_beats_bare_truncation_by_an_order_of_magnitude() {
        // The paper (§2): downfolded Hamiltonians "reduce active space
        // errors by orders of magnitude compared to bare Hamiltonian
        // diagonalization". Reproduce on the 4-orbital water-like model
        // truncated to 3 orbitals.
        let m = water_model(4, 4);
        let h_full = m.to_qubit_hamiltonian().unwrap();
        // Sector-restricted ground energies via dense diagonalization in
        // the N = 4 subspace (8 qubits → filter determinants).
        let ground_in_sector = |h: &PauliOp, n_elec: usize| -> f64 {
            let nq = h.n_qubits();
            let dim = 1usize << nq;
            // Power iteration on (shift − H) restricted to the sector.
            let shift = h.one_norm() + 1.0;
            let in_sector = |i: usize| (i as u64).count_ones() as usize == n_elec;
            let mut v: Vec<C64> = (0..dim)
                .map(|i| {
                    if in_sector(i) {
                        C64::new(1.0 + (i as f64 * 0.37).sin() * 0.1, 0.0)
                    } else {
                        C64::default()
                    }
                })
                .collect();
            let normalize = |v: &mut Vec<C64>| {
                let n: f64 = v.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
                for a in v.iter_mut() {
                    *a = *a * (1.0 / n);
                }
            };
            normalize(&mut v);
            for _ in 0..2500 {
                let hv = nwq_pauli::apply::apply_op(h, &v).unwrap();
                for i in 0..dim {
                    v[i] = v[i] * shift - hv[i];
                    if !in_sector(i) {
                        v[i] = C64::default();
                    }
                }
                normalize(&mut v);
            }
            nwq_pauli::apply::expectation_op(h, &v).unwrap().re
        };
        let e_full = ground_in_sector(&h_full, 4);

        let bare = truncate_virtuals(&m, 3).unwrap();
        let e_bare = ground_in_sector(&bare.to_qubit_hamiltonian().unwrap(), 4);

        let sigma = crate::jw::jordan_wigner(&mp2_external_sigma(&m, 3), 8).unwrap();
        let active: Vec<usize> = (0..6).collect();
        let h_eff = hermitian_downfold_qubit(&h_full, &sigma, &active, 0, 2).unwrap();
        let e_eq2 = ground_in_sector(&h_eff, 4);

        let err_bare = (e_bare - e_full).abs();
        let err_eq2 = (e_eq2 - e_full).abs();
        assert!(
            err_eq2 * 10.0 < err_bare,
            "Eq.2 error {err_eq2} not >=10x better than bare {err_bare}"
        );
    }

    #[test]
    fn qubit_level_downfold_runs_end_to_end() {
        // Small end-to-end Eq. 2 exercise on H2-sized register: identity σ
        // behaviour at tiny amplitude ≈ bare projection.
        let m = h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let sigma = PauliOp::single(C64::imag(1e-6), PauliString::parse("XYII").unwrap());
        let active = [0usize, 1];
        let bare = project_active(&h, &active, 0).unwrap();
        let folded = hermitian_downfold_qubit(&h, &sigma, &active, 0, 2).unwrap();
        // Tiny σ: both agree to ~1e-5.
        let d = &bare - &folded;
        assert!(d.one_norm() < 1e-4);
    }
}
