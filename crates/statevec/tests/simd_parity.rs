//! Bitwise parity between the explicit-AVX kernel instantiations and the
//! forced-scalar path, and between the walker-batched multi-θ sweep and
//! independent per-θ evolution.
//!
//! The SIMD rewrite is only allowed to change *speed*: every vector body
//! evaluates the same floating-point expressions in the same order as
//! the scalar body, so results must match **bit for bit** — on the AVX2
//! host itself, not just on a scalar fallback machine. Likewise a
//! `WalkerSet` evolved through aligned plans must hold, per walker, the
//! exact amplitudes (and energies) of that walker's independent run.
//!
//! The scalar/SIMD switch is process-global, so every test in this file
//! serializes on one lock; a test observing the switch mid-flip would
//! otherwise silently compare scalar against scalar.

use nwq_common::mat::{mat_cp, mat_cx, mat_h, mat_rz, mat_rzz, mat_swap, mat_x, mat_y};
use nwq_common::C64;
use nwq_statevec::kernels::{apply_diag_sweep, apply_mat2, apply_mat4, DiagFactor};
use nwq_statevec::simd::set_force_scalar;
use nwq_statevec::{ExecPlan, Executor, WalkerSet};
use proptest::prelude::*;
use std::sync::Mutex;

static SCALAR_SWITCH: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SCALAR_SWITCH
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Deterministic pseudo-random normalized state (no RNG dependency).
fn rand_state(n: usize, seed: u64) -> Vec<C64> {
    let mut v: Vec<C64> = (0..1usize << n)
        .map(|i| {
            let t = (i as f64 * 0.61803 + seed as f64 * 0.77).sin();
            C64::new(t, (t * 1.7 + 0.3).cos())
        })
        .collect();
    let norm: f64 = v.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    for a in &mut v {
        *a = *a * (1.0 / norm);
    }
    v
}

fn bits(v: &[C64]) -> Vec<(u64, u64)> {
    v.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
}

/// Runs `body` twice on clones of `psi` — forced-scalar, then with the
/// runtime selection restored — and requires bitwise identity.
fn assert_scalar_simd_parity(psi: &[C64], what: &str, body: &dyn Fn(&mut [C64])) {
    let _g = lock();
    let mut scalar = psi.to_vec();
    set_force_scalar(true);
    body(&mut scalar);
    set_force_scalar(false);
    let mut simd = psi.to_vec();
    body(&mut simd);
    for (i, (s, v)) in scalar.iter().zip(&simd).enumerate() {
        assert!(
            s.re.to_bits() == v.re.to_bits() && s.im.to_bits() == v.im.to_bits(),
            "{what}: amplitude {i} differs bitwise: scalar {s:?} vs simd {v:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// mat2 sweeps across every stride regime: q = 0 exercises the
    /// interleaved stride-1 gather kernel, 1 ≤ q < 2 the scalar-tail
    /// run shape, larger q the full-run vector path, and n near the
    /// MIN_PAR thresholds the dispatch boundaries.
    #[test]
    fn mat2_scalar_vs_simd_bitwise(n in 9usize..14, q in 0usize..16, kind in 0u8..4, seed in 0u64..1000) {
        let q = q % n;
        let m = match kind {
            0 => mat_h(),
            1 => mat_x(),
            2 => mat_rz(0.1 + seed as f64 * 1e-3),
            _ => mat_y(),
        };
        let psi = rand_state(n, seed);
        assert_scalar_simd_parity(&psi, &format!("mat2 n={n} q={q} kind={kind}"), &|amps| {
            apply_mat2(amps, q, &m);
        });
    }

    /// mat4 across qubit pairs in both orders: lo = 0 exercises the
    /// interleaved quad kernel, adjacent and far pairs the blocked path.
    #[test]
    fn mat4_scalar_vs_simd_bitwise(
        n in 9usize..14,
        qa in 0usize..16,
        dq in 1usize..15,
        kind in 0u8..4,
        seed in 0u64..1000,
    ) {
        let qa = qa % n;
        let qb = (qa + 1 + (dq - 1) % (n - 1)) % n; // always != qa
        let m = match kind {
            0 => mat_cx(),
            1 => mat_swap(),
            2 => mat_rzz(0.1 + seed as f64 * 1e-3),
            _ => mat_cp(0.2 + seed as f64 * 1e-3),
        };
        let psi = rand_state(n, seed.wrapping_add(3));
        assert_scalar_simd_parity(&psi, &format!("mat4 n={n} qa={qa} qb={qb} kind={kind}"), &|amps| {
            apply_mat4(amps, qa, qb, &m);
        });
    }

    /// Fused diagonal sweeps: mixed one- and two-qubit factors through
    /// the single-pass table kernels.
    #[test]
    fn diag_sweep_scalar_vs_simd_bitwise(n in 9usize..14, nf in 1usize..5, seed in 0u64..1000) {
        let factors: Vec<DiagFactor> = (0..nf)
            .map(|f| {
                let phase = 0.3 + 0.17 * f as f64 + seed as f64 * 1e-3;
                let qa = (seed as usize + 3 * f) % n;
                if f % 2 == 0 {
                    let d = nwq_common::mat::mat_rz(phase);
                    DiagFactor::One { q: qa, d: [d.0[0][0], d.0[1][1]] }
                } else {
                    let qb = (qa + 1 + f) % n;
                    let (hi, lo) = (qa.max(qb), qa.min(qb));
                    let d = nwq_common::mat::mat_rzz(phase);
                    DiagFactor::Two { hi, lo, d: [d.0[0][0], d.0[1][1], d.0[2][2], d.0[3][3]] }
                }
            })
            .collect();
        let psi = rand_state(n, seed.wrapping_add(11));
        assert_scalar_simd_parity(&psi, &format!("diag n={n} nf={nf}"), &|amps| {
            apply_diag_sweep(amps, &factors);
        });
    }

    /// The blocked expectation sweep (group-phase sign fills + flip
    /// weights) must produce the same energy bits scalar and SIMD.
    #[test]
    fn expval_scalar_vs_simd_bitwise(n in 8usize..12, seed in 0u64..1000) {
        let mut terms = Vec::new();
        for j in 0..n {
            let mut z = vec![b'I'; n];
            z[j] = b'Z';
            terms.push((
                C64::real(0.4 + 0.01 * j as f64),
                nwq_pauli::PauliString::parse(std::str::from_utf8(&z).unwrap()).unwrap(),
            ));
            let mut xx = vec![b'I'; n];
            xx[j] = b'X';
            xx[(j + 1) % n] = if j % 2 == 0 { b'X' } else { b'Y' };
            terms.push((
                C64::real(0.1 + 0.02 * j as f64),
                nwq_pauli::PauliString::parse(std::str::from_utf8(&xx).unwrap()).unwrap(),
            ));
        }
        let op = nwq_pauli::PauliOp::from_terms(n, terms);
        let amps = rand_state(n, seed.wrapping_add(23));
        let state = nwq_statevec::StateVector::from_amplitudes(amps).unwrap();
        let _g = lock();
        set_force_scalar(true);
        let scalar = nwq_statevec::expval::energy_direct_batched(&state, &op).unwrap();
        set_force_scalar(false);
        let simd = nwq_statevec::expval::energy_direct_batched(&state, &op).unwrap();
        prop_assert_eq!(scalar.to_bits(), simd.to_bits());
    }

    /// An N-walker batched sweep must hold, per walker, exactly the
    /// amplitudes and energy of that walker's independent evolution —
    /// for any walker count (odd counts exercise the scalar trailing
    /// walker, ≥2 the paired vector lanes).
    #[test]
    fn walker_sweep_matches_independent_runs_bitwise(
        n in 4usize..9,
        nw in 1usize..7,
        layers in 1usize..3,
        seed in 0u64..1000,
    ) {
        let mut c = nwq_circuit::Circuit::new(n);
        for l in 0..layers {
            for q in 0..n {
                c.ry(q, nwq_circuit::ParamExpr::var(l * n + q));
            }
            for q in 0..n - 1 {
                c.cz(q, q + 1);
            }
            c.rz(l % n, nwq_circuit::ParamExpr::var(l * n));
        }
        let thetas: Vec<Vec<f64>> = (0..nw)
            .map(|w| {
                (0..c.n_params())
                    .map(|p| 0.2 + 0.11 * w as f64 + 0.007 * p as f64 + seed as f64 * 1e-4)
                    .collect()
            })
            .collect();
        let plans: Vec<ExecPlan> = thetas
            .iter()
            .map(|t| ExecPlan::compile(&c, t).unwrap())
            .collect();
        let mut set = WalkerSet::zero(n, nw).unwrap();
        Executor::new().run_plans_walkers(&plans, &mut set).unwrap();

        let mut zz = vec![b'I'; n];
        zz[0] = b'Z';
        zz[n - 1] = b'Z';
        let mut xx = vec![b'I'; n];
        xx[0] = b'X';
        xx[1] = b'X';
        let op = nwq_pauli::PauliOp::from_terms(
            n,
            vec![
                (C64::real(0.7), nwq_pauli::PauliString::parse(std::str::from_utf8(&zz).unwrap()).unwrap()),
                (C64::real(0.2), nwq_pauli::PauliString::parse(std::str::from_utf8(&xx).unwrap()).unwrap()),
            ],
        );
        let batched = nwq_statevec::walkers::walker_energies(&set, &op).unwrap();
        for (w, plan) in plans.iter().enumerate() {
            let single = Executor::new().run_plan(plan).unwrap();
            prop_assert_eq!(
                bits(set.walker_state(w).amplitudes()),
                bits(single.amplitudes())
            );
            let e = nwq_statevec::expval::energy_direct_batched(&single, &op).unwrap();
            prop_assert_eq!(batched[w].to_bits(), e.to_bits());
        }
    }
}
