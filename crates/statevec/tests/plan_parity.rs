//! Property tests: compiled-plan execution is numerically identical to
//! gate-by-gate execution of the same circuit at the same parameters.
//!
//! The generator biases toward the plan compiler's interesting paths:
//! diagonal runs (RZ/CZ/CP/RZZ chains → `DiagSweep` coalescing), 1q→2q
//! merges (single-qubit gates absorbed into CX/CZ blocks), and symbolic
//! parameters bound at compile time. Register widths 2–8 stay on the
//! serial kernels; a deterministic 13-qubit case crosses the parallel
//! dispatch thresholds.

use nwq_circuit::{Circuit, ParamExpr};
use nwq_statevec::{simulate, simulate_plan, ExecPlan, Executor, PlanOp};
use proptest::prelude::*;

const N_PARAMS: usize = 4;

/// A parameterized circuit: some angles are constants, some reference one
/// of `N_PARAMS` shared variational parameters (scaled, so distinct gates
/// bind to distinct values).
fn arb_symbolic_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let gate = (
        0..12u8,
        0..n,
        1..n.max(2),
        -3.0..3.0f64,
        0..N_PARAMS,
        proptest::bool::ANY,
    );
    proptest::collection::vec(gate, 0..max_len).prop_map(move |specs| {
        let mut c = Circuit::with_params(n, N_PARAMS);
        for (kind, q, dq, angle, var, symbolic) in specs {
            let q2 = (q + dq) % n;
            let expr = if symbolic {
                ParamExpr::scaled_var(var, if angle == 0.0 { 1.0 } else { angle })
            } else {
                ParamExpr::Const(angle)
            };
            match kind {
                // Diagonal-heavy arms: exercise DiagSweep coalescing.
                0 => c.rz(q, expr),
                1 if q2 != q => c.cz(q, q2),
                2 if q2 != q => c.rzz(q, q2, expr),
                3 if q2 != q => c.cp(q, q2, expr),
                4 => c.s(q),
                // Non-diagonal 1q: exercise 1q→1q and 1q→2q merges.
                5 => c.h(q),
                6 => c.ry(q, expr),
                7 => c.sx(q),
                8 => c.u3(q, angle, angle * 0.5, -angle),
                // 2q entanglers: merge targets for pending 1q blocks.
                9 if q2 != q => c.cx(q, q2),
                10 if q2 != q => c.swap(q, q2),
                _ => c.rx(q, expr),
            };
        }
        c
    })
}

fn arb_params() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-3.0..3.0f64, N_PARAMS)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_matches_gate_by_gate(
        (c, theta) in (2..=8usize).prop_flat_map(|n| (arb_symbolic_circuit(n, 32), arb_params()))
    ) {
        let via_plan = simulate_plan(&c, &theta).unwrap();
        let gate_by_gate = simulate(&c.bind(&theta).unwrap(), &[]).unwrap();
        for (a, b) in via_plan.amplitudes().iter().zip(gate_by_gate.amplitudes()) {
            prop_assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn plan_never_does_more_sweeps_than_gates(
        (c, theta) in (2..=6usize).prop_flat_map(|n| (arb_symbolic_circuit(n, 24), arb_params()))
    ) {
        let plan = ExecPlan::compile(&c, &theta).unwrap();
        prop_assert!(plan.len() <= c.len());
        prop_assert_eq!(plan.stats().gates_in, c.len());
        prop_assert_eq!(plan.stats().ops, plan.len());
        // Every DiagSweep carries at least two factors (single diagonals
        // stay plain ops so the kernel fast path handles them).
        for op in plan.ops() {
            if let PlanOp::DiagSweep(fs) = op {
                prop_assert!(fs.len() >= 2);
            }
        }
    }
}

/// Deterministic wide-register case: 2^13 amplitudes cross the kernels'
/// MIN_PAR_ELEMS threshold, so the plan runs through the parallel dispatch
/// paths (and the diag sweep's parallel branch).
#[test]
fn plan_matches_gate_by_gate_on_parallel_dispatch_widths() {
    let n = 13;
    let mut c = Circuit::with_params(n, 2);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    // A diagonal run over scattered qubits: coalesces into one sweep.
    c.rz(0, ParamExpr::var(0));
    c.rz(5, ParamExpr::scaled_var(1, -0.5));
    c.cz(2, 9).rzz(3, 11, 0.77).cp(12, 4, -1.1);
    // Trailing mixers so the diagonals sit mid-circuit.
    c.ry(6, ParamExpr::var(1)).h(12);
    let theta = [0.93, -1.37];

    let plan = ExecPlan::compile(&c, &theta).unwrap();
    assert!(
        plan.ops()
            .iter()
            .any(|op| matches!(op, PlanOp::DiagSweep(_))),
        "expected a coalesced diagonal sweep in {:?} ops",
        plan.len()
    );
    assert!(plan.len() < c.len());

    let mut ex = Executor::new();
    let via_plan = ex.run_plan(&plan).unwrap();
    assert_eq!(ex.stats().fused_blocks, plan.len() as u64);
    let gate_by_gate = simulate(&c.bind(&theta).unwrap(), &[]).unwrap();
    for (a, b) in via_plan.amplitudes().iter().zip(gate_by_gate.amplitudes()) {
        assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
    }
}
