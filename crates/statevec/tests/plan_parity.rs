//! Property tests: compiled-plan execution is numerically identical to
//! gate-by-gate execution of the same circuit at the same parameters, and
//! the structure/bind split is *bitwise* inert — a template bound against
//! θ produces exactly the bits a cold compile of the same circuit would.
//!
//! The generator biases toward the plan compiler's interesting paths:
//! diagonal runs (RZ/CZ/CP/RZZ chains → `DiagSweep` coalescing), 1q→2q
//! merges (single-qubit gates absorbed into CX/CZ blocks), and symbolic
//! parameters bound at bind time. Register widths 2–8 stay on the
//! serial kernels; a deterministic 13-qubit case crosses the parallel
//! dispatch thresholds.

use nwq_circuit::{Circuit, ParamExpr};
use nwq_statevec::cache::PostAnsatzCache;
use nwq_statevec::kernels::DiagFactor;
use nwq_statevec::{plan_cache, simulate, simulate_plan, ExecPlan, Executor, PlanOp, PlanTemplate};
use proptest::prelude::*;

const N_PARAMS: usize = 4;

/// A parameterized circuit: some angles are constants, some reference one
/// of `N_PARAMS` shared variational parameters (scaled, so distinct gates
/// bind to distinct values).
fn arb_symbolic_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let gate = (
        0..12u8,
        0..n,
        1..n.max(2),
        -3.0..3.0f64,
        0..N_PARAMS,
        proptest::bool::ANY,
    );
    proptest::collection::vec(gate, 0..max_len).prop_map(move |specs| {
        let mut c = Circuit::with_params(n, N_PARAMS);
        for (kind, q, dq, angle, var, symbolic) in specs {
            let q2 = (q + dq) % n;
            let expr = if symbolic {
                ParamExpr::scaled_var(var, if angle == 0.0 { 1.0 } else { angle })
            } else {
                ParamExpr::Const(angle)
            };
            match kind {
                // Diagonal-heavy arms: exercise DiagSweep coalescing.
                0 => c.rz(q, expr),
                1 if q2 != q => c.cz(q, q2),
                2 if q2 != q => c.rzz(q, q2, expr),
                3 if q2 != q => c.cp(q, q2, expr),
                4 => c.s(q),
                // Non-diagonal 1q: exercise 1q→1q and 1q→2q merges.
                5 => c.h(q),
                6 => c.ry(q, expr),
                7 => c.sx(q),
                8 => c.u3(q, angle, angle * 0.5, -angle),
                // 2q entanglers: merge targets for pending 1q blocks.
                9 if q2 != q => c.cx(q, q2),
                10 if q2 != q => c.swap(q, q2),
                _ => c.rx(q, expr),
            };
        }
        c
    })
}

fn arb_params() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-3.0..3.0f64, N_PARAMS)
}

/// Exact bit-level encoding of a plan: op kinds, operands, every matrix
/// element and diagonal factor as raw f64 bits. Two plans with equal
/// encodings execute identically down to the last ulp.
fn plan_bits(plan: &ExecPlan) -> Vec<u64> {
    let mut bits = vec![plan.n_qubits() as u64];
    let push_c = |bits: &mut Vec<u64>, c: nwq_common::C64| {
        bits.push(c.re.to_bits());
        bits.push(c.im.to_bits());
    };
    for op in plan.ops() {
        match op {
            PlanOp::One(q, m) => {
                bits.extend([1u64, *q as u64]);
                for r in 0..2 {
                    for c in 0..2 {
                        push_c(&mut bits, m.0[r][c]);
                    }
                }
            }
            PlanOp::Two(hi, lo, m) => {
                bits.extend([2u64, *hi as u64, *lo as u64]);
                for r in 0..4 {
                    for c in 0..4 {
                        push_c(&mut bits, m.0[r][c]);
                    }
                }
            }
            PlanOp::DiagSweep {
                start,
                len,
                two_qubit,
            } => {
                bits.extend([3u64, *start as u64, *len as u64, *two_qubit as u64]);
            }
        }
    }
    for f in plan.factors() {
        match f {
            DiagFactor::One { q, d } => {
                bits.extend([4u64, *q as u64]);
                for c in d {
                    push_c(&mut bits, *c);
                }
            }
            DiagFactor::Two { hi, lo, d } => {
                bits.extend([5u64, *hi as u64, *lo as u64]);
                for c in d {
                    push_c(&mut bits, *c);
                }
            }
        }
    }
    bits
}

fn state_bits(s: &nwq_statevec::StateVector) -> Vec<u64> {
    s.amplitudes()
        .iter()
        .flat_map(|a| [a.re.to_bits(), a.im.to_bits()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_matches_gate_by_gate(
        (c, theta) in (2..=8usize).prop_flat_map(|n| (arb_symbolic_circuit(n, 32), arb_params()))
    ) {
        let via_plan = simulate_plan(&c, &theta).unwrap();
        let gate_by_gate = simulate(&c.bind(&theta).unwrap(), &[]).unwrap();
        for (a, b) in via_plan.amplitudes().iter().zip(gate_by_gate.amplitudes()) {
            prop_assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn plan_never_does_more_sweeps_than_gates(
        (c, theta) in (2..=6usize).prop_flat_map(|n| (arb_symbolic_circuit(n, 24), arb_params()))
    ) {
        let plan = ExecPlan::compile(&c, &theta).unwrap();
        prop_assert!(plan.len() <= c.len());
        prop_assert_eq!(plan.stats().gates_in, c.len());
        prop_assert_eq!(plan.stats().ops, plan.len());
        // Sweeps carry at least one factor and every factor range stays in
        // bounds of the plan's flat factor table.
        for op in plan.ops() {
            if let PlanOp::DiagSweep { start, len, .. } = op {
                prop_assert!(*len >= 1);
                prop_assert!(start + len <= plan.factors().len());
            }
        }
    }

    /// The tentpole invariant: binding a prebuilt template is BITWISE
    /// identical to a cold, uncached compile — same ops, same matrices,
    /// same factors, and (therefore) the same amplitudes. Also covers the
    /// scratch-reuse path (`bind_into` on a dirty plan) and the global
    /// template cache path (`ExecPlan::compile`): a cache hit may never
    /// change a single bit of the result.
    #[test]
    fn template_bind_is_bitwise_cold_compile(
        (c, theta1, theta2) in (2..=7usize).prop_flat_map(
            |n| (arb_symbolic_circuit(n, 28), arb_params(), arb_params()))
    ) {
        let cold = ExecPlan::compile_uncached(&c, &theta1).unwrap();
        let template = PlanTemplate::build(&c).unwrap();
        let bound = template.bind(&theta1).unwrap();
        prop_assert_eq!(plan_bits(&cold), plan_bits(&bound));

        // Dirty the scratch with a different θ, then rebind θ1: the reused
        // allocations must not leak a single bit.
        let mut scratch = ExecPlan::empty();
        template.bind_into(&theta2, &mut scratch).unwrap();
        template.bind_into(&theta1, &mut scratch).unwrap();
        prop_assert_eq!(plan_bits(&cold), plan_bits(&scratch));

        // The cached entry (warm or cold — other tests share the global
        // cache) must return the same bits as the uncached compile.
        let via_cache = ExecPlan::compile(&c, &theta1).unwrap();
        prop_assert_eq!(plan_bits(&cold), plan_bits(&via_cache));

        // And execution of template-bound vs cold plans is bitwise equal.
        let mut ex = Executor::new();
        let a = ex.run_plan(&cold).unwrap();
        let b = ex.run_plan(&scratch).unwrap();
        prop_assert_eq!(state_bits(&a), state_bits(&b));
    }

    /// The post-ansatz cache's plan path (template → scratch bind → run)
    /// produces bitwise the state of a cold compile-and-run, on both a
    /// fresh cache and one whose scratch plan is dirty from another θ.
    #[test]
    fn post_ansatz_cache_plan_path_is_bitwise_cold(
        (c, theta1, theta2) in (2..=6usize).prop_flat_map(
            |n| (arb_symbolic_circuit(n, 20), arb_params(), arb_params()))
    ) {
        let mut ex = Executor::new();
        let cold_plan = ExecPlan::compile_uncached(&c, &theta1).unwrap();
        let cold = ex.run_plan(&cold_plan).unwrap();

        let mut cache = PostAnsatzCache::unbounded();
        // Dirty the scratch plan with θ2 first, then prepare θ1.
        cache.get_or_prepare_plan(&c, &theta2, &mut ex).unwrap();
        let via_cache = cache.get_or_prepare_plan(&c, &theta1, &mut ex).unwrap();
        prop_assert_eq!(state_bits(&cold), state_bits(via_cache));
    }
}

/// Deterministic wide-register case: 2^13 amplitudes cross the kernels'
/// MIN_PAR_ELEMS threshold, so the plan runs through the parallel dispatch
/// paths (and the diag sweep's parallel branch).
#[test]
fn plan_matches_gate_by_gate_on_parallel_dispatch_widths() {
    let n = 13;
    let mut c = Circuit::with_params(n, 2);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    // A diagonal run over scattered qubits: coalesces into one sweep.
    c.rz(0, ParamExpr::var(0));
    c.rz(5, ParamExpr::scaled_var(1, -0.5));
    c.cz(2, 9).rzz(3, 11, 0.77).cp(12, 4, -1.1);
    // Trailing mixers so the diagonals sit mid-circuit.
    c.ry(6, ParamExpr::var(1)).h(12);
    let theta = [0.93, -1.37];

    let plan = ExecPlan::compile(&c, &theta).unwrap();
    assert!(
        plan.ops()
            .iter()
            .any(|op| matches!(op, PlanOp::DiagSweep { .. })),
        "expected a coalesced diagonal sweep in {:?} ops",
        plan.len()
    );
    assert!(plan.len() < c.len());

    let mut ex = Executor::new();
    let via_plan = ex.run_plan(&plan).unwrap();
    assert_eq!(ex.stats().fused_blocks, plan.len() as u64);
    let gate_by_gate = simulate(&c.bind(&theta).unwrap(), &[]).unwrap();
    for (a, b) in via_plan.amplitudes().iter().zip(gate_by_gate.amplitudes()) {
        assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
    }
}

/// Clearing the global template cache and rebuilding must reproduce the
/// exact same plan bits — the cache can never be load-bearing for values.
#[test]
fn template_cache_clear_and_rebuild_is_bitwise_stable() {
    let mut c = Circuit::with_params(3, 2);
    c.h(0)
        .ry(1, ParamExpr::var(0))
        .cx(0, 1)
        .rz(2, ParamExpr::var(1))
        .cz(1, 2)
        .rzz(0, 2, 0.31);
    let theta = [0.41, -2.2];
    let before = ExecPlan::compile(&c, &theta).unwrap();
    plan_cache::clear();
    let after = ExecPlan::compile(&c, &theta).unwrap();
    assert_eq!(plan_bits(&before), plan_bits(&after));
}
