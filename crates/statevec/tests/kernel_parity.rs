//! Value-exact parity between the Rayon kernel dispatch paths and a
//! fully-serial mirror.
//!
//! Every dispatch path of `apply_mat2` / `apply_mat4` (outer-block
//! parallel, inner-split parallel, serial, diagonal fast path) computes
//! each amplitude pair/quad with the same arithmetic in the same order —
//! parallelism only changes *which thread* owns a block, never the
//! floating-point expression. The results must therefore be **bitwise
//! identical** to a serial mirror, not merely approximately equal. These
//! tests pin that guarantee across the `MIN_PAR_BLOCKS` /
//! `MIN_PAR_ELEMS` thresholds: at n = 12–15 qubits, low target qubits
//! take the block-parallel path, high qubits the inner-split path, and
//! diagonal matrices the multiply-only path.

use nwq_common::mat::{mat_cp, mat_cx, mat_h, mat_rz, mat_rzz, mat_swap, mat_x, mat_y};
use nwq_common::{Mat2, Mat4, C64};
use nwq_statevec::kernels::{apply_mat2, apply_mat4};
use proptest::prelude::*;

/// Serial mirror of `apply_mat2`, replicating both the diagonal fast path
/// and the general pair math expression-for-expression.
fn serial_mat2(amps: &mut [C64], q: usize, m: &Mat2) {
    if m.0[0][1].norm_sqr() == 0.0 && m.0[1][0].norm_sqr() == 0.0 {
        let (d0, d1) = (m.0[0][0], m.0[1][1]);
        for (i, a) in amps.iter_mut().enumerate() {
            let d = if (i >> q) & 1 == 1 { d1 } else { d0 };
            *a *= d;
        }
        return;
    }
    let stride = 1usize << q;
    let block = stride << 1;
    for c in amps.chunks_mut(block) {
        let (lo, hi) = c.split_at_mut(stride);
        for j in 0..stride {
            let a = lo[j];
            let b = hi[j];
            lo[j] = m.0[0][0] * a + m.0[0][1] * b;
            hi[j] = m.0[1][0] * a + m.0[1][1] * b;
        }
    }
}

/// Serial mirror of one 2×2 sub-block of a block-structured mat4: the
/// kernels SKIP identity sub-blocks (multiplying by exact `1+0i` flips
/// the sign of a `-0.0` real part when the imaginary part is `-0.0`, so
/// "skip" and "multiply by one" are NOT bitwise equivalent), multiply
/// diagonal ones in place, and pair-MAC dense ones.
fn serial_sub_pair(lo: &mut C64, hi: &mut C64, m: &Mat2) {
    let diag = m.0[0][1].norm_sqr() == 0.0 && m.0[1][0].norm_sqr() == 0.0;
    let one = |c: C64| c.re == 1.0 && c.im == 0.0;
    if diag && one(m.0[0][0]) && one(m.0[1][1]) {
        return; // identity: untouched
    }
    if diag {
        *lo *= m.0[0][0];
        *hi *= m.0[1][1];
        return;
    }
    let a = *lo;
    let b = *hi;
    *lo = m.0[0][0] * a + m.0[0][1] * b;
    *hi = m.0[1][0] * a + m.0[1][1] * b;
}

/// Serial mirror of `apply_mat4` (same qubit normalization, same quad
/// expression), including the diagonal and block-structured fast paths.
fn serial_mat4(amps: &mut [C64], qa: usize, qb: usize, m: &Mat4) {
    let (hi_q, lo_q, mat) = if qa > qb {
        (qa, qb, *m)
    } else {
        (qb, qa, m.swap_qubits())
    };
    if (0..4).all(|r| (0..4).all(|c| r == c || mat.0[r][c].norm_sqr() == 0.0)) {
        let d = [mat.0[0][0], mat.0[1][1], mat.0[2][2], mat.0[3][3]];
        for (i, a) in amps.iter_mut().enumerate() {
            let idx = (((i >> hi_q) & 1) << 1) | ((i >> lo_q) & 1);
            *a *= d[idx];
        }
        return;
    }
    let z = |r: usize, c: usize| mat.0[r][c].norm_sqr() == 0.0;
    // Hi-block-diagonal (e.g. CX with the control on the high bit): each
    // high-bit half evolves under its own 2×2 on the low bit.
    if z(0, 2) && z(0, 3) && z(1, 2) && z(1, 3) && z(2, 0) && z(2, 1) && z(3, 0) && z(3, 1) {
        let a = Mat2([[mat.0[0][0], mat.0[0][1]], [mat.0[1][0], mat.0[1][1]]]);
        let b = Mat2([[mat.0[2][2], mat.0[2][3]], [mat.0[3][2], mat.0[3][3]]]);
        let dim = amps.len();
        for i in 0..dim {
            if (i >> lo_q) & 1 == 0 {
                let j = i | (1 << lo_q);
                let sub = if (i >> hi_q) & 1 == 1 { &b } else { &a };
                let (l, r) = amps.split_at_mut(j);
                serial_sub_pair(&mut l[i], &mut r[0], sub);
            }
        }
        return;
    }
    // Lo-block-diagonal (e.g. CX with the control on the low bit): each
    // low-bit stripe evolves under its own 2×2 across the high bit.
    if z(0, 1) && z(0, 3) && z(2, 1) && z(2, 3) && z(1, 0) && z(1, 2) && z(3, 0) && z(3, 2) {
        let a = Mat2([[mat.0[0][0], mat.0[0][2]], [mat.0[2][0], mat.0[2][2]]]);
        let b = Mat2([[mat.0[1][1], mat.0[1][3]], [mat.0[3][1], mat.0[3][3]]]);
        let dim = amps.len();
        for i in 0..dim {
            if (i >> hi_q) & 1 == 0 {
                let j = i | (1 << hi_q);
                let sub = if (i >> lo_q) & 1 == 1 { &b } else { &a };
                let (l, r) = amps.split_at_mut(j);
                serial_sub_pair(&mut l[i], &mut r[0], sub);
            }
        }
        return;
    }
    let s_lo = 1usize << lo_q;
    let s_hi = 1usize << hi_q;
    let block = s_hi << 1;
    let lo_block = s_lo << 1;
    for c in amps.chunks_mut(block) {
        let (h0, h1) = c.split_at_mut(s_hi);
        for (c0, c1) in h0.chunks_mut(lo_block).zip(h1.chunks_mut(lo_block)) {
            let (c00, c01) = c0.split_at_mut(s_lo);
            let (c10, c11) = c1.split_at_mut(s_lo);
            for j in 0..s_lo {
                let v = [c00[j], c01[j], c10[j], c11[j]];
                let mut out = [C64::default(); 4];
                for (r, o) in out.iter_mut().enumerate() {
                    let row = &mat.0[r];
                    *o = row[0] * v[0] + row[1] * v[1] + row[2] * v[2] + row[3] * v[3];
                }
                c00[j] = out[0];
                c01[j] = out[1];
                c10[j] = out[2];
                c11[j] = out[3];
            }
        }
    }
}

/// Deterministic pseudo-random normalized state.
fn rand_state(n: usize, seed: u64) -> Vec<C64> {
    let mut v: Vec<C64> = (0..1usize << n)
        .map(|i| {
            let t = (i as f64 * 0.61803 + seed as f64 * 0.77).sin();
            C64::new(t, (t * 1.7 + 0.3).cos())
        })
        .collect();
    let norm: f64 = v.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    for a in &mut v {
        *a = *a * (1.0 / norm);
    }
    v
}

fn bits(v: &[C64]) -> Vec<(u64, u64)> {
    v.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
}

fn assert_bit_identical(fast: &[C64], slow: &[C64], what: &str) {
    for (i, (x, y)) in fast.iter().zip(slow).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: amplitude {i} differs bitwise: {x:?} vs {y:?}"
        );
    }
}

#[test]
fn mat2_bitwise_parity_across_dispatch_paths() {
    // n = 12..15 with low/mid/high q sweeps the block-parallel
    // (q <= n-4), inner-parallel (high q, stride >= MIN_PAR_ELEMS), and
    // small-stride serial branches.
    for n in 12..=15usize {
        for q in [0, 1, n / 2, n - 3, n - 2, n - 1] {
            for (label, m) in [
                ("h", mat_h()),
                ("x", mat_x()),
                ("y", mat_y()),
                ("rz", mat_rz(0.7)),
            ] {
                let psi = rand_state(n, (n * 31 + q) as u64);
                let mut fast = psi.clone();
                let mut slow = psi;
                apply_mat2(&mut fast, q, &m);
                serial_mat2(&mut slow, q, &m);
                assert_bit_identical(&fast, &slow, &format!("mat2 {label} n={n} q={q}"));
            }
        }
    }
}

#[test]
fn mat4_bitwise_parity_across_dispatch_paths() {
    for n in 12..=15usize {
        // Low/low, high/high, and mixed pairs in both argument orders.
        let pairs = [
            (0, 1),
            (1, 0),
            (n - 1, n - 2),
            (n - 2, n - 1),
            (0, n - 1),
            (n - 1, 0),
            (2, n - 3),
        ];
        for (qa, qb) in pairs {
            for (label, m) in [
                ("cx", mat_cx()),
                ("swap", mat_swap()),
                ("rzz", mat_rzz(0.9)),
                ("cp", mat_cp(0.4)),
            ] {
                let psi = rand_state(n, (n * 131 + qa * 17 + qb) as u64);
                let mut fast = psi.clone();
                let mut slow = psi;
                apply_mat4(&mut fast, qa, qb, &m);
                serial_mat4(&mut slow, qa, qb, &m);
                assert_bit_identical(&fast, &slow, &format!("mat4 {label} n={n} qa={qa} qb={qb}"));
            }
        }
    }
}

#[test]
fn mat4_block_identity_subblock_preserves_negative_zero() {
    // CX is block-structured with an identity sub-block on the
    // control=0 half. That half must be SKIPPED, not multiplied by
    // `1+0i`: for an amplitude `-0.0 - 0.0i`, `a *= C64::new(1.0, 0.0)`
    // yields `re = (-0.0 * 1.0) - (-0.0 * 0.0) = +0.0`, flipping the
    // sign bit. Random test states never hold exact zeros, so this case
    // pins the hazard explicitly with a hand-built state.
    let n = 13usize;
    let neg_zero = C64::new(-0.0, -0.0);
    for (qa, qb) in [(2usize, 9usize), (9, 2), (0, n - 1), (n - 1, 0)] {
        let mut psi = vec![neg_zero; 1usize << n];
        psi[0] = C64::new(1.0, 0.0);
        let mut fast = psi.clone();
        let mut slow = psi;
        apply_mat4(&mut fast, qa, qb, &mat_cx());
        serial_mat4(&mut slow, qa, qb, &mat_cx());
        assert_bit_identical(&fast, &slow, &format!("cx -0.0 qa={qa} qb={qb}"));
        // Amplitudes with both gate bits clear sit in the identity
        // sub-block (control = 0, target = 0): they must be bitwise
        // untouched — each -0.0 keeps its sign bit. (Amplitudes with the
        // control bit set go through the dense X sub-block's MAC, which
        // legitimately rewrites -0.0 to +0.0.)
        for (i, a) in fast.iter().enumerate() {
            if (i >> qa) & 1 != 0 || (i >> qb) & 1 != 0 {
                continue;
            }
            let want = if i == 0 { C64::new(1.0, 0.0) } else { neg_zero };
            assert!(
                a.re.to_bits() == want.re.to_bits() && a.im.to_bits() == want.im.to_bits(),
                "cx identity half rewrote amp {i}: {a:?} (qa={qa} qb={qb})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mat2_parity_random(n in 12usize..16, q in 0usize..16, kind in 0u8..4, seed in 0u64..1000) {
        let q = q % n;
        let m = match kind {
            0 => mat_h(),
            1 => mat_x(),
            2 => mat_rz(0.1 + seed as f64 * 1e-3),
            _ => mat_y(),
        };
        let psi = rand_state(n, seed);
        let mut fast = psi.clone();
        let mut slow = psi;
        apply_mat2(&mut fast, q, &m);
        serial_mat2(&mut slow, q, &m);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    #[test]
    fn mat4_parity_random(
        n in 12usize..16,
        qa in 0usize..16,
        dq in 1usize..15,
        kind in 0u8..4,
        seed in 0u64..1000,
    ) {
        let qa = qa % n;
        let qb = (qa + 1 + (dq - 1) % (n - 1)) % n; // always != qa
        let m = match kind {
            0 => mat_cx(),
            1 => mat_swap(),
            2 => mat_rzz(0.1 + seed as f64 * 1e-3),
            _ => mat_cp(0.2 + seed as f64 * 1e-3),
        };
        let psi = rand_state(n, seed.wrapping_add(7));
        let mut fast = psi.clone();
        let mut slow = psi;
        apply_mat4(&mut fast, qa, qb, &m);
        serial_mat4(&mut slow, qa, qb, &m);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }
}
