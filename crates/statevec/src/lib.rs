//! # nwq-statevec
//!
//! The single-node NWQ-Sim engine: a Rayon-parallel statevector simulator
//! with the paper's three VQE optimizations built in:
//!
//! - [`kernels`] — in-place parallel gate kernels (safe chunking, diagonal
//!   fast paths) — the CPU analog of NWQ-Sim's GPU amplitude updates;
//! - [`executor::Executor`] — circuit execution with gate accounting;
//! - [`plan::ExecPlan`] / [`plan::PlanTemplate`] — compiled circuits with
//!   a structure/bind split: the §4.3 fusion and commuting-diagonal
//!   coalescing decisions are made ONCE per circuit *shape*
//!   ([`plan::PlanTemplate::build`], cached globally by [`plan_cache`])
//!   and each new θ only replays the recorded arithmetic
//!   ([`plan::PlanTemplate::bind`], microseconds, zero re-fusion);
//! - [`cache::PostAnsatzCache`] — §4.1 post-ansatz state caching with the
//!   two-tier (device/host) memory model;
//! - [`expval`] — §4.1/§4.2 energy evaluation strategies (non-caching
//!   baseline, cached basis changes, direct expectation);
//! - [`measure`] — traditional shot-based sampling, kept as the baseline
//!   the direct method is compared against;
//! - [`state::StateVector`] — the amplitude container (Fig 1c memory
//!   model);
//! - [`batch`] — batched multi-parameter execution and batched
//!   parameter-shift gradients (paper §6.2 future work, implemented);
//! - [`simd`] — explicit AVX2 instantiations of every serial inner loop
//!   (pair/quad updates, fused diagonal sweeps, expectation fills), with
//!   a runtime force-scalar switch pinning scalar == SIMD bit-for-bit;
//! - [`walkers`] — walker-batched multi-θ evolution: one amplitude-major
//!   [`WalkerSet`] carries N parameter sets through aligned plans so each
//!   cache line and each per-term phase sweep is touched once for all θ.

#![warn(missing_docs)]

pub mod adjoint;
pub mod batch;
pub mod cache;
pub mod density;
pub mod executor;
pub mod expval;
pub mod kernels;
pub mod measure;
pub mod plan;
pub mod plan_cache;
pub mod simd;
pub mod state;
pub mod stats;
pub mod walkers;

pub use adjoint::{AdjointGradient, AdjointTape, AdjointTemplate};
pub use executor::{simulate, simulate_plan, Executor, NormGuard};
pub use plan::{BoundBlock, ExecPlan, PlanOp, PlanStats, PlanTemplate};
pub use state::StateVector;
pub use walkers::WalkerSet;

#[cfg(test)]
mod proptests {
    use crate::executor::simulate;
    use nwq_circuit::reference;
    use nwq_circuit::Circuit;
    use proptest::prelude::*;

    fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
        let gate = (0..11u8, 0..n, 1..n.max(2), -3.0..3.0f64);
        proptest::collection::vec(gate, 0..max_len).prop_map(move |specs| {
            let mut c = Circuit::new(n);
            for (kind, q, dq, angle) in specs {
                let q2 = (q + dq) % n;
                match kind {
                    0 => c.h(q),
                    1 => c.x(q),
                    2 => c.s(q),
                    3 => c.sx(q),
                    4 => c.rz(q, angle),
                    5 => c.ry(q, angle),
                    6 => c.u3(q, angle, angle * 0.5, -angle),
                    7 if q2 != q => c.cx(q, q2),
                    8 if q2 != q => c.cz(q, q2),
                    9 if q2 != q => c.rzz(q, q2, angle),
                    10 if q2 != q => c.swap(q, q2),
                    _ => c.rx(q, angle),
                };
            }
            c
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn executor_matches_reference(c in arb_circuit(5, 28)) {
            let fast = simulate(&c, &[]).unwrap();
            let slow = reference::run(&c, &[]).unwrap();
            for (a, b) in fast.amplitudes().iter().zip(&slow) {
                prop_assert!(a.approx_eq(*b, 1e-8));
            }
        }

        #[test]
        fn executor_preserves_norm(c in arb_circuit(6, 40)) {
            let s = simulate(&c, &[]).unwrap();
            prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-8);
        }

        #[test]
        fn noisy_execution_preserves_trace_and_bounds_purity(
            c in arb_circuit(3, 12), p in 0.0..0.4f64
        ) {
            let noise = crate::density::NoiseModel::depolarizing(p, p);
            let rho = crate::density::run_noisy(&c, &[], &noise).unwrap();
            prop_assert!((rho.trace().re - 1.0).abs() < 1e-8);
            prop_assert!(rho.trace().im.abs() < 1e-10);
            let purity = rho.purity();
            prop_assert!(purity <= 1.0 + 1e-9);
            prop_assert!(purity >= 1.0 / 8.0 - 1e-9); // ≥ maximally mixed
        }

        #[test]
        fn fused_execution_matches_unfused(c in arb_circuit(4, 24)) {
            let plain = simulate(&c, &[]).unwrap();
            let (fused, _) = nwq_circuit::fusion::fuse(&c).unwrap();
            let opt = simulate(&fused, &[]).unwrap();
            let fid = reference::fidelity(plain.amplitudes(), opt.amplitudes());
            prop_assert!((fid - 1.0).abs() < 1e-8);
        }
    }
}
