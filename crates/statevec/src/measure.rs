//! Shot-based sampling — the *traditional* estimation path the paper's
//! direct method replaces (§4.2.1). Kept as a first-class backend both for
//! fidelity to real-hardware workflows and as the baseline in the
//! direct-vs-sampling benchmarks.

use crate::state::StateVector;
use nwq_common::{bits::masked_parity, Error, Result};
use nwq_pauli::grouping::MeasurementGroup;
use rand::Rng;
use std::collections::HashMap;

/// Samples `shots` computational-basis outcomes from `state`.
///
/// Uses inverse-transform sampling over the cumulative distribution;
/// preparation is O(2^n), each shot O(log 2^n).
pub fn sample_counts<R: Rng>(state: &StateVector, shots: usize, rng: &mut R) -> HashMap<u64, u64> {
    let mut cdf = Vec::with_capacity(state.len());
    let mut acc = 0.0;
    for a in state.amplitudes() {
        acc += a.norm_sqr();
        cdf.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for _ in 0..shots {
        let r: f64 = rng.gen::<f64>() * total;
        let idx = cdf.partition_point(|&c| c < r).min(state.len() - 1);
        *counts.entry(idx as u64).or_insert(0) += 1;
    }
    counts
}

/// Estimates the expectation of a *diagonal* Pauli string (given by its
/// support mask) from sampled counts.
pub fn estimate_diagonal(counts: &HashMap<u64, u64>, support: u64) -> f64 {
    let shots: u64 = counts.values().sum();
    if shots == 0 {
        return 0.0;
    }
    let signed: f64 = counts
        .iter()
        .map(|(&x, &n)| {
            if masked_parity(x, support) {
                -(n as f64)
            } else {
                n as f64
            }
        })
        .sum();
    signed / shots as f64
}

/// Shot-based energy estimate for a measurement group whose basis change
/// has already been applied to `state`.
pub fn sampled_group_energy<R: Rng>(
    state: &StateVector,
    group: &MeasurementGroup,
    shots: usize,
    rng: &mut R,
) -> Result<f64> {
    if shots == 0 {
        return Err(Error::Invalid("shots must be positive".into()));
    }
    let counts = sample_counts(state, shots, rng);
    let mut e = 0.0;
    for (c, s) in &group.terms {
        e += c.re * estimate_diagonal(&counts, s.support());
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_circuit::Circuit;
    use nwq_pauli::PauliOp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_state_sampling() {
        let s = StateVector::basis(3, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let counts = sample_counts(&s, 100, &mut rng);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&5], 100);
    }

    #[test]
    fn uniform_state_sampling_spreads() {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.h(q);
        }
        let s = crate::executor::simulate(&c, &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let counts = sample_counts(&s, 8000, &mut rng);
        assert_eq!(counts.len(), 8);
        for &n in counts.values() {
            // each ≈ 1000, loose 5σ bound
            assert!((n as f64 - 1000.0).abs() < 160.0, "count {n}");
        }
    }

    #[test]
    fn diagonal_estimation_exact_cases() {
        let mut counts = HashMap::new();
        counts.insert(0b00, 50);
        counts.insert(0b11, 50);
        // ZZ support = 0b11: both outcomes have even parity -> +1.
        assert!((estimate_diagonal(&counts, 0b11) - 1.0).abs() < 1e-12);
        // ZI support = 0b10: half +1, half −1 -> 0.
        assert!(estimate_diagonal(&counts, 0b10).abs() < 1e-12);
        assert_eq!(estimate_diagonal(&HashMap::new(), 0b1), 0.0);
    }

    #[test]
    fn sampled_energy_converges_to_direct() {
        let mut c = Circuit::new(2);
        c.ry(0, 0.8).cx(0, 1);
        let s = crate::executor::simulate(&c, &[]).unwrap();
        let h = PauliOp::parse("0.6 ZZ + 0.4 ZI").unwrap();
        let groups = nwq_pauli::grouping::group_qubit_wise(&h);
        assert_eq!(groups.len(), 1);
        let direct = s.energy(&h).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let sampled = sampled_group_energy(&s, &groups[0], 200_000, &mut rng).unwrap();
        // Statistical error ~ 1/√shots ≈ 2e-3; allow 5σ.
        assert!(
            (sampled - direct).abs() < 0.012,
            "sampled {sampled} vs direct {direct}"
        );
    }

    #[test]
    fn zero_shots_rejected() {
        let s = StateVector::zero(1);
        let h = PauliOp::parse("1.0 Z").unwrap();
        let groups = nwq_pauli::grouping::group_qubit_wise(&h);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sampled_group_energy(&s, &groups[0], 0, &mut rng).is_err());
    }
}
