//! Batched execution (paper §6.2 "future improvements").
//!
//! The paper proposes simulating independent circuits/parameter sets
//! concurrently to raise device utilization. On the CPU substrate this is
//! a Rayon parallel map over parameter sets — each batch entry owns its
//! statevector, so the batch scales across cores without synchronization.
//! The headline consumer is the batched parameter-shift gradient: all
//! `2·n_params` shifted energy evaluations of one gradient run as a
//! single batch.

use crate::executor::Executor;
use crate::expval::energy_direct_batched;
use crate::kernels::parallel_dispatch_enabled;
use crate::plan::ExecPlan;
use crate::state::StateVector;
use crate::walkers::{plans_aligned, walker_energies, WalkerSet};
use nwq_circuit::Circuit;
use nwq_common::Result;
use nwq_pauli::PauliOp;
use rayon::prelude::*;

/// Runs `circuit` once per parameter set, in parallel. Each entry compiles
/// its own [`ExecPlan`] (parameters differ, so matrices differ) and runs
/// the fused plan. Returns the final states in input order.
pub fn run_batch(circuit: &Circuit, param_sets: &[Vec<f64>]) -> Result<Vec<StateVector>> {
    param_sets
        .par_iter()
        .map(|params| {
            let plan = ExecPlan::compile(circuit, params)?;
            Executor::new().run_plan(&plan)
        })
        .collect()
}

/// Batched energy evaluation: `E(θ_k) = ⟨ψ(θ_k)|H|ψ(θ_k)⟩` for every
/// parameter set, through the compiled-plan and batched
/// direct-expectation fast paths.
///
/// On a multi-core pool the batch runs as a Rayon parallel map, one
/// independent state per entry. On a single-thread pool (where that map
/// is pure dispatch overhead) multi-θ batches instead take the
/// walker-batched path: one plan bind per θ, one blocked kernel sweep
/// per op for all walkers, and a shared flip-group phase in the readout
/// — bitwise identical per entry to the independent path (see
/// [`crate::walkers`]).
pub fn batched_energies(
    circuit: &Circuit,
    param_sets: &[Vec<f64>],
    observable: &PauliOp,
) -> Result<Vec<f64>> {
    if parallel_dispatch_enabled() || param_sets.len() < 2 {
        return param_sets
            .par_iter()
            .map(|params| {
                let plan = ExecPlan::compile(circuit, params)?;
                let state = Executor::new().run_plan(&plan)?;
                energy_direct_batched(&state, observable)
            })
            .collect();
    }
    walker_batched_energies(circuit, param_sets, observable)
}

/// The walker-batched multi-θ energy path: compile (template-cached bind)
/// one plan per θ, evolve all walkers through one blocked sweep per op,
/// and read out every energy with a shared per-index group phase. Falls
/// back to independent serial evaluation when the binds are not
/// shape-aligned (a θ landing exactly on a diagonal special point can
/// change an op's kind). Results are bitwise identical to evaluating each
/// θ independently either way.
pub fn walker_batched_energies(
    circuit: &Circuit,
    param_sets: &[Vec<f64>],
    observable: &PauliOp,
) -> Result<Vec<f64>> {
    let plans: Vec<ExecPlan> = param_sets
        .iter()
        .map(|params| ExecPlan::compile(circuit, params))
        .collect::<Result<_>>()?;
    if plans.is_empty() {
        return Ok(Vec::new());
    }
    if !plans_aligned(&plans) {
        nwq_telemetry::counter_add("walkers.misaligned_batches", 1);
        return plans
            .iter()
            .map(|plan| {
                let state = Executor::new().run_plan(plan)?;
                energy_direct_batched(&state, observable)
            })
            .collect();
    }
    nwq_telemetry::counter_add("walkers.batches", 1);
    nwq_telemetry::counter_add("walkers.batched_thetas", plans.len() as u64);
    let mut set = WalkerSet::zero(circuit.n_qubits(), plans.len())?;
    Executor::new().run_plans_walkers(&plans, &mut set)?;
    walker_energies(&set, observable)
}

/// Generalized two-term parameter-shift gradient as one batch of `2·n`
/// simulations: `∂E/∂θ_i ≈ [E(θ+s·e_i) − E(θ−s·e_i)] / denominator`.
///
/// Pick `(s, denominator)` by the generator's eigenvalue structure:
/// - single Pauli rotations (RX/RY/RZ, eigenvalues ±1): `(π/2, 2)` —
///   see [`batched_parameter_shift_gradient`];
/// - fermionic excitation parameters (UCCSD/ADAPT generators with
///   eigenvalues {0, ±i}, period-π energy curves): `(π/4, 1)` — see
///   [`batched_excitation_gradient`].
pub fn batched_parameter_shift_gradient_with(
    circuit: &Circuit,
    params: &[f64],
    observable: &PauliOp,
    shift: f64,
    denominator: f64,
) -> Result<Vec<f64>> {
    let n = params.len();
    let mut shifted: Vec<Vec<f64>> = Vec::with_capacity(2 * n);
    for i in 0..n {
        let mut plus = params.to_vec();
        plus[i] += shift;
        shifted.push(plus);
        let mut minus = params.to_vec();
        minus[i] -= shift;
        shifted.push(minus);
    }
    let energies = batched_energies(circuit, &shifted, observable)?;
    Ok((0..n)
        .map(|i| (energies[2 * i] - energies[2 * i + 1]) / denominator)
        .collect())
}

/// Exact parameter-shift gradient for ±1-eigenvalue rotation generators
/// (`∂E/∂θ_i = [E(θ+π/2·e_i) − E(θ−π/2·e_i)]/2`), e.g. every parameter of
/// the hardware-efficient ansatz.
pub fn batched_parameter_shift_gradient(
    circuit: &Circuit,
    params: &[f64],
    observable: &PauliOp,
) -> Result<Vec<f64>> {
    batched_parameter_shift_gradient_with(
        circuit,
        params,
        observable,
        std::f64::consts::FRAC_PI_2,
        2.0,
    )
}

/// Exact parameter-shift gradient for fermionic excitation parameters
/// (UCCSD-style `e^{θ(T−T†)}` blocks): the energy is `π`-periodic in θ, so
/// the correct two-term rule is `E(θ+π/4) − E(θ−π/4)` with unit
/// denominator. The naive `π/2` rule returns exactly zero at the HF point
/// for these parameters — a classic silent failure.
pub fn batched_excitation_gradient(
    circuit: &Circuit,
    params: &[f64],
    observable: &PauliOp,
) -> Result<Vec<f64>> {
    batched_parameter_shift_gradient_with(
        circuit,
        params,
        observable,
        std::f64::consts::FRAC_PI_4,
        1.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_circuit::ParamExpr;

    fn toy() -> (Circuit, PauliOp) {
        let mut c = Circuit::new(2);
        c.ry(0, ParamExpr::var(0)).cx(0, 1).ry(1, ParamExpr::var(1));
        (c, PauliOp::parse("1.0 ZZ + 0.5 XI").unwrap())
    }

    #[test]
    fn batch_matches_serial_states() {
        let (c, _) = toy();
        let sets: Vec<Vec<f64>> = (0..6)
            .map(|k| vec![0.1 * k as f64, -0.2 * k as f64])
            .collect();
        let batch = run_batch(&c, &sets).unwrap();
        for (params, state) in sets.iter().zip(&batch) {
            let serial = crate::executor::simulate(&c, params).unwrap();
            assert!((state.fidelity(&serial).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn batched_energies_match_serial() {
        let (c, h) = toy();
        let sets: Vec<Vec<f64>> = (0..5).map(|k| vec![0.3 * k as f64, 0.7]).collect();
        let energies = batched_energies(&c, &sets, &h).unwrap();
        for (params, &e) in sets.iter().zip(&energies) {
            let serial = crate::executor::simulate(&c, params)
                .unwrap()
                .energy(&h)
                .unwrap();
            assert!((e - serial).abs() < 1e-12);
        }
    }

    #[test]
    fn batched_gradient_matches_analytic() {
        // E(θ0, θ1) for this ansatz: ⟨ZZ⟩ = cos θ0 cos θ1 (plus XI part);
        // verify against central-difference instead of deriving closed form.
        let (c, h) = toy();
        let theta = [0.4, -0.8];
        let grad = batched_parameter_shift_gradient(&c, &theta, &h).unwrap();
        let eps = 1e-6;
        for i in 0..2 {
            let mut p = theta.to_vec();
            p[i] += eps;
            let ep = crate::executor::simulate(&c, &p)
                .unwrap()
                .energy(&h)
                .unwrap();
            p[i] -= 2.0 * eps;
            let em = crate::executor::simulate(&c, &p)
                .unwrap()
                .energy(&h)
                .unwrap();
            let fd = (ep - em) / (2.0 * eps);
            assert!(
                (grad[i] - fd).abs() < 1e-6,
                "param {i}: {} vs {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn excitation_gradient_nonzero_where_pi_half_rule_fails() {
        // A UCCSD-style block: exp(θ(T−T†)) on 2 qubits via two Pauli
        // exponentials with coefficient 1/2 — E(θ) is π-periodic, so the
        // π/2 rule reports zero gradient at θ=0 while the true slope is
        // finite. The π/4 rule must match finite differences.
        let mut c = Circuit::new(2);
        c.x(0);
        let gen = nwq_pauli::PauliOp::from_terms(
            2,
            vec![
                (
                    nwq_common::C64::imag(0.5),
                    nwq_pauli::PauliString::parse("XY").unwrap(),
                ),
                (
                    nwq_common::C64::imag(-0.5),
                    nwq_pauli::PauliString::parse("YX").unwrap(),
                ),
            ],
        );
        for (coeff, s) in gen.terms() {
            nwq_circuit::exp_pauli::append_exp_pauli(
                &mut c,
                s,
                ParamExpr::scaled_var(0, -2.0 * coeff.im),
            )
            .unwrap();
        }
        let h = PauliOp::parse("1.0 XX + 0.2 ZI").unwrap();
        let theta = [0.0];
        let naive = batched_parameter_shift_gradient(&c, &theta, &h).unwrap();
        let proper = batched_excitation_gradient(&c, &theta, &h).unwrap();
        let eps = 1e-6;
        let ep = crate::executor::simulate(&c, &[eps])
            .unwrap()
            .energy(&h)
            .unwrap();
        let em = crate::executor::simulate(&c, &[-eps])
            .unwrap()
            .energy(&h)
            .unwrap();
        let fd = (ep - em) / (2.0 * eps);
        assert!(
            fd.abs() > 0.1,
            "test setup: finite gradient expected, got {fd}"
        );
        assert!(
            naive[0].abs() < 1e-9,
            "π/2 rule should vanish here, got {}",
            naive[0]
        );
        assert!((proper[0] - fd).abs() < 1e-6, "{} vs {fd}", proper[0]);
    }

    #[test]
    fn empty_batch() {
        let (c, h) = toy();
        assert!(run_batch(&c, &[]).unwrap().is_empty());
        assert!(batched_energies(&c, &[], &h).unwrap().is_empty());
    }

    #[test]
    fn gradient_of_zero_param_circuit_is_empty() {
        let mut c = Circuit::new(1);
        c.h(0);
        let h = PauliOp::parse("1.0 Z").unwrap();
        let g = batched_parameter_shift_gradient(&c, &[], &h).unwrap();
        assert!(g.is_empty());
    }
}
