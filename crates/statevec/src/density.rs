//! Density-matrix simulation with noise channels — the DM-Sim half of the
//! NWQ-Sim suite (paper ref [7]).
//!
//! A density matrix over `n` qubits is stored in "vectorized" layout: the
//! element `ρ_{r,c}` lives at flat index `(c << n) | r`, i.e. the matrix
//! is a statevector over `2n` qubits with row bits low and column bits
//! high. A unitary gate `ρ → UρU†` then reuses the optimized statevector
//! kernels twice: `U` on the row qubits and `U*` on the column qubits.
//! Kraus channels `ρ → Σ_k K_k ρ K_k†` apply each Kraus operator the same
//! way and accumulate.
//!
//! Practical up to ~12 qubits (4¹² complex entries); the VQE noise
//! studies here use 2–6 qubits.

use crate::kernels::{apply_mat2, apply_mat4};
use crate::state::StateVector;
use nwq_circuit::{Circuit, GateMatrix};
use nwq_common::bits::dim;
use nwq_common::{Error, Mat2, Mat4, Result, C64, C_ONE, C_ZERO};
use nwq_pauli::{PauliOp, PauliString};

/// A density matrix in vectorized (row-low, column-high) layout.
#[derive(Clone, Debug)]
pub struct DensityMatrix {
    n_qubits: usize,
    /// `4^n` entries; `elems[(c << n) | r] = ρ_{r,c}`.
    elems: Vec<C64>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    pub fn zero(n_qubits: usize) -> Self {
        let d = dim(n_qubits);
        let mut elems = vec![C_ZERO; d * d];
        elems[0] = C_ONE;
        DensityMatrix { n_qubits, elems }
    }

    /// The pure state `|ψ⟩⟨ψ|`.
    pub fn from_pure(state: &StateVector) -> Self {
        let n = state.n_qubits();
        let d = state.len();
        let amps = state.amplitudes();
        let mut elems = vec![C_ZERO; d * d];
        for c in 0..d {
            for r in 0..d {
                elems[(c << n) | r] = amps[r] * amps[c].conj();
            }
        }
        DensityMatrix { n_qubits: n, elems }
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Element `ρ_{r,c}`.
    pub fn get(&self, r: usize, c: usize) -> C64 {
        self.elems[(c << self.n_qubits) | r]
    }

    /// Trace (1 for a normalized state).
    pub fn trace(&self) -> C64 {
        let d = dim(self.n_qubits);
        (0..d).map(|r| self.get(r, r)).sum()
    }

    /// Purity `Tr(ρ²)` — 1 for pure states, `1/2^n` for the maximally
    /// mixed state.
    pub fn purity(&self) -> f64 {
        // Tr(ρ²) = Σ_{r,c} ρ_{r,c} ρ_{c,r} = Σ |ρ_{r,c}|² for Hermitian ρ.
        self.elems.iter().map(|e| e.norm_sqr()).sum()
    }

    /// Applies a unitary gate.
    pub fn apply_gate(&mut self, gate: &GateMatrix) -> Result<()> {
        let n = self.n_qubits;
        match gate {
            GateMatrix::One(q, m) => {
                if *q >= n {
                    return Err(Error::QubitOutOfRange {
                        qubit: *q,
                        n_qubits: n,
                    });
                }
                apply_mat2(&mut self.elems, *q, m);
                apply_mat2(&mut self.elems, q + n, &conj2(m));
            }
            GateMatrix::Two(a, b, m) => {
                if *a >= n || *b >= n {
                    return Err(Error::QubitOutOfRange {
                        qubit: (*a).max(*b),
                        n_qubits: n,
                    });
                }
                apply_mat4(&mut self.elems, *a, *b, m);
                apply_mat4(&mut self.elems, a + n, b + n, &conj4(m));
            }
        }
        Ok(())
    }

    /// Applies a single-qubit Kraus channel `ρ → Σ_k K_k ρ K_k†` on `q`.
    pub fn apply_kraus1(&mut self, q: usize, kraus: &[Mat2]) -> Result<()> {
        if q >= self.n_qubits {
            return Err(Error::QubitOutOfRange {
                qubit: q,
                n_qubits: self.n_qubits,
            });
        }
        let mut acc = vec![C_ZERO; self.elems.len()];
        for k in kraus {
            let mut term = self.elems.clone();
            apply_mat2(&mut term, q, k);
            apply_mat2(&mut term, q + self.n_qubits, &conj2(k));
            for (a, t) in acc.iter_mut().zip(&term) {
                *a += *t;
            }
        }
        self.elems = acc;
        Ok(())
    }

    /// Exact expectation `Tr(ρP)` of a Pauli string:
    /// `Σ_c f(c) ρ_{c⊕m, c}` with `P|c⟩ = f(c)|c⊕m⟩`.
    pub fn expectation_string(&self, s: &PauliString) -> Result<C64> {
        if s.n_qubits() != self.n_qubits {
            return Err(Error::DimensionMismatch {
                expected: self.n_qubits,
                got: s.n_qubits(),
            });
        }
        let d = dim(self.n_qubits);
        let mut acc = C_ZERO;
        for c in 0..d {
            let (f, flipped) = s.apply_to_basis(c as u64);
            acc += f * self.get(flipped as usize, c);
        }
        Ok(acc)
    }

    /// Exact expectation `Tr(ρH)` of a Pauli sum.
    pub fn expectation(&self, op: &PauliOp) -> Result<C64> {
        let mut acc = C_ZERO;
        for &(coeff, s) in op.terms() {
            acc += coeff * self.expectation_string(&s)?;
        }
        Ok(acc)
    }

    /// Energy `Re Tr(ρH)`.
    pub fn energy(&self, op: &PauliOp) -> Result<f64> {
        Ok(self.expectation(op)?.re)
    }

    /// Overlap with a pure state, `⟨ψ|ρ|ψ⟩`.
    pub fn fidelity_with_pure(&self, state: &StateVector) -> Result<f64> {
        if state.n_qubits() != self.n_qubits {
            return Err(Error::DimensionMismatch {
                expected: self.n_qubits,
                got: state.n_qubits(),
            });
        }
        let d = dim(self.n_qubits);
        let amps = state.amplitudes();
        let mut acc = C_ZERO;
        for c in 0..d {
            for r in 0..d {
                acc += amps[r].conj() * self.get(r, c) * amps[c];
            }
        }
        Ok(acc.re)
    }
}

fn conj2(m: &Mat2) -> Mat2 {
    let mut out = *m;
    for r in 0..2 {
        for c in 0..2 {
            out.0[r][c] = m.0[r][c].conj();
        }
    }
    out
}

fn conj4(m: &Mat4) -> Mat4 {
    let mut out = *m;
    for r in 0..4 {
        for c in 0..4 {
            out.0[r][c] = m.0[r][c].conj();
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Noise channels.
// ---------------------------------------------------------------------------

/// Standard single-qubit noise channels as Kraus sets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseChannel {
    /// Depolarizing with error probability `p` (state replaced by the
    /// maximally mixed state with probability p).
    Depolarizing(f64),
    /// Bit flip (X) with probability `p`.
    BitFlip(f64),
    /// Phase flip (Z) with probability `p`.
    PhaseFlip(f64),
    /// Amplitude damping with decay probability `γ`.
    AmplitudeDamping(f64),
}

impl NoiseChannel {
    /// The Kraus operators of the channel.
    pub fn kraus(&self) -> Vec<Mat2> {
        use nwq_common::mat::{mat_x, mat_y, mat_z};
        match *self {
            NoiseChannel::Depolarizing(p) => {
                let k0 = Mat2::identity().scale(C64::real((1.0 - p).sqrt()));
                let kp = (p / 3.0).sqrt();
                vec![
                    k0,
                    mat_x().scale(C64::real(kp)),
                    mat_y().scale(C64::real(kp)),
                    mat_z().scale(C64::real(kp)),
                ]
            }
            NoiseChannel::BitFlip(p) => vec![
                Mat2::identity().scale(C64::real((1.0 - p).sqrt())),
                mat_x().scale(C64::real(p.sqrt())),
            ],
            NoiseChannel::PhaseFlip(p) => vec![
                Mat2::identity().scale(C64::real((1.0 - p).sqrt())),
                mat_z().scale(C64::real(p.sqrt())),
            ],
            NoiseChannel::AmplitudeDamping(g) => {
                let mut k0 = Mat2::identity();
                k0.0[1][1] = C64::real((1.0 - g).sqrt());
                let mut k1 = Mat2([[C_ZERO; 2]; 2]);
                k1.0[0][1] = C64::real(g.sqrt());
                vec![k0, k1]
            }
        }
    }

    /// Verifies the completeness relation `Σ K†K = I` within `tol`.
    pub fn is_trace_preserving(&self, tol: f64) -> bool {
        let mut sum = Mat2([[C_ZERO; 2]; 2]);
        for k in self.kraus() {
            let kk = k.dagger() * k;
            for r in 0..2 {
                for c in 0..2 {
                    sum.0[r][c] += kk.0[r][c];
                }
            }
        }
        sum.approx_eq(&Mat2::identity(), tol)
    }
}

/// A gate-level noise model: channels applied to each operand qubit after
/// every gate of the corresponding arity.
#[derive(Clone, Debug, Default)]
pub struct NoiseModel {
    /// Channels applied after single-qubit gates.
    pub after_1q: Vec<NoiseChannel>,
    /// Channels applied after two-qubit gates (to both qubits).
    pub after_2q: Vec<NoiseChannel>,
}

impl NoiseModel {
    /// Uniform depolarizing noise: `p1` after 1-qubit, `p2` after 2-qubit
    /// gates (the standard first-order device model).
    pub fn depolarizing(p1: f64, p2: f64) -> Self {
        NoiseModel {
            after_1q: vec![NoiseChannel::Depolarizing(p1)],
            after_2q: vec![NoiseChannel::Depolarizing(p2)],
        }
    }

    /// No noise (density-matrix execution equals statevector).
    pub fn noiseless() -> Self {
        NoiseModel::default()
    }
}

/// Runs a circuit on a density matrix from `|0…0⟩⟨0…0|` under a noise
/// model.
pub fn run_noisy(circuit: &Circuit, params: &[f64], noise: &NoiseModel) -> Result<DensityMatrix> {
    let mut rho = DensityMatrix::zero(circuit.n_qubits());
    for gate in circuit.gates() {
        let m = gate.matrix(params)?;
        rho.apply_gate(&m)?;
        let (qubits, channels) = match &m {
            GateMatrix::One(q, _) => (vec![*q], &noise.after_1q),
            GateMatrix::Two(a, b, _) => (vec![*a, *b], &noise.after_2q),
        };
        for &q in &qubits {
            for ch in channels {
                rho.apply_kraus1(q, &ch.kraus())?;
            }
        }
    }
    Ok(rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::simulate;
    use nwq_circuit::Circuit;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn pure_state_roundtrip() {
        let psi = simulate(&bell(), &[]).unwrap();
        let rho = DensityMatrix::from_pure(&psi);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.fidelity_with_pure(&psi).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noiseless_execution_matches_statevector() {
        let c = {
            let mut c = Circuit::new(3);
            c.h(0).cx(0, 1).rz(1, 0.4).ry(2, -0.7).cx(1, 2).swap(0, 2);
            c
        };
        let psi = simulate(&c, &[]).unwrap();
        let rho = run_noisy(&c, &[], &NoiseModel::noiseless()).unwrap();
        assert!((rho.fidelity_with_pure(&psi).unwrap() - 1.0).abs() < 1e-10);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
        // Energies agree for an arbitrary observable.
        let h = PauliOp::parse("0.5 ZZI + 0.3 XIX + 0.2 IYY").unwrap();
        assert!((rho.energy(&h).unwrap() - psi.energy(&h).unwrap()).abs() < 1e-10);
    }

    #[test]
    fn all_channels_trace_preserving() {
        for ch in [
            NoiseChannel::Depolarizing(0.1),
            NoiseChannel::BitFlip(0.2),
            NoiseChannel::PhaseFlip(0.05),
            NoiseChannel::AmplitudeDamping(0.3),
        ] {
            assert!(ch.is_trace_preserving(1e-12), "{ch:?}");
        }
    }

    #[test]
    fn depolarizing_mixes_the_state() {
        let mut c = Circuit::new(1);
        c.h(0);
        let rho = run_noisy(&c, &[], &NoiseModel::depolarizing(0.2, 0.0)).unwrap();
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!(rho.purity() < 1.0 - 1e-3);
        // Fully depolarizing limit: maximally mixed.
        let mut c = Circuit::new(1);
        c.h(0);
        let rho = run_noisy(&c, &[], &NoiseModel::depolarizing(0.75, 0.0)).unwrap();
        assert!((rho.purity() - 0.5).abs() < 1e-10);
    }

    #[test]
    fn bit_flip_flips_population() {
        let mut c = Circuit::new(1);
        c.x(0);
        let noise = NoiseModel {
            after_1q: vec![NoiseChannel::BitFlip(0.25)],
            after_2q: vec![],
        };
        let rho = run_noisy(&c, &[], &noise).unwrap();
        // P(|1⟩) = 0.75 after one flip channel.
        assert!((rho.get(1, 1).re - 0.75).abs() < 1e-12);
        assert!((rho.get(0, 0).re - 0.25).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut c = Circuit::new(1);
        c.x(0);
        let noise = NoiseModel {
            after_1q: vec![NoiseChannel::AmplitudeDamping(0.4)],
            after_2q: vec![],
        };
        let rho = run_noisy(&c, &[], &noise).unwrap();
        assert!((rho.get(1, 1).re - 0.6).abs() < 1e-12);
        assert!((rho.get(0, 0).re - 0.4).abs() < 1e-12);
        // Damping toward |0⟩ keeps the trace.
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_flip_kills_coherence_not_population() {
        let mut c = Circuit::new(1);
        c.h(0);
        let noise = NoiseModel {
            after_1q: vec![NoiseChannel::PhaseFlip(0.5)],
            after_2q: vec![],
        };
        let rho = run_noisy(&c, &[], &noise).unwrap();
        // p = 1/2 phase flip fully dephases: off-diagonals vanish,
        // populations stay 1/2.
        assert!(rho.get(0, 1).norm() < 1e-12);
        assert!((rho.get(0, 0).re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn noisy_vqe_energy_interpolates_to_noiseless() {
        // Noise raises the Bell-pair energy of H = ZZ + XX toward 0
        // (maximally mixed); shrinking noise recovers the pure value.
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
        let mut c = Circuit::new(2);
        c.ry(0, std::f64::consts::FRAC_PI_2)
            .cx(0, 1)
            .ry(1, std::f64::consts::PI);
        let pure_e = simulate(&c, &[]).unwrap().energy(&h).unwrap();
        assert!((pure_e + 2.0).abs() < 1e-9);
        let mut last = pure_e;
        for p in [0.0, 0.01, 0.05, 0.2] {
            let rho = run_noisy(&c, &[], &NoiseModel::depolarizing(p, p)).unwrap();
            let e = rho.energy(&h).unwrap();
            assert!(
                e >= last - 1e-9,
                "noise must not lower the energy: {e} < {last}"
            );
            last = e;
        }
        assert!(last > -1.5, "strong noise should visibly raise the energy");
    }

    #[test]
    fn expectation_matches_dense_trace() {
        let c = bell();
        let rho = run_noisy(&c, &[], &NoiseModel::depolarizing(0.1, 0.1)).unwrap();
        let h = PauliOp::parse("0.7 ZZ + 0.2 XI + 0.1 YY").unwrap();
        // Reference: explicit Tr(ρH) from dense matrices.
        let dense_h = nwq_pauli::matrix::op_to_dense(&h);
        let d = 4;
        let mut tr = C_ZERO;
        for r in 0..d {
            for c2 in 0..d {
                tr += rho.get(r, c2) * dense_h[c2 * d + r];
            }
        }
        assert!((rho.expectation(&h).unwrap() - tr).norm() < 1e-10);
    }

    #[test]
    fn validation_errors() {
        let mut rho = DensityMatrix::zero(2);
        assert!(rho
            .apply_gate(&GateMatrix::One(5, Mat2::identity()))
            .is_err());
        assert!(rho.apply_kraus1(3, &[Mat2::identity()]).is_err());
        let s = PauliString::parse("ZZZ").unwrap();
        assert!(rho.expectation_string(&s).is_err());
    }
}
