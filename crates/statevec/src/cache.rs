//! Post-ansatz state caching (paper §4.1).
//!
//! VQE evaluates one Hamiltonian under many measurement bases per parameter
//! set. Without caching, every basis requires re-preparing `|ψ(θ)⟩ = U(θ)|0⟩`
//! — the dominant gate cost (paper Fig 3, upper curve). NWQ-Sim instead
//! simulates the ansatz once per θ and keeps the amplitudes resident,
//! reusing them for every subsequent basis change.
//!
//! The original system holds the cache in GPU memory and spills to CPU
//! memory when the state outgrows it (§4.1.4). This reproduction models the
//! same two-tier behaviour: a configurable device budget decides the tier,
//! and the spill counter records when the slower tier is in use (on our
//! all-CPU substrate both tiers are RAM; the *decision logic* and
//! accounting are what the paper's behaviour depends on).

use crate::executor::Executor;
use crate::plan::ExecPlan;
use crate::state::StateVector;
use nwq_circuit::Circuit;
use nwq_common::Result;

/// Which memory tier the cached state occupies in the paper's model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoryTier {
    /// Fits in device (GPU) memory: fast path.
    Device,
    /// Exceeds the device budget: spilled to host memory (slower access,
    /// but the simulation continues — §4.1.4).
    Host,
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reuses of an already-prepared state.
    pub hits: u64,
    /// Ansatz executions forced by a parameter change (or cold cache).
    pub misses: u64,
    /// Number of cached states that landed in the host tier.
    pub host_spills: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0.0 on no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A single-slot cache of the most recent post-ansatz state, keyed by the
/// exact parameter vector.
#[derive(Debug)]
pub struct PostAnsatzCache {
    device_budget_bytes: u128,
    entry: Option<Entry>,
    stats: CacheStats,
    /// Scratch plan reused across misses: `PlanTemplate::bind_into`
    /// rewrites it with zero allocation once the op/factor lists have
    /// grown to the ansatz's size.
    plan_scratch: ExecPlan,
}

#[derive(Debug)]
struct Entry {
    /// Bit patterns of the parameters (exact match semantics, NaN-safe).
    key: Vec<u64>,
    state: StateVector,
    tier: MemoryTier,
}

fn key_of(params: &[f64]) -> Vec<u64> {
    // Bit-pattern keys keep NaN parameters cacheable (NaN != NaN under f64
    // comparison), but 0.0 and -0.0 compare equal while having different
    // bit patterns — an optimizer crossing zero from below would spuriously
    // miss. Normalize -0.0 to 0.0 before taking bits.
    params.iter().map(|p| (p + 0.0).to_bits()).collect()
}

impl PostAnsatzCache {
    /// A cache modeling a device with `device_budget_bytes` of fast memory
    /// (e.g. 40 GiB for a Perlmutter A100).
    pub fn new(device_budget_bytes: u128) -> Self {
        PostAnsatzCache {
            device_budget_bytes,
            entry: None,
            stats: CacheStats::default(),
            plan_scratch: ExecPlan::empty(),
        }
    }

    /// A cache with an effectively unlimited device tier.
    pub fn unbounded() -> Self {
        PostAnsatzCache::new(u128::MAX)
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Tier of the currently cached state, if any.
    pub fn tier(&self) -> Option<MemoryTier> {
        self.entry.as_ref().map(|e| e.tier)
    }

    /// Drops the cached state.
    pub fn invalidate(&mut self) {
        self.entry = None;
    }

    /// Returns the post-ansatz state for `params`, preparing it with
    /// `executor` on a miss. The returned reference stays valid until the
    /// next call with different parameters.
    pub fn get_or_prepare(
        &mut self,
        ansatz: &Circuit,
        params: &[f64],
        executor: &mut Executor,
    ) -> Result<&StateVector> {
        let key = key_of(params);
        let hit = matches!(&self.entry, Some(e) if e.key == key);
        if hit {
            self.stats.hits += 1;
            nwq_telemetry::counter_add("cache.hits", 1);
        } else {
            self.stats.misses += 1;
            nwq_telemetry::counter_add("cache.misses", 1);
            let state = executor.run(ansatz, params)?;
            let tier = if state.memory_bytes() <= self.device_budget_bytes {
                MemoryTier::Device
            } else {
                self.stats.host_spills += 1;
                nwq_telemetry::counter_add("cache.host_spills", 1);
                MemoryTier::Host
            };
            self.entry = Some(Entry { key, state, tier });
        }
        Ok(&self.entry.as_ref().expect("entry was just ensured").state)
    }

    /// Plan-compiling variant of [`get_or_prepare`](Self::get_or_prepare):
    /// on a miss the ansatz's cached [`crate::PlanTemplate`] (built once
    /// per circuit structure by the global [`crate::plan_cache`]) is bound
    /// against `params` into a reusable scratch plan — no re-fusion, no
    /// allocation after the first miss — and executed through the plan
    /// path. The key is the same exact-parameter key, so callers can mix
    /// this with `get_or_prepare` without spurious misses.
    pub fn get_or_prepare_plan(
        &mut self,
        ansatz: &Circuit,
        params: &[f64],
        executor: &mut Executor,
    ) -> Result<&StateVector> {
        let key = key_of(params);
        let hit = matches!(&self.entry, Some(e) if e.key == key);
        if hit {
            self.stats.hits += 1;
            nwq_telemetry::counter_add("cache.hits", 1);
        } else {
            self.stats.misses += 1;
            nwq_telemetry::counter_add("cache.misses", 1);
            let template = crate::plan_cache::template_for(ansatz)?;
            template.bind_into(params, &mut self.plan_scratch)?;
            let state = executor.run_plan(&self.plan_scratch)?;
            let tier = if state.memory_bytes() <= self.device_budget_bytes {
                MemoryTier::Device
            } else {
                self.stats.host_spills += 1;
                nwq_telemetry::counter_add("cache.host_spills", 1);
                MemoryTier::Host
            };
            self.entry = Some(Entry { key, state, tier });
        }
        Ok(&self.entry.as_ref().expect("entry was just ensured").state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_circuit::ParamExpr;

    fn ansatz() -> Circuit {
        let mut c = Circuit::new(2);
        c.ry(0, ParamExpr::var(0)).cx(0, 1);
        c
    }

    #[test]
    fn hit_on_same_params_miss_on_new() {
        let a = ansatz();
        let mut cache = PostAnsatzCache::unbounded();
        let mut ex = Executor::new();
        cache.get_or_prepare(&a, &[0.3], &mut ex).unwrap();
        cache.get_or_prepare(&a, &[0.3], &mut ex).unwrap();
        cache.get_or_prepare(&a, &[0.4], &mut ex).unwrap();
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        // Ansatz ran only on misses.
        assert_eq!(ex.stats().circuits_run, 2);
    }

    #[test]
    fn plan_prepare_shares_keys_with_gate_prepare_and_tracks_hit_rate() {
        let a = ansatz();
        let mut cache = PostAnsatzCache::unbounded();
        let mut ex = Executor::new();
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.get_or_prepare_plan(&a, &[0.3], &mut ex).unwrap();
        // Same θ through the gate-by-gate entry point must hit.
        cache.get_or_prepare(&a, &[0.3], &mut ex).unwrap();
        cache.get_or_prepare_plan(&a, &[0.3], &mut ex).unwrap();
        cache.get_or_prepare_plan(&a, &[0.7], &mut ex).unwrap();
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
        assert!((s.hit_rate() - 0.5).abs() < 1e-15);
        // Plan-prepared state matches gate-by-gate preparation.
        let via_plan = cache
            .get_or_prepare_plan(&a, &[0.7], &mut ex)
            .unwrap()
            .clone();
        let mut fresh = PostAnsatzCache::unbounded();
        let via_gates = fresh.get_or_prepare(&a, &[0.7], &mut ex).unwrap();
        for (x, y) in via_plan.amplitudes().iter().zip(via_gates.amplitudes()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }

    #[test]
    fn cached_state_is_correct() {
        let a = ansatz();
        let mut cache = PostAnsatzCache::unbounded();
        let mut ex = Executor::new();
        let s = cache
            .get_or_prepare(&a, &[std::f64::consts::PI], &mut ex)
            .unwrap();
        // RY(π)|0⟩ = |1⟩, CX -> |11⟩.
        assert!((s.probability(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tier_decision_and_spill_accounting() {
        let a = ansatz(); // 2 qubits → 64 bytes of amplitudes
        let mut ex = Executor::new();
        let mut small = PostAnsatzCache::new(32); // budget below state size
        small.get_or_prepare(&a, &[0.1], &mut ex).unwrap();
        assert_eq!(small.tier(), Some(MemoryTier::Host));
        assert_eq!(small.stats().host_spills, 1);
        let mut big = PostAnsatzCache::new(1 << 20);
        big.get_or_prepare(&a, &[0.1], &mut ex).unwrap();
        assert_eq!(big.tier(), Some(MemoryTier::Device));
        assert_eq!(big.stats().host_spills, 0);
    }

    #[test]
    fn invalidate_forces_reprepare() {
        let a = ansatz();
        let mut cache = PostAnsatzCache::unbounded();
        let mut ex = Executor::new();
        cache.get_or_prepare(&a, &[0.2], &mut ex).unwrap();
        cache.invalidate();
        assert!(cache.tier().is_none());
        cache.get_or_prepare(&a, &[0.2], &mut ex).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn nan_params_are_exact_keys() {
        // NaN != NaN under f64 comparison, but bit-pattern keys make the
        // same NaN hit the cache instead of looping on misses forever.
        let a = ansatz();
        let mut cache = PostAnsatzCache::unbounded();
        let mut ex = Executor::new();
        cache.get_or_prepare(&a, &[f64::NAN], &mut ex).unwrap();
        cache.get_or_prepare(&a, &[f64::NAN], &mut ex).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn signed_zero_params_share_a_key() {
        // 0.0 == -0.0, so a parameter crossing zero from below must reuse
        // the cached state instead of missing on the sign bit.
        let a = ansatz();
        let mut cache = PostAnsatzCache::unbounded();
        let mut ex = Executor::new();
        cache.get_or_prepare(&a, &[0.0], &mut ex).unwrap();
        cache.get_or_prepare(&a, &[-0.0], &mut ex).unwrap();
        cache.get_or_prepare(&a, &[0.0], &mut ex).unwrap();
        let s = cache.stats();
        assert_eq!(s.hits, 2, "-0.0 must hit the 0.0 entry");
        assert_eq!(s.misses, 1);
        assert_eq!(ex.stats().circuits_run, 1);
    }

    #[test]
    fn signed_zero_mixed_with_nan_and_nonzero() {
        let a = ansatz();
        let mut cache = PostAnsatzCache::unbounded();
        let mut ex = Executor::new();
        cache.get_or_prepare(&a, &[-0.0], &mut ex).unwrap();
        cache.get_or_prepare(&a, &[0.0], &mut ex).unwrap(); // hit
        cache.get_or_prepare(&a, &[f64::NAN], &mut ex).unwrap(); // miss
        cache.get_or_prepare(&a, &[f64::NAN], &mut ex).unwrap(); // hit
        cache.get_or_prepare(&a, &[0.5], &mut ex).unwrap(); // miss
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 3);
    }
}
