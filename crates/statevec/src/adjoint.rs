//! Adjoint-method analytic gradients: every ∂E/∂θ in one backward sweep.
//!
//! The adjoint method (the technique behind PennyLane Lightning's HPC
//! results) computes the full gradient of `E(θ) = ⟨ψ(θ)|H|ψ(θ)⟩` for a
//! cost independent of the parameter count. With the ansatz compiled to
//! fused blocks `|ψ⟩ = U_N … U_1 |0⟩`:
//!
//! ```text
//! ∂E/∂θ_j = 2 Re ⟨φ_b | ∂U_b/∂θ_j | ψ_{b-1}⟩   summed over blocks b,
//!   φ_b = (U_N … U_{b+1})† H ψ,   ψ_{b-1} = U_{b-1} … U_1 |0⟩
//! ```
//!
//! Three registers suffice: evolve `|ψ⟩` forward once, form `|φ⟩ = H|ψ⟩`
//! once, then walk the blocks backward, un-applying each block's dagger to
//! both registers and accumulating the bra-matrix-ket reduction for each
//! parameter the block depends on. Total cost: one forward evolution, two
//! backward evolutions, and one O(dim) reduction per (block, parameter)
//! pair — ≤ 4 statevector-evolution-equivalents for ansätze where each
//! block carries at most one parameter (UCCSD, HEA), versus `2·P`
//! evolutions for parameter-shift.
//!
//! The walk runs at *block* granularity on the cached [`PlanTemplate`]:
//! [`AdjointTemplate`] (built once per circuit shape, cached in
//! [`crate::plan_cache`] next to the forward template, counted by
//! `plan.dagger_compiled`) records which parameters each block touches;
//! [`AdjointTemplate::bind`] replays each block's tape at θ — with the
//! product rule for derivatives — producing the dagger tape of bound
//! blocks the sweep consumes. Block application reuses the SIMD kernels
//! ([`crate::kernels::apply_mat2`] / [`apply_mat4_prenorm`]), so
//! force-scalar mode pins the gradient bit-for-bit like every other path.
//!
//! Memory: the three registers are `|ψ⟩`, `|φ⟩`, and the implicit |0…0⟩
//! start — 2 × 16 bytes/amplitude live at once (the derivative reduction
//! reads both registers in place, no scratch register).

use crate::kernels::{apply_mat2, apply_mat4_prenorm};
use crate::plan::BoundBlock;
use crate::plan::PlanTemplate;
use crate::plan_cache;
use crate::state::StateVector;
use nwq_circuit::Circuit;
use nwq_common::{Error, Mat2, Mat4, Result, C64};
use nwq_pauli::{apply::apply_op, PauliOp};
use std::sync::Arc;

/// The θ-independent half of the adjoint walk for one circuit shape:
/// the forward [`PlanTemplate`] plus, per block, the sorted parameter
/// indices the block depends on. Built once per shape (see
/// [`crate::plan_cache::adjoint_for`]) and bound per θ.
#[derive(Debug)]
pub struct AdjointTemplate {
    template: Arc<PlanTemplate>,
    /// Parameter indices per block, sorted and deduplicated.
    block_params: Vec<Vec<usize>>,
}

/// One block of a bound dagger tape: the forward unitary, its dagger, and
/// the ∂U/∂θ_j matrix for every parameter the block depends on.
#[derive(Clone, Debug)]
pub struct AdjointBlock {
    /// The bound forward block.
    pub op: BoundBlock,
    /// Its conjugate transpose (the un-apply step of the walk).
    pub dag: BoundBlock,
    /// `(parameter index, ∂U/∂θ_j)` for each dependent parameter, chain
    /// rule through affine `ParamExpr`s already applied.
    pub derivs: Vec<(usize, BoundBlock)>,
}

/// A dagger tape bound at one θ: the block sequence the adjoint sweep
/// walks forward (via `op`) and backward (via `dag`/`derivs`).
#[derive(Clone, Debug)]
pub struct AdjointTape {
    n_qubits: usize,
    blocks: Vec<AdjointBlock>,
}

impl AdjointTape {
    /// Register width of the source circuit.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The bound blocks in forward execution order.
    pub fn blocks(&self) -> &[AdjointBlock] {
        &self.blocks
    }
}

impl AdjointTemplate {
    /// Derives the adjoint metadata from a forward template. Cheap (a
    /// parameter-index scan); the per-θ work happens in
    /// [`AdjointTemplate::bind`].
    pub fn build(template: Arc<PlanTemplate>) -> AdjointTemplate {
        let block_params = (0..template.n_blocks())
            .map(|bi| template.block_param_indices(bi))
            .collect();
        AdjointTemplate {
            template,
            block_params,
        }
    }

    /// Number of blocks the walk visits.
    pub fn n_blocks(&self) -> usize {
        self.block_params.len()
    }

    /// Binds the dagger tape at θ: replays every block tape (value,
    /// dagger, and product-rule derivative per dependent parameter).
    pub fn bind(&self, params: &[f64]) -> Result<AdjointTape> {
        let mut blocks = Vec::with_capacity(self.n_blocks());
        for (bi, deps) in self.block_params.iter().enumerate() {
            let op = self.template.bind_block(bi, params)?;
            let mut derivs = Vec::with_capacity(deps.len());
            for &j in deps {
                // `None` only when the chain coefficient is exactly zero
                // (e.g. `scaled_var(j, 0.0)`): a structurally listed but
                // numerically absent dependency.
                if let Some(d) = self.template.bind_block_derivative(bi, params, j)? {
                    derivs.push((j, d));
                }
            }
            blocks.push(AdjointBlock {
                dag: dagger_block(&op),
                op,
                derivs,
            });
        }
        Ok(AdjointTape {
            n_qubits: self.template.n_qubits(),
            blocks,
        })
    }
}

fn dagger_block(b: &BoundBlock) -> BoundBlock {
    match b {
        BoundBlock::One(q, m) => BoundBlock::One(*q, m.dagger()),
        BoundBlock::Two(hi, lo, m) => BoundBlock::Two(*hi, *lo, m.dagger()),
    }
}

fn apply_block(b: &BoundBlock, amps: &mut [C64]) {
    match b {
        BoundBlock::One(q, m) => apply_mat2(amps, *q, m),
        BoundBlock::Two(hi, lo, m) => apply_mat4_prenorm(amps, *hi, *lo, m),
    }
}

/// `⟨φ|M|λ⟩` for a single-qubit `M` on qubit `q`, reduced in one pass over
/// both registers without materializing `M|λ⟩`.
fn bra_mat2_ket(phi: &[C64], lam: &[C64], q: usize, m: &Mat2) -> C64 {
    let bit = 1usize << q;
    let mut acc = C64::real(0.0);
    for i0 in 0..phi.len() {
        if i0 & bit != 0 {
            continue;
        }
        let i1 = i0 | bit;
        acc += phi[i0].conj() * (m.0[0][0] * lam[i0] + m.0[0][1] * lam[i1]);
        acc += phi[i1].conj() * (m.0[1][0] * lam[i0] + m.0[1][1] * lam[i1]);
    }
    acc
}

/// `⟨φ|M|λ⟩` for a two-qubit `M` with `hi > lo` (matrix index
/// `(bit(hi) << 1) | bit(lo)`), one pass, no scratch register.
fn bra_mat4_ket(phi: &[C64], lam: &[C64], hi: usize, lo: usize, m: &Mat4) -> C64 {
    let bh = 1usize << hi;
    let bl = 1usize << lo;
    let mut acc = C64::real(0.0);
    for base in 0..phi.len() {
        if base & (bh | bl) != 0 {
            continue;
        }
        let idx = [base, base | bl, base | bh, base | bh | bl];
        for r in 0..4 {
            let mut row = C64::real(0.0);
            for c in 0..4 {
                row += m.0[r][c] * lam[idx[c]];
            }
            acc += phi[idx[r]].conj() * row;
        }
    }
    acc
}

/// Result of one adjoint gradient evaluation, with enough accounting to
/// assert the ≤ 4 evolution-equivalents cost bound.
#[derive(Clone, Debug)]
pub struct AdjointGradient {
    /// `⟨ψ|H|ψ⟩` at θ (computed from the same `|φ⟩ = H|ψ⟩` the sweep
    /// uses).
    pub energy: f64,
    /// `∂E/∂θ_j` for every parameter, `gradient.len() == params.len()`.
    pub gradient: Vec<f64>,
    /// Block applications performed (forward + two backward registers).
    pub sweeps: u64,
    /// O(dim) bra-matrix-ket reductions performed (one per
    /// (block, parameter) pair).
    pub reductions: u64,
    /// Blocks in the walk (`= plan ops before diagonal coalescing`).
    pub blocks: u64,
}

impl AdjointGradient {
    /// Total cost in units of one full statevector evolution (one pass of
    /// all blocks): `(sweeps + reductions) / blocks`. For one-parameter-
    /// per-block ansätze this is ≤ 4 regardless of parameter count.
    pub fn evolution_equivalents(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            (self.sweeps + self.reductions) as f64 / self.blocks as f64
        }
    }
}

/// Computes `E(θ)` and the full analytic gradient `∂E/∂θ` in one adjoint
/// sweep: forward evolution of `|ψ⟩`, one `H|ψ⟩` application, and one
/// backward walk un-applying the cached dagger tape. `observable` must be
/// Hermitian for the result to be a real energy; hermiticity is the
/// caller's contract (checked upstream by the VQE drivers).
///
/// Telemetry: `grad.adjoint_runs`, `grad.adjoint_sweeps`,
/// `grad.adjoint_reductions`, `grad.adjoint_blocks` counters and the
/// `grad.ms` histogram.
pub fn energy_and_gradient(
    circuit: &Circuit,
    params: &[f64],
    observable: &PauliOp,
) -> Result<AdjointGradient> {
    if observable.n_qubits() != circuit.n_qubits() {
        return Err(Error::DimensionMismatch {
            expected: circuit.n_qubits(),
            got: observable.n_qubits(),
        });
    }
    let start = std::time::Instant::now();
    let _span = nwq_telemetry::span!("grad.adjoint");
    let adj = plan_cache::adjoint_for(circuit)?;
    let tape = adj.bind(params)?;

    // Forward register: |ψ⟩ = U_N … U_1 |0⟩ at block granularity.
    let mut lam = StateVector::zero(circuit.n_qubits()).into_amplitudes();
    let mut sweeps = 0u64;
    for b in &tape.blocks {
        apply_block(&b.op, &mut lam);
        sweeps += 1;
    }

    // Bra register: |φ⟩ = H|ψ⟩; the energy falls out of the same product.
    let phi0 = apply_op(observable, &lam)?;
    let mut energy = C64::real(0.0);
    for (p, l) in lam.iter().zip(&phi0) {
        energy += p.conj() * *l;
    }
    let mut phi = phi0;

    // Backward walk: for b = N … 1, λ ← U_b†λ (= ψ_{b-1}), accumulate
    // 2·Re⟨φ_b|∂U_b|ψ_{b-1}⟩ per dependent parameter, then φ ← U_b†φ.
    let mut gradient = vec![0.0; params.len()];
    let mut reductions = 0u64;
    for b in tape.blocks.iter().rev() {
        apply_block(&b.dag, &mut lam);
        for (j, d) in &b.derivs {
            let v = match d {
                BoundBlock::One(q, m) => bra_mat2_ket(&phi, &lam, *q, m),
                BoundBlock::Two(hi, lo, m) => bra_mat4_ket(&phi, &lam, *hi, *lo, m),
            };
            gradient[*j] += 2.0 * v.re;
            reductions += 1;
        }
        apply_block(&b.dag, &mut phi);
        sweeps += 2;
    }

    let blocks = tape.blocks.len() as u64;
    nwq_telemetry::counter_add("grad.adjoint_runs", 1);
    nwq_telemetry::counter_add("grad.adjoint_sweeps", sweeps);
    nwq_telemetry::counter_add("grad.adjoint_reductions", reductions);
    nwq_telemetry::counter_add("grad.adjoint_blocks", blocks);
    nwq_telemetry::histogram_record("grad.ms", start.elapsed().as_secs_f64() * 1e3);
    Ok(AdjointGradient {
        energy: energy.re,
        gradient,
        sweeps,
        reductions,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{batched_excitation_gradient, batched_parameter_shift_gradient};
    use crate::executor::{simulate_plan, Executor};
    use crate::plan::ExecPlan;
    use crate::simd;
    use nwq_circuit::ParamExpr;
    use nwq_pauli::PauliString;
    use proptest::prelude::*;

    fn fd_gradient(c: &Circuit, params: &[f64], h: &PauliOp) -> Vec<f64> {
        let eps = 1e-6;
        (0..params.len())
            .map(|i| {
                let mut p = params.to_vec();
                p[i] += eps;
                let ep = simulate_plan(c, &p).unwrap().energy(h).unwrap();
                p[i] -= 2.0 * eps;
                let em = simulate_plan(c, &p).unwrap().energy(h).unwrap();
                (ep - em) / (2.0 * eps)
            })
            .collect()
    }

    #[test]
    fn adjoint_matches_shift_on_fixed_hea() {
        // Stride-1 coverage: qubit 0 carries parameterized rotations.
        let mut c = Circuit::new(3);
        c.ry(0, ParamExpr::var(0))
            .rx(1, ParamExpr::var(1))
            .cx(0, 1)
            .rz(2, ParamExpr::var(2))
            .cx(1, 2)
            .ry(0, ParamExpr::var(3));
        let h = PauliOp::parse("1.0 ZZI + 0.5 IXX + 0.25 ZIZ").unwrap();
        let theta = [0.4, -1.1, 0.75, 2.2];
        let adj = energy_and_gradient(&c, &theta, &h).unwrap();
        let shift = batched_parameter_shift_gradient(&c, &theta, &h).unwrap();
        let e = simulate_plan(&c, &theta).unwrap().energy(&h).unwrap();
        assert!((adj.energy - e).abs() < 1e-12, "{} vs {e}", adj.energy);
        for (a, s) in adj.gradient.iter().zip(&shift) {
            assert!((a - s).abs() < 1e-10, "{a} vs {s}");
        }
        for (a, f) in adj.gradient.iter().zip(&fd_gradient(&c, &theta, &h)) {
            assert!((a - f).abs() < 1e-6, "{a} vs {f}");
        }
    }

    #[test]
    fn adjoint_matches_excitation_shift_on_uccsd_style_block() {
        // The committed π/4-rule scenario: exp(θ(T−T†)) via Pauli
        // exponentials with chain coefficient −2·Im(c). The π/2 rule
        // silently returns zero at HF; adjoint must match the π/4 rule.
        let mut c = Circuit::new(2);
        c.x(0);
        let gen = PauliOp::from_terms(
            2,
            vec![
                (C64::imag(0.5), PauliString::parse("XY").unwrap()),
                (C64::imag(-0.5), PauliString::parse("YX").unwrap()),
            ],
        );
        for (coeff, s) in gen.terms() {
            nwq_circuit::exp_pauli::append_exp_pauli(
                &mut c,
                s,
                ParamExpr::scaled_var(0, -2.0 * coeff.im),
            )
            .unwrap();
        }
        let h = PauliOp::parse("1.0 XX + 0.2 ZI").unwrap();
        for theta in [[0.0], [0.37], [-1.2]] {
            let adj = energy_and_gradient(&c, &theta, &h).unwrap();
            let shift = batched_excitation_gradient(&c, &theta, &h).unwrap();
            assert!(
                (adj.gradient[0] - shift[0]).abs() < 1e-10,
                "θ={theta:?}: {} vs {}",
                adj.gradient[0],
                shift[0]
            );
        }
    }

    #[test]
    fn cost_is_bounded_independent_of_parameter_count() {
        // UCCSD-shaped circuits (CX-ladder exponential blocks, ≪ 1
        // parameter per fused block) stay under 4 evolution-equivalents no
        // matter how many parameters are added; an HEA with every block
        // parameterized costs more per block but stays CONSTANT in P —
        // the parameter-count independence the adjoint method promises
        // (parameter-shift grows as 2·P evolutions).
        let uccsd = |n_params: usize| {
            let mut c = Circuit::new(4);
            c.x(0).x(1);
            for j in 0..n_params {
                // Full-width excitation strings (the H2 double-excitation
                // shape): the CX ladders fence the apex blocks apart, so
                // blocks ≫ parameter-dependent blocks — the regime the
                // ≤ 4-equivalents bound describes.
                let gen = PauliOp::from_terms(
                    4,
                    vec![
                        (C64::imag(0.5), PauliString::parse("XXXY").unwrap()),
                        (C64::imag(-0.5), PauliString::parse("XXYX").unwrap()),
                    ],
                );
                for (coeff, s) in gen.terms() {
                    nwq_circuit::exp_pauli::append_exp_pauli(
                        &mut c,
                        s,
                        ParamExpr::scaled_var(j, -2.0 * coeff.im),
                    )
                    .unwrap();
                }
            }
            c
        };
        let h = PauliOp::parse("1.0 ZZII + 0.3 IXXI").unwrap();
        for n_params in [1usize, 3, 8] {
            let theta: Vec<f64> = (0..n_params).map(|k| 0.1 + 0.2 * k as f64).collect();
            let adj = energy_and_gradient(&uccsd(n_params), &theta, &h).unwrap();
            assert!(
                adj.evolution_equivalents() <= 4.0,
                "P={n_params}: {} equivalents",
                adj.evolution_equivalents()
            );
        }
    }

    #[test]
    fn force_scalar_mode_produces_identical_gradient() {
        let mut c = Circuit::new(2);
        c.ry(0, ParamExpr::var(0)).cx(0, 1).rx(1, ParamExpr::var(1));
        let h = PauliOp::parse("0.7 ZZ + 0.3 XI").unwrap();
        let theta = [0.9, -0.4];
        let simd_grad = energy_and_gradient(&c, &theta, &h).unwrap();
        simd::set_force_scalar(true);
        let scalar_grad = energy_and_gradient(&c, &theta, &h);
        simd::set_force_scalar(false);
        let scalar_grad = scalar_grad.unwrap();
        assert_eq!(simd_grad.energy.to_bits(), scalar_grad.energy.to_bits());
        for (a, b) in simd_grad.gradient.iter().zip(&scalar_grad.gradient) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn dagger_tape_round_trips_the_state() {
        let mut c = Circuit::new(3);
        c.h(0)
            .ry(1, ParamExpr::var(0))
            .cx(0, 1)
            .rz(1, ParamExpr::var(1))
            .cx(1, 2)
            .rzz(0, 2, 0.7)
            .u3(2, 0.3, -0.8, 1.1)
            .sx(0);
        let theta = [0.83, -1.91];
        let plan = ExecPlan::compile(&c, &theta).unwrap();
        let mut ex = Executor::new();
        let forward = ex.run_plan(&plan).unwrap();

        // In-place inverse replay returns to |0…0⟩.
        let mut state = forward.clone();
        ex.run_plan_inverse_on(&plan, &mut state).unwrap();
        for (i, a) in state.amplitudes().iter().enumerate() {
            let expect = if i == 0 {
                C64::real(1.0)
            } else {
                C64::real(0.0)
            };
            assert!(a.approx_eq(expect, 1e-10), "amp {i}: {a:?}");
        }

        // The materialized dagger plan does the same.
        let mut state = forward.clone();
        ex.run_plan_on(&plan.dagger(), &mut state).unwrap();
        for (i, a) in state.amplitudes().iter().enumerate() {
            let expect = if i == 0 {
                C64::real(1.0)
            } else {
                C64::real(0.0)
            };
            assert!(a.approx_eq(expect, 1e-10), "amp {i}: {a:?}");
        }

        // And daggering twice reproduces the forward state.
        let again = ex.run_plan(&plan.dagger().dagger()).unwrap();
        assert!((again.fidelity(&forward).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dagger_template_is_cached_once_per_shape() {
        crate::plan_cache::clear();
        let mut c = Circuit::new(2);
        c.ry(0, ParamExpr::scaled_var(0, 2.0)).cx(0, 1);
        let a = crate::plan_cache::adjoint_for(&c).unwrap();
        let b = crate::plan_cache::adjoint_for(&c).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn mismatched_observable_width_rejected() {
        let mut c = Circuit::new(2);
        c.h(0);
        let h = PauliOp::parse("1.0 ZZZ").unwrap();
        assert!(energy_and_gradient(&c, &[], &h).is_err());
    }

    fn arb_hea(n: usize, layers: usize) -> impl Strategy<Value = (Circuit, Vec<f64>)> {
        let angles = proptest::collection::vec(-3.0..3.0f64, n * layers);
        let kinds = proptest::collection::vec(0..3u8, n * layers);
        (angles, kinds).prop_map(move |(angles, kinds)| {
            let mut c = Circuit::new(n);
            let mut p = 0usize;
            for _ in 0..layers {
                for q in 0..n {
                    match kinds[p] {
                        0 => c.rx(q, ParamExpr::var(p)),
                        1 => c.ry(q, ParamExpr::var(p)),
                        _ => c.rz(q, ParamExpr::var(p)),
                    };
                    p += 1;
                }
                for q in 0..n - 1 {
                    c.cx(q, q + 1);
                }
            }
            (c, angles)
        })
    }

    fn arb_observable(n: usize) -> impl Strategy<Value = PauliOp> {
        let term = (proptest::collection::vec(0..4u8, n), -1.0..1.0f64);
        proptest::collection::vec(term, 1..4).prop_map(move |terms| {
            PauliOp::from_terms(
                n,
                terms
                    .into_iter()
                    .map(|(axes, w)| {
                        let text: String = axes
                            .iter()
                            .map(|a| ["I", "X", "Y", "Z"][*a as usize])
                            .collect();
                        (C64::real(w), PauliString::parse(&text).unwrap())
                    })
                    .collect(),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn adjoint_matches_shift_and_fd_on_random_hea(
            (c, theta) in arb_hea(3, 2),
            h in arb_observable(3),
        ) {
            let adj = energy_and_gradient(&c, &theta, &h).unwrap();
            let shift = batched_parameter_shift_gradient(&c, &theta, &h).unwrap();
            for (a, s) in adj.gradient.iter().zip(&shift) {
                prop_assert!((a - s).abs() < 1e-10, "{} vs {}", a, s);
            }
            for (a, f) in adj.gradient.iter().zip(&fd_gradient(&c, &theta, &h)) {
                prop_assert!((a - f).abs() < 1e-5, "{} vs {}", a, f);
            }
            let e = simulate_plan(&c, &theta).unwrap().energy(&h).unwrap();
            prop_assert!((adj.energy - e).abs() < 1e-10);
        }

        #[test]
        fn adjoint_matches_excitation_shift_on_random_uccsd(
            occ in 0..2usize,
            theta in proptest::collection::vec(-1.5..1.5f64, 2),
            h in arb_observable(4),
        ) {
            // Two random-ish excitation blocks on 4 qubits sharing the
            // committed UCCSD construction (π/4-rule parameters).
            let mut c = Circuit::new(4);
            c.x(occ).x(occ + 1);
            for (j, (a, b)) in [("XY", "YX"), ("XXXY", "XXYX")].iter().enumerate() {
                let gen = PauliOp::from_terms(4, vec![
                    (C64::imag(0.5), PauliString::parse(&format!("{a:I<4}")).unwrap()),
                    (C64::imag(-0.5), PauliString::parse(&format!("{b:I<4}")).unwrap()),
                ]);
                for (coeff, s) in gen.terms() {
                    nwq_circuit::exp_pauli::append_exp_pauli(
                        &mut c, s, ParamExpr::scaled_var(j, -2.0 * coeff.im),
                    ).unwrap();
                }
            }
            let adj = energy_and_gradient(&c, &theta, &h).unwrap();
            let shift = batched_excitation_gradient(&c, &theta, &h).unwrap();
            for (a, s) in adj.gradient.iter().zip(&shift) {
                prop_assert!((a - s).abs() < 1e-10, "{} vs {}", a, s);
            }
            prop_assert!(adj.evolution_equivalents() <= 4.0);
        }

        #[test]
        fn inverse_replay_round_trips_random_circuits(
            (c, theta) in arb_hea(3, 2),
        ) {
            let plan = ExecPlan::compile(&c, &theta).unwrap();
            let mut ex = Executor::new();
            let mut state = ex.run_plan(&plan).unwrap();
            ex.run_plan_inverse_on(&plan, &mut state).unwrap();
            for (i, a) in state.amplitudes().iter().enumerate() {
                let expect = if i == 0 { C64::real(1.0) } else { C64::real(0.0) };
                prop_assert!(a.approx_eq(expect, 1e-10), "amp {}: {:?}", i, a);
            }
        }
    }
}
