//! Walker-batched multi-θ evolution: one amplitude pass drives many
//! parameter points.
//!
//! A [`WalkerSet`] holds `n_walkers` statevectors over the same register
//! interleaved amplitude-major — walker `w`'s amplitude `i` lives at
//! `amps[i · n_walkers + w]`, so the `n_walkers` values of one amplitude
//! index share cache lines. Evolving the set under per-walker plans (same
//! circuit *shape*, one [`crate::plan::PlanTemplate`] bind per θ) then
//! touches each cache line once for all walkers per kernel sweep, instead
//! of streaming the whole register from memory once per θ.
//!
//! The second — and on many-term molecular Hamiltonians the dominant —
//! win is in the readout: the flip-group phase `f(x) = Σ_t c_t·sign_t(x)`
//! of the batched §4.2 expectation is θ-independent, so
//! [`walker_energies`] computes it ONCE per amplitude index and reuses it
//! for every walker, where independent evaluation recomputes it per θ.
//!
//! **Bitwise contract.** Every walker kernel applies, per walker, exactly
//! the arithmetic of the single-state serial kernels in
//! [`crate::kernels`] (same expressions, same order, including the
//! diagonal fast paths), and [`walker_energies`] mirrors
//! [`crate::expval::energy_direct_batched`]'s serial accumulation order
//! per walker. An N-walker sweep is therefore bit-for-bit identical to N
//! independent single-state runs — the tests and the serve batcher rely
//! on this.

use crate::expval::{ensure_finite_energy, flip_groups};
use crate::kernels::{DiagFactor, Mat4Shape, SubKind};
use crate::plan::{ExecPlan, PlanOp};
use crate::state::StateVector;
use nwq_common::{Error, Mat2, Mat4, Result, C64, C_ONE, C_ZERO};
use nwq_pauli::PauliOp;

/// `n_walkers` same-width statevectors stored amplitude-major:
/// `amps[i · n_walkers + w]` is walker `w`'s amplitude `i`.
#[derive(Clone, Debug, PartialEq)]
pub struct WalkerSet {
    n_qubits: usize,
    n_walkers: usize,
    amps: Vec<C64>,
}

impl WalkerSet {
    /// `n_walkers` copies of `|0…0⟩` on `n_qubits`. Errors on zero
    /// walkers.
    pub fn zero(n_qubits: usize, n_walkers: usize) -> Result<Self> {
        if n_walkers == 0 {
            return Err(Error::Invalid(
                "walker set needs at least one walker".into(),
            ));
        }
        let dim = 1usize << n_qubits;
        let mut amps = vec![C_ZERO; dim * n_walkers];
        amps[..n_walkers].fill(C_ONE);
        Ok(WalkerSet {
            n_qubits,
            n_walkers,
            amps,
        })
    }

    /// Interleaves existing states (all must share a register width).
    pub fn from_states(states: &[StateVector]) -> Result<Self> {
        let first = states
            .first()
            .ok_or_else(|| Error::Invalid("walker set needs at least one walker".into()))?;
        let n_qubits = first.n_qubits();
        let n_walkers = states.len();
        let dim = first.len();
        let mut amps = vec![C_ZERO; dim * n_walkers];
        for (w, s) in states.iter().enumerate() {
            if s.n_qubits() != n_qubits {
                return Err(Error::DimensionMismatch {
                    expected: n_qubits,
                    got: s.n_qubits(),
                });
            }
            for (i, a) in s.amplitudes().iter().enumerate() {
                amps[i * n_walkers + w] = *a;
            }
        }
        Ok(WalkerSet {
            n_qubits,
            n_walkers,
            amps,
        })
    }

    /// Register width shared by every walker.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of walkers in the set.
    #[inline]
    pub fn n_walkers(&self) -> usize {
        self.n_walkers
    }

    /// Amplitudes per walker (`2^n`).
    #[inline]
    pub fn dim(&self) -> usize {
        1usize << self.n_qubits
    }

    /// The full interleaved amplitude buffer.
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Mutable interleaved amplitude buffer (used by the walker kernels).
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// Walker `w`'s amplitude `i`.
    #[inline]
    pub fn amp(&self, i: usize, w: usize) -> C64 {
        self.amps[i * self.n_walkers + w]
    }

    /// De-interleaves walker `w` into a standalone state.
    pub fn walker_state(&self, w: usize) -> StateVector {
        let amps = (0..self.dim()).map(|i| self.amp(i, w)).collect();
        StateVector::from_amplitudes(amps).expect("walker dim is a power of two")
    }

    /// De-interleaves the whole set.
    pub fn into_states(self) -> Vec<StateVector> {
        (0..self.n_walkers).map(|w| self.walker_state(w)).collect()
    }

    /// Squared 2-norm of walker `w`.
    pub fn walker_norm_sqr(&self, w: usize) -> f64 {
        (0..self.dim()).map(|i| self.amp(i, w).norm_sqr()).sum()
    }

    /// Rescales walker `w` to unit norm (the walker analog of
    /// [`StateVector::normalize`]). Errors on a zero/non-finite norm.
    pub fn normalize_walker(&mut self, w: usize) -> Result<()> {
        let n = self.walker_norm_sqr(w).sqrt();
        if n <= 0.0 || !n.is_finite() {
            return Err(Error::Numerical(
                "cannot normalize zero/non-finite walker".into(),
            ));
        }
        let inv = 1.0 / n;
        let nw = self.n_walkers;
        for i in 0..self.dim() {
            self.amps[i * nw + w] = self.amps[i * nw + w] * inv;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Walker kernels: per-walker single-state arithmetic, cache line touched
// once for all walkers.
// ---------------------------------------------------------------------------

/// Single-qubit sweep over all walkers. `mats[w]`/`diag[w]` give walker
/// `w`'s matrix and its diagonality; per walker this is exactly the
/// serial `apply_mat2` (pair update, or `a *= d[bit]` diagonal fast
/// path).
#[inline(always)]
fn walker_mat2_body(amps: &mut [C64], nw: usize, stride: usize, mats: &[Mat2], diag: &[bool]) {
    let row = nw;
    let block = (stride << 1) * row;
    for c in amps.chunks_mut(block) {
        let (lo, hi) = c.split_at_mut(stride * row);
        for (l, h) in lo.chunks_exact_mut(row).zip(hi.chunks_exact_mut(row)) {
            for w in 0..row {
                let m = &mats[w];
                if diag[w] {
                    l[w] *= m.0[0][0];
                    h[w] *= m.0[1][1];
                } else {
                    let a = l[w];
                    let b = h[w];
                    l[w] = m.0[0][0] * a + m.0[0][1] * b;
                    h[w] = m.0[1][0] * a + m.0[1][1] * b;
                }
            }
        }
    }
}

/// Walker-batched single-qubit sweep (`stride = 2^q`). Dispatches to the
/// explicit AVX2 walker kernel — lanes are walkers, so the vectors need
/// no shuffles at any stride — with the auto-vectorized body as the
/// scalar reference.
pub fn walker_mat2_sweep(amps: &mut [C64], nw: usize, stride: usize, mats: &[Mat2], diag: &[bool]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::simd_selected() {
        // SAFETY: simd_selected() is true only when AVX2 was detected.
        return unsafe { crate::simd::avx::walker_mat2(amps, nw, stride, mats, diag) };
    }
    walker_mat2_body(amps, nw, stride, mats, diag)
}

/// Two-qubit sweep over all walkers (`hi > lo` prenormalized). Per walker
/// this is the serial `apply_mat4_prenorm` quad update, or the
/// `a *= d[idx]` diagonal fast path.
#[inline(always)]
fn walker_mat4_body(
    amps: &mut [C64],
    nw: usize,
    s_hi: usize,
    s_lo: usize,
    mats: &[Mat4],
    diag: &[bool],
) {
    let row = nw;
    let block = (s_hi << 1) * row;
    let lo_block = (s_lo << 1) * row;
    for c in amps.chunks_mut(block) {
        let (h0, h1) = c.split_at_mut(s_hi * row);
        for (c0, c1) in h0.chunks_mut(lo_block).zip(h1.chunks_mut(lo_block)) {
            let (c00, c01) = c0.split_at_mut(s_lo * row);
            let (c10, c11) = c1.split_at_mut(s_lo * row);
            for j in 0..s_lo {
                let base = j * row;
                for w in 0..row {
                    let k = base + w;
                    let m = &mats[w];
                    if diag[w] {
                        c00[k] *= m.0[0][0];
                        c01[k] *= m.0[1][1];
                        c10[k] *= m.0[2][2];
                        c11[k] *= m.0[3][3];
                    } else {
                        let v = [c00[k], c01[k], c10[k], c11[k]];
                        let r = &m.0;
                        c00[k] = r[0][0] * v[0] + r[0][1] * v[1] + r[0][2] * v[2] + r[0][3] * v[3];
                        c01[k] = r[1][0] * v[0] + r[1][1] * v[1] + r[1][2] * v[2] + r[1][3] * v[3];
                        c10[k] = r[2][0] * v[0] + r[2][1] * v[1] + r[2][2] * v[2] + r[2][3] * v[3];
                        c11[k] = r[3][0] * v[0] + r[3][1] * v[1] + r[3][2] * v[2] + r[3][3] * v[3];
                    }
                }
            }
        }
    }
}

/// Walker-batched two-qubit sweep (`s_hi = 2^hi`, `s_lo = 2^lo`,
/// `hi > lo`). Dispatches to the explicit AVX2 walker kernel.
pub fn walker_mat4_sweep(
    amps: &mut [C64],
    nw: usize,
    s_hi: usize,
    s_lo: usize,
    mats: &[Mat4],
    diag: &[bool],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::simd_selected() {
        // SAFETY: simd_selected() is true only when AVX2 was detected.
        return unsafe { crate::simd::avx::walker_mat4(amps, nw, s_hi, s_lo, mats, diag) };
    }
    walker_mat4_body(amps, nw, s_hi, s_lo, mats, diag)
}

/// One walker's 2×2 sub-block on a (low, high) value pair — the walker
/// analog of the single-state block kernels' `apply_sub_pairwise`:
/// `Identity` untouched, `Diag` in-place `*=`, `Dense` 2-term MAC.
#[inline(always)]
fn walker_sub_pair(lo: &mut C64, hi: &mut C64, k: SubKind, m: &nwq_common::Mat2) {
    match k {
        SubKind::Identity => {}
        SubKind::Diag => {
            *lo *= m.0[0][0];
            *hi *= m.0[1][1];
        }
        SubKind::Dense => {
            let a = *lo;
            let b = *hi;
            *lo = m.0[0][0] * a + m.0[0][1] * b;
            *hi = m.0[1][0] * a + m.0[1][1] * b;
        }
    }
}

/// Two-qubit sweep over all walkers where at least one walker's matrix is
/// block-structured (e.g. a CX that did not fuse into a dense block).
/// Per walker this applies exactly the single-state shaped arithmetic of
/// `apply_mat4_shaped` — identity sub-blocks skipped, not multiplied.
/// Scalar-only: per-walker sub-block *skipping* cannot ride the
/// lane-parallel AVX walker kernel, which assumes every lane runs the
/// same dense/diagonal expression.
pub fn walker_mat4_shaped_sweep(
    amps: &mut [C64],
    nw: usize,
    s_hi: usize,
    s_lo: usize,
    mats: &[Mat4],
    shapes: &[Mat4Shape],
) {
    let row = nw;
    let block = (s_hi << 1) * row;
    let lo_block = (s_lo << 1) * row;
    for c in amps.chunks_mut(block) {
        let (h0, h1) = c.split_at_mut(s_hi * row);
        for (c0, c1) in h0.chunks_mut(lo_block).zip(h1.chunks_mut(lo_block)) {
            let (c00, c01) = c0.split_at_mut(s_lo * row);
            let (c10, c11) = c1.split_at_mut(s_lo * row);
            for j in 0..s_lo {
                let base = j * row;
                for w in 0..row {
                    let k = base + w;
                    let m = &mats[w];
                    match &shapes[w] {
                        Mat4Shape::Diagonal => {
                            c00[k] *= m.0[0][0];
                            c01[k] *= m.0[1][1];
                            c10[k] *= m.0[2][2];
                            c11[k] *= m.0[3][3];
                        }
                        Mat4Shape::BlockHi { a, ka, b, kb } => {
                            walker_sub_pair(&mut c00[k], &mut c01[k], *ka, a);
                            walker_sub_pair(&mut c10[k], &mut c11[k], *kb, b);
                        }
                        Mat4Shape::BlockLo { a, ka, b, kb } => {
                            walker_sub_pair(&mut c00[k], &mut c10[k], *ka, a);
                            walker_sub_pair(&mut c01[k], &mut c11[k], *kb, b);
                        }
                        Mat4Shape::Dense => {
                            let v = [c00[k], c01[k], c10[k], c11[k]];
                            let r = &m.0;
                            c00[k] =
                                r[0][0] * v[0] + r[0][1] * v[1] + r[0][2] * v[2] + r[0][3] * v[3];
                            c01[k] =
                                r[1][0] * v[0] + r[1][1] * v[1] + r[1][2] * v[2] + r[1][3] * v[3];
                            c10[k] =
                                r[2][0] * v[0] + r[2][1] * v[1] + r[2][2] * v[2] + r[2][3] * v[3];
                            c11[k] =
                                r[3][0] * v[0] + r[3][1] * v[1] + r[3][2] * v[2] + r[3][3] * v[3];
                        }
                    }
                }
            }
        }
    }
}

/// Diagonal sweep over all walkers. `factors` is factor-major:
/// `factors[f · nw + w]` is walker `w`'s `f`-th factor (all walkers share
/// factor *kinds* at each position — checked by [`plans_aligned`]). Per
/// walker each amplitude multiplies its factors in plan order, exactly
/// like the serial `apply_diag_sweep`.
#[inline(always)]
fn walker_diag_body(amps: &mut [C64], nw: usize, factors: &[DiagFactor]) {
    let n_factors = factors.len() / nw;
    for (i, rows) in amps.chunks_exact_mut(nw).enumerate() {
        for f in 0..n_factors {
            let fr = &factors[f * nw..(f + 1) * nw];
            for (w, a) in rows.iter_mut().enumerate() {
                *a *= fr[w].at(i);
            }
        }
    }
}

/// Walker-batched diagonal sweep (factor-major `factors`). Dispatches to
/// the explicit AVX2 walker kernel (shared bit selectors, per-pair entry
/// tables).
pub fn walker_diag_sweep(amps: &mut [C64], nw: usize, factors: &[DiagFactor]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::simd_selected() {
        // SAFETY: simd_selected() is true only when AVX2 was detected.
        return unsafe { crate::simd::avx::walker_diag(amps, nw, factors) };
    }
    walker_diag_body(amps, nw, factors)
}

/// Accumulates one block of the walker-batched flip-group reduction:
/// for each index `x = base + j` with shared group phase `f[j]`, folds
/// `w_w(x) · f[j]` into `accs[w]`, where `w_w` is walker `w`'s pair
/// weight (`|ψ_w[x]|²` for the diagonal group, else
/// `conj(ψ_w[x⊕m])·ψ_w[x]`). Per walker the products and the fold order
/// match `energy_direct_batched`'s serial loop exactly.
#[inline(always)]
fn walker_accum_body(accs: &mut [C64], amps: &[C64], nw: usize, base: usize, m: usize, f: &[C64]) {
    if m == 0 {
        for (j, &fx) in f.iter().enumerate() {
            let row = &amps[(base + j) * nw..(base + j + 1) * nw];
            for (w, acc) in accs.iter_mut().enumerate() {
                *acc += C64::new(row[w].norm_sqr(), 0.0) * fx;
            }
        }
    } else {
        for (j, &fx) in f.iter().enumerate() {
            let x = base + j;
            let row = &amps[x * nw..(x + 1) * nw];
            let mate = &amps[(x ^ m) * nw..((x ^ m) + 1) * nw];
            for (w, acc) in accs.iter_mut().enumerate() {
                *acc += (mate[w].conj() * row[w]) * fx;
            }
        }
    }
}

/// Walker-batched flip-group accumulation block. Dispatches to the
/// explicit AVX2 walker kernel (per-pair register accumulators).
pub fn walker_accum(accs: &mut [C64], amps: &[C64], nw: usize, base: usize, m: usize, f: &[C64]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::simd_selected() {
        // SAFETY: simd_selected() is true only when AVX2 was detected.
        return unsafe { crate::simd::avx::walker_accum(accs, amps, nw, base, m, f) };
    }
    walker_accum_body(accs, amps, nw, base, m, f)
}

// ---------------------------------------------------------------------------
// Plan alignment.
// ---------------------------------------------------------------------------

/// `true` when every plan has the same *shape*: identical op sequences up
/// to matrix/phase values (same kinds, same qubits, and for diagonal
/// sweeps the same factor kinds position-for-position). Binding one
/// [`crate::plan::PlanTemplate`] at several θ usually yields aligned
/// plans; they diverge only when a bound matrix changes diagonality with
/// θ (e.g. `RX(0)` coalesces into a diagonal sweep where `RX(1.3)` stays
/// a pair update), in which case callers must fall back to independent
/// evaluation.
pub fn plans_aligned(plans: &[ExecPlan]) -> bool {
    let Some((first, rest)) = plans.split_first() else {
        return true;
    };
    rest.iter().all(|p| {
        p.n_qubits() == first.n_qubits()
            && p.ops().len() == first.ops().len()
            && p.ops().iter().zip(first.ops()).all(|(a, b)| match (a, b) {
                (PlanOp::One(qa, _), PlanOp::One(qb, _)) => qa == qb,
                (PlanOp::Two(ha, la, _), PlanOp::Two(hb, lb, _)) => ha == hb && la == lb,
                (
                    PlanOp::DiagSweep {
                        start: sa, len: la, ..
                    },
                    PlanOp::DiagSweep {
                        start: sb, len: lb, ..
                    },
                ) => {
                    la == lb
                        && p.factors()[*sa..*sa + *la]
                            .iter()
                            .zip(&first.factors()[*sb..*sb + *lb])
                            .all(|(fa, fb)| match (fa, fb) {
                                (DiagFactor::One { q: qa, .. }, DiagFactor::One { q: qb, .. }) => {
                                    qa == qb
                                }
                                (
                                    DiagFactor::Two { hi: ha, lo: la, .. },
                                    DiagFactor::Two { hi: hb, lo: lb, .. },
                                ) => ha == hb && la == lb,
                                _ => false,
                            })
                }
                _ => false,
            })
    })
}

// ---------------------------------------------------------------------------
// Walker energies.
// ---------------------------------------------------------------------------

/// Block width of the walker flip-group reduction (shared-phase buffer).
const WALKER_BLOCK: usize = 128;

/// Per-walker energies `Re⟨ψ_w|H|ψ_w⟩` in one pass over the interleaved
/// buffer. The flip-group phase `f(x)` is θ-independent, so it is
/// computed once per amplitude index and shared by every walker — the
/// readout work drops from `n_walkers` full term sweeps to one, which on
/// many-term Hamiltonians dominates the whole evaluation. Per walker the
/// result is bitwise [`crate::expval::energy_direct_batched`].
pub fn walker_energies(set: &WalkerSet, op: &PauliOp) -> Result<Vec<f64>> {
    if set.dim() != 1usize << op.n_qubits() {
        return Err(Error::DimensionMismatch {
            expected: 1usize << op.n_qubits(),
            got: set.dim(),
        });
    }
    let _span = nwq_telemetry::span!("expval.walkers");
    let nw = set.n_walkers();
    let dim = set.dim();
    let groups = flip_groups(op);
    nwq_telemetry::counter_add("expval.term_sweeps", (op.num_terms() * nw) as u64);
    nwq_telemetry::counter_add("expval.batched_sweeps", groups.len() as u64);
    nwq_telemetry::counter_add(
        "expval.sweeps_saved",
        (op.num_terms() * nw - groups.len()) as u64,
    );
    let mut totals = vec![C_ZERO; nw];
    let mut accs = vec![C_ZERO; nw];
    let mut fbuf = [C_ZERO; WALKER_BLOCK];
    for g in &groups {
        let m = g.mask as usize;
        // group_phase_block's term triples carry the mask slot unused.
        let triples: Vec<(u64, C64, u64)> = g.terms.iter().map(|&(c, z)| (g.mask, c, z)).collect();
        accs.fill(C_ZERO);
        for base in (0..dim).step_by(WALKER_BLOCK) {
            let blk = WALKER_BLOCK.min(dim - base);
            crate::simd::group_phase_block(&mut fbuf[..blk], base, &triples);
            walker_accum(&mut accs, set.amplitudes(), nw, base, m, &fbuf[..blk]);
        }
        for (t, a) in totals.iter_mut().zip(&accs) {
            *t += *a;
        }
    }
    totals
        .iter()
        .map(|t| ensure_finite_energy(t.re, "walker-batched expectation"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::expval::energy_direct_batched;
    use nwq_circuit::{Circuit, ParamExpr};

    fn ansatz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.ry(q, ParamExpr::var(q % 3));
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c.rz(0, ParamExpr::var(0)).rzz(1, n - 1, ParamExpr::var(1));
        c
    }

    fn bits(s: &StateVector) -> Vec<(u64, u64)> {
        s.amplitudes()
            .iter()
            .map(|a| (a.re.to_bits(), a.im.to_bits()))
            .collect()
    }

    #[test]
    fn round_trip_preserves_states() {
        let c = ansatz(5);
        let states: Vec<StateVector> = [[0.3, -0.7, 1.1], [0.0, 0.4, -0.2]]
            .iter()
            .map(|p| crate::executor::simulate_plan(&c, p).unwrap())
            .collect();
        let set = WalkerSet::from_states(&states).unwrap();
        assert_eq!(set.n_walkers(), 2);
        assert_eq!(set.n_qubits(), 5);
        for (w, s) in set.clone().into_states().iter().enumerate() {
            assert_eq!(bits(s), bits(&states[w]), "walker {w}");
        }
    }

    #[test]
    fn walker_run_bitwise_matches_independent_runs() {
        let c = ansatz(6);
        let thetas = [
            [0.3, -0.7, 1.1],
            [0.9, 0.4, -1.3],
            [0.0, 0.0, 0.0],
            [2.2, -0.1, 0.7],
        ];
        let plans: Vec<ExecPlan> = thetas
            .iter()
            .map(|p| ExecPlan::compile(&c, p).unwrap())
            .collect();
        assert!(plans_aligned(&plans));
        let mut set = WalkerSet::zero(6, plans.len()).unwrap();
        Executor::new().run_plans_walkers(&plans, &mut set).unwrap();
        for (w, plan) in plans.iter().enumerate() {
            let single = Executor::new().run_plan(plan).unwrap();
            assert_eq!(bits(&set.walker_state(w)), bits(&single), "walker {w}");
        }
    }

    #[test]
    fn walker_energies_bitwise_match_batched_direct() {
        let c = ansatz(6);
        let h = nwq_pauli::PauliOp::parse(
            "0.7 ZZIIII + 0.3 XXIIII + 0.2 IYZXII + 0.1 ZIIIIZ + 0.05 IIIIII + 0.4 IXXIII",
        )
        .unwrap();
        let thetas = [[0.3, -0.7, 1.1], [0.9, 0.4, -1.3], [1.7, 0.2, 0.5]];
        let plans: Vec<ExecPlan> = thetas
            .iter()
            .map(|p| ExecPlan::compile(&c, p).unwrap())
            .collect();
        let mut set = WalkerSet::zero(6, plans.len()).unwrap();
        Executor::new().run_plans_walkers(&plans, &mut set).unwrap();
        let batched = walker_energies(&set, &h).unwrap();
        for (w, plan) in plans.iter().enumerate() {
            let single = Executor::new().run_plan(plan).unwrap();
            let e = energy_direct_batched(&single, &h).unwrap();
            assert_eq!(batched[w].to_bits(), e.to_bits(), "walker {w}");
        }
    }

    #[test]
    fn misaligned_plans_detected() {
        // RX(0) binds to a diagonal (identity) block where RX(1.3) stays a
        // pair update, so the op sequences diverge.
        let mut c = Circuit::new(2);
        c.rx(0, ParamExpr::var(0)).cx(0, 1);
        let a = ExecPlan::compile(&c, &[0.0]).unwrap();
        let b = ExecPlan::compile(&c, &[1.3]).unwrap();
        if a.ops().len() == b.ops().len()
            && a.ops()
                .iter()
                .zip(b.ops())
                .all(|(x, y)| std::mem::discriminant(x) == std::mem::discriminant(y))
        {
            // Bind didn't re-specialize on this build; nothing to assert.
            return;
        }
        assert!(!plans_aligned(&[a, b]));
    }

    #[test]
    fn empty_and_zero_walker_sets() {
        assert!(WalkerSet::zero(3, 0).is_err());
        assert!(WalkerSet::from_states(&[]).is_err());
        assert!(plans_aligned(&[]));
        let set = WalkerSet::zero(3, 2).unwrap();
        assert!((set.walker_norm_sqr(0) - 1.0).abs() < 1e-15);
        assert!((set.walker_norm_sqr(1) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn width_mismatch_rejected() {
        let s3 = StateVector::zero(3);
        let s4 = StateVector::zero(4);
        assert!(WalkerSet::from_states(&[s3.clone(), s4]).is_err());
        let set = WalkerSet::from_states(&[s3]).unwrap();
        let h = nwq_pauli::PauliOp::parse("1.0 ZZ").unwrap();
        assert!(walker_energies(&set, &h).is_err());
    }
}
