//! SIMD-shaped kernel inner loops with runtime AVX2 dispatch.
//!
//! The workspace compiles for the baseline `x86-64` target (SSE2 scalar
//! math), so the hot amplitude loops in [`crate::kernels`] and
//! [`crate::expval`] would never see AVX2 no matter how they are written.
//! This module fixes that without a rebuild: every inner-loop body is a
//! single `#[inline(always)]` function written in an explicitly
//! vectorizable shape — amplitudes viewed as interleaved `re`/`im` `f64`
//! lanes, loop-invariant matrix entries hoisted into scalars, no
//! per-iteration branches — and instantiated **twice**: once as a plain
//! function (scalar/SSE2 codegen) and once under
//! `#[target_feature(enable = "avx2")]`, where LLVM re-optimizes the same
//! IR with 4-wide `f64` vectors. [`simd_selected`] picks the AVX2
//! instantiation at runtime when the CPU supports it.
//!
//! **Bitwise parity is by construction.** Both instantiations compile the
//! *same Rust expressions*, and Rust guarantees strict IEEE-754 semantics:
//! `a * b + c` is never contracted to a fused multiply-add, so the AVX2
//! build performs the identical sequence of rounded operations — only more
//! of them per cycle. The scalar instantiation stays reachable through
//! [`set_force_scalar`] (or the `NWQ_SCALAR_KERNELS=1` environment
//! variable) so parity tests and calibration benches can pin
//! `scalar == simd` bit-for-bit on the AVX2 host itself.

use crate::kernels::DiagFactor;
use nwq_common::{Mat2, Mat4, C64};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// `true` when the CPU supports AVX2 (detected once per process).
pub fn avx2_detected() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

fn env_forced_scalar() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("NWQ_SCALAR_KERNELS")
            .map(|v| v != "0" && !v.is_empty())
            .unwrap_or(false)
    })
}

/// Forces (or un-forces) the scalar instantiation regardless of CPU
/// support — the runtime switch parity tests and the calibration bench
/// flip to measure `simd` against `scalar` in one process. Both
/// instantiations are bitwise identical, so flipping this mid-run can
/// change only speed, never results.
pub fn set_force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// `true` while [`set_force_scalar`] (or `NWQ_SCALAR_KERNELS`) pins the
/// scalar path.
pub fn scalar_forced() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed) || env_forced_scalar()
}

/// `true` when kernel sweeps will run through the AVX2 instantiation:
/// the CPU supports it and nothing forces the scalar path.
#[inline]
pub fn simd_selected() -> bool {
    avx2_detected() && !scalar_forced()
}

/// Reinterprets an amplitude slice as its interleaved `re`/`im` `f64`
/// lanes. `C64` is `#[repr(C)] { re: f64, im: f64 }`, explicitly
/// layout-compatible with `[f64; 2]`.
#[inline(always)]
fn lanes_mut(amps: &mut [C64]) -> &mut [f64] {
    // SAFETY: C64 is #[repr(C)] with exactly two f64 fields, so a [C64]
    // allocation is a valid [f64] allocation of twice the length; f64 has
    // no invalid bit patterns and alignment is identical.
    unsafe { std::slice::from_raw_parts_mut(amps.as_mut_ptr() as *mut f64, amps.len() * 2) }
}

/// Instantiates `$body` as `mod $name { scalar, avx2 }` plus a public
/// dispatcher `$name` that selects the AVX2 build when
/// [`simd_selected`] holds. The dispatch cost is one relaxed atomic load
/// per *sweep*, not per amplitude — callers hand whole loops to these
/// entry points.
macro_rules! simd_dispatch {
    ($(#[$doc:meta])* pub fn $name:ident($($arg:ident: $ty:ty),* $(,)?) = $body:ident) => {
        $(#[$doc])*
        pub fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2")]
                unsafe fn avx2($($arg: $ty),*) {
                    $body($($arg),*)
                }
                if $crate::simd::simd_selected() {
                    // SAFETY: simd_selected() is true only when AVX2 was
                    // detected on this CPU.
                    return unsafe { avx2($($arg),*) };
                }
            }
            $body($($arg),*)
        }
    };
}

// ---------------------------------------------------------------------------
// Explicit AVX2 kernels for the dense mat2/mat4 sweeps.
//
// Auto-vectorization recovers most of the win for the diagonal and
// expectation sweeps, but the dense pair/quad updates leave throughput on
// the table (deinterleave shuffles, matrix-constant reloads). These
// hand-written kernels process two complex amplitudes per 256-bit vector
// with the classic `vaddsubpd` complex multiply:
//
//   cmul(v, m) = addsub(v·[m.re], swap_pairs(v)·[m.im])
//              = [ar·m.re − ai·m.im, ai·m.re + ar·m.im, …]
//
// which is bitwise the scalar `C64` product (`m.re·ar ≡ ar·m.re` — f64
// multiplication is commutative at the bit level — and the add/sub pairs
// the same operands), followed by `vaddpd` accumulation in the scalar
// kernels' exact association order. The scalar instantiations remain the
// reference the parity tests compare against.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx {
    use super::*;
    use std::arch::x86_64::*;

    /// Broadcast of one complex matrix entry: (`[re; 4]`, `[im; 4]`).
    #[inline(always)]
    unsafe fn bcast(c: C64) -> (__m256d, __m256d) {
        (_mm256_set1_pd(c.re), _mm256_set1_pd(c.im))
    }

    /// Per-walker-pair broadcast: lanes 0–1 carry `a`, lanes 2–3 `b`.
    #[inline(always)]
    unsafe fn bcast2(a: C64, b: C64) -> (__m256d, __m256d) {
        (
            _mm256_setr_pd(a.re, a.re, b.re, b.re),
            _mm256_setr_pd(a.im, a.im, b.im, b.im),
        )
    }

    /// Amp-first broadcast: `([re, im, re, im], [im, re, im, re])` — the
    /// constant shape [`cmul_amp`] consumes.
    #[inline(always)]
    unsafe fn bcast_ri(c: C64) -> (__m256d, __m256d) {
        (
            _mm256_setr_pd(c.re, c.im, c.re, c.im),
            _mm256_setr_pd(c.im, c.re, c.im, c.re),
        )
    }

    /// Per-walker-pair amp-first broadcast (`a` in lanes 0–1, `b` in 2–3).
    #[inline(always)]
    unsafe fn bcast2_ri(a: C64, b: C64) -> (__m256d, __m256d) {
        (
            _mm256_setr_pd(a.re, a.im, b.re, b.im),
            _mm256_setr_pd(a.im, a.re, b.im, b.re),
        )
    }

    /// `[ai, ar, bi, br]` — swaps re/im within each complex pair.
    #[inline(always)]
    unsafe fn swap_pairs(v: __m256d) -> __m256d {
        _mm256_permute_pd(v, 0b0101)
    }

    /// Two complex products `m · v` (matrix entry left, broadcast as
    /// `(re, im)`): `re' = v.re·m.re − v.im·m.im`,
    /// `im' = v.im·m.re + v.re·m.im` — bitwise `C64::mul(m, v)` (the f64
    /// products commute exactly; the add/sub pair the same operands in the
    /// same order).
    #[inline(always)]
    unsafe fn cmul(v: __m256d, m: (__m256d, __m256d)) -> __m256d {
        _mm256_addsub_pd(_mm256_mul_pd(v, m.0), _mm256_mul_pd(swap_pairs(v), m.1))
    }

    /// Two complex products `v · m` (amplitude left, `m` broadcast by
    /// [`bcast_ri`]/[`bcast2_ri`]): `re' = v.re·m.re − v.im·m.im`,
    /// `im' = v.re·m.im + v.im·m.re` — bitwise `C64::mul(v, m)`, i.e. the
    /// `a *= d` side of every diagonal fast path.
    #[inline(always)]
    unsafe fn cmul_amp(v: __m256d, m: (__m256d, __m256d)) -> __m256d {
        _mm256_addsub_pd(
            _mm256_mul_pd(_mm256_movedup_pd(v), m.0),
            _mm256_mul_pd(_mm256_permute_pd(v, 0b1111), m.1),
        )
    }

    /// Lane-wise complex product `u · v` of two full vectors:
    /// `re' = u.re·v.re − u.im·v.im`, `im' = u.re·v.im + u.im·v.re` —
    /// bitwise `C64::mul(u, v)` per complex pair.
    #[inline(always)]
    unsafe fn cmul_vv(u: __m256d, v: __m256d) -> __m256d {
        _mm256_addsub_pd(
            _mm256_mul_pd(_mm256_movedup_pd(u), v),
            _mm256_mul_pd(_mm256_permute_pd(u, 0b1111), swap_pairs(v)),
        )
    }

    /// Lane-wise conjugate: flips the sign bit of every `im` lane —
    /// exactly the `-self.im` of `C64::conj`.
    #[inline(always)]
    unsafe fn conj_v(v: __m256d) -> __m256d {
        _mm256_xor_pd(
            v,
            _mm256_castsi256_pd(_mm256_setr_epi64x(0, i64::MIN, 0, i64::MIN)),
        )
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mat2_pairs(lo: &mut [C64], hi: &mut [C64], m: &Mat2) {
        let n = lo.len();
        debug_assert_eq!(n, hi.len());
        let m00 = bcast(m.0[0][0]);
        let m01 = bcast(m.0[0][1]);
        let m10 = bcast(m.0[1][0]);
        let m11 = bcast(m.0[1][1]);
        let lp = lo.as_mut_ptr() as *mut f64;
        let hp = hi.as_mut_ptr() as *mut f64;
        let vec_n = n & !1;
        let mut j = 0;
        while j < vec_n {
            let a = _mm256_loadu_pd(lp.add(2 * j));
            let b = _mm256_loadu_pd(hp.add(2 * j));
            let nl = _mm256_add_pd(cmul(a, m00), cmul(b, m01));
            let nh = _mm256_add_pd(cmul(a, m10), cmul(b, m11));
            _mm256_storeu_pd(lp.add(2 * j), nl);
            _mm256_storeu_pd(hp.add(2 * j), nh);
            j += 2;
        }
        if vec_n < n {
            // Odd run length: scalar tail, identical expressions.
            let (a, b) = (lo[vec_n], hi[vec_n]);
            lo[vec_n] = m.0[0][0] * a + m.0[0][1] * b;
            hi[vec_n] = m.0[1][0] * a + m.0[1][1] * b;
        }
    }

    /// Stride-1 sweep (q = 0): pairs are adjacent (`[lo0, hi0, lo1, hi1]`),
    /// so the run-based kernel would degrade to its scalar tail. Instead,
    /// two pairs are gathered into the standard lane shape with cross-lane
    /// permutes, updated exactly as in [`mat2_pairs`], and scattered back.
    #[target_feature(enable = "avx2")]
    unsafe fn mat2_stride1(amps: &mut [C64], m: &Mat2) {
        let m00 = bcast(m.0[0][0]);
        let m01 = bcast(m.0[0][1]);
        let m10 = bcast(m.0[1][0]);
        let m11 = bcast(m.0[1][1]);
        let p = amps.as_mut_ptr() as *mut f64;
        let n = amps.len();
        let vec_n = n & !7;
        let mut i = 0;
        // Two independent 2-pair bodies per iteration: the gather → cmul →
        // scatter chain is latency-bound, so interleaving two chains keeps
        // the multiply ports busy.
        while i < vec_n {
            let y0 = _mm256_loadu_pd(p.add(2 * i)); // [lo0, hi0]
            let y1 = _mm256_loadu_pd(p.add(2 * i + 4)); // [lo1, hi1]
            let y2 = _mm256_loadu_pd(p.add(2 * i + 8));
            let y3 = _mm256_loadu_pd(p.add(2 * i + 12));
            let a0 = _mm256_permute2f128_pd(y0, y1, 0x20); // [lo0, lo1]
            let b0 = _mm256_permute2f128_pd(y0, y1, 0x31); // [hi0, hi1]
            let a1 = _mm256_permute2f128_pd(y2, y3, 0x20);
            let b1 = _mm256_permute2f128_pd(y2, y3, 0x31);
            let nl0 = _mm256_add_pd(cmul(a0, m00), cmul(b0, m01));
            let nh0 = _mm256_add_pd(cmul(a0, m10), cmul(b0, m11));
            let nl1 = _mm256_add_pd(cmul(a1, m00), cmul(b1, m01));
            let nh1 = _mm256_add_pd(cmul(a1, m10), cmul(b1, m11));
            _mm256_storeu_pd(p.add(2 * i), _mm256_permute2f128_pd(nl0, nh0, 0x20));
            _mm256_storeu_pd(p.add(2 * i + 4), _mm256_permute2f128_pd(nl0, nh0, 0x31));
            _mm256_storeu_pd(p.add(2 * i + 8), _mm256_permute2f128_pd(nl1, nh1, 0x20));
            _mm256_storeu_pd(p.add(2 * i + 12), _mm256_permute2f128_pd(nl1, nh1, 0x31));
            i += 8;
        }
        while i < n & !3 {
            let y0 = _mm256_loadu_pd(p.add(2 * i));
            let y1 = _mm256_loadu_pd(p.add(2 * i + 4));
            let a = _mm256_permute2f128_pd(y0, y1, 0x20);
            let b = _mm256_permute2f128_pd(y0, y1, 0x31);
            let nl = _mm256_add_pd(cmul(a, m00), cmul(b, m01));
            let nh = _mm256_add_pd(cmul(a, m10), cmul(b, m11));
            _mm256_storeu_pd(p.add(2 * i), _mm256_permute2f128_pd(nl, nh, 0x20));
            _mm256_storeu_pd(p.add(2 * i + 4), _mm256_permute2f128_pd(nl, nh, 0x31));
            i += 4;
        }
        while i < n {
            // Lone trailing pair (2-amplitude register): scalar.
            let (a, b) = (amps[i], amps[i + 1]);
            amps[i] = m.0[0][0] * a + m.0[0][1] * b;
            amps[i + 1] = m.0[1][0] * a + m.0[1][1] * b;
            i += 2;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mat2_sweep(amps: &mut [C64], stride: usize, m: &Mat2) {
        if stride == 1 {
            return mat2_stride1(amps, m);
        }
        let block = stride << 1;
        for c in amps.chunks_mut(block) {
            let (lo, hi) = c.split_at_mut(stride);
            mat2_pairs(lo, hi, m);
        }
    }

    /// The 16 matrix entries of a 4×4 update, broadcast row-major.
    type Mat4Rows = [[(__m256d, __m256d); 4]; 4];

    #[inline(always)]
    unsafe fn build_rows(m: &Mat4) -> Mat4Rows {
        let mut rows = [[(_mm256_setzero_pd(), _mm256_setzero_pd()); 4]; 4];
        for (r, row) in rows.iter_mut().enumerate() {
            for (k, e) in row.iter_mut().enumerate() {
                *e = bcast(m.0[r][k]);
            }
        }
        rows
    }

    /// Four row outputs for two quads held in lane shape. Accumulation
    /// matches `quad_update`'s `((r0·v0 + r1·v1) + r2·v2) + r3·v3` order
    /// per lane; one swapped copy per input is shared by all four rows.
    #[inline(always)]
    unsafe fn quad_rows(v: &[__m256d; 4], rows: &Mat4Rows) -> [__m256d; 4] {
        let sv = [
            swap_pairs(v[0]),
            swap_pairs(v[1]),
            swap_pairs(v[2]),
            swap_pairs(v[3]),
        ];
        let mut out = [_mm256_setzero_pd(); 4];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &rows[r];
            let mut acc = _mm256_addsub_pd(
                _mm256_mul_pd(v[0], row[0].0),
                _mm256_mul_pd(sv[0], row[0].1),
            );
            for k in 1..4 {
                acc = _mm256_add_pd(
                    acc,
                    _mm256_addsub_pd(
                        _mm256_mul_pd(v[k], row[k].0),
                        _mm256_mul_pd(sv[k], row[k].1),
                    ),
                );
            }
            *o = acc;
        }
        out
    }

    /// Scalar quad update at one run index — exactly `quad_update`'s
    /// expressions and association order.
    #[inline(always)]
    fn quad_scalar(
        c00: &mut [C64],
        c01: &mut [C64],
        c10: &mut [C64],
        c11: &mut [C64],
        j: usize,
        m: &Mat4,
    ) {
        let v = [c00[j], c01[j], c10[j], c11[j]];
        let r = &m.0;
        c00[j] = r[0][0] * v[0] + r[0][1] * v[1] + r[0][2] * v[2] + r[0][3] * v[3];
        c01[j] = r[1][0] * v[0] + r[1][1] * v[1] + r[1][2] * v[2] + r[1][3] * v[3];
        c10[j] = r[2][0] * v[0] + r[2][1] * v[1] + r[2][2] * v[2] + r[2][3] * v[3];
        c11[j] = r[3][0] * v[0] + r[3][1] * v[1] + r[3][2] * v[2] + r[3][3] * v[3];
    }

    #[inline(always)]
    unsafe fn quads_with_rows(
        c00: &mut [C64],
        c01: &mut [C64],
        c10: &mut [C64],
        c11: &mut [C64],
        m: &Mat4,
        rows: &Mat4Rows,
    ) {
        let n = c00.len();
        debug_assert!(c01.len() == n && c10.len() == n && c11.len() == n);
        let p0 = c00.as_mut_ptr() as *mut f64;
        let p1 = c01.as_mut_ptr() as *mut f64;
        let p2 = c10.as_mut_ptr() as *mut f64;
        let p3 = c11.as_mut_ptr() as *mut f64;
        let vec_n = n & !1;
        let mut j = 0;
        while j < vec_n {
            let v = [
                _mm256_loadu_pd(p0.add(2 * j)),
                _mm256_loadu_pd(p1.add(2 * j)),
                _mm256_loadu_pd(p2.add(2 * j)),
                _mm256_loadu_pd(p3.add(2 * j)),
            ];
            let out = quad_rows(&v, rows);
            _mm256_storeu_pd(p0.add(2 * j), out[0]);
            _mm256_storeu_pd(p1.add(2 * j), out[1]);
            _mm256_storeu_pd(p2.add(2 * j), out[2]);
            _mm256_storeu_pd(p3.add(2 * j), out[3]);
            j += 2;
        }
        if vec_n < n {
            quad_scalar(c00, c01, c10, c11, vec_n, m);
        }
    }

    /// `s_lo = 1` half-pair: quads interleave as `[q.v0, q.v1]` in
    /// `half0` and `[q.v2, q.v3]` in `half1`, so two quads are gathered
    /// into the standard lane shape with cross-lane permutes, pushed
    /// through [`quad_rows`], and scattered back.
    #[inline(always)]
    unsafe fn mat4_interleaved(h0: &mut [C64], h1: &mut [C64], m: &Mat4, rows: &Mat4Rows) {
        let nq = h0.len() / 2;
        let p0 = h0.as_mut_ptr() as *mut f64;
        let p1 = h1.as_mut_ptr() as *mut f64;
        let vec_q = nq & !1;
        let mut q = 0;
        while q < vec_q {
            let ya0 = _mm256_loadu_pd(p0.add(4 * q)); // [q0.v0, q0.v1]
            let ya1 = _mm256_loadu_pd(p0.add(4 * q + 4)); // [q1.v0, q1.v1]
            let yb0 = _mm256_loadu_pd(p1.add(4 * q)); // [q0.v2, q0.v3]
            let yb1 = _mm256_loadu_pd(p1.add(4 * q + 4)); // [q1.v2, q1.v3]
            let v = [
                _mm256_permute2f128_pd(ya0, ya1, 0x20), // [q0.v0, q1.v0]
                _mm256_permute2f128_pd(ya0, ya1, 0x31), // [q0.v1, q1.v1]
                _mm256_permute2f128_pd(yb0, yb1, 0x20),
                _mm256_permute2f128_pd(yb0, yb1, 0x31),
            ];
            let o = quad_rows(&v, rows);
            _mm256_storeu_pd(p0.add(4 * q), _mm256_permute2f128_pd(o[0], o[1], 0x20));
            _mm256_storeu_pd(p0.add(4 * q + 4), _mm256_permute2f128_pd(o[0], o[1], 0x31));
            _mm256_storeu_pd(p1.add(4 * q), _mm256_permute2f128_pd(o[2], o[3], 0x20));
            _mm256_storeu_pd(p1.add(4 * q + 4), _mm256_permute2f128_pd(o[2], o[3], 0x31));
            q += 2;
        }
        if vec_q < nq {
            // Lone trailing quad (s_hi = 2 registers): scalar, same
            // expressions.
            let r = &m.0;
            let v = [h0[2 * q], h0[2 * q + 1], h1[2 * q], h1[2 * q + 1]];
            h0[2 * q] = r[0][0] * v[0] + r[0][1] * v[1] + r[0][2] * v[2] + r[0][3] * v[3];
            h0[2 * q + 1] = r[1][0] * v[0] + r[1][1] * v[1] + r[1][2] * v[2] + r[1][3] * v[3];
            h1[2 * q] = r[2][0] * v[0] + r[2][1] * v[1] + r[2][2] * v[2] + r[2][3] * v[3];
            h1[2 * q + 1] = r[3][0] * v[0] + r[3][1] * v[1] + r[3][2] * v[2] + r[3][3] * v[3];
        }
    }

    #[inline(always)]
    unsafe fn half_pair_with_rows(
        half0: &mut [C64],
        half1: &mut [C64],
        s_lo: usize,
        m: &Mat4,
        rows: &Mat4Rows,
    ) {
        if s_lo == 1 {
            return mat4_interleaved(half0, half1, m, rows);
        }
        let lo_block = s_lo << 1;
        for (c0, c1) in half0.chunks_mut(lo_block).zip(half1.chunks_mut(lo_block)) {
            let (c00, c01) = c0.split_at_mut(s_lo);
            let (c10, c11) = c1.split_at_mut(s_lo);
            quads_with_rows(c00, c01, c10, c11, m, rows);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mat4_half_pair(half0: &mut [C64], half1: &mut [C64], s_lo: usize, m: &Mat4) {
        let rows = build_rows(m);
        half_pair_with_rows(half0, half1, s_lo, m, &rows);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mat4_sweep(amps: &mut [C64], s_hi: usize, s_lo: usize, m: &Mat4) {
        let m = &{ *m };
        let rows = build_rows(m);
        let block = s_hi << 1;
        for c in amps.chunks_mut(block) {
            let (h0, h1) = c.split_at_mut(s_hi);
            half_pair_with_rows(h0, h1, s_lo, m, &rows);
        }
    }

    // -----------------------------------------------------------------------
    // Walker kernels: lanes are walkers. The interleaved amplitude-major
    // layout (`amps[i·nw + w]`) makes adjacent walkers adjacent in memory,
    // so the vectors need NO shuffles at any stride — including stride 1,
    // the worst case of the single-state kernels. Matrices differ per
    // walker (one bind per θ), so coefficients broadcast per walker *pair*
    // and are prebuilt once per sweep; a per-pair path tag hoists the
    // diagonal/dense branch out of the amplitude loop. Walkers whose pair
    // mixes diagonal and dense matrices — and the odd trailing walker —
    // take the exact scalar-body expressions.
    // -----------------------------------------------------------------------

    /// Per-walker-pair dispatch for the walker single-qubit sweep.
    enum Pair2 {
        /// `[m00, m01, m10, m11]`, matrix-first broadcast per lane pair.
        Dense([(__m256d, __m256d); 4]),
        /// `[d0, d1]`, amp-first broadcast (`a *= d` per lane pair).
        Diag([(__m256d, __m256d); 2]),
        Mixed,
    }

    /// One walker's scalar single-qubit update — exactly the
    /// `walker_mat2_body` expressions. Raw pointers so the caller can mix
    /// it with vector loads/stores through the same pointers.
    ///
    /// # Safety
    /// `l.add(w)` and `h.add(w)` must be valid, disjoint `C64` slots.
    #[inline(always)]
    unsafe fn walker2_scalar(l: *mut C64, h: *mut C64, w: usize, m: &Mat2, diag: bool) {
        let (lw, hw) = (l.add(w), h.add(w));
        if diag {
            *lw *= m.0[0][0];
            *hw *= m.0[1][1];
        } else {
            let a = *lw;
            let b = *hw;
            *lw = m.0[0][0] * a + m.0[0][1] * b;
            *hw = m.0[1][0] * a + m.0[1][1] * b;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn walker_mat2(
        amps: &mut [C64],
        nw: usize,
        stride: usize,
        mats: &[Mat2],
        diag: &[bool],
    ) {
        let np = nw / 2;
        let pairs: Vec<Pair2> = (0..np)
            .map(|p| {
                let (a, b) = (2 * p, 2 * p + 1);
                match (diag[a], diag[b]) {
                    (true, true) => Pair2::Diag([
                        bcast2_ri(mats[a].0[0][0], mats[b].0[0][0]),
                        bcast2_ri(mats[a].0[1][1], mats[b].0[1][1]),
                    ]),
                    (false, false) => Pair2::Dense([
                        bcast2(mats[a].0[0][0], mats[b].0[0][0]),
                        bcast2(mats[a].0[0][1], mats[b].0[0][1]),
                        bcast2(mats[a].0[1][0], mats[b].0[1][0]),
                        bcast2(mats[a].0[1][1], mats[b].0[1][1]),
                    ]),
                    _ => Pair2::Mixed,
                }
            })
            .collect();
        let row = nw;
        let block = (stride << 1) * row;
        for c in amps.chunks_mut(block) {
            let (lo, hi) = c.split_at_mut(stride * row);
            for (l, h) in lo.chunks_exact_mut(row).zip(hi.chunks_exact_mut(row)) {
                let lc = l.as_mut_ptr();
                let hc = h.as_mut_ptr();
                let lp = lc as *mut f64;
                let hp = hc as *mut f64;
                for (p, pair) in pairs.iter().enumerate() {
                    let o = 4 * p;
                    match pair {
                        Pair2::Dense(e) => {
                            let a = _mm256_loadu_pd(lp.add(o));
                            let b = _mm256_loadu_pd(hp.add(o));
                            _mm256_storeu_pd(
                                lp.add(o),
                                _mm256_add_pd(cmul(a, e[0]), cmul(b, e[1])),
                            );
                            _mm256_storeu_pd(
                                hp.add(o),
                                _mm256_add_pd(cmul(a, e[2]), cmul(b, e[3])),
                            );
                        }
                        Pair2::Diag(d) => {
                            _mm256_storeu_pd(lp.add(o), cmul_amp(_mm256_loadu_pd(lp.add(o)), d[0]));
                            _mm256_storeu_pd(hp.add(o), cmul_amp(_mm256_loadu_pd(hp.add(o)), d[1]));
                        }
                        Pair2::Mixed => {
                            for w in 2 * p..2 * p + 2 {
                                walker2_scalar(lc, hc, w, &mats[w], diag[w]);
                            }
                        }
                    }
                }
                if nw & 1 == 1 {
                    walker2_scalar(lc, hc, nw - 1, &mats[nw - 1], diag[nw - 1]);
                }
            }
        }
    }

    /// Per-walker-pair dispatch for the walker two-qubit sweep.
    // The Dense payload is 1 KiB of broadcast rows, read every inner
    // iteration; boxing it would add a pointer chase to the hot loop for
    // a table that holds at most nw/2 entries and lives one sweep.
    #[allow(clippy::large_enum_variant)]
    enum Pair4 {
        /// Full 4×4, matrix-first broadcast per lane pair.
        Dense(Mat4Rows),
        /// `[d00, d11, d22, d33]`, amp-first broadcast.
        Diag([(__m256d, __m256d); 4]),
        Mixed,
    }

    /// One walker's scalar quad update — exactly the `walker_mat4_body`
    /// expressions. Raw pointers for the same reason as
    /// [`walker2_scalar`].
    ///
    /// # Safety
    /// All four `.add(k)` slots must be valid, disjoint `C64` slots.
    #[inline(always)]
    unsafe fn walker4_scalar(
        c00: *mut C64,
        c01: *mut C64,
        c10: *mut C64,
        c11: *mut C64,
        k: usize,
        m: &Mat4,
        diag: bool,
    ) {
        let (a0, a1, a2, a3) = (c00.add(k), c01.add(k), c10.add(k), c11.add(k));
        if diag {
            *a0 *= m.0[0][0];
            *a1 *= m.0[1][1];
            *a2 *= m.0[2][2];
            *a3 *= m.0[3][3];
        } else {
            let v = [*a0, *a1, *a2, *a3];
            let r = &m.0;
            *a0 = r[0][0] * v[0] + r[0][1] * v[1] + r[0][2] * v[2] + r[0][3] * v[3];
            *a1 = r[1][0] * v[0] + r[1][1] * v[1] + r[1][2] * v[2] + r[1][3] * v[3];
            *a2 = r[2][0] * v[0] + r[2][1] * v[1] + r[2][2] * v[2] + r[2][3] * v[3];
            *a3 = r[3][0] * v[0] + r[3][1] * v[1] + r[3][2] * v[2] + r[3][3] * v[3];
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn walker_mat4(
        amps: &mut [C64],
        nw: usize,
        s_hi: usize,
        s_lo: usize,
        mats: &[Mat4],
        diag: &[bool],
    ) {
        let np = nw / 2;
        let pairs: Vec<Pair4> = (0..np)
            .map(|p| {
                let (a, b) = (2 * p, 2 * p + 1);
                match (diag[a], diag[b]) {
                    (true, true) => Pair4::Diag([
                        bcast2_ri(mats[a].0[0][0], mats[b].0[0][0]),
                        bcast2_ri(mats[a].0[1][1], mats[b].0[1][1]),
                        bcast2_ri(mats[a].0[2][2], mats[b].0[2][2]),
                        bcast2_ri(mats[a].0[3][3], mats[b].0[3][3]),
                    ]),
                    (false, false) => {
                        let mut rows = [[(_mm256_setzero_pd(), _mm256_setzero_pd()); 4]; 4];
                        for (r, row) in rows.iter_mut().enumerate() {
                            for (k, e) in row.iter_mut().enumerate() {
                                *e = bcast2(mats[a].0[r][k], mats[b].0[r][k]);
                            }
                        }
                        Pair4::Dense(rows)
                    }
                    _ => Pair4::Mixed,
                }
            })
            .collect();
        let row = nw;
        let block = (s_hi << 1) * row;
        let lo_block = (s_lo << 1) * row;
        for c in amps.chunks_mut(block) {
            let (h0, h1) = c.split_at_mut(s_hi * row);
            for (c0, c1) in h0.chunks_mut(lo_block).zip(h1.chunks_mut(lo_block)) {
                let (c00, c01) = c0.split_at_mut(s_lo * row);
                let (c10, c11) = c1.split_at_mut(s_lo * row);
                let q0 = c00.as_mut_ptr();
                let q1 = c01.as_mut_ptr();
                let q2 = c10.as_mut_ptr();
                let q3 = c11.as_mut_ptr();
                let p0 = q0 as *mut f64;
                let p1 = q1 as *mut f64;
                let p2 = q2 as *mut f64;
                let p3 = q3 as *mut f64;
                for j in 0..s_lo {
                    let base = j * row;
                    for (p, pair) in pairs.iter().enumerate() {
                        let o = 2 * base + 4 * p;
                        match pair {
                            Pair4::Dense(rows) => {
                                let v = [
                                    _mm256_loadu_pd(p0.add(o)),
                                    _mm256_loadu_pd(p1.add(o)),
                                    _mm256_loadu_pd(p2.add(o)),
                                    _mm256_loadu_pd(p3.add(o)),
                                ];
                                let out = quad_rows(&v, rows);
                                _mm256_storeu_pd(p0.add(o), out[0]);
                                _mm256_storeu_pd(p1.add(o), out[1]);
                                _mm256_storeu_pd(p2.add(o), out[2]);
                                _mm256_storeu_pd(p3.add(o), out[3]);
                            }
                            Pair4::Diag(d) => {
                                _mm256_storeu_pd(
                                    p0.add(o),
                                    cmul_amp(_mm256_loadu_pd(p0.add(o)), d[0]),
                                );
                                _mm256_storeu_pd(
                                    p1.add(o),
                                    cmul_amp(_mm256_loadu_pd(p1.add(o)), d[1]),
                                );
                                _mm256_storeu_pd(
                                    p2.add(o),
                                    cmul_amp(_mm256_loadu_pd(p2.add(o)), d[2]),
                                );
                                _mm256_storeu_pd(
                                    p3.add(o),
                                    cmul_amp(_mm256_loadu_pd(p3.add(o)), d[3]),
                                );
                            }
                            Pair4::Mixed => {
                                for w in 2 * p..2 * p + 2 {
                                    walker4_scalar(q0, q1, q2, q3, base + w, &mats[w], diag[w]);
                                }
                            }
                        }
                    }
                    if nw & 1 == 1 {
                        let w = nw - 1;
                        walker4_scalar(q0, q1, q2, q3, base + w, &mats[w], diag[w]);
                    }
                }
            }
        }
    }

    /// Shared index selector of one diagonal-factor column (the factor
    /// *kind* is position-aligned across walkers; only the entry values
    /// differ per θ).
    enum FactKind {
        One { q: usize },
        Two { hi: usize, lo: usize },
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn walker_diag(amps: &mut [C64], nw: usize, factors: &[DiagFactor]) {
        let np = nw / 2;
        let nf = factors.len() / nw;
        // Per factor: one shared bit selector + a per-pair table of all
        // possible entry values, amp-first broadcast. The inner loop then
        // reduces to table-select + one complex multiply per factor.
        let mut kinds: Vec<FactKind> = Vec::with_capacity(nf);
        let mut tbl: Vec<[(__m256d, __m256d); 4]> = Vec::with_capacity(nf * np);
        for f in 0..nf {
            let fr = &factors[f * nw..(f + 1) * nw];
            kinds.push(match fr[0] {
                DiagFactor::One { q, .. } => FactKind::One { q },
                DiagFactor::Two { hi, lo, .. } => FactKind::Two { hi, lo },
            });
            let d_of = |w: usize, idx: usize| match fr[w] {
                DiagFactor::One { d, .. } => d[idx & 1],
                DiagFactor::Two { d, .. } => d[idx],
            };
            for p in 0..np {
                tbl.push([
                    bcast2_ri(d_of(2 * p, 0), d_of(2 * p + 1, 0)),
                    bcast2_ri(d_of(2 * p, 1), d_of(2 * p + 1, 1)),
                    bcast2_ri(d_of(2 * p, 2), d_of(2 * p + 1, 2)),
                    bcast2_ri(d_of(2 * p, 3), d_of(2 * p + 1, 3)),
                ]);
            }
        }
        let mut idxs: Vec<usize> = vec![0; nf];
        for (i, rows) in amps.chunks_exact_mut(nw).enumerate() {
            for (f, k) in kinds.iter().enumerate() {
                idxs[f] = match *k {
                    FactKind::One { q } => (i >> q) & 1,
                    FactKind::Two { hi, lo } => (((i >> hi) & 1) << 1) | ((i >> lo) & 1),
                };
            }
            let rp = rows.as_mut_ptr() as *mut f64;
            for p in 0..np {
                let mut v = _mm256_loadu_pd(rp.add(4 * p));
                for (f, &idx) in idxs.iter().enumerate() {
                    v = cmul_amp(v, tbl[f * np + p][idx]);
                }
                _mm256_storeu_pd(rp.add(4 * p), v);
            }
            if nw & 1 == 1 {
                let w = nw - 1;
                for f in 0..nf {
                    rows[w] *= factors[f * nw + w].at(i);
                }
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn walker_accum(
        accs: &mut [C64],
        amps: &[C64],
        nw: usize,
        base: usize,
        m: usize,
        f: &[C64],
    ) {
        let np = nw / 2;
        let ap = amps.as_ptr() as *const f64;
        // Per-pair accumulators live in registers across the block.
        let mut av: Vec<__m256d> = {
            let cp = accs.as_ptr() as *const f64;
            (0..np).map(|p| _mm256_loadu_pd(cp.add(4 * p))).collect()
        };
        if m == 0 {
            for (j, &fx) in f.iter().enumerate() {
                let x = base + j;
                let fxb = bcast_ri(fx);
                let o = x * nw * 2;
                for (p, a) in av.iter_mut().enumerate() {
                    let row = _mm256_loadu_pd(ap.add(o + 4 * p));
                    // |ψ|² per lane pair in norm_sqr's exact re·re + im·im
                    // order, imaginary lanes blended to zero.
                    let re = _mm256_movedup_pd(row);
                    let im = _mm256_permute_pd(row, 0b1111);
                    let n2 = _mm256_add_pd(_mm256_mul_pd(re, re), _mm256_mul_pd(im, im));
                    let w = _mm256_blend_pd(n2, _mm256_setzero_pd(), 0b1010);
                    *a = _mm256_add_pd(*a, cmul_amp(w, fxb));
                }
                if nw & 1 == 1 {
                    let w = nw - 1;
                    accs[w] += C64::new(amps[x * nw + w].norm_sqr(), 0.0) * fx;
                }
            }
        } else {
            for (j, &fx) in f.iter().enumerate() {
                let x = base + j;
                let fxb = bcast_ri(fx);
                let o = x * nw * 2;
                let om = (x ^ m) * nw * 2;
                for (p, a) in av.iter_mut().enumerate() {
                    let row = _mm256_loadu_pd(ap.add(o + 4 * p));
                    let mate = conj_v(_mm256_loadu_pd(ap.add(om + 4 * p)));
                    *a = _mm256_add_pd(*a, cmul_amp(cmul_vv(mate, row), fxb));
                }
                if nw & 1 == 1 {
                    let w = nw - 1;
                    accs[w] += (amps[(x ^ m) * nw + w].conj() * amps[x * nw + w]) * fx;
                }
            }
        }
        let cp = accs.as_mut_ptr() as *mut f64;
        for (p, a) in av.iter().enumerate() {
            _mm256_storeu_pd(cp.add(4 * p), *a);
        }
    }
}

// ---------------------------------------------------------------------------
// Single-qubit pair sweep.
// ---------------------------------------------------------------------------

/// One (lo, hi) half-pair: the full `2×2` update over equal-length runs,
/// written on interleaved lanes. Expression-for-expression this is
/// `kernels::pair_update` (`lo' = m00·a + m01·b`, `hi' = m10·a + m11·b`)
/// with the complex products expanded, so it is bitwise identical to the
/// scalar kernel on every input.
#[inline(always)]
fn mat2_pairs_body(lo: &mut [C64], hi: &mut [C64], m: &Mat2) {
    debug_assert_eq!(lo.len(), hi.len());
    let (m00, m01, m10, m11) = (m.0[0][0], m.0[0][1], m.0[1][0], m.0[1][1]);
    let lo = lanes_mut(lo);
    let hi = lanes_mut(hi);
    for (l, h) in lo.chunks_exact_mut(2).zip(hi.chunks_exact_mut(2)) {
        let (ar, ai) = (l[0], l[1]);
        let (br, bi) = (h[0], h[1]);
        l[0] = (m00.re * ar - m00.im * ai) + (m01.re * br - m01.im * bi);
        l[1] = (m00.re * ai + m00.im * ar) + (m01.re * bi + m01.im * br);
        h[0] = (m10.re * ar - m10.im * ai) + (m11.re * br - m11.im * bi);
        h[1] = (m10.re * ai + m10.im * ar) + (m11.re * bi + m11.im * br);
    }
}

#[inline(always)]
fn mat2_sweep_body(amps: &mut [C64], stride: usize, m: &Mat2) {
    let block = stride << 1;
    for c in amps.chunks_mut(block) {
        let (lo, hi) = c.split_at_mut(stride);
        mat2_pairs_body(lo, hi, m);
    }
}

/// Full serial single-qubit sweep: every block's (lo, hi) pair run
/// through the `2×2` update. `stride = 2^q`. The dense sweeps dispatch to
/// hand-written AVX2 kernels (see [`avx`]) rather than the
/// auto-vectorized body — the explicit `vaddsubpd` form is bitwise
/// identical and measurably faster.
pub fn mat2_sweep(amps: &mut [C64], stride: usize, m: &Mat2) {
    #[cfg(target_arch = "x86_64")]
    if simd_selected() {
        return unsafe { avx::mat2_sweep(amps, stride, m) };
    }
    mat2_sweep_body(amps, stride, m)
}

/// One outer block's (lo, hi) half-pair — the per-block body the
/// Rayon-parallel dispatch path hands to worker threads.
pub fn mat2_pairs(lo: &mut [C64], hi: &mut [C64], m: &Mat2) {
    #[cfg(target_arch = "x86_64")]
    if simd_selected() {
        return unsafe { avx::mat2_pairs(lo, hi, m) };
    }
    mat2_pairs_body(lo, hi, m)
}

// ---------------------------------------------------------------------------
// Two-qubit quad sweep.
// ---------------------------------------------------------------------------

/// The `4×4` update over four equal-length quadrant runs, on interleaved
/// lanes. Matches `kernels::quad_update` bitwise: each output is
/// `((row0·v0 + row1·v1) + row2·v2) + row3·v3` with the same
/// left-associated addition order.
#[inline(always)]
fn mat4_quads_body(c00: &mut [C64], c01: &mut [C64], c10: &mut [C64], c11: &mut [C64], m: &Mat4) {
    let n = c00.len();
    debug_assert!(c01.len() == n && c10.len() == n && c11.len() == n);
    let rows = m.0;
    let c00 = lanes_mut(c00);
    let c01 = lanes_mut(c01);
    let c10 = lanes_mut(c10);
    let c11 = lanes_mut(c11);
    for j in 0..n {
        let (re, im) = (2 * j, 2 * j + 1);
        let v = [
            (c00[re], c00[im]),
            (c01[re], c01[im]),
            (c10[re], c10[im]),
            (c11[re], c11[im]),
        ];
        let mut out = [(0.0f64, 0.0f64); 4];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &rows[r];
            // ((p0 + p1) + p2) + p3, each p = row[k] * v[k] expanded.
            let mut acc_re = row[0].re * v[0].0 - row[0].im * v[0].1;
            let mut acc_im = row[0].re * v[0].1 + row[0].im * v[0].0;
            acc_re += row[1].re * v[1].0 - row[1].im * v[1].1;
            acc_im += row[1].re * v[1].1 + row[1].im * v[1].0;
            acc_re += row[2].re * v[2].0 - row[2].im * v[2].1;
            acc_im += row[2].re * v[2].1 + row[2].im * v[2].0;
            acc_re += row[3].re * v[3].0 - row[3].im * v[3].1;
            acc_im += row[3].re * v[3].1 + row[3].im * v[3].0;
            *o = (acc_re, acc_im);
        }
        c00[re] = out[0].0;
        c00[im] = out[0].1;
        c01[re] = out[1].0;
        c01[im] = out[1].1;
        c10[re] = out[2].0;
        c10[im] = out[2].1;
        c11[re] = out[3].0;
        c11[im] = out[3].1;
    }
}

#[inline(always)]
fn mat4_half_pair_body(half0: &mut [C64], half1: &mut [C64], s_lo: usize, m: &Mat4) {
    let lo_block = s_lo << 1;
    for (c0, c1) in half0.chunks_mut(lo_block).zip(half1.chunks_mut(lo_block)) {
        let (c00, c01) = c0.split_at_mut(s_lo);
        let (c10, c11) = c1.split_at_mut(s_lo);
        mat4_quads_body(c00, c01, c10, c11, m);
    }
}

#[inline(always)]
fn mat4_sweep_body(amps: &mut [C64], s_hi: usize, s_lo: usize, m: &Mat4) {
    // Stack-copy the matrix so the optimizer can keep the 16 entries in
    // registers across the sweep (same reasoning as apply_mat4_prenorm).
    let m = &{ *m };
    let block = s_hi << 1;
    for c in amps.chunks_mut(block) {
        let (h0, h1) = c.split_at_mut(s_hi);
        mat4_half_pair_body(h0, h1, s_lo, m);
    }
}

/// Full serial two-qubit sweep (`hi > lo` prenormalized, `s_hi = 2^hi`,
/// `s_lo = 2^lo`). Dispatches to the explicit AVX2 quad kernel.
pub fn mat4_sweep(amps: &mut [C64], s_hi: usize, s_lo: usize, m: &Mat4) {
    #[cfg(target_arch = "x86_64")]
    if simd_selected() {
        return unsafe { avx::mat4_sweep(amps, s_hi, s_lo, m) };
    }
    mat4_sweep_body(amps, s_hi, s_lo, m)
}

/// One outer block's half-pair — the per-block body of the
/// block-parallel two-qubit path.
pub fn mat4_half_pair(half0: &mut [C64], half1: &mut [C64], s_lo: usize, m: &Mat4) {
    #[cfg(target_arch = "x86_64")]
    if simd_selected() {
        return unsafe { avx::mat4_half_pair(half0, half1, s_lo, m) };
    }
    mat4_half_pair_body(half0, half1, s_lo, m)
}

// ---------------------------------------------------------------------------
// Diagonal sweeps.
// ---------------------------------------------------------------------------

/// Multiplies a contiguous run by one complex constant — the innermost
/// body of every diagonal fast path. `a *= d` expanded on lanes, matching
/// `C64::mul` bitwise (`re' = re·d.re − im·d.im`, `im' = re·d.im + im·d.re`).
#[inline(always)]
fn diag_scale_body(amps: &mut [C64], d: C64) {
    let lanes = lanes_mut(amps);
    for a in lanes.chunks_exact_mut(2) {
        let (re, im) = (a[0], a[1]);
        a[0] = re * d.re - im * d.im;
        a[1] = re * d.im + im * d.re;
    }
}

#[inline(always)]
fn diag1_sweep_body(amps: &mut [C64], q: usize, d0: C64, d1: C64) {
    // Bit q is constant over runs of 2^q: alternate d0/d1 runs instead of
    // re-deriving the bit per amplitude. Each amplitude still computes
    // exactly `a *= d[bit]`, so this is value-identical to the indexed
    // form for every iteration order.
    let stride = 1usize << q;
    for (k, run) in amps.chunks_mut(stride).enumerate() {
        diag_scale_body(run, if k & 1 == 1 { d1 } else { d0 });
    }
}

simd_dispatch! {
    /// Serial diagonal single-qubit sweep in alternating constant runs.
    pub fn diag1_sweep(amps: &mut [C64], q: usize, d0: C64, d1: C64) = diag1_sweep_body
}

#[inline(always)]
fn diag2_sweep_body(amps: &mut [C64], hi: usize, lo: usize, d: &[C64; 4]) {
    // Bits (hi, lo) are constant over runs of 2^lo; the run index carries
    // both bits of every amplitude inside it.
    let s_lo = 1usize << lo;
    for (k, run) in amps.chunks_mut(s_lo).enumerate() {
        let base = k * s_lo;
        let idx = (((base >> hi) & 1) << 1) | ((base >> lo) & 1);
        diag_scale_body(run, d[idx]);
    }
}

simd_dispatch! {
    /// Serial diagonal two-qubit sweep in constant runs (`hi > lo`).
    pub fn diag2_sweep(amps: &mut [C64], hi: usize, lo: usize, d: &[C64; 4]) = diag2_sweep_body
}

#[inline(always)]
fn diag_multi_sweep_body(amps: &mut [C64], factors: &[DiagFactor]) {
    // Multi-factor sweeps keep the factor loop innermost so each
    // amplitude multiplies the factors in plan order — the bitwise
    // contract of apply_diag_sweep.
    for (i, a) in amps.iter_mut().enumerate() {
        for f in factors {
            *a *= f.at(i);
        }
    }
}

simd_dispatch! {
    /// Serial multi-factor diagonal sweep (factor loop innermost).
    pub fn diag_multi_sweep(amps: &mut [C64], factors: &[DiagFactor]) = diag_multi_sweep_body
}

// ---------------------------------------------------------------------------
// Expectation-value flip-mask sign sweep.
// ---------------------------------------------------------------------------

/// Fills `out[j]` with the group phase `Σ_t c_t·(−1)^{|(base+j) ∧ z_t|}`
/// for a block of consecutive amplitude indices. The term loop runs
/// *outer* so the per-index accumulation sequence matches
/// `energy_direct_batched`'s original inner loop term-for-term (each
/// `out[j]` receives `c.scale(sign)` contributions in Hamiltonian group
/// order), while the index loop becomes a branch-free lane sweep LLVM can
/// vectorize: `x & z`, popcount parity, `sign = 1 − 2·parity`, two
/// multiply-adds.
#[inline(always)]
fn group_phase_block_body(out: &mut [C64], base: usize, terms: &[(u64, C64, u64)]) {
    for o in out.iter_mut() {
        *o = C64::default();
    }
    for &(_, c, z) in terms {
        for (j, o) in out.iter_mut().enumerate() {
            let x = (base + j) as u64;
            let sign = 1.0 - 2.0 * ((x & z).count_ones() & 1) as f64;
            o.re += c.re * sign;
            o.im += c.im * sign;
        }
    }
}

simd_dispatch! {
    /// Group-phase block fill for the batched direct expectation.
    pub fn group_phase_block(out: &mut [C64], base: usize, terms: &[(u64, C64, u64)]) =
        group_phase_block_body
}

/// Fills `out[j]` with the flip-group pair weight for amplitude
/// `x = base + j`: `|ψ[x]|²` for the diagonal (`m = 0`) group, else
/// `conj(ψ[x⊕m])·ψ[x]` — exactly the `w` of `energy_direct_batched`'s
/// inner loop, with the `m` branch hoisted out of the lane sweep.
#[inline(always)]
fn flip_weights_block_body(out: &mut [C64], psi: &[C64], base: usize, m: usize) {
    if m == 0 {
        for (j, o) in out.iter_mut().enumerate() {
            *o = C64::new(psi[base + j].norm_sqr(), 0.0);
        }
    } else {
        for (j, o) in out.iter_mut().enumerate() {
            let x = base + j;
            *o = psi[x ^ m].conj() * psi[x];
        }
    }
}

simd_dispatch! {
    /// Flip-group pair-weight block fill for the batched direct
    /// expectation.
    pub fn flip_weights_block(out: &mut [C64], psi: &[C64], base: usize, m: usize) =
        flip_weights_block_body
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_common::mat::{mat_cx, mat_h, mat_rz, mat_rzz};

    fn rand_state(n: usize, seed: u64) -> Vec<C64> {
        (0..1usize << n)
            .map(|i| {
                let t = (i as f64 * 0.37 + seed as f64).sin();
                C64::new(t, (t * 2.1).cos())
            })
            .collect()
    }

    fn bits(v: &[C64]) -> Vec<(u64, u64)> {
        v.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
    }

    /// Runs `f` twice — SIMD-selected and scalar-forced — and asserts the
    /// two results are bitwise identical.
    fn assert_instantiations_agree(mut f: impl FnMut(&mut [C64]), n: usize, seed: u64) {
        let psi = rand_state(n, seed);
        let mut fast = psi.clone();
        let mut slow = psi;
        set_force_scalar(false);
        f(&mut fast);
        set_force_scalar(true);
        f(&mut slow);
        set_force_scalar(false);
        assert_eq!(bits(&fast), bits(&slow));
    }

    #[test]
    fn mat2_instantiations_bitwise_identical() {
        for q in [0usize, 3, 9] {
            assert_instantiations_agree(|a| mat2_sweep(a, 1 << q, &mat_h()), 10, q as u64);
        }
    }

    #[test]
    fn mat4_instantiations_bitwise_identical() {
        for (hi, lo) in [(1usize, 0usize), (9, 4), (9, 8)] {
            assert_instantiations_agree(
                |a| mat4_sweep(a, 1 << hi, 1 << lo, &mat_cx()),
                10,
                (hi * 13 + lo) as u64,
            );
        }
    }

    #[test]
    fn diag_instantiations_bitwise_identical() {
        let rz = mat_rz(0.83);
        assert_instantiations_agree(|a| diag1_sweep(a, 4, rz.0[0][0], rz.0[1][1]), 10, 5);
        let rzz = mat_rzz(1.1);
        let d = [rzz.0[0][0], rzz.0[1][1], rzz.0[2][2], rzz.0[3][3]];
        assert_instantiations_agree(|a| diag2_sweep(a, 7, 2, &d), 10, 6);
    }

    #[test]
    fn group_phase_instantiations_bitwise_identical() {
        let terms: Vec<(u64, C64, u64)> = (0..7)
            .map(|t| {
                (
                    0u64,
                    C64::new(0.1 * t as f64, -0.02 * t as f64),
                    0b1011 << t,
                )
            })
            .collect();
        let mut fast = vec![C64::default(); 64];
        let mut slow = vec![C64::default(); 64];
        set_force_scalar(false);
        group_phase_block(&mut fast, 128, &terms);
        set_force_scalar(true);
        group_phase_block(&mut slow, 128, &terms);
        set_force_scalar(false);
        assert_eq!(bits(&fast), bits(&slow));
    }

    #[test]
    fn force_scalar_round_trips() {
        assert!(!scalar_forced() || env_forced_scalar());
        set_force_scalar(true);
        assert!(scalar_forced());
        assert!(!simd_selected());
        set_force_scalar(false);
    }
}
